//! Piecewise-linear functions.
//!
//! Used by PWL source waveforms (`PWL(t1 v1 t2 v2 ...)` in the netlist
//! language) and by the ACES-like piecewise-linear device baseline of the
//! paper's Figure 3 / Figure 8(d) comparison.

use crate::error::NumericError;
use crate::Result;

/// A piecewise-linear function defined by sorted `(x, y)` breakpoints.
///
/// Evaluation outside the breakpoint range clamps to the end values (the
/// SPICE convention for PWL sources).
///
/// # Example
/// ```
/// use nanosim_numeric::interp::PwlFunction;
/// # fn main() -> Result<(), nanosim_numeric::NumericError> {
/// let f = PwlFunction::new(vec![(0.0, 0.0), (1.0, 2.0), (3.0, 2.0)])?;
/// assert_eq!(f.eval(0.5), 1.0);
/// assert_eq!(f.eval(-1.0), 0.0); // clamped
/// assert_eq!(f.eval(9.0), 2.0);  // clamped
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PwlFunction {
    points: Vec<(f64, f64)>,
}

impl PwlFunction {
    /// Creates a PWL function from breakpoints.
    ///
    /// # Errors
    /// Returns [`NumericError::InvalidArgument`] when fewer than two points
    /// are given, any coordinate is non-finite, or x-values are not strictly
    /// increasing.
    pub fn new(points: Vec<(f64, f64)>) -> Result<Self> {
        if points.len() < 2 {
            return Err(NumericError::InvalidArgument {
                context: format!("pwl needs at least 2 points, got {}", points.len()),
            });
        }
        for &(x, y) in &points {
            if !x.is_finite() || !y.is_finite() {
                return Err(NumericError::InvalidArgument {
                    context: format!("non-finite pwl point ({x}, {y})"),
                });
            }
        }
        for w in points.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(NumericError::InvalidArgument {
                    context: format!(
                        "pwl x-values must be strictly increasing ({} then {})",
                        w[0].0, w[1].0
                    ),
                });
            }
        }
        Ok(PwlFunction { points })
    }

    /// Samples a closure uniformly on `[lo, hi]` into an `n`-point PWL table.
    ///
    /// # Errors
    /// Returns [`NumericError::InvalidArgument`] if `n < 2` or `lo >= hi`.
    pub fn from_samples<F: Fn(f64) -> f64>(lo: f64, hi: f64, n: usize, f: F) -> Result<Self> {
        if n < 2 || lo >= hi {
            return Err(NumericError::InvalidArgument {
                context: format!("from_samples needs n >= 2 and lo < hi (n={n}, [{lo}, {hi}])"),
            });
        }
        let step = (hi - lo) / (n - 1) as f64;
        let points = (0..n)
            .map(|i| {
                let x = lo + step * i as f64;
                (x, f(x))
            })
            .collect();
        PwlFunction::new(points)
    }

    /// The breakpoints.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Smallest breakpoint x.
    pub fn x_min(&self) -> f64 {
        self.points[0].0
    }

    /// Largest breakpoint x.
    pub fn x_max(&self) -> f64 {
        self.points[self.points.len() - 1].0
    }

    /// Evaluates the function at `x`, clamping outside the domain.
    pub fn eval(&self, x: f64) -> f64 {
        let pts = &self.points;
        if x <= pts[0].0 {
            return pts[0].1;
        }
        if x >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        let seg = self.segment_index(x);
        let (x0, y0) = pts[seg];
        let (x1, y1) = pts[seg + 1];
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// Slope of the segment containing `x` (zero outside the domain).
    ///
    /// This is the *differential* conductance of a PWL-modeled device — the
    /// quantity that goes negative in an NDR region (paper Figure 3(a)).
    pub fn slope(&self, x: f64) -> f64 {
        let pts = &self.points;
        if x < pts[0].0 || x > pts[pts.len() - 1].0 {
            return 0.0;
        }
        let seg = self.segment_index(x.min(pts[pts.len() - 1].0 - f64::EPSILON));
        let (x0, y0) = pts[seg];
        let (x1, y1) = pts[seg + 1];
        (y1 - y0) / (x1 - x0)
    }

    /// Index `i` such that `points[i].0 <= x < points[i+1].0`.
    fn segment_index(&self, x: f64) -> usize {
        let pts = &self.points;
        match pts.binary_search_by(|&(px, _)| px.partial_cmp(&x).expect("NaN in pwl eval")) {
            Ok(i) => i.min(pts.len() - 2),
            Err(i) => i.saturating_sub(1).min(pts.len() - 2),
        }
    }

    /// True when y is non-decreasing with x.
    pub fn is_monotonic(&self) -> bool {
        self.points.windows(2).all(|w| w[1].1 >= w[0].1)
    }
}

/// Linear interpolation of tabulated data `(xs, ys)` at `x` with clamping.
///
/// # Errors
/// Returns [`NumericError::DimensionMismatch`] when `xs` and `ys` differ in
/// length and [`NumericError::InvalidArgument`] when the table is empty.
pub fn lerp_table(xs: &[f64], ys: &[f64], x: f64) -> Result<f64> {
    if xs.len() != ys.len() {
        return Err(NumericError::DimensionMismatch {
            context: format!("lerp_table: {} xs vs {} ys", xs.len(), ys.len()),
        });
    }
    if xs.is_empty() {
        return Err(NumericError::InvalidArgument {
            context: "lerp_table: empty table".into(),
        });
    }
    if xs.len() == 1 || x <= xs[0] {
        return Ok(ys[0]);
    }
    let n = xs.len();
    if x >= xs[n - 1] {
        return Ok(ys[n - 1]);
    }
    let mut i = match xs.binary_search_by(|px| px.partial_cmp(&x).expect("NaN in lerp")) {
        Ok(i) => return Ok(ys[i]),
        Err(i) => i,
    };
    if i == 0 {
        i = 1;
    }
    let (x0, x1) = (xs[i - 1], xs[i]);
    let (y0, y1) = (ys[i - 1], ys[i]);
    Ok(y0 + (y1 - y0) * (x - x0) / (x1 - x0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn rejects_bad_input() {
        assert!(PwlFunction::new(vec![(0.0, 0.0)]).is_err());
        assert!(PwlFunction::new(vec![(0.0, 0.0), (0.0, 1.0)]).is_err());
        assert!(PwlFunction::new(vec![(1.0, 0.0), (0.0, 1.0)]).is_err());
        assert!(PwlFunction::new(vec![(0.0, f64::NAN), (1.0, 1.0)]).is_err());
    }

    #[test]
    fn eval_interpolates_and_clamps() {
        let f = PwlFunction::new(vec![(0.0, 0.0), (2.0, 4.0), (4.0, 0.0)]).unwrap();
        assert!(approx_eq(f.eval(1.0), 2.0, 1e-15));
        assert!(approx_eq(f.eval(3.0), 2.0, 1e-15));
        assert_eq!(f.eval(-5.0), 0.0);
        assert_eq!(f.eval(99.0), 0.0);
        assert_eq!(f.eval(2.0), 4.0); // exact breakpoint
    }

    #[test]
    fn slope_changes_sign_over_peak() {
        // Triangle: rising then falling — the PWL "NDR" scenario.
        let f = PwlFunction::new(vec![(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]).unwrap();
        assert!(f.slope(0.5) > 0.0);
        assert!(f.slope(1.5) < 0.0);
        assert_eq!(f.slope(-1.0), 0.0);
        assert!(!f.is_monotonic());
    }

    #[test]
    fn monotonic_detection() {
        let f = PwlFunction::new(vec![(0.0, 0.0), (1.0, 1.0), (2.0, 1.0)]).unwrap();
        assert!(f.is_monotonic());
    }

    #[test]
    fn from_samples_matches_function() {
        let f = PwlFunction::from_samples(0.0, 1.0, 101, |x| x * x).unwrap();
        assert!(approx_eq(f.eval(0.5), 0.25, 1e-3));
        assert_eq!(f.points().len(), 101);
        assert_eq!(f.x_min(), 0.0);
        assert_eq!(f.x_max(), 1.0);
        assert!(PwlFunction::from_samples(0.0, 1.0, 1, |x| x).is_err());
        assert!(PwlFunction::from_samples(1.0, 0.0, 5, |x| x).is_err());
    }

    #[test]
    fn lerp_table_basics() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [0.0, 10.0, 0.0];
        assert!(approx_eq(lerp_table(&xs, &ys, 0.5).unwrap(), 5.0, 1e-15));
        assert_eq!(lerp_table(&xs, &ys, 1.0).unwrap(), 10.0);
        assert_eq!(lerp_table(&xs, &ys, -1.0).unwrap(), 0.0);
        assert_eq!(lerp_table(&xs, &ys, 5.0).unwrap(), 0.0);
        assert!(lerp_table(&xs, &ys[..2], 0.5).is_err());
        assert!(lerp_table(&[], &[], 0.5).is_err());
    }

    #[test]
    fn lerp_single_point_table() {
        assert_eq!(lerp_table(&[2.0], &[7.0], 100.0).unwrap(), 7.0);
    }
}
