//! Deterministic pseudo-random number generation.
//!
//! The stochastic (Euler–Maruyama) experiments must be reproducible, so the
//! workspace carries its own small PRNG instead of an external dependency:
//! a PCG64-family generator (128-bit LCG state with XSL-RR output) and
//! Gaussian variates via the Box–Muller transform.

use std::fmt;

/// A PCG-XSL-RR 128/64 pseudo random number generator.
///
/// Deterministic, seedable, fast, and of far higher quality than the linear
/// congruential generators historically embedded in circuit simulators.
///
/// # Example
/// ```
/// use nanosim_numeric::rng::Pcg64;
/// let mut a = Pcg64::seed_from_u64(42);
/// let mut b = Pcg64::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // reproducible
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Pcg64 {
    state: u128,
    inc: u128,
}

impl fmt::Debug for Pcg64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Hide the raw state: it is an implementation detail and 128-bit
        // integers render poorly, but never produce an empty Debug.
        f.debug_struct("Pcg64")
            .field("stream", &(self.inc >> 1))
            .finish()
    }
}

const PCG_MULTIPLIER: u128 = 0x2360_ed05_1fc6_5da4_4385_df64_9fcc_f645;

impl Pcg64 {
    /// Creates a generator from a full 128-bit state and stream selector.
    pub fn new(state: u128, stream: u128) -> Self {
        let inc = (stream << 1) | 1;
        let mut rng = Pcg64 { state: 0, inc };
        rng.state = rng.state.wrapping_add(state);
        rng.step();
        rng
    }

    /// Creates a generator from a 64-bit seed (SplitMix64-expanded).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let hi = sm.next() as u128;
        let lo = sm.next() as u128;
        let s1 = sm.next() as u128;
        let s2 = sm.next() as u128;
        Pcg64::new((hi << 64) | lo, (s1 << 64) | s2)
    }

    #[inline]
    fn step(&mut self) {
        self.state = self
            .state
            .wrapping_mul(PCG_MULTIPLIER)
            .wrapping_add(self.inc);
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.step();
        // XSL-RR output function.
        let rot = (self.state >> 122) as u32;
        let xored = ((self.state >> 64) as u64) ^ (self.state as u64);
        xored.rotate_right(rot)
    }

    /// Uniform sample in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo < hi && lo.is_finite() && hi.is_finite(),
            "invalid uniform range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` via Lemire's rejection method.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn next_range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_range(0) is meaningless");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo >= n || lo >= (u64::MAX - n + 1) % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Standard normal sample (mean 0, variance 1) via Box–Muller.
    pub fn next_gaussian(&mut self) -> f64 {
        // Draw u1 in (0, 1] to avoid ln(0).
        let mut u1 = self.next_f64();
        if u1 <= f64::MIN_POSITIVE {
            u1 = f64::MIN_POSITIVE;
        }
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    ///
    /// # Panics
    /// Panics if `std_dev` is negative or not finite.
    pub fn gaussian(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(
            std_dev >= 0.0 && std_dev.is_finite(),
            "standard deviation must be finite and non-negative, got {std_dev}"
        );
        mean + std_dev * self.next_gaussian()
    }

    /// Splits off an independent generator for a parallel stream (new stream
    /// id derived from the parent's output).
    pub fn split(&mut self) -> Pcg64 {
        let s1 = self.next_u64() as u128;
        let s2 = self.next_u64() as u128;
        let s3 = self.next_u64() as u128;
        let s4 = self.next_u64() as u128;
        Pcg64::new((s1 << 64) | s2, (s3 << 64) | s4)
    }
}

/// SplitMix64 generator, used to expand small seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a new generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Pcg64::seed_from_u64(7);
        let mut b = Pcg64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Pcg64::seed_from_u64(1);
        let mut b = Pcg64::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Pcg64::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = Pcg64::seed_from_u64(4);
        for _ in 0..1000 {
            let x = rng.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "invalid uniform range")]
    fn uniform_rejects_inverted_range() {
        Pcg64::seed_from_u64(0).uniform(1.0, 0.0);
    }

    #[test]
    fn uniform_mean_is_plausible() {
        let mut rng = Pcg64::seed_from_u64(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = Pcg64::seed_from_u64(6);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn gaussian_scaling() {
        let mut rng = Pcg64::seed_from_u64(8);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian(5.0, 0.5)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn next_range_uniformity() {
        let mut rng = Pcg64::seed_from_u64(9);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            counts[rng.next_range(7) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "count {c}");
        }
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = Pcg64::seed_from_u64(10);
        let mut child = parent.split();
        let same = (0..32)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        assert!(same < 2);
    }

    #[test]
    fn splitmix_known_sequence_is_stable() {
        let mut sm = SplitMix64::new(1234567);
        let a = sm.next();
        let b = sm.next();
        assert_ne!(a, b);
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next(), a);
    }

    #[test]
    fn debug_is_nonempty() {
        let rng = Pcg64::seed_from_u64(1);
        assert!(!format!("{rng:?}").is_empty());
    }
}
