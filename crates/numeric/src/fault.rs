//! Deterministic fault-injection harness for the solver stack.
//!
//! Production solvers meet pathological numerics rarely and
//! unreproducibly; this module makes those events *schedulable* so every
//! recovery path in the stack (tolerant refactor, iterative refinement,
//! the engine-level rescue ladder) is exercised by ordinary tests instead
//! of waiting for a pathological deck to find them.
//!
//! A [`FaultPlan`] is an explicit list of [`FaultEvent`]s, each armed at a
//! 0-based *call index*: the owner of the plan (the assembly workspace in
//! `nanosim-core`) calls [`FaultPlan::advance`] once per factor-solve and
//! applies the returned [`FaultAction`]. Every event fires exactly once,
//! the call counter is the only state, and cloning a plan clones its
//! position — so a plan embedded in a workspace that is cloned per sweep
//! shard injects identically at every worker count. No wall clock, no
//! global state: runs are bit-reproducible.
//!
//! Two fault families exist:
//!
//! * **Pivot faults** ([`Fault::SingularPivot`], [`Fault::DegradedPivot`])
//!   simulate a factorization breakdown *without touching any
//!   floating-point data* — the caller reports a singular matrix or routes
//!   the solve through the degraded-pivot refinement path. Recovery from
//!   these is bit-identical to the unfaulted run.
//! * **Matrix faults** ([`Fault::ScaleEntry`], [`Fault::PoisonNan`])
//!   corrupt one stamped entry of the assembled matrix — a conductance
//!   collapsing by decades, or a NaN landing mid-transient. These exercise
//!   the NaN/Inf screens and the pivot-health monitors downstream.
//! * **Stall faults** ([`Fault::Stall`]) burn a deterministic spin loop
//!   during the armed call without touching any data — the way run-budget
//!   deadline handling (see [`crate::budget`]) is tested without real
//!   clocks or sleeps in tests.
//!
//! # Example
//! ```
//! use nanosim_numeric::fault::{Fault, FaultPlan};
//! use nanosim_numeric::sparse::TripletMatrix;
//!
//! let mut t = TripletMatrix::new(2, 2);
//! t.push(0, 0, 2.0);
//! t.push(1, 1, 4.0);
//! let mut a = t.to_csr();
//! let mut plan = FaultPlan::new()
//!     .with_nan_entry(1, 0, 0)
//!     .with_singular_pivot(2, 1);
//!
//! let act = plan.advance(&mut a); // call 0: nothing armed
//! assert!(act.is_clean());
//! let act = plan.advance(&mut a); // call 1: entry (0,0) poisoned
//! assert!(a.get(0, 0).is_nan());
//! assert!(act.is_clean(), "matrix faults carry no pivot action");
//! let act = plan.advance(&mut a); // call 2: report singular pivot 1
//! assert_eq!(act.singular_pivot, Some(1));
//! assert!(plan.exhausted());
//! ```

use crate::rng::Pcg64;
use crate::sparse::CsrMatrix;

/// One injectable solver fault.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Report a singular factorization at pivot index `pivot` without
    /// touching any floating-point data — models a pivot collapsing to
    /// exactly zero at factorization time.
    SingularPivot {
        /// Pivot index reported in the synthesized
        /// [`crate::NumericError::SingularMatrix`].
        pivot: usize,
    },
    /// Mark the cached factors as numerically degraded so the next solve
    /// takes the iterative-refinement path even though the matrix is
    /// healthy.
    DegradedPivot,
    /// Multiply the stamped matrix entry at `(row, col)` by `factor` —
    /// models a device conductance collapsing (tiny `factor`) or exploding
    /// (huge `factor`) by decades. A position outside the sparsity pattern
    /// is ignored (counted by [`FaultPlan::misses`]).
    ScaleEntry {
        /// Row of the perturbed entry.
        row: usize,
        /// Column of the perturbed entry.
        col: usize,
        /// Multiplier applied to the stamped value.
        factor: f64,
    },
    /// Overwrite the stamped matrix entry at `(row, col)` with NaN. A
    /// position outside the sparsity pattern is ignored (counted by
    /// [`FaultPlan::misses`]).
    PoisonNan {
        /// Row of the poisoned entry.
        row: usize,
        /// Column of the poisoned entry.
        col: usize,
    },
    /// Burn `spins` iterations of a data-dependent spin loop *during* the
    /// armed factor-solve call — a deterministic stand-in for "this solve
    /// got slow" that makes wall-clock deadline handling testable without
    /// sleeping in tests. The spin touches no matrix data, so recovery is
    /// bit-identical to the unstalled run.
    Stall {
        /// Spin-loop iterations to burn.
        spins: u64,
    },
}

/// Burns `spins` iterations of an optimization-resistant integer spin loop.
/// The result is fed through [`std::hint::black_box`] so the loop cannot be
/// elided; used by [`Fault::Stall`] and available to tests that need a
/// deterministic unit of "slow work".
pub fn burn_spins(spins: u64) {
    let mut acc = 0u64;
    for i in 0..spins {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    std::hint::black_box(acc);
}

/// One scheduled fault: `kind` fires when the owning [`FaultPlan`]'s call
/// counter reaches `at` (0-based), exactly once.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// 0-based index of the armed factor-solve call.
    pub at: u64,
    /// The fault injected at that call.
    pub kind: Fault,
}

/// Pivot-level effects the caller must apply for the current call,
/// returned by [`FaultPlan::advance`]. Matrix mutations (entry scaling,
/// NaN poison) have already been applied to the matrix by the time this is
/// returned.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultAction {
    /// When `Some(k)`, the caller must behave as if factorization failed
    /// with a singular pivot at index `k`.
    pub singular_pivot: Option<usize>,
    /// When `true`, the caller must route the solve through its
    /// degraded-pivot (iterative refinement) path.
    pub degrade: bool,
}

impl FaultAction {
    /// Whether this call carries no pivot-level fault.
    pub fn is_clean(&self) -> bool {
        self.singular_pivot.is_none() && !self.degrade
    }
}

/// A bit-deterministic schedule of solver faults (see the module docs).
///
/// The plan is inert until its owner drives it with [`FaultPlan::advance`];
/// an empty plan (the default) never injects anything and costs one integer
/// increment per call.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    calls: u64,
    injected: u64,
    misses: u64,
    stalls: u64,
}

impl FaultPlan {
    /// Creates an empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules a synthesized singular-pivot failure at call `at`.
    pub fn with_singular_pivot(mut self, at: u64, pivot: usize) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: Fault::SingularPivot { pivot },
        });
        self
    }

    /// Schedules a forced degraded-pivot (refinement-path) solve at call
    /// `at`.
    pub fn with_degraded_pivot(mut self, at: u64) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: Fault::DegradedPivot,
        });
        self
    }

    /// Schedules a multiplicative perturbation of entry `(row, col)` at
    /// call `at` — e.g. `factor = 1e-12` for a 12-decade conductance
    /// collapse.
    pub fn with_entry_scale(mut self, at: u64, row: usize, col: usize, factor: f64) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: Fault::ScaleEntry { row, col, factor },
        });
        self
    }

    /// Schedules a NaN poison of entry `(row, col)` at call `at`.
    pub fn with_nan_entry(mut self, at: u64, row: usize, col: usize) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: Fault::PoisonNan { row, col },
        });
        self
    }

    /// Schedules a deterministic stall of `spin_iters` spin-loop iterations
    /// at call `call_index` — the factor-solve armed there burns the spins
    /// before factoring, so a run under a wall-clock deadline observes the
    /// slowdown at its next checkpoint. No matrix data is touched.
    pub fn with_stall(mut self, call_index: u64, spin_iters: u64) -> Self {
        self.events.push(FaultEvent {
            at: call_index,
            kind: Fault::Stall { spins: spin_iters },
        });
        self
    }

    /// Generates a seeded stall-only plan: `count` stalls of `spin_iters`
    /// each, armed at distinct random call indices below `max_call`. The
    /// chaos-under-deadline counterpart of [`FaultPlan::seeded`] (which is
    /// left untouched so existing seeded corpora replay bit-identically).
    pub fn seeded_stalls(seed: u64, max_call: u64, count: usize, spin_iters: u64) -> Self {
        let mut rng = Pcg64::seed_from_u64(seed ^ 0x57a1_1fa1);
        let mut plan = FaultPlan::new();
        let span = max_call.max(1);
        for _ in 0..count {
            let at = rng.next_range(span);
            plan = plan.with_stall(at, spin_iters);
        }
        plan
    }

    /// Generates a seeded plan of `count` faults, each armed at a distinct
    /// call index below `max_call`, targeting diagonal entries of an
    /// `n`-unknown system. The same seed always yields the same plan —
    /// this is the fuzzing entry point for the fault-recovery suites.
    pub fn seeded(seed: u64, n: usize, max_call: u64, count: usize) -> Self {
        let mut rng = Pcg64::seed_from_u64(seed ^ 0x5eed_fa17);
        let mut plan = FaultPlan::new();
        let span = max_call.max(1);
        for _ in 0..count {
            let at = rng.next_range(span);
            let k = (rng.next_range(n.max(1) as u64)) as usize;
            plan = match rng.next_range(4) {
                0 => plan.with_singular_pivot(at, k),
                1 => plan.with_degraded_pivot(at),
                2 => plan.with_entry_scale(at, k, k, 1e-12),
                _ => plan.with_nan_entry(at, k, k),
            };
        }
        plan
    }

    /// Advances the call counter by one, applying any matrix faults armed
    /// for this call to `a` and returning the pivot-level action the
    /// caller must honor. Every event fires at most once.
    pub fn advance(&mut self, a: &mut CsrMatrix) -> FaultAction {
        let call = self.calls;
        self.calls += 1;
        let mut action = FaultAction::default();
        if self.events.iter().all(|e| e.at != call) {
            return action;
        }
        for ev in self.events.iter().filter(|e| e.at == call) {
            match ev.kind {
                Fault::SingularPivot { pivot } => {
                    action.singular_pivot = Some(pivot);
                    self.injected += 1;
                }
                Fault::DegradedPivot => {
                    action.degrade = true;
                    self.injected += 1;
                }
                Fault::ScaleEntry { row, col, factor } => match a.position(row, col) {
                    Some(p) => {
                        a.values_mut()[p] *= factor;
                        self.injected += 1;
                    }
                    None => self.misses += 1,
                },
                Fault::PoisonNan { row, col } => match a.position(row, col) {
                    Some(p) => {
                        a.values_mut()[p] = f64::NAN;
                        self.injected += 1;
                    }
                    None => self.misses += 1,
                },
                Fault::Stall { spins } => {
                    burn_spins(spins);
                    self.injected += 1;
                    self.stalls += 1;
                }
            }
        }
        action
    }

    /// Number of calls observed so far.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Number of faults actually injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Scheduled matrix faults whose `(row, col)` fell outside the
    /// sparsity pattern (nothing was injected for them).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Stall faults fired so far (a subset of [`FaultPlan::injected`]).
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Whether every scheduled event's call index has passed.
    pub fn exhausted(&self) -> bool {
        self.events.iter().all(|e| e.at < self.calls)
    }

    /// The scheduled events (armed and past).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::TripletMatrix;

    fn small() -> CsrMatrix {
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 2.0);
        t.push(1, 1, 3.0);
        t.push(2, 2, 4.0);
        t.to_csr()
    }

    #[test]
    fn events_fire_once_at_their_call_index() {
        let mut a = small();
        let mut plan = FaultPlan::new()
            .with_entry_scale(1, 1, 1, 1e-12)
            .with_singular_pivot(1, 2);
        assert!(plan.advance(&mut a).is_clean());
        assert_eq!(a.get(1, 1), 3.0);
        let act = plan.advance(&mut a);
        assert_eq!(act.singular_pivot, Some(2));
        assert!((a.get(1, 1) - 3e-12).abs() < 1e-24);
        assert!(plan.advance(&mut a).is_clean(), "no re-fire");
        assert_eq!(plan.injected(), 2);
        assert!(plan.exhausted());
    }

    #[test]
    fn off_pattern_faults_are_counted_as_misses() {
        let mut a = small();
        let mut plan = FaultPlan::new().with_nan_entry(0, 0, 2);
        assert!(plan.advance(&mut a).is_clean());
        assert_eq!(plan.misses(), 1);
        assert_eq!(plan.injected(), 0);
        assert!(a.values().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn cloned_plans_replay_identically() {
        let mut a1 = small();
        let mut a2 = small();
        let plan = FaultPlan::new()
            .with_nan_entry(2, 0, 0)
            .with_degraded_pivot(4);
        let (mut p1, mut p2) = (plan.clone(), plan);
        for _ in 0..5 {
            assert_eq!(p1.advance(&mut a1), p2.advance(&mut a2));
        }
        // Bit-level comparison: NaN != NaN under `==`, but the replay must
        // produce the exact same bytes.
        let bits = |vals: &[f64]| vals.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(a1.values()), bits(a2.values()));
        assert!(a1.get(0, 0).is_nan());
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let p1 = FaultPlan::seeded(42, 10, 100, 4);
        let p2 = FaultPlan::seeded(42, 10, 100, 4);
        assert_eq!(p1, p2);
        assert_eq!(p1.events().len(), 4);
        let p3 = FaultPlan::seeded(43, 10, 100, 4);
        assert_ne!(p1, p3, "different seeds, different plans");
    }

    #[test]
    fn stall_burns_without_touching_data() {
        let mut a = small();
        let before = a.values().to_vec();
        let mut plan = FaultPlan::new().with_stall(1, 10_000);
        assert!(plan.advance(&mut a).is_clean());
        assert_eq!(plan.stalls(), 0);
        let act = plan.advance(&mut a);
        assert!(act.is_clean(), "stalls carry no pivot action");
        assert_eq!(plan.stalls(), 1);
        assert_eq!(plan.injected(), 1);
        assert_eq!(a.values(), &before[..], "stall leaves the matrix alone");
        assert!(plan.exhausted());
    }

    #[test]
    fn seeded_stall_plans_are_reproducible() {
        let p1 = FaultPlan::seeded_stalls(9, 50, 3, 1000);
        let p2 = FaultPlan::seeded_stalls(9, 50, 3, 1000);
        assert_eq!(p1, p2);
        assert_eq!(p1.events().len(), 3);
        assert!(p1
            .events()
            .iter()
            .all(|e| matches!(e.kind, Fault::Stall { spins: 1000 }) && e.at < 50));
        assert_ne!(p1, FaultPlan::seeded_stalls(10, 50, 3, 1000));
    }

    #[test]
    fn empty_plan_is_inert() {
        let mut a = small();
        let before = a.values().to_vec();
        let mut plan = FaultPlan::new();
        for _ in 0..10 {
            assert!(plan.advance(&mut a).is_clean());
        }
        assert_eq!(a.values(), &before[..]);
        assert!(plan.exhausted());
        assert_eq!(plan.calls(), 10);
    }
}
