//! Sparse matrix storage and factorization.
//!
//! Modified nodal analysis produces matrices whose density falls quickly with
//! circuit size, and the Nano-Sim engines re-solve the same pattern at every
//! time point. This module provides:
//!
//! * [`TripletMatrix`] — coordinate-format assembly ("stamping") storage,
//! * [`CsrMatrix`] — compressed sparse row storage with counted mat-vec,
//! * [`SparseLu`] — a left-looking (Gilbert–Peierls) LU factorization with
//!   threshold partial pivoting, reusable across right-hand sides.

mod csr;
mod lu;
mod triplet;

pub use csr::CsrMatrix;
pub use lu::{PivotStrategy, SparseLu};
pub use triplet::TripletMatrix;
