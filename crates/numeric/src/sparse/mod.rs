//! Sparse matrix storage and the three-phase LU pipeline.
//!
//! Modified nodal analysis produces matrices whose density falls quickly with
//! circuit size, and the Nano-Sim engines re-solve the same pattern at every
//! time point. This module provides:
//!
//! * [`TripletMatrix`] — coordinate-format assembly ("stamping") storage,
//! * [`CsrMatrix`] — compressed sparse row storage with counted mat-vec,
//! * the sparse-LU pipeline, split into explicit phases:
//!   * [`order`] — fill-reducing orderings ([`Natural`], [`Rcm`], [`Amd`]),
//!     selected by [`OrderingChoice`] (default `Auto`),
//!   * [`SymbolicAnalysis`] — the permuted pattern + scatter maps, built
//!     once per sparsity structure,
//!   * [`SparseLu`] — the left-looking (Gilbert–Peierls) numeric
//!     factorization with threshold partial pivoting, values-only
//!     refactorization, and ordering-transparent solves.

mod batched;
mod csr;
mod kernels;
mod lu;
pub mod order;
mod symbolic;
mod triplet;

pub use batched::BatchedLu;
pub use csr::CsrMatrix;
pub(crate) use lu::REFACTOR_PIVOT_RATIO;
pub use lu::{PivotStrategy, SparseLu, PIVOT_COLLAPSE_RATIO};
pub use order::{Amd, Natural, Ordering, OrderingChoice, Rcm};
pub use symbolic::SymbolicAnalysis;
pub use triplet::TripletMatrix;
