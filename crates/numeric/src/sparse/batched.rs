//! Ensemble-batched LU: `k` same-pattern factorizations advanced as one
//! interleaved batch.
//!
//! Monte-Carlo ensembles over device-parameter variation (the
//! Euler–Maruyama paths of `nanosim-core::em` with per-path conductance
//! jitter) factor `k` matrices that share one sparsity pattern, one fill
//! ordering, and one pivot order — only the values differ, and they differ
//! by a few percent. [`BatchedLu`] exploits that: a single **template**
//! [`SparseLu`] (factored from lane 0 with fresh pivoting) fixes the
//! structure, and the batch stores the `k` factors **lane-major** —
//! `l_vals[p * k + r]` is lane `r`'s value at factor position `p` — so
//! the values-only batched refactorization and the batched solve walk the
//! symbolic structure *once* and update all `k` lanes per entry with
//! contiguous unit-stride inner loops, the CPU analogue of a GPU
//! `batched_lu`. Against `k` independent [`SparseLu::refactor`] passes
//! this removes `k − 1` structure traversals per step; the arithmetic is
//! **bit-identical** per lane (locked by `tests/mixed_precision.rs`), so
//! batching is a pure layout transformation.
//!
//! Pivot health mirrors the tolerant scalar refactor: the pass completes
//! through degraded pivots and reports the worst `|pivot| / column-max`
//! ratio across all lanes, so callers keep the usual
//! refinement-then-refactor ladder per ensemble.

use super::kernels::{count_col_fma, nonzero_lanes};
use super::lu::{PivotStrategy, SparseLu};
use super::order::OrderingChoice;
use super::CsrMatrix;
use crate::error::NumericError;
use crate::flops::FlopCounter;
use crate::Result;

/// `k` same-pattern sparse LU factorizations stored lane-major and
/// advanced in lockstep (see the module docs).
///
/// # Example
/// ```
/// use nanosim_numeric::sparse::{BatchedLu, OrderingChoice, PivotStrategy, TripletMatrix};
/// use nanosim_numeric::flops::FlopCounter;
/// # fn main() -> Result<(), nanosim_numeric::NumericError> {
/// let mut mats = Vec::new();
/// for r in 0..3u32 {
///     let mut t = TripletMatrix::new(2, 2);
///     t.push(0, 0, 2.0 + r as f64);
///     t.push(1, 1, 4.0);
///     mats.push(t.to_csr());
/// }
/// let refs: Vec<&_> = mats.iter().collect();
/// let mut flops = FlopCounter::new();
/// let batch = BatchedLu::factor_ordered(
///     &refs,
///     OrderingChoice::Natural,
///     PivotStrategy::default(),
///     &mut flops,
/// )?;
/// // Lane-major RHS block: lane r's vector at b[r*n..][..n].
/// let b = [2.0, 4.0, 3.0, 4.0, 4.0, 4.0];
/// let mut x = Vec::new();
/// let mut work = Vec::new();
/// batch.solve_all_into(&b, &mut x, &mut work, &mut flops)?;
/// assert_eq!(&x[..2], &[1.0, 1.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BatchedLu {
    /// Batch width `k`.
    lanes: usize,
    /// Lane-0 factorization fixing ordering, pivot order, and structure
    /// for every lane; also the source of the pivot-space index maps.
    template: SparseLu,
    /// Lane-major factor values: `l_vals[p * lanes + r]`.
    l_vals: Vec<f64>,
    u_vals: Vec<f64>,
    u_diag: Vec<f64>,
    /// Lane-major scratch: shuffled input values and the dense working
    /// columns (pivot space).
    csc_vals: Vec<f64>,
    work: Vec<f64>,
    /// Worst `|pivot| / column-max` ratio across all lanes of the most
    /// recent batched pass, and the pivot column where it occurred.
    worst_ratio: f64,
    worst_col: usize,
}

impl BatchedLu {
    /// Factors `mats` (all sharing one sparsity pattern) as one batch:
    /// a full pivoting factorization of `mats[0]` fixes the structure,
    /// then one batched values-only pass populates every lane — lane 0
    /// included, so all lanes go through identical code.
    ///
    /// # Errors
    /// [`NumericError::PatternChanged`] when the matrices do not share
    /// `mats[0]`'s pattern, [`NumericError::DimensionMismatch`] for an
    /// empty batch, and the usual factorization errors for lane 0.
    pub fn factor_ordered(
        mats: &[&CsrMatrix],
        ordering: OrderingChoice,
        strategy: PivotStrategy,
        flops: &mut FlopCounter,
    ) -> Result<Self> {
        let Some(first) = mats.first() else {
            return Err(NumericError::DimensionMismatch {
                context: "batched lu: empty batch".to_string(),
            });
        };
        let template = SparseLu::factor_ordered(first, ordering, strategy, flops)?;
        let k = mats.len();
        let mut batch = BatchedLu {
            lanes: k,
            l_vals: vec![0.0; template.l_vals.len() * k],
            u_vals: vec![0.0; template.u_vals.len() * k],
            u_diag: vec![0.0; template.n * k],
            csc_vals: vec![0.0; template.csc_vals.len() * k],
            work: vec![0.0; template.n * k],
            worst_ratio: f64::INFINITY,
            worst_col: 0,
            template,
        };
        batch.refactor_all(mats, flops)?;
        Ok(batch)
    }

    /// Batched values-only refactorization: one structure traversal
    /// updates all `k` lanes. Tolerant of degraded pivots (like
    /// [`SparseLu::refactor_tolerant`]); returns the worst
    /// `|pivot| / column-max` ratio across every lane.
    ///
    /// Per lane the arithmetic — including the zero-multiplier column
    /// skips — is exactly the scalar refactorization's, so each lane's
    /// factors are bit-identical to an independent [`SparseLu::refactor`]
    /// of that lane's matrix.
    ///
    /// # Errors
    /// [`NumericError::DimensionMismatch`] when `mats.len()` differs from
    /// the batch width, [`NumericError::PatternChanged`] on a pattern
    /// mismatch (detected up front), and
    /// [`NumericError::SingularMatrix`] on an exactly zero or non-finite
    /// pivot in any lane (aborts mid-pass; re-factor before solving).
    pub fn refactor_all(&mut self, mats: &[&CsrMatrix], flops: &mut FlopCounter) -> Result<f64> {
        let k = self.lanes;
        if mats.len() != k {
            return Err(NumericError::DimensionMismatch {
                context: format!("batched lu: {} matrices for {} lanes", mats.len(), k),
            });
        }
        for a in mats {
            if !self.template.sym.matches(a) {
                return Err(NumericError::PatternChanged {
                    context: format!(
                        "batched refactor of {}x{} ({} nnz) against analysis of {}x{} ({} nnz)",
                        a.rows(),
                        a.cols(),
                        a.nnz(),
                        self.template.n,
                        self.template.n,
                        self.template.sym.nnz()
                    ),
                });
            }
        }

        // Shuffle every lane's values into permuted CSC order, lane-major.
        for (r, a) in mats.iter().enumerate() {
            for (p, &v) in a.values().iter().enumerate() {
                self.csc_vals[self.template.sym.csr_to_csc[p] * k + r] = v;
            }
        }

        let n = self.template.n;
        let tpl = &self.template;
        let plan = &tpl.plan;
        let work = &mut self.work;
        let mut worst_ratio = f64::INFINITY;
        let mut worst_col = 0usize;
        for j in 0..n {
            // Zero the pivot-space working columns over this column's
            // pattern, then scatter A'(:, j) for every lane.
            for p in tpl.u_colptr[j]..tpl.u_colptr[j + 1] {
                let row = tpl.u_rows[p];
                work[row * k..(row + 1) * k].fill(0.0);
            }
            work[j * k..(j + 1) * k].fill(0.0);
            for p in tpl.l_colptr[j]..tpl.l_colptr[j + 1] {
                let row = plan.l_rows_piv[p] as usize;
                work[row * k..(row + 1) * k].fill(0.0);
            }
            for p in tpl.sym.csc_colptr[j]..tpl.sym.csc_colptr[j + 1] {
                let row = plan.csc_rows_piv[p] as usize;
                work[row * k..(row + 1) * k].copy_from_slice(&self.csc_vals[p * k..(p + 1) * k]);
            }

            // Eliminate with already-final columns in ascending pivot
            // order, all lanes per source column. `split_at_mut` separates
            // the finished source slot from the rows it updates (L is
            // strictly below the pivot, so every target row is > kk).
            for p in tpl.u_colptr[j]..tpl.u_colptr[j + 1] {
                let kk = tpl.u_rows[p];
                let (head, tail) = work.split_at_mut((kk + 1) * k);
                let uk = &head[kk * k..];
                self.u_vals[p * k..(p + 1) * k].copy_from_slice(uk);
                let nz = nonzero_lanes(uk);
                if nz == 0 {
                    continue;
                }
                let col_len = tpl.l_colptr[kk + 1] - tpl.l_colptr[kk];
                if nz == k as u64 {
                    // Every lane live: unguarded unit-stride lane loop.
                    for q in tpl.l_colptr[kk]..tpl.l_colptr[kk + 1] {
                        let row = plan.l_rows_piv[q] as usize;
                        let lv = &self.l_vals[q * k..(q + 1) * k];
                        let dst = &mut tail[(row - kk - 1) * k..(row - kk) * k];
                        for ((d, &u), &l) in dst.iter_mut().zip(uk).zip(lv) {
                            *d -= u * l;
                        }
                    }
                } else {
                    // Partially live: guard per lane so a zero multiplier
                    // skips its column exactly like the scalar refactor
                    // (keeps lane factors bit-identical, `-0.0` included).
                    for q in tpl.l_colptr[kk]..tpl.l_colptr[kk + 1] {
                        let row = plan.l_rows_piv[q] as usize;
                        let lv = &self.l_vals[q * k..(q + 1) * k];
                        let dst = &mut tail[(row - kk - 1) * k..(row - kk) * k];
                        for ((d, &u), &l) in dst.iter_mut().zip(uk).zip(lv) {
                            if u != 0.0 {
                                *d -= u * l;
                            }
                        }
                    }
                }
                flops.fma(col_len as u64 * nz);
            }

            // Fixed pivots, one per lane: health check and normalization.
            let col_len = tpl.l_colptr[j + 1] - tpl.l_colptr[j];
            for r in 0..k {
                let pivot_val = work[j * k + r];
                let mut col_max = pivot_val.abs();
                for p in tpl.l_colptr[j]..tpl.l_colptr[j + 1] {
                    let row = plan.l_rows_piv[p] as usize;
                    col_max = col_max.max(work[row * k + r].abs());
                }
                if !pivot_val.is_finite() || pivot_val == 0.0 {
                    return Err(NumericError::SingularMatrix { pivot: j });
                }
                let ratio = pivot_val.abs() / col_max;
                if ratio < worst_ratio {
                    worst_ratio = ratio;
                    worst_col = j;
                }
                self.u_diag[j * k + r] = pivot_val;
            }
            for p in tpl.l_colptr[j]..tpl.l_colptr[j + 1] {
                let row = plan.l_rows_piv[p] as usize;
                for r in 0..k {
                    self.l_vals[p * k + r] = work[row * k + r] / self.u_diag[j * k + r];
                }
            }
            flops.div(col_len as u64 * k as u64);
        }
        self.worst_ratio = worst_ratio;
        self.worst_col = worst_col;
        Ok(worst_ratio)
    }

    /// Batched solve: lane `r` solves `A_r · x_r = b_r` against its own
    /// factors. `b` and `x` are lane-major blocks of `k` vectors —
    /// `b[r*n..][..n]` is lane `r`'s RHS in original MNA numbering (the
    /// layout of [`SparseLu::solve_many_into`]). One structure traversal
    /// serves every lane; flop accounting mirrors `k` independent scalar
    /// solves (zero-multiplier columns skipped per lane).
    ///
    /// # Errors
    /// [`NumericError::DimensionMismatch`] if `b.len() != k * n`.
    pub fn solve_all_into(
        &self,
        b: &[f64],
        x: &mut Vec<f64>,
        work: &mut Vec<f64>,
        flops: &mut FlopCounter,
    ) -> Result<()> {
        let k = self.lanes;
        let n = self.template.n;
        if b.len() != n * k {
            return Err(NumericError::DimensionMismatch {
                context: format!(
                    "batched lu solve: rhs block of {} for n={} x k={}",
                    b.len(),
                    n,
                    k
                ),
            });
        }
        x.resize(n * k, 0.0);
        work.resize(n * k, 0.0);
        let z = &mut work[..n * k];
        let plan = &self.template.plan;
        for i in 0..n {
            let src = plan.in_perm[i];
            for r in 0..k {
                z[i * k + r] = b[r * n + src];
            }
        }
        // Forward solve L·z = b' in pivot space, per-lane factor values.
        for kk in 0..n {
            let (head, tail) = z.split_at_mut((kk + 1) * k);
            let vals = &head[kk * k..];
            let nz = nonzero_lanes(vals);
            if nz > 0 {
                for p in self.template.l_colptr[kk]..self.template.l_colptr[kk + 1] {
                    let row = plan.l_rows_piv[p] as usize;
                    let lv = &self.l_vals[p * k..(p + 1) * k];
                    let dst = &mut tail[(row - kk - 1) * k..(row - kk) * k];
                    for ((d, &v), &l) in dst.iter_mut().zip(vals).zip(lv) {
                        *d -= v * l;
                    }
                }
                count_col_fma(
                    flops,
                    self.template.l_colptr[kk + 1] - self.template.l_colptr[kk],
                    nz,
                );
            }
        }
        // Backward solve U·y = z.
        for kk in (0..n).rev() {
            for (v, d) in z[kk * k..(kk + 1) * k]
                .iter_mut()
                .zip(&self.u_diag[kk * k..(kk + 1) * k])
            {
                *v /= d;
            }
            flops.div(k as u64);
            let (head, tail) = z.split_at_mut(kk * k);
            let vals = &tail[..k];
            let nz = nonzero_lanes(vals);
            if nz > 0 {
                for p in self.template.u_colptr[kk]..self.template.u_colptr[kk + 1] {
                    let row = self.template.u_rows[p];
                    let uv = &self.u_vals[p * k..(p + 1) * k];
                    let dst = &mut head[row * k..(row + 1) * k];
                    for ((d, &v), &u) in dst.iter_mut().zip(vals).zip(uv) {
                        *d -= u * v;
                    }
                }
                count_col_fma(
                    flops,
                    self.template.u_colptr[kk + 1] - self.template.u_colptr[kk],
                    nz,
                );
            }
        }
        // Scatter out, undoing the fill permutation per lane.
        for i in 0..n {
            let dst = self.template.sym.fill_perm[i];
            for r in 0..k {
                x[r * n + dst] = z[i * k + r];
            }
        }
        Ok(())
    }

    /// Batch width `k`.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Dimension of each factored matrix.
    pub fn dim(&self) -> usize {
        self.template.n
    }

    /// The lane-0 template factorization (structure, ordering and fill
    /// diagnostics are shared by every lane).
    pub fn template(&self) -> &SparseLu {
        &self.template
    }

    /// Worst `|pivot| / column-max` ratio across all lanes of the most
    /// recent batched pass.
    pub fn min_recip_pivot(&self) -> f64 {
        self.worst_ratio
    }

    /// Pivot column at which [`BatchedLu::min_recip_pivot`] occurred.
    pub fn worst_pivot_col(&self) -> usize {
        self.worst_col
    }

    /// De-interleaves lane `r`'s factor values `(l_vals, u_vals, u_diag)`
    /// (hidden: lets the bit-identity tests compare against an
    /// independent [`SparseLu`] refactor of the same matrix).
    #[doc(hidden)]
    pub fn lane_factors(&self, r: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let k = self.lanes;
        let l = self.l_vals.iter().skip(r).step_by(k).copied().collect();
        let u = self.u_vals.iter().skip(r).step_by(k).copied().collect();
        let d = self.u_diag.iter().skip(r).step_by(k).copied().collect();
        (l, u, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::TripletMatrix;

    /// A small mesh-like test pattern with per-lane value jitter.
    fn lane_matrices(n_side: usize, k: usize) -> Vec<CsrMatrix> {
        let n = n_side * n_side;
        (0..k)
            .map(|r| {
                let jitter = 0.03 * r as f64;
                let mut t = TripletMatrix::new(n, n);
                for row in 0..n_side {
                    for col in 0..n_side {
                        let i = row * n_side + col;
                        t.push(i, i, 4.0 + jitter * ((i % 5) as f64 - 2.0));
                        if col + 1 < n_side {
                            t.push(i, i + 1, -1.0 - jitter);
                            t.push(i + 1, i, -1.0 + 0.5 * jitter);
                        }
                        if row + 1 < n_side {
                            t.push(i, i + n_side, -1.0 + jitter);
                            t.push(i + n_side, i, -1.0 - 0.5 * jitter);
                        }
                    }
                }
                t.to_csr()
            })
            .collect()
    }

    #[test]
    fn lane_factors_bit_identical_to_independent_refactors() {
        for ordering in [OrderingChoice::Natural, OrderingChoice::Amd] {
            let mats = lane_matrices(6, 5);
            let refs: Vec<&CsrMatrix> = mats.iter().collect();
            let mut flops = FlopCounter::new();
            let batch =
                BatchedLu::factor_ordered(&refs, ordering, PivotStrategy::default(), &mut flops)
                    .unwrap();
            // Independent baseline: factor lane 0 for the pivot order,
            // then values-only refactor per lane — the exact scalar path
            // the batch replaces.
            let mut single =
                SparseLu::factor_ordered(&mats[0], ordering, PivotStrategy::default(), &mut flops)
                    .unwrap();
            for (r, a) in mats.iter().enumerate() {
                single.refactor_tolerant(a, &mut flops).unwrap();
                let (l, u, d) = single.factor_values();
                let (bl, bu, bd) = batch.lane_factors(r);
                assert!(
                    l.iter().zip(&bl).all(|(a, b)| a.to_bits() == b.to_bits()),
                    "L mismatch lane {r} ({ordering:?})"
                );
                assert!(
                    u.iter().zip(&bu).all(|(a, b)| a.to_bits() == b.to_bits()),
                    "U mismatch lane {r} ({ordering:?})"
                );
                assert!(
                    d.iter().zip(&bd).all(|(a, b)| a.to_bits() == b.to_bits()),
                    "diag mismatch lane {r} ({ordering:?})"
                );
            }
        }
    }

    #[test]
    fn batched_solve_matches_independent_solves() {
        let mats = lane_matrices(5, 4);
        let refs: Vec<&CsrMatrix> = mats.iter().collect();
        let n = mats[0].rows();
        let mut flops = FlopCounter::new();
        let batch = BatchedLu::factor_ordered(
            &refs,
            OrderingChoice::Amd,
            PivotStrategy::default(),
            &mut flops,
        )
        .unwrap();
        let b: Vec<f64> = (0..n * 4)
            .map(|i| ((i * 7 + 3) % 11) as f64 - 5.0)
            .collect();
        let mut x = Vec::new();
        let mut work = Vec::new();
        batch
            .solve_all_into(&b, &mut x, &mut work, &mut flops)
            .unwrap();
        let mut single = SparseLu::factor_ordered(
            &mats[0],
            OrderingChoice::Amd,
            PivotStrategy::default(),
            &mut flops,
        )
        .unwrap();
        for (r, a) in mats.iter().enumerate() {
            single.refactor_tolerant(a, &mut flops).unwrap();
            let xr = single.solve(&b[r * n..(r + 1) * n], &mut flops).unwrap();
            for (i, (got, want)) in x[r * n..(r + 1) * n].iter().zip(&xr).enumerate() {
                assert!(
                    (got - want).abs() <= 1e-12 * want.abs().max(1.0),
                    "lane {r} entry {i}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn empty_batch_rejected() {
        let mats: Vec<&CsrMatrix> = Vec::new();
        assert!(BatchedLu::factor_ordered(
            &mats,
            OrderingChoice::Natural,
            PivotStrategy::default(),
            &mut FlopCounter::new(),
        )
        .is_err());
    }

    #[test]
    fn pattern_mismatch_rejected() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (1, 1, 4.0)]);
        let b = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (0, 1, 1.0), (1, 1, 4.0)]);
        let mats = [&a, &b];
        match BatchedLu::factor_ordered(
            &mats,
            OrderingChoice::Natural,
            PivotStrategy::default(),
            &mut FlopCounter::new(),
        ) {
            Err(NumericError::PatternChanged { .. }) => {}
            other => panic!("expected PatternChanged, got {other:?}"),
        }
    }
}
