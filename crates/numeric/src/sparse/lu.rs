//! Numeric phase of the sparse-LU pipeline: left-looking factorization with
//! threshold partial pivoting and KLU-style refactorization, running
//! entirely in the permuted index space of a [`SymbolicAnalysis`].
//!
//! The pipeline has three explicit phases:
//!
//! 1. **ordering** ([`super::order`]) — a fill-reducing permutation computed
//!    from the symmetrized pattern (natural / RCM / AMD, selected by
//!    [`OrderingChoice`]);
//! 2. **symbolic** ([`SymbolicAnalysis`]) — the permuted compressed-column
//!    structure plus the CSR→CSC value shuffle, built once per pattern;
//! 3. **numeric** (this module) — the Gilbert–Peierls column factorization
//!    and the values-only refactorization.
//!
//! The numeric algorithm is the Gilbert–Peierls column method: for each
//! permuted column `j` a sparse triangular solve `L·x = A'(:, j)` is
//! performed symbolically (a DFS over the pattern of `L` yielding a
//! topological order) and numerically, after which the pivot is chosen among
//! the not-yet-pivotal rows. Diagonal entries are preferred when within a
//! threshold of the magnitude-maximal candidate, which keeps the permutation
//! stable across the nearly identical matrices of consecutive transient
//! time steps.
//!
//! That stability is what [`SparseLu::refactor`] exploits: once a matrix has
//! been factored, subsequent matrices with the *same sparsity pattern* (the
//! situation in every Newton iteration, SWEC step and Euler–Maruyama step,
//! where only device conductances change) skip the symbolic analysis and the
//! pivot search entirely and run a values-only numeric pass over the cached
//! `L`/`U` structure — the factor-once/refactor-many strategy of production
//! simulators such as KLU. A refactorization that encounters a new nonzero
//! or a numerically degraded pivot reports [`NumericError::PatternChanged`]
//! so callers can fall back to a full factorization with fresh pivoting
//! ([`SparseLu::refactor_or_factor`] packages that policy, preserving the
//! ordering choice).
//!
//! Callers never see permuted vectors: the fill permutation is applied on
//! scatter-in ([`SymbolicAnalysis::scatter_values`] and the right-hand-side
//! load of [`SparseLu::solve_into`]) and inverted on the way out, so
//! `solve` takes and returns vectors in original MNA numbering whatever the
//! ordering. With [`OrderingChoice::Natural`] every code path degenerates
//! to the identity and results are bit-identical to the pre-ordering
//! pipeline.
//!
//! Factors are stored as flat compressed-column arrays (`colptr`/`rows`/
//! `vals`), not nested `Vec<Vec<_>>`, so the refactor and solve passes are
//! cache-friendly and allocation-free.

use super::kernels::{
    count_col_fma, nonzero_lanes, panel_update, panel_update_f32, panel_update_multi,
    SupernodePlan, MAX_SUPERNODE,
};
use super::order::OrderingChoice;
use super::symbolic::SymbolicAnalysis;
use super::CsrMatrix;
use crate::error::NumericError;
use crate::flops::FlopCounter;
use crate::Result;

/// Pivoting policy for [`SparseLu::factor_with`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PivotStrategy {
    /// Pick the largest-magnitude candidate in the column (classic partial
    /// pivoting; maximal numerical robustness).
    PartialPivoting,
    /// Prefer the diagonal entry when its magnitude is at least `threshold`
    /// times the column maximum (0 < threshold <= 1). MNA matrices are close
    /// to diagonally dominant, and a stable permutation keeps fill-in and
    /// pattern identical across transient steps.
    ThresholdDiagonal {
        /// Fraction of the column maximum the diagonal must reach.
        threshold: f64,
    },
}

impl Default for PivotStrategy {
    fn default() -> Self {
        PivotStrategy::ThresholdDiagonal { threshold: 0.1 }
    }
}

/// A refactorization pivot whose magnitude drops below this fraction of its
/// column maximum is considered numerically degraded; the strict refactor
/// bails out so the caller can re-pivot from scratch, while the tolerant
/// refactor completes and reports the worst ratio so
/// [`crate::solve::SparseLuSolver`] can try iterative refinement first.
pub(crate) const REFACTOR_PIVOT_RATIO: f64 = 1e-6;

/// A refactorization whose worst `|pivot| / column-max` ratio falls below
/// this is treated as numerically singular by [`crate::solve::SparseLuSolver`]:
/// a pivot twelve decades below its column leaves no trustworthy digits in
/// f64, so iterative refinement is not attempted and the failure is
/// surfaced for the engine-level rescue ladder instead. Full
/// factorizations can never trip this — fresh pivoting bounds the ratio at
/// the pivot threshold.
pub const PIVOT_COLLAPSE_RATIO: f64 = 1e-12;

/// Sparse LU factors of a square matrix under a fill-reducing ordering
/// (`P·A(q,q) = L·U` with `q` the fill permutation and `P` the pivot
/// permutation), with the symbolic analysis cached for cheap values-only
/// refactorization.
///
/// # Example
/// ```
/// use nanosim_numeric::sparse::{SparseLu, TripletMatrix};
/// use nanosim_numeric::flops::FlopCounter;
/// # fn main() -> Result<(), nanosim_numeric::NumericError> {
/// let mut t = TripletMatrix::new(2, 2);
/// t.push(0, 0, 2.0);
/// t.push(1, 1, 4.0);
/// let mut flops = FlopCounter::new();
/// let mut lu = SparseLu::factor(&t.to_csr(), &mut flops)?;
/// let x = lu.solve(&[2.0, 8.0], &mut flops)?;
/// assert_eq!(x, vec![1.0, 2.0]);
///
/// // Same pattern, new values: reuse the symbolic analysis.
/// let mut t2 = TripletMatrix::new(2, 2);
/// t2.push(0, 0, 4.0);
/// t2.push(1, 1, 8.0);
/// lu.refactor(&t2.to_csr(), &mut flops)?;
/// let x = lu.solve(&[2.0, 8.0], &mut flops)?;
/// assert_eq!(x, vec![0.5, 1.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseLu {
    pub(crate) n: usize,
    /// Column pointers into `l_rows`/`l_vals`; L column `k` holds entries
    /// strictly below the pivot, already divided by the pivot, with rows in
    /// *permuted* numbering.
    pub(crate) l_colptr: Vec<usize>,
    pub(crate) l_rows: Vec<usize>,
    pub(crate) l_vals: Vec<f64>,
    /// Column pointers into `u_rows`/`u_vals`; U column `j` holds entries
    /// strictly above the diagonal keyed by *pivot index*, ascending.
    pub(crate) u_colptr: Vec<usize>,
    pub(crate) u_rows: Vec<usize>,
    pub(crate) u_vals: Vec<f64>,
    /// Diagonal of U by pivot index.
    pub(crate) u_diag: Vec<f64>,
    /// `perm[k]` = permuted row chosen as the k-th pivot.
    pub(crate) perm: Vec<usize>,
    /// Strategy used for the original factorization (reused on fallback).
    pub(crate) strategy: PivotStrategy,
    /// Cached symbolic analysis: fill ordering, permuted CSC structure,
    /// value shuffle, pattern fingerprint.
    pub(crate) sym: SymbolicAnalysis,
    /// Scratch buffers reused by `refactor` (values in permuted CSC order,
    /// dense working column).
    pub(crate) csc_vals: Vec<f64>,
    pub(crate) work: Vec<f64>,
    /// Blocked-kernel plan: supernode partition, pivot-space index maps and
    /// dense value panels mirroring the supernodal factor entries (see the
    /// internal `kernels` module).
    pub(crate) plan: SupernodePlan,
    /// Single-precision mirrors of `l_vals`/`u_vals`/`u_diag`, refreshed
    /// after every numeric pass while `mixed` is set (empty otherwise —
    /// zero upkeep for pure-f64 callers). The f64 factors stay canonical:
    /// pivot health, refactor, and the fallback ladder never read these.
    pub(crate) l_vals32: Vec<f32>,
    pub(crate) u_vals32: Vec<f32>,
    pub(crate) u_diag32: Vec<f32>,
    /// Whether the f32 mirrors (and the plan's f32 panels) are maintained.
    pub(crate) mixed: bool,
    /// Smallest `|pivot| / column-max` ratio seen by the most recent
    /// numeric pass (factor or refactor) — the reciprocal pivot-growth
    /// health monitor.
    pub(crate) worst_ratio: f64,
    /// Pivot column at which `worst_ratio` occurred.
    pub(crate) worst_col: usize,
}

impl SparseLu {
    /// Factors `a` with the default pivoting strategy in natural order
    /// (no fill-reducing permutation — bit-identical to the pre-pipeline
    /// behavior; use [`SparseLu::factor_ordered`] for AMD/RCM).
    ///
    /// # Errors
    /// Returns [`NumericError::SingularMatrix`] when a column has no usable
    /// pivot and [`NumericError::DimensionMismatch`] for non-square input.
    pub fn factor(a: &CsrMatrix, flops: &mut FlopCounter) -> Result<Self> {
        Self::factor_with(a, PivotStrategy::default(), flops)
    }

    /// Factors `a` with an explicit [`PivotStrategy`] in natural order.
    ///
    /// # Errors
    /// Same as [`SparseLu::factor`]; additionally rejects non-finite values.
    pub fn factor_with(
        a: &CsrMatrix,
        strategy: PivotStrategy,
        flops: &mut FlopCounter,
    ) -> Result<Self> {
        Self::factor_ordered(a, OrderingChoice::Natural, strategy, flops)
    }

    /// The full three-phase entry point: computes (or resolves) the fill
    /// ordering, builds the symbolic analysis, and runs the numeric factor.
    ///
    /// # Errors
    /// Same as [`SparseLu::factor`].
    pub fn factor_ordered(
        a: &CsrMatrix,
        ordering: OrderingChoice,
        strategy: PivotStrategy,
        flops: &mut FlopCounter,
    ) -> Result<Self> {
        let sym = SymbolicAnalysis::analyze(a, ordering)?;
        Self::factor_symbolic(sym, a, strategy, flops)
    }

    /// Numeric factorization against an already-computed
    /// [`SymbolicAnalysis`] (phase 3 alone — share one analysis across many
    /// factorizations of the same pattern).
    ///
    /// # Errors
    /// [`NumericError::PatternChanged`] when `a` does not match the
    /// analyzed pattern, otherwise as [`SparseLu::factor`].
    pub fn factor_symbolic(
        sym: SymbolicAnalysis,
        a: &CsrMatrix,
        strategy: PivotStrategy,
        flops: &mut FlopCounter,
    ) -> Result<Self> {
        if !sym.matches(a) {
            return Err(NumericError::PatternChanged {
                context: format!(
                    "numeric factor of {}x{} ({} nnz) against analysis of {}x{} ({} nnz)",
                    a.rows(),
                    a.cols(),
                    a.nnz(),
                    sym.dim(),
                    sym.dim(),
                    sym.nnz()
                ),
            });
        }
        let n = sym.dim();
        // Scatter the values through the cached shuffle: from here on the
        // factorization works exclusively in permuted index space.
        let mut values = Vec::new();
        sym.scatter_values(a, &mut values);
        let col_ptr = &sym.csc_colptr;
        let row_idx = &sym.csc_rows;

        let mut l_colptr = Vec::with_capacity(n + 1);
        let mut l_rows: Vec<usize> = Vec::new();
        let mut l_vals: Vec<f64> = Vec::new();
        let mut u_colptr = Vec::with_capacity(n + 1);
        let mut u_rows: Vec<usize> = Vec::new();
        let mut u_vals: Vec<f64> = Vec::new();
        l_colptr.push(0);
        u_colptr.push(0);
        let mut u_diag = vec![0.0; n];
        let mut perm = vec![usize::MAX; n];
        // pinv[row] = pivot index of `row`, or usize::MAX when not pivotal yet.
        let mut pinv = vec![usize::MAX; n];

        let mut x = vec![0.0f64; n]; // dense working column
        let mut visited = vec![usize::MAX; n]; // marks per column j
        let mut topo: Vec<usize> = Vec::with_capacity(n);
        let mut dfs_stack: Vec<(usize, usize)> = Vec::new();
        let mut ucol: Vec<(usize, f64)> = Vec::new();
        let mut worst_ratio = f64::INFINITY;
        let mut worst_col = 0usize;

        for j in 0..n {
            // Scatter A'(:, j) and collect the reachable pattern via DFS.
            topo.clear();
            for p in col_ptr[j]..col_ptr[j + 1] {
                let r = row_idx[p];
                x[r] = values[p];
            }
            for p in col_ptr[j]..col_ptr[j + 1] {
                let start = row_idx[p];
                if visited[start] == j {
                    continue;
                }
                // Iterative DFS producing a post-order.
                dfs_stack.push((start, 0));
                visited[start] = j;
                while let Some(&(node, child)) = dfs_stack.last() {
                    let k = pinv[node];
                    let next = if k != usize::MAX && child < l_colptr[k + 1] - l_colptr[k] {
                        Some(l_rows[l_colptr[k] + child])
                    } else {
                        None
                    };
                    match next {
                        Some(next) => {
                            dfs_stack.last_mut().expect("stack nonempty").1 += 1;
                            if visited[next] != j {
                                visited[next] = j;
                                dfs_stack.push((next, 0));
                            }
                        }
                        None => {
                            topo.push(node);
                            dfs_stack.pop();
                        }
                    }
                }
            }

            // Numeric sparse triangular solve in reverse post-order
            // (dependencies first).
            for &r in topo.iter().rev() {
                let k = pinv[r];
                if k == usize::MAX {
                    continue;
                }
                let xr = x[r];
                if xr != 0.0 {
                    for p in l_colptr[k]..l_colptr[k + 1] {
                        x[l_rows[p]] -= xr * l_vals[p];
                    }
                    flops.fma((l_colptr[k + 1] - l_colptr[k]) as u64);
                }
            }

            // Pivot selection among non-pivotal rows in the pattern.
            let mut max_abs = 0.0f64;
            let mut max_row = usize::MAX;
            let mut diag_abs = -1.0f64;
            for &r in &topo {
                if pinv[r] == usize::MAX {
                    let v = x[r].abs();
                    if !v.is_finite() {
                        return Err(NumericError::SingularMatrix { pivot: j });
                    }
                    if v > max_abs {
                        max_abs = v;
                        max_row = r;
                    }
                    if r == j {
                        diag_abs = v;
                    }
                }
            }
            if max_row == usize::MAX || max_abs == 0.0 {
                return Err(NumericError::SingularMatrix { pivot: j });
            }
            let pivot_row = match strategy {
                PivotStrategy::PartialPivoting => max_row,
                PivotStrategy::ThresholdDiagonal { threshold } => {
                    if diag_abs >= threshold * max_abs {
                        j
                    } else {
                        max_row
                    }
                }
            };
            let pivot_val = x[pivot_row];
            // Health monitor: reciprocal pivot growth of the fresh pivot
            // (observation only — no floating-point behavior changes).
            let ratio = pivot_val.abs() / max_abs;
            if ratio < worst_ratio {
                worst_ratio = ratio;
                worst_col = j;
            }
            perm[j] = pivot_row;
            pinv[pivot_row] = j;
            u_diag[j] = pivot_val;

            // Split the pattern into U (pivotal rows) and L (the rest). The
            // *entire* reached pattern is kept — including exact numerical
            // zeros — so the stored structure is valid for any values with
            // the same input pattern (a refactor requirement).
            ucol.clear();
            for &r in &topo {
                let v = x[r];
                x[r] = 0.0; // clear for next column
                if r == pivot_row {
                    continue;
                }
                let k = pinv[r];
                if k != usize::MAX && k < j {
                    ucol.push((k, v));
                } else if k == usize::MAX {
                    l_rows.push(r);
                    l_vals.push(v / pivot_val);
                    flops.div(1);
                }
            }
            // Sorted U columns make back-substitution cache-friendly,
            // deterministic, and give refactor its topological order.
            ucol.sort_unstable_by_key(|&(k, _)| k);
            for &(k, v) in &ucol {
                u_rows.push(k);
                u_vals.push(v);
            }
            u_colptr.push(u_rows.len());
            l_colptr.push(l_rows.len());
        }

        // The symbolic analysis is kept for refactorization, and the values
        // buffer becomes its scratch space. The supernode plan is built
        // once per numeric pattern (the pivot order is now fixed) and its
        // value panels mirror the fresh factors.
        let mut plan = SupernodePlan::build(
            n,
            &perm,
            &sym.fill_perm,
            &sym.csc_rows,
            &l_colptr,
            &l_rows,
            &u_colptr,
            &u_rows,
            None,
        );
        plan.refresh(&l_vals, &u_vals);
        Ok(SparseLu {
            n,
            l_colptr,
            l_rows,
            l_vals,
            u_colptr,
            u_rows,
            u_vals,
            u_diag,
            perm,
            strategy,
            sym,
            csc_vals: values,
            work: x,
            plan,
            l_vals32: Vec::new(),
            u_vals32: Vec::new(),
            u_diag32: Vec::new(),
            mixed: false,
            worst_ratio,
            worst_col,
        })
    }

    /// Recomputes the numeric factors of `a`, reusing the cached symbolic
    /// analysis (ordering, pattern, pivot order, fill structure). This
    /// skips the ordering, the DFS and the pivot search and is the hot path
    /// for the nearly identical matrices of consecutive Newton iterations /
    /// transient steps.
    ///
    /// # Errors
    /// Returns [`NumericError::PatternChanged`] when `a`'s sparsity pattern
    /// differs from the factored one (detected up front — the factors are
    /// left unchanged) *or* when a cached pivot has become numerically
    /// degraded (magnitude below `1e-6` of its column maximum), and
    /// [`NumericError::SingularMatrix`] for an exactly zero pivot. The
    /// latter two abort **mid-pass**, leaving the numeric factors partially
    /// updated and unusable: the caller must re-factor before solving
    /// again ([`SparseLu::refactor_or_factor`] packages exactly that
    /// fallback).
    pub fn refactor(&mut self, a: &CsrMatrix, flops: &mut FlopCounter) -> Result<()> {
        self.refactor_blocked(a, flops, true).map(|_| ())
    }

    /// Values-only refactorization that **tolerates degraded pivots**:
    /// instead of aborting when a cached pivot decays below the degradation
    /// threshold, the pass completes with the weak pivot and returns the
    /// worst `|pivot| / column-max` ratio seen, so the caller can recover
    /// accuracy with one iterative-refinement step at solve time (see
    /// [`crate::solve::SparseLuSolver`]) instead of paying a full
    /// re-pivoting factorization.
    ///
    /// # Errors
    /// [`NumericError::PatternChanged`] on a pattern mismatch (detected up
    /// front) and [`NumericError::SingularMatrix`] on an exactly zero or
    /// non-finite pivot (aborts mid-pass like [`SparseLu::refactor`]).
    pub fn refactor_tolerant(&mut self, a: &CsrMatrix, flops: &mut FlopCounter) -> Result<f64> {
        self.refactor_blocked(a, flops, false)
    }

    /// The blocked refactorization shared by [`SparseLu::refactor`]
    /// (`strict`, errors on degraded pivots) and
    /// [`SparseLu::refactor_tolerant`]. Runs in pivot index space and
    /// eliminates with supernodal panel kernels; bit-identical to
    /// [`SparseLu::refactor_scalar`].
    fn refactor_blocked(
        &mut self,
        a: &CsrMatrix,
        flops: &mut FlopCounter,
        strict: bool,
    ) -> Result<f64> {
        if !self.plan.enabled {
            return self.refactor_scalar_impl(a, flops, strict);
        }
        if !self.sym.matches(a) {
            return Err(NumericError::PatternChanged {
                context: format!(
                    "refactor of {}x{} ({} nnz) against analysis of {}x{} ({} nnz)",
                    a.rows(),
                    a.cols(),
                    a.nnz(),
                    self.n,
                    self.n,
                    self.sym.nnz()
                ),
            });
        }

        // Shuffle the new values into the cached permuted CSC order.
        for (p, &v) in a.values().iter().enumerate() {
            self.csc_vals[self.sym.csr_to_csc[p]] = v;
        }

        let n = self.n;
        let SparseLu {
            ref mut work,
            ref mut l_vals,
            ref mut u_vals,
            ref mut u_diag,
            ref mut plan,
            ref l_colptr,
            ref u_colptr,
            ref u_rows,
            ref sym,
            ref csc_vals,
            ..
        } = *self;
        let mut worst_ratio = f64::INFINITY;
        let mut worst_col = 0usize;
        // Kernel scratch hoisted out of the hot loop (zeroing a 32-wide
        // stack array per supernode measurably hurts narrow supernodes).
        let mut uk = [0.0f64; MAX_SUPERNODE];
        let mut active = [0usize; MAX_SUPERNODE];
        for j in 0..n {
            // Zero the pivot-space working column over this column's
            // pattern, then scatter A'(:, j).
            for p in u_colptr[j]..u_colptr[j + 1] {
                work[u_rows[p]] = 0.0;
            }
            work[j] = 0.0;
            for p in l_colptr[j]..l_colptr[j + 1] {
                work[plan.l_rows_piv[p] as usize] = 0.0;
            }
            for p in sym.csc_colptr[j]..sym.csc_colptr[j + 1] {
                work[plan.csc_rows_piv[p] as usize] = csc_vals[p];
            }

            // Eliminate with already-final columns in ascending pivot order,
            // grouping consecutive sources that sit in one supernode into a
            // panel update. (The factor pattern is closed under fill, so any
            // source run inside a supernode is contiguous.)
            let (ustart, uend) = (u_colptr[j], u_colptr[j + 1]);
            let mut p = ustart;
            while p < uend {
                let k = u_rows[p];
                let s = plan.sn_of[k];
                let (s0, s1) = (plan.sn_ptr[s], plan.sn_ptr[s + 1]);
                let w = s1 - s0;
                let mut q = p + 1;
                while q < uend && u_rows[q] == u_rows[q - 1] + 1 && u_rows[q] < s1 {
                    q += 1;
                }
                let run = q - p;
                // The panel kernel requires the source supernode's panels
                // to be up to date, which holds exactly when the supernode
                // completed before this target column (`s1 <= j`). Sources
                // inside the target's own supernode were refreshed this
                // very pass and eliminate per-entry against the live
                // `l_vals` instead.
                if run >= 2 && w >= 2 && s1 <= j && plan.l_use[s] {
                    let tri = &plan.l_tri[plan.l_tri_ptr[s]..plan.l_tri_ptr[s + 1]];
                    let rows = &plan.l_sn_rows[plan.l_rows_ptr[s]..plan.l_rows_ptr[s + 1]];
                    let nr = rows.len();
                    let mut na = 0usize;
                    for t in 0..run {
                        let c = k + t - s0;
                        let ukj = work[k + t];
                        u_vals[p + t] = ukj;
                        uk[c] = ukj;
                        if ukj != 0.0 {
                            active[na] = c;
                            na += 1;
                            let base = c * (2 * w - c - 1) / 2;
                            for (r, &tv) in (c + 1..w).zip(&tri[base..base + (w - 1 - c)]) {
                                work[s0 + r] -= ukj * tv;
                            }
                            // True (unpadded) column length — the flop
                            // accounting matches the scalar path exactly.
                            flops.fma((l_colptr[k + t + 1] - l_colptr[k + t]) as u64);
                        }
                    }
                    if na > 0 && nr > 0 {
                        let panel = &plan.l_panel[plan.l_panel_ptr[s]..plan.l_panel_ptr[s + 1]];
                        panel_update(work, rows, panel, w, &uk[..w], &active[..na]);
                    }
                    p = q;
                } else {
                    let ukj = work[k];
                    u_vals[p] = ukj;
                    if ukj != 0.0 {
                        for q2 in l_colptr[k]..l_colptr[k + 1] {
                            work[plan.l_rows_piv[q2] as usize] -= ukj * l_vals[q2];
                        }
                        flops.fma((l_colptr[k + 1] - l_colptr[k]) as u64);
                    }
                    p += 1;
                }
            }

            // Fixed pivot: check it is still numerically sound.
            let pivot_val = work[j];
            let mut col_max = pivot_val.abs();
            for p in l_colptr[j]..l_colptr[j + 1] {
                col_max = col_max.max(work[plan.l_rows_piv[p] as usize].abs());
            }
            if !pivot_val.is_finite() || pivot_val == 0.0 {
                if pivot_val == 0.0 && col_max > 0.0 && strict {
                    // Exactly-zero pivot over a live column: degraded, the
                    // strict path reports it as a pattern-level failure so
                    // `refactor_or_factor` re-pivots.
                    return Err(NumericError::PatternChanged {
                        context: format!(
                            "pivot {j} collapsed to 0 against column max {col_max:.3e}"
                        ),
                    });
                }
                return Err(NumericError::SingularMatrix { pivot: j });
            }
            let ratio = pivot_val.abs() / col_max;
            if strict && ratio < REFACTOR_PIVOT_RATIO {
                return Err(NumericError::PatternChanged {
                    context: format!(
                        "pivot {j} degraded to {:.3e} against column max {:.3e}",
                        pivot_val.abs(),
                        col_max
                    ),
                });
            }
            if ratio < worst_ratio {
                worst_ratio = ratio;
                worst_col = j;
            }
            u_diag[j] = pivot_val;
            for p in l_colptr[j]..l_colptr[j + 1] {
                l_vals[p] = work[plan.l_rows_piv[p] as usize] / pivot_val;
            }
            flops.div((l_colptr[j + 1] - l_colptr[j]) as u64);

            // Panels of a completed supernode refresh immediately so later
            // columns eliminate against the new values.
            let s = plan.sn_of[j];
            if j + 1 == plan.sn_ptr[s + 1] && plan.sn_ptr[s + 1] - plan.sn_ptr[s] >= 2 {
                plan.refresh_supernode(s, l_vals, u_vals);
            }
        }
        self.worst_ratio = worst_ratio;
        self.worst_col = worst_col;
        if self.mixed {
            self.refresh_f32_mirrors();
        }
        Ok(worst_ratio)
    }

    /// The scalar reference refactorization — the pre-supernode per-entry
    /// column loops, kept verbatim (plus a panel refresh so subsequent
    /// blocked solves see the new values) for bit-exactness tests and the
    /// `benches/solve.rs` scalar baseline. Produces bit-identical factors
    /// to [`SparseLu::refactor`]. Factors below the blocked-kernel gate
    /// run through this path by default.
    ///
    /// # Errors
    /// Same as [`SparseLu::refactor`].
    pub fn refactor_scalar(&mut self, a: &CsrMatrix, flops: &mut FlopCounter) -> Result<()> {
        self.refactor_scalar_impl(a, flops, true).map(|_| ())
    }

    /// Shared scalar refactor body (`strict` as in
    /// [`SparseLu::refactor_blocked`]); returns the worst pivot ratio.
    fn refactor_scalar_impl(
        &mut self,
        a: &CsrMatrix,
        flops: &mut FlopCounter,
        strict: bool,
    ) -> Result<f64> {
        if !self.sym.matches(a) {
            return Err(NumericError::PatternChanged {
                context: format!(
                    "refactor of {}x{} ({} nnz) against analysis of {}x{} ({} nnz)",
                    a.rows(),
                    a.cols(),
                    a.nnz(),
                    self.n,
                    self.n,
                    self.sym.nnz()
                ),
            });
        }

        // Shuffle the new values into the cached permuted CSC order.
        for (p, &v) in a.values().iter().enumerate() {
            self.csc_vals[self.sym.csr_to_csc[p]] = v;
        }

        let n = self.n;
        let mut worst_ratio = f64::INFINITY;
        let mut worst_col = 0usize;
        for j in 0..n {
            // Zero the working column over this column's pattern, then
            // scatter A'(:, j). The pattern is exactly: the pivot rows of
            // the U entries, the pivot row itself, and the L rows.
            for p in self.u_colptr[j]..self.u_colptr[j + 1] {
                self.work[self.perm[self.u_rows[p]]] = 0.0;
            }
            self.work[self.perm[j]] = 0.0;
            for p in self.l_colptr[j]..self.l_colptr[j + 1] {
                self.work[self.l_rows[p]] = 0.0;
            }
            for p in self.sym.csc_colptr[j]..self.sym.csc_colptr[j + 1] {
                self.work[self.sym.csc_rows[p]] = self.csc_vals[p];
            }

            // Eliminate with already-final columns in ascending pivot order
            // (a topological order, since L[r, k] with pinv[r] = k' implies
            // k < k').
            for p in self.u_colptr[j]..self.u_colptr[j + 1] {
                let k = self.u_rows[p];
                let ukj = self.work[self.perm[k]];
                self.u_vals[p] = ukj;
                if ukj != 0.0 {
                    for q in self.l_colptr[k]..self.l_colptr[k + 1] {
                        self.work[self.l_rows[q]] -= ukj * self.l_vals[q];
                    }
                    flops.fma((self.l_colptr[k + 1] - self.l_colptr[k]) as u64);
                }
            }

            // Fixed pivot: check it is still numerically sound.
            let pivot_row = self.perm[j];
            let pivot_val = self.work[pivot_row];
            let mut col_max = pivot_val.abs();
            for p in self.l_colptr[j]..self.l_colptr[j + 1] {
                col_max = col_max.max(self.work[self.l_rows[p]].abs());
            }
            if !pivot_val.is_finite() || pivot_val == 0.0 {
                if pivot_val == 0.0 && col_max > 0.0 && strict {
                    return Err(NumericError::PatternChanged {
                        context: format!(
                            "pivot {j} collapsed to 0 against column max {col_max:.3e}"
                        ),
                    });
                }
                return Err(NumericError::SingularMatrix { pivot: j });
            }
            let ratio = pivot_val.abs() / col_max;
            if strict && ratio < REFACTOR_PIVOT_RATIO {
                return Err(NumericError::PatternChanged {
                    context: format!(
                        "pivot {j} degraded to {:.3e} against column max {:.3e}",
                        pivot_val.abs(),
                        col_max
                    ),
                });
            }
            if ratio < worst_ratio {
                worst_ratio = ratio;
                worst_col = j;
            }
            self.u_diag[j] = pivot_val;
            for p in self.l_colptr[j]..self.l_colptr[j + 1] {
                self.l_vals[p] = self.work[self.l_rows[p]] / pivot_val;
            }
            flops.div((self.l_colptr[j + 1] - self.l_colptr[j]) as u64);
        }
        // Keep the blocked kernels' panels coherent with the refreshed
        // factors (the blocked refactor does this incrementally; a gated
        // plan has no panels to maintain).
        if self.plan.enabled {
            self.plan.refresh(&self.l_vals, &self.u_vals);
        }
        self.worst_ratio = worst_ratio;
        self.worst_col = worst_col;
        if self.mixed {
            self.refresh_f32_mirrors();
        }
        Ok(worst_ratio)
    }

    /// Refactors `a` in place, falling back to a full numeric
    /// factorization with fresh pivoting when the pattern changed or a
    /// pivot degraded. A degraded pivot on an unchanged pattern reuses the
    /// cached symbolic analysis (the ordering and permuted structure are
    /// still exact); only a genuine pattern change re-runs the ordering
    /// under the same [`OrderingChoice`]. Returns `true` when the cached
    /// numeric factors were refreshed in place, `false` when a full
    /// factorization ran.
    ///
    /// # Errors
    /// Returns [`NumericError::SingularMatrix`] /
    /// [`NumericError::DimensionMismatch`] when even the full factorization
    /// fails; the factors are then in an unspecified (but valid) state.
    pub fn refactor_or_factor(&mut self, a: &CsrMatrix, flops: &mut FlopCounter) -> Result<bool> {
        match self.refactor(a, flops) {
            Ok(()) => Ok(true),
            Err(NumericError::PatternChanged { .. }) | Err(NumericError::SingularMatrix { .. }) => {
                // The fallback builds a fresh `SparseLu`; re-arm the f32
                // mirror upkeep so mixed-precision callers survive the
                // re-pivoting transparently.
                let mixed = self.mixed;
                *self = if self.sym.matches(a) {
                    SparseLu::factor_symbolic(self.sym.clone(), a, self.strategy, flops)?
                } else {
                    SparseLu::factor_ordered(a, self.sym.choice(), self.strategy, flops)?
                };
                if mixed {
                    self.set_mixed_precision(true);
                }
                Ok(false)
            }
            Err(e) => Err(e),
        }
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Total stored entries in `L` and `U` (fill-in diagnostic).
    pub fn nnz(&self) -> usize {
        self.l_vals.len() + self.u_vals.len() + self.n
    }

    /// Nonzeros of the factored input matrix `A`.
    pub fn nnz_a(&self) -> usize {
        self.sym.nnz()
    }

    /// Fill ratio `nnz(L + U) / nnz(A)` — 1.0 means zero fill-in.
    pub fn fill_ratio(&self) -> f64 {
        self.nnz() as f64 / self.nnz_a().max(1) as f64
    }

    /// Name of the fill ordering actually applied ("natural", "rcm",
    /// "amd").
    pub fn ordering_name(&self) -> &'static str {
        self.sym.ordering_name()
    }

    /// Number of multi-column supernodes (adjacent factor columns with
    /// nesting patterns, stored as dense panels) the blocked kernels
    /// detected in this factorization.
    pub fn supernode_count(&self) -> usize {
        self.plan.supernode_count()
    }

    /// Number of factor columns covered by multi-column supernodes (out of
    /// [`SparseLu::dim`]) — the fraction of the triangular solves running
    /// through the dense panel kernels.
    pub fn supernode_cols(&self) -> usize {
        self.plan.supernode_cols()
    }

    /// Whether the blocked panel kernels are engaged (factors below the
    /// size gate route through the scalar sweeps).
    pub fn blocked_kernels(&self) -> bool {
        self.plan.enabled
    }

    /// Overrides the blocked-kernel size gate, rebuilding the kernel plan
    /// (hidden: lets tests and benches exercise the panel kernels on
    /// factors below the gate, or measure the scalar path above it).
    #[doc(hidden)]
    pub fn set_blocked_kernels(&mut self, on: bool) {
        let mut plan = SupernodePlan::build(
            self.n,
            &self.perm,
            &self.sym.fill_perm,
            &self.sym.csc_rows,
            &self.l_colptr,
            &self.l_rows,
            &self.u_colptr,
            &self.u_rows,
            Some(on),
        );
        plan.refresh(&self.l_vals, &self.u_vals);
        self.plan = plan;
        if self.mixed {
            self.refresh_f32_mirrors();
        }
    }

    /// Turns maintenance of the single-precision factor mirrors on or off.
    /// While on, every numeric pass (factor/refactor, blocked or scalar)
    /// re-casts `L`/`U` to `f32` — including the `SupernodePlan` panel
    /// mirrors — so [`SparseLu::solve_into_f32`] always sees current
    /// values. Turning it on refreshes immediately from the live factors;
    /// turning it off stops the upkeep (the mirrors keep their last
    /// contents but are no longer trusted).
    pub fn set_mixed_precision(&mut self, on: bool) {
        self.mixed = on;
        if on {
            self.refresh_f32_mirrors();
        }
    }

    /// Whether the single-precision factor mirrors are maintained.
    pub fn mixed_precision(&self) -> bool {
        self.mixed
    }

    /// Re-casts the f64 factors into the f32 mirrors (and the plan's f32
    /// panels when the blocked kernels are engaged).
    fn refresh_f32_mirrors(&mut self) {
        self.l_vals32.clear();
        self.l_vals32.extend(self.l_vals.iter().map(|&v| v as f32));
        self.u_vals32.clear();
        self.u_vals32.extend(self.u_vals.iter().map(|&v| v as f32));
        self.u_diag32.clear();
        self.u_diag32.extend(self.u_diag.iter().map(|&v| v as f32));
        if self.plan.enabled {
            self.plan.refresh_f32(&self.l_vals32, &self.u_vals32);
        }
    }

    /// The cached symbolic analysis.
    pub fn symbolic(&self) -> &SymbolicAnalysis {
        &self.sym
    }

    /// Smallest `|pivot| / column-max` ratio of the most recent numeric
    /// pass — the reciprocal pivot-growth health monitor. `1.0` means
    /// every pivot dominated its column; values below the `1e-6`
    /// degradation threshold indicate decayed pivots, and below
    /// [`PIVOT_COLLAPSE_RATIO`] the factors carry no trustworthy digits.
    pub fn min_recip_pivot(&self) -> f64 {
        self.worst_ratio
    }

    /// Pivot column at which [`SparseLu::min_recip_pivot`] occurred.
    pub fn worst_pivot_col(&self) -> usize {
        self.worst_col
    }

    /// Solves `A·x = b` with the stored factors.
    ///
    /// # Errors
    /// Returns [`NumericError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64], flops: &mut FlopCounter) -> Result<Vec<f64>> {
        let mut x = vec![0.0; self.n];
        let mut work = vec![0.0; self.n];
        self.solve_into(b, &mut x, &mut work, flops)?;
        Ok(x)
    }

    /// Allocation-free solve `A·x = b` into caller-provided buffers. `x`
    /// receives the solution *in original numbering* — the fill permutation
    /// is applied to `b` on the way in and inverted on the way out, so
    /// callers are ordering-agnostic. `work` is scratch. Both are resized
    /// to the matrix dimension, so reusing the same buffers across calls
    /// performs no allocation after the first.
    ///
    /// This is the **blocked fast path**: the triangular solves run in
    /// pivot index space over the supernodal panel kernels (internal
    /// `kernels` module), bit-identical to the scalar reference
    /// [`SparseLu::solve_into_scalar`] (locked by `tests/solve_kernels.rs`).
    ///
    /// # Errors
    /// Returns [`NumericError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve_into(
        &self,
        b: &[f64],
        x: &mut Vec<f64>,
        work: &mut Vec<f64>,
        flops: &mut FlopCounter,
    ) -> Result<()> {
        if !self.plan.enabled {
            // Small factors (below the blocked-kernel gate) keep the exact
            // pre-blocking scalar hot path.
            return self.solve_into_scalar(b, x, work, flops);
        }
        if b.len() != self.n {
            return Err(NumericError::DimensionMismatch {
                context: format!("sparse lu solve: rhs of {} for n={}", b.len(), self.n),
            });
        }
        let n = self.n;
        x.resize(n, 0.0);
        work.resize(n, 0.0);
        let z = &mut work[..n];
        let plan = &self.plan;
        // One combined gather replaces the scalar path's fill-permutation
        // load plus per-column pivot-permutation indirection.
        for (k, zk) in z.iter_mut().enumerate() {
            *zk = b[plan.in_perm[k]];
        }
        let ns = plan.sn_ptr.len() - 1;
        let mut xs = [0.0f64; MAX_SUPERNODE];
        let mut active = [0usize; MAX_SUPERNODE];
        // Forward solve L·z = b' (unit lower triangular, pivot space):
        // push-form supernode panels — each shared row takes one gather,
        // a contiguous dot-chain over the supernode's columns, and one
        // scatter, with per-row chains independent across rows so the
        // floating-point latency overlaps.
        for s in 0..ns {
            let (k0, k1) = (plan.sn_ptr[s], plan.sn_ptr[s + 1]);
            let w = k1 - k0;
            if w == 1 || !plan.l_use[s] {
                // Width-1 or panel-gated supernode: per-entry scalar
                // columns in pivot space (identical update chains).
                for k in k0..k1 {
                    let val = z[k];
                    if val != 0.0 {
                        for p in self.l_colptr[k]..self.l_colptr[k + 1] {
                            z[plan.l_rows_piv[p] as usize] -= val * self.l_vals[p];
                        }
                        flops.fma((self.l_colptr[k + 1] - self.l_colptr[k]) as u64);
                    }
                }
                continue;
            }
            let tri = &plan.l_tri[plan.l_tri_ptr[s]..plan.l_tri_ptr[s + 1]];
            let rows = &plan.l_sn_rows[plan.l_rows_ptr[s]..plan.l_rows_ptr[s + 1]];
            let nr = rows.len();
            let mut na = 0usize;
            for c in 0..w {
                let val = z[k0 + c];
                xs[c] = val;
                if val != 0.0 {
                    active[na] = c;
                    na += 1;
                    let base = c * (2 * w - c - 1) / 2;
                    for (r, &tv) in (c + 1..w).zip(&tri[base..base + (w - 1 - c)]) {
                        z[k0 + r] -= val * tv;
                    }
                    // True (unpadded) column length — matches the scalar
                    // path's accounting exactly.
                    flops.fma((self.l_colptr[k0 + c + 1] - self.l_colptr[k0 + c]) as u64);
                }
            }
            if na > 0 && nr > 0 {
                let panel = &plan.l_panel[plan.l_panel_ptr[s]..plan.l_panel_ptr[s + 1]];
                panel_update(z, rows, panel, w, &xs[..w], &active[..na]);
            }
        }
        // Backward solve U·y = z: push-form supernode panels, columns
        // descending, per-row chains in descending column order.
        for s in (0..ns).rev() {
            let (k0, k1) = (plan.sn_ptr[s], plan.sn_ptr[s + 1]);
            let w = k1 - k0;
            if w == 1 || !plan.u_use[s] {
                for k in (k0..k1).rev() {
                    z[k] /= self.u_diag[k];
                    let xk = z[k];
                    if xk != 0.0 {
                        for p in self.u_colptr[k]..self.u_colptr[k + 1] {
                            z[plan.u_rows32[p] as usize] -= self.u_vals[p] * xk;
                        }
                    }
                }
                continue;
            }
            let tri = &plan.u_tri[plan.u_tri_ptr[s]..plan.u_tri_ptr[s + 1]];
            let rows = &plan.u_sn_rows[plan.u_rows_ptr[s]..plan.u_rows_ptr[s + 1]];
            let nr = rows.len();
            let mut na = 0usize;
            for c in (0..w).rev() {
                z[k0 + c] /= self.u_diag[k0 + c];
                let val = z[k0 + c];
                xs[c] = val;
                if val != 0.0 {
                    // Appended in descending column order: the panel chain
                    // then matches the scalar backward sweep per row.
                    active[na] = c;
                    na += 1;
                    let base = (c * c - c) / 2;
                    for r in 0..c {
                        z[k0 + r] -= tri[base + r] * val;
                    }
                }
            }
            if na > 0 && nr > 0 {
                let panel = &plan.u_panel[plan.u_panel_ptr[s]..plan.u_panel_ptr[s + 1]];
                panel_update(z, rows, panel, w, &xs[..w], &active[..na]);
            }
        }
        // Flop accounting mirrors the scalar sweep exactly: one division
        // per column, plus each column's true length when its (final)
        // multiplier is nonzero — read off the finished solution.
        flops.div(n as u64);
        for (k, &zk) in z.iter().enumerate() {
            if zk != 0.0 {
                flops.fma((self.u_colptr[k + 1] - self.u_colptr[k]) as u64);
            }
        }
        // Undo the fill permutation: x_out[fill_perm[k]] = y[k].
        for (k, &zk) in z.iter().enumerate() {
            x[self.sym.fill_perm[k]] = zk;
        }
        Ok(())
    }

    /// Single-precision triangular solve `A·x ≈ b` over the f32 factor
    /// mirrors — the fast half of the mixed-precision ladder. The sweeps
    /// run in pivot index space: through the plan's `f32` panels
    /// (`panel_update_f32`, `[f32; 8]` lane chunks) when
    /// the blocked kernels are engaged, and per-entry `f32` column loops
    /// otherwise (the pivot-space index maps exist below the blocked gate
    /// too). The RHS is demoted on gather and the result promoted on
    /// scatter, so callers stay in f64; accuracy is restored by the
    /// caller's f64 iterative refinement
    /// ([`crate::solve::SparseLuSolver`]), not here. Flop accounting
    /// mirrors [`SparseLu::solve_into`] — an f32 fma counts one flop like
    /// an f64 fma; the win is bandwidth and lane width, not fewer
    /// operations.
    ///
    /// Requires [`SparseLu::set_mixed_precision`]`(true)` beforehand so
    /// the mirrors are current.
    ///
    /// # Errors
    /// Returns [`NumericError::DimensionMismatch`] if
    /// `b.len() != self.dim()` or the f32 mirrors are not maintained.
    pub fn solve_into_f32(
        &self,
        b: &[f64],
        x: &mut Vec<f64>,
        work: &mut Vec<f32>,
        flops: &mut FlopCounter,
    ) -> Result<()> {
        if b.len() != self.n {
            return Err(NumericError::DimensionMismatch {
                context: format!("sparse lu f32 solve: rhs of {} for n={}", b.len(), self.n),
            });
        }
        if !self.mixed || self.l_vals32.len() != self.l_vals.len() {
            return Err(NumericError::DimensionMismatch {
                context: "sparse lu f32 solve without mixed-precision mirrors".to_string(),
            });
        }
        let n = self.n;
        x.resize(n, 0.0);
        work.resize(n, 0.0);
        let z = &mut work[..n];
        let plan = &self.plan;
        for (k, zk) in z.iter_mut().enumerate() {
            *zk = b[plan.in_perm[k]] as f32;
        }
        let ns = plan.sn_ptr.len() - 1;
        let mut xs = [0.0f32; MAX_SUPERNODE];
        let mut active = [0usize; MAX_SUPERNODE];
        // Forward solve L·z = b' in pivot space over the f32 mirrors.
        for s in 0..ns {
            let (k0, k1) = (plan.sn_ptr[s], plan.sn_ptr[s + 1]);
            let w = k1 - k0;
            if w == 1 || !plan.enabled || !plan.l_use[s] {
                for k in k0..k1 {
                    let val = z[k];
                    if val != 0.0 {
                        for p in self.l_colptr[k]..self.l_colptr[k + 1] {
                            z[plan.l_rows_piv[p] as usize] -= val * self.l_vals32[p];
                        }
                        flops.fma((self.l_colptr[k + 1] - self.l_colptr[k]) as u64);
                    }
                }
                continue;
            }
            let tri = &plan.l_tri32[plan.l_tri_ptr[s]..plan.l_tri_ptr[s + 1]];
            let rows = &plan.l_sn_rows[plan.l_rows_ptr[s]..plan.l_rows_ptr[s + 1]];
            let nr = rows.len();
            let mut na = 0usize;
            for c in 0..w {
                let val = z[k0 + c];
                xs[c] = val;
                if val != 0.0 {
                    active[na] = c;
                    na += 1;
                    let base = c * (2 * w - c - 1) / 2;
                    for (r, &tv) in (c + 1..w).zip(&tri[base..base + (w - 1 - c)]) {
                        z[k0 + r] -= val * tv;
                    }
                    flops.fma((self.l_colptr[k0 + c + 1] - self.l_colptr[k0 + c]) as u64);
                }
            }
            if na > 0 && nr > 0 {
                let panel = &plan.l_panel32[plan.l_panel_ptr[s]..plan.l_panel_ptr[s + 1]];
                panel_update_f32(z, rows, panel, w, &xs[..w], &active[..na]);
            }
        }
        // Backward solve U·y = z, columns descending.
        for s in (0..ns).rev() {
            let (k0, k1) = (plan.sn_ptr[s], plan.sn_ptr[s + 1]);
            let w = k1 - k0;
            if w == 1 || !plan.enabled || !plan.u_use[s] {
                for k in (k0..k1).rev() {
                    z[k] /= self.u_diag32[k];
                    let xk = z[k];
                    if xk != 0.0 {
                        for p in self.u_colptr[k]..self.u_colptr[k + 1] {
                            z[self.u_rows[p]] -= self.u_vals32[p] * xk;
                        }
                    }
                }
                continue;
            }
            let tri = &plan.u_tri32[plan.u_tri_ptr[s]..plan.u_tri_ptr[s + 1]];
            let rows = &plan.u_sn_rows[plan.u_rows_ptr[s]..plan.u_rows_ptr[s + 1]];
            let nr = rows.len();
            let mut na = 0usize;
            for c in (0..w).rev() {
                z[k0 + c] /= self.u_diag32[k0 + c];
                let val = z[k0 + c];
                xs[c] = val;
                if val != 0.0 {
                    active[na] = c;
                    na += 1;
                    let base = (c * c - c) / 2;
                    for r in 0..c {
                        z[k0 + r] -= tri[base + r] * val;
                    }
                }
            }
            if na > 0 && nr > 0 {
                let panel = &plan.u_panel32[plan.u_panel_ptr[s]..plan.u_panel_ptr[s + 1]];
                panel_update_f32(z, rows, panel, w, &xs[..w], &active[..na]);
            }
        }
        // Flop accounting read off the finished solution, as in the f64
        // blocked solve.
        flops.div(n as u64);
        for (k, &zk) in z.iter().enumerate() {
            if zk != 0.0 {
                flops.fma((self.u_colptr[k + 1] - self.u_colptr[k]) as u64);
            }
        }
        for (k, &zk) in z.iter().enumerate() {
            x[self.sym.fill_perm[k]] = zk as f64;
        }
        Ok(())
    }

    /// Flat factor values `(l_vals, u_vals, u_diag)` (hidden: lets the
    /// batched-LU bit-identity tests compare stored factor bits without
    /// widening the public surface).
    #[doc(hidden)]
    pub fn factor_values(&self) -> (&[f64], &[f64], &[f64]) {
        (&self.l_vals, &self.u_vals, &self.u_diag)
    }

    /// Batched multi-RHS solve `A·X = B` over `nrhs` right-hand sides,
    /// column-major (`b[j*n..][..n]` is column `j`, and the solution lands
    /// in `x[j*n..][..n]`). One factor traversal serves every column: the
    /// kernels walk the supernodal structure once and update all `nrhs`
    /// lanes per entry, which is what makes batching beat `nrhs`
    /// independent [`SparseLu::solve_into`] calls from `nrhs >= 4` or so
    /// (see `benches/solve.rs`). Results are **bit-identical** to `nrhs`
    /// independent solves; per-lane flop accounting matches too.
    ///
    /// # Errors
    /// Returns [`NumericError::DimensionMismatch`] if
    /// `b.len() != nrhs * self.dim()` or `nrhs == 0`.
    pub fn solve_many_into(
        &self,
        b: &[f64],
        nrhs: usize,
        x: &mut Vec<f64>,
        work: &mut Vec<f64>,
        flops: &mut FlopCounter,
    ) -> Result<()> {
        let n = self.n;
        if nrhs == 0 || b.len() != n * nrhs {
            return Err(NumericError::DimensionMismatch {
                context: format!(
                    "sparse lu multi-solve: rhs block of {} for n={} x k={}",
                    b.len(),
                    n,
                    nrhs
                ),
            });
        }
        x.resize(n * nrhs, 0.0);
        // One buffer carries the interleaved lanes plus the supernode
        // scratch, so a reused `work` keeps the solve allocation-free.
        work.resize((n + MAX_SUPERNODE) * nrhs, 0.0);
        let (z, xs_buf) = work.split_at_mut(n * nrhs);
        let plan = &self.plan;
        // Interleaved layout: lanes of one pivot slot are contiguous.
        for k in 0..n {
            let src = plan.in_perm[k];
            for r in 0..nrhs {
                z[k * nrhs + r] = b[r * n + src];
            }
        }
        let ns = plan.sn_ptr.len() - 1;
        let mut active = [0usize; MAX_SUPERNODE];
        // Forward.
        for s in 0..ns {
            let (k0, k1) = (plan.sn_ptr[s], plan.sn_ptr[s + 1]);
            let w = k1 - k0;
            if w == 1 || !plan.l_use[s] {
                for k in k0..k1 {
                    let (head, tail) = z.split_at_mut((k + 1) * nrhs);
                    let vals = &head[k * nrhs..];
                    let nz = nonzero_lanes(vals);
                    if nz > 0 {
                        for p in self.l_colptr[k]..self.l_colptr[k + 1] {
                            let row = plan.l_rows_piv[p] as usize;
                            let lv = self.l_vals[p];
                            let dst = &mut tail[(row - k - 1) * nrhs..(row - k) * nrhs];
                            for (d, &v) in dst.iter_mut().zip(vals) {
                                *d -= v * lv;
                            }
                        }
                        count_col_fma(flops, self.l_colptr[k + 1] - self.l_colptr[k], nz);
                    }
                }
                continue;
            }
            let tri = &plan.l_tri[plan.l_tri_ptr[s]..plan.l_tri_ptr[s + 1]];
            let rows = &plan.l_sn_rows[plan.l_rows_ptr[s]..plan.l_rows_ptr[s + 1]];
            let nr = rows.len();
            let mut na = 0usize;
            for c in 0..w {
                xs_buf[c * nrhs..(c + 1) * nrhs]
                    .copy_from_slice(&z[(k0 + c) * nrhs..(k0 + c + 1) * nrhs]);
                let vals = &xs_buf[c * nrhs..(c + 1) * nrhs];
                let nz = nonzero_lanes(vals);
                if nz > 0 {
                    active[na] = c;
                    na += 1;
                    let base = c * (2 * w - c - 1) / 2;
                    for (r, &tv) in (c + 1..w).zip(&tri[base..base + (w - 1 - c)]) {
                        let dst = &mut z[(k0 + r) * nrhs..(k0 + r + 1) * nrhs];
                        for (d, &v) in dst.iter_mut().zip(vals.iter()) {
                            *d -= v * tv;
                        }
                    }
                    count_col_fma(flops, self.l_colptr[k0 + c + 1] - self.l_colptr[k0 + c], nz);
                }
            }
            if na > 0 && nr > 0 {
                let panel = &plan.l_panel[plan.l_panel_ptr[s]..plan.l_panel_ptr[s + 1]];
                panel_update_multi(z, rows, panel, w, &xs_buf[..w * nrhs], &active[..na], nrhs);
            }
        }
        // Backward.
        for s in (0..ns).rev() {
            let (k0, k1) = (plan.sn_ptr[s], plan.sn_ptr[s + 1]);
            let w = k1 - k0;
            if w == 1 || !plan.u_use[s] {
                for k in (k0..k1).rev() {
                    let d = self.u_diag[k];
                    for v in z[k * nrhs..(k + 1) * nrhs].iter_mut() {
                        *v /= d;
                    }
                    flops.div(nrhs as u64);
                    let (head, tail) = z.split_at_mut(k * nrhs);
                    let vals = &tail[..nrhs];
                    let nz = nonzero_lanes(vals);
                    if nz > 0 {
                        for p in self.u_colptr[k]..self.u_colptr[k + 1] {
                            let row = plan.u_rows32[p] as usize;
                            let uv = self.u_vals[p];
                            let dst = &mut head[row * nrhs..(row + 1) * nrhs];
                            for (d, &v) in dst.iter_mut().zip(vals) {
                                *d -= uv * v;
                            }
                        }
                        count_col_fma(flops, self.u_colptr[k + 1] - self.u_colptr[k], nz);
                    }
                }
                continue;
            }
            let tri = &plan.u_tri[plan.u_tri_ptr[s]..plan.u_tri_ptr[s + 1]];
            let rows = &plan.u_sn_rows[plan.u_rows_ptr[s]..plan.u_rows_ptr[s + 1]];
            let nr = rows.len();
            let mut na = 0usize;
            for c in (0..w).rev() {
                let d = self.u_diag[k0 + c];
                for v in z[(k0 + c) * nrhs..(k0 + c + 1) * nrhs].iter_mut() {
                    *v /= d;
                }
                flops.div(nrhs as u64);
                xs_buf[c * nrhs..(c + 1) * nrhs]
                    .copy_from_slice(&z[(k0 + c) * nrhs..(k0 + c + 1) * nrhs]);
                let vals = &xs_buf[c * nrhs..(c + 1) * nrhs];
                let nz = nonzero_lanes(vals);
                if nz > 0 {
                    active[na] = c;
                    na += 1;
                    let base = (c * c - c) / 2;
                    for r in 0..c {
                        let tv = tri[base + r];
                        let dst = &mut z[(k0 + r) * nrhs..(k0 + r + 1) * nrhs];
                        for (d, &v) in dst.iter_mut().zip(vals.iter()) {
                            *d -= tv * v;
                        }
                    }
                    count_col_fma(flops, self.u_colptr[k0 + c + 1] - self.u_colptr[k0 + c], nz);
                }
            }
            if na > 0 && nr > 0 {
                let panel = &plan.u_panel[plan.u_panel_ptr[s]..plan.u_panel_ptr[s + 1]];
                panel_update_multi(z, rows, panel, w, &xs_buf[..w * nrhs], &active[..na], nrhs);
            }
        }
        // Scatter out, undoing the fill permutation per lane.
        for k in 0..n {
            let dst = self.sym.fill_perm[k];
            for r in 0..nrhs {
                x[r * n + dst] = z[k * nrhs + r];
            }
        }
        Ok(())
    }

    /// Convenience wrapper over [`SparseLu::solve_many_into`] allocating
    /// the `n × nrhs` solution block.
    ///
    /// # Errors
    /// Same as [`SparseLu::solve_many_into`].
    pub fn solve_many(&self, b: &[f64], nrhs: usize, flops: &mut FlopCounter) -> Result<Vec<f64>> {
        let mut x = Vec::new();
        let mut work = Vec::new();
        self.solve_many_into(b, nrhs, &mut x, &mut work, flops)?;
        Ok(x)
    }

    /// The scalar reference solve — the pre-supernode permuted-row-space
    /// column loops, kept verbatim for bit-exactness tests and the
    /// `benches/solve.rs` scalar baseline. Produces bit-identical results
    /// (and flop counts) to the blocked [`SparseLu::solve_into`].
    ///
    /// # Errors
    /// Returns [`NumericError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve_into_scalar(
        &self,
        b: &[f64],
        x: &mut Vec<f64>,
        work: &mut Vec<f64>,
        flops: &mut FlopCounter,
    ) -> Result<()> {
        if b.len() != self.n {
            return Err(NumericError::DimensionMismatch {
                context: format!("sparse lu solve: rhs of {} for n={}", b.len(), self.n),
            });
        }
        let n = self.n;
        x.resize(n, 0.0);
        work.resize(n, 0.0);
        // Forward solve L·z = P·b', working in permuted row numbering
        // (b'[i] = b[q[i]]; the identity fast path keeps the natural-order
        // pipeline bit-exact).
        if self.sym.identity {
            work.copy_from_slice(b);
        } else {
            for (i, w) in work.iter_mut().enumerate() {
                *w = b[self.sym.fill_perm[i]];
            }
        }
        for k in 0..n {
            let val = work[self.perm[k]];
            x[k] = val;
            if val != 0.0 {
                for p in self.l_colptr[k]..self.l_colptr[k + 1] {
                    work[self.l_rows[p]] -= val * self.l_vals[p];
                }
                flops.fma((self.l_colptr[k + 1] - self.l_colptr[k]) as u64);
            }
        }
        // Backward solve U·y = z; the solution index equals the permuted
        // column index.
        for k in (0..n).rev() {
            x[k] /= self.u_diag[k];
            flops.div(1);
            let xk = x[k];
            if xk != 0.0 {
                for p in self.u_colptr[k]..self.u_colptr[k + 1] {
                    x[self.u_rows[p]] -= self.u_vals[p] * xk;
                }
                flops.fma((self.u_colptr[k + 1] - self.u_colptr[k]) as u64);
            }
        }
        // Undo the fill permutation: x_out[q[k]] = y[k].
        if !self.sym.identity {
            work[..n].copy_from_slice(&x[..n]);
            for (k, &w) in work.iter().enumerate() {
                x[self.sym.fill_perm[k]] = w;
            }
        }
        Ok(())
    }

    /// Determinant of the original matrix (product of pivots times the
    /// pivot-permutation parity; the symmetric fill permutation has even
    /// combined parity and never changes the sign).
    pub fn determinant(&self) -> f64 {
        let mut det: f64 = self.u_diag.iter().product();
        // Parity of the permutation perm.
        let mut seen = vec![false; self.n];
        for start in 0..self.n {
            if seen[start] {
                continue;
            }
            let mut len = 0usize;
            let mut cur = start;
            while !seen[cur] {
                seen[cur] = true;
                cur = self.perm[cur];
                len += 1;
            }
            if len % 2 == 0 {
                det = -det;
            }
        }
        det
    }

    /// The pivot permutation (`perm[k]` = permuted row chosen as the k-th
    /// pivot). Exposed for tests.
    #[cfg(test)]
    pub(crate) fn pivot_perm(&self) -> &[usize] {
        &self.perm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::sparse::TripletMatrix;

    fn solve_via_sparse(entries: &[(usize, usize, f64)], n: usize, b: &[f64]) -> Vec<f64> {
        let a = CsrMatrix::from_triplets(n, n, entries);
        let lu = SparseLu::factor(&a, &mut FlopCounter::new()).unwrap();
        lu.solve(b, &mut FlopCounter::new()).unwrap()
    }

    #[test]
    fn diagonal_system() {
        let x = solve_via_sparse(
            &[(0, 0, 2.0), (1, 1, 4.0), (2, 2, 8.0)],
            3,
            &[2.0, 4.0, 8.0],
        );
        assert_eq!(x, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn dense_agreement_on_fixed_matrix() {
        let entries = [
            (0, 0, 4.0),
            (0, 1, -1.0),
            (0, 2, 0.5),
            (1, 0, -1.0),
            (1, 1, 3.0),
            (1, 2, -1.0),
            (2, 0, 0.5),
            (2, 1, -1.0),
            (2, 2, 5.0),
        ];
        let b = [1.0, -2.0, 3.0];
        let xs = solve_via_sparse(&entries, 3, &b);
        let dense = TripletMatrix::new(3, 3);
        let mut t = dense;
        t.extend(entries.iter().cloned());
        let xd = t.to_dense().solve(&b, &mut FlopCounter::new()).unwrap();
        for (a, b) in xs.iter().zip(xd.iter()) {
            assert!(approx_eq(*a, *b, 1e-12), "{a} vs {b}");
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // a11 = 0 forces off-diagonal pivot.
        let entries = [(0, 1, 1.0), (1, 0, 1.0)];
        let x = solve_via_sparse(&entries, 2, &[5.0, 9.0]);
        assert!(approx_eq(x[0], 9.0, 1e-15));
        assert!(approx_eq(x[1], 5.0, 1e-15));
    }

    #[test]
    fn singular_matrix_detected() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 1.0)]);
        match SparseLu::factor(&a, &mut FlopCounter::new()) {
            Err(NumericError::SingularMatrix { .. }) => {}
            other => panic!("expected singular, got {other:?}"),
        }
    }

    #[test]
    fn structurally_empty_column_is_singular() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 0.0)]);
        assert!(SparseLu::factor(&a, &mut FlopCounter::new()).is_err());
    }

    #[test]
    fn non_square_rejected() {
        let a = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]);
        assert!(SparseLu::factor(&a, &mut FlopCounter::new()).is_err());
    }

    #[test]
    fn rhs_length_checked() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        let lu = SparseLu::factor(&a, &mut FlopCounter::new()).unwrap();
        assert!(lu.solve(&[1.0], &mut FlopCounter::new()).is_err());
    }

    #[test]
    fn determinant_matches_dense() {
        let entries = [(0, 0, 2.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0)];
        let a = CsrMatrix::from_triplets(2, 2, &entries);
        let lu = SparseLu::factor(&a, &mut FlopCounter::new()).unwrap();
        assert!(approx_eq(lu.determinant(), 5.0, 1e-12));
    }

    #[test]
    fn determinant_sign_with_permutation() {
        let entries = [(0, 1, 1.0), (1, 0, 1.0)];
        let a = CsrMatrix::from_triplets(2, 2, &entries);
        let lu = SparseLu::factor_with(&a, PivotStrategy::PartialPivoting, &mut FlopCounter::new())
            .unwrap();
        assert!(approx_eq(lu.determinant(), -1.0, 1e-12));
    }

    #[test]
    fn partial_pivoting_strategy_picks_max() {
        // Column 0 has entries 1.0 (row 0) and -10.0 (row 1): PP must pick row 1.
        let entries = [(0, 0, 1.0), (1, 0, -10.0), (0, 1, 1.0), (1, 1, 1.0)];
        let a = CsrMatrix::from_triplets(2, 2, &entries);
        let lu = SparseLu::factor_with(&a, PivotStrategy::PartialPivoting, &mut FlopCounter::new())
            .unwrap();
        assert_eq!(lu.pivot_perm()[0], 1);
    }

    #[test]
    fn threshold_diagonal_prefers_diagonal() {
        let entries = [(0, 0, 1.0), (1, 0, -5.0), (0, 1, 1.0), (1, 1, 1.0)];
        let a = CsrMatrix::from_triplets(2, 2, &entries);
        let lu = SparseLu::factor_with(
            &a,
            PivotStrategy::ThresholdDiagonal { threshold: 0.1 },
            &mut FlopCounter::new(),
        )
        .unwrap();
        assert_eq!(lu.pivot_perm()[0], 0);
        // And the solve is still correct.
        let x = lu.solve(&[2.0, -4.0], &mut FlopCounter::new()).unwrap();
        // A = [[1, 1], [-5, 1]]; b = [2, -4] -> x = [1, 1]
        assert!(approx_eq(x[0], 1.0, 1e-12));
        assert!(approx_eq(x[1], 1.0, 1e-12));
    }

    #[test]
    fn tridiagonal_large_system() {
        // -u'' discretization: tridiagonal [-1, 2, -1], solution recoverable.
        let n = 50;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i > 0 {
                t.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
            }
        }
        let a = t.to_csr();
        let lu = SparseLu::factor(&a, &mut FlopCounter::new()).unwrap();
        let b = vec![1.0; n];
        let x = lu.solve(&b, &mut FlopCounter::new()).unwrap();
        // Verify A·x = b.
        let ax = a.matvec(&x, &mut FlopCounter::new()).unwrap();
        for (l, r) in ax.iter().zip(b.iter()) {
            assert!(approx_eq(*l, *r, 1e-9), "{l} vs {r}");
        }
        // Fill-in for a tridiagonal matrix with diagonal pivoting is zero.
        assert_eq!(lu.nnz(), a.nnz());
        assert!(approx_eq(lu.fill_ratio(), 1.0, 1e-15));
    }

    #[test]
    fn flops_counted_during_factor_and_solve() {
        let entries = [(0, 0, 4.0), (0, 1, -1.0), (1, 0, -1.0), (1, 1, 3.0)];
        let a = CsrMatrix::from_triplets(2, 2, &entries);
        let mut f = FlopCounter::new();
        let lu = SparseLu::factor(&a, &mut f).unwrap();
        assert!(f.total() > 0);
        let before = f;
        lu.solve(&[1.0, 1.0], &mut f).unwrap();
        assert!(f.total() > before.total());
    }

    #[test]
    fn refactor_matches_fresh_factor() {
        // Same pattern, different values: refactor must reproduce a fresh
        // factorization's solution exactly (identical pivot order => the
        // same floating-point operations).
        let n = 30;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 3.0 + i as f64 * 0.1);
            if i > 0 {
                t.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                t.push(i, i + 1, -0.5);
            }
            if i + 5 < n {
                t.push(i, i + 5, 0.25);
            }
        }
        let a1 = t.to_csr();
        let mut lu = SparseLu::factor(&a1, &mut FlopCounter::new()).unwrap();

        // Perturb every value, keeping the pattern.
        let mut a2 = a1.clone();
        for (i, v) in a2.values_mut().iter_mut().enumerate() {
            *v += 0.01 * (i as f64 % 7.0 - 3.0);
        }
        lu.refactor(&a2, &mut FlopCounter::new()).unwrap();
        let fresh = SparseLu::factor(&a2, &mut FlopCounter::new()).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let xr = lu.solve(&b, &mut FlopCounter::new()).unwrap();
        let xf = fresh.solve(&b, &mut FlopCounter::new()).unwrap();
        for (r, f) in xr.iter().zip(xf.iter()) {
            assert!(approx_eq(*r, *f, 1e-12), "{r} vs {f}");
        }
    }

    #[test]
    fn refactor_detects_new_nonzero() {
        let a1 = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (1, 1, 4.0)]);
        let mut lu = SparseLu::factor(&a1, &mut FlopCounter::new()).unwrap();
        // A new structural nonzero must be rejected, not silently dropped.
        let a2 = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (0, 1, 1.0), (1, 1, 4.0)]);
        match lu.refactor(&a2, &mut FlopCounter::new()) {
            Err(NumericError::PatternChanged { .. }) => {}
            other => panic!("expected PatternChanged, got {other:?}"),
        }
        // The original factors survive the failed refactor.
        let x = lu.solve(&[2.0, 8.0], &mut FlopCounter::new()).unwrap();
        assert_eq!(x, vec![1.0, 2.0]);
        // The fallback wrapper recovers by re-factoring.
        let reused = lu.refactor_or_factor(&a2, &mut FlopCounter::new()).unwrap();
        assert!(!reused);
        let x = lu.solve(&[2.0, 4.0], &mut FlopCounter::new()).unwrap();
        assert!(approx_eq(x[0], 0.5, 1e-15), "{}", x[0]);
        assert!(approx_eq(x[1], 1.0, 1e-15), "{}", x[1]);
    }

    #[test]
    fn refactor_detects_degraded_pivot() {
        // Factor with a healthy diagonal, then refactor with the diagonal
        // collapsed so the cached pivot is 1e-9 of the column max: the
        // refactor must refuse rather than amplify rounding error.
        let entries = [(0, 0, 5.0), (1, 0, 1.0), (0, 1, 1.0), (1, 1, 5.0)];
        let a1 = CsrMatrix::from_triplets(2, 2, &entries);
        let mut lu = SparseLu::factor(&a1, &mut FlopCounter::new()).unwrap();
        let degraded = [(0, 0, 1e-9), (1, 0, 1.0), (0, 1, 1.0), (1, 1, 5.0)];
        let a2 = CsrMatrix::from_triplets(2, 2, &degraded);
        match lu.refactor(&a2, &mut FlopCounter::new()) {
            Err(NumericError::PatternChanged { .. }) => {}
            other => panic!("expected degraded-pivot rejection, got {other:?}"),
        }
        // The fallback re-pivots and solves correctly.
        let reused = lu.refactor_or_factor(&a2, &mut FlopCounter::new()).unwrap();
        assert!(!reused);
        let x = lu.solve(&[1.0, 6.0], &mut FlopCounter::new()).unwrap();
        let ax0 = 1e-9 * x[0] + 1.0 * x[1];
        let ax1 = 1.0 * x[0] + 5.0 * x[1];
        assert!(approx_eq(ax0, 1.0, 1e-9), "{ax0}");
        assert!(approx_eq(ax1, 6.0, 1e-9), "{ax1}");
    }

    #[test]
    fn refactor_or_factor_reuses_on_same_pattern() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (1, 1, 4.0)]);
        let mut lu = SparseLu::factor(&a, &mut FlopCounter::new()).unwrap();
        let mut a2 = a.clone();
        a2.values_mut()[0] = 3.0;
        let reused = lu.refactor_or_factor(&a2, &mut FlopCounter::new()).unwrap();
        assert!(reused);
        let x = lu.solve(&[3.0, 8.0], &mut FlopCounter::new()).unwrap();
        assert_eq!(x, vec![1.0, 2.0]);
    }

    #[test]
    fn refactor_handles_permuted_factors() {
        // Force an off-diagonal pivot, then refactor with new values: the
        // permuted structure must still round-trip.
        let entries = [(0, 1, 2.0), (1, 0, 3.0), (1, 1, 0.5)];
        let a1 = CsrMatrix::from_triplets(2, 2, &entries);
        let mut lu =
            SparseLu::factor_with(&a1, PivotStrategy::PartialPivoting, &mut FlopCounter::new())
                .unwrap();
        let entries2 = [(0, 1, 4.0), (1, 0, 5.0), (1, 1, 1.0)];
        let a2 = CsrMatrix::from_triplets(2, 2, &entries2);
        lu.refactor(&a2, &mut FlopCounter::new()).unwrap();
        let x = lu.solve(&[4.0, 6.0], &mut FlopCounter::new()).unwrap();
        // [[0, 4], [5, 1]] x = [4, 6] -> x = [1, 1]
        assert!(approx_eq(x[0], 1.0, 1e-12), "{}", x[0]);
        assert!(approx_eq(x[1], 1.0, 1e-12), "{}", x[1]);
    }

    #[test]
    fn refactor_with_fill_in_columns() {
        // A matrix whose factorization has fill-in: refactor must scatter
        // zeros into fill positions that A does not touch.
        let entries = [
            (0, 0, 4.0),
            (0, 2, 1.0),
            (1, 0, 1.0),
            (1, 1, 4.0),
            (2, 1, 1.0),
            (2, 2, 4.0),
        ];
        let a1 = CsrMatrix::from_triplets(3, 3, &entries);
        let mut lu = SparseLu::factor(&a1, &mut FlopCounter::new()).unwrap();
        let entries2 = [
            (0, 0, 5.0),
            (0, 2, 2.0),
            (1, 0, 2.0),
            (1, 1, 5.0),
            (2, 1, 2.0),
            (2, 2, 5.0),
        ];
        let a2 = CsrMatrix::from_triplets(3, 3, &entries2);
        lu.refactor(&a2, &mut FlopCounter::new()).unwrap();
        let b = [1.0, 2.0, 3.0];
        let x = lu.solve(&b, &mut FlopCounter::new()).unwrap();
        let ax = a2.matvec(&x, &mut FlopCounter::new()).unwrap();
        for (l, r) in ax.iter().zip(b.iter()) {
            assert!(approx_eq(*l, *r, 1e-12), "{l} vs {r}");
        }
    }

    #[test]
    fn solve_into_reuses_buffers() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (1, 1, 4.0)]);
        let lu = SparseLu::factor(&a, &mut FlopCounter::new()).unwrap();
        let mut x = Vec::new();
        let mut work = Vec::new();
        lu.solve_into(&[2.0, 8.0], &mut x, &mut work, &mut FlopCounter::new())
            .unwrap();
        assert_eq!(x, vec![1.0, 2.0]);
        let cap_x = x.capacity();
        lu.solve_into(&[4.0, 4.0], &mut x, &mut work, &mut FlopCounter::new())
            .unwrap();
        assert_eq!(x, vec![2.0, 1.0]);
        assert_eq!(x.capacity(), cap_x, "no reallocation on reuse");
    }

    /// Arrow matrix: dense first row/column + diagonal. Natural order
    /// fills completely; minimum degree keeps L+U as sparse as A.
    fn arrow(n: usize) -> CsrMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 4.0 + i as f64 * 0.01);
            if i > 0 {
                t.push(0, i, 1.0);
                t.push(i, 0, 1.0);
            }
        }
        t.to_csr()
    }

    #[test]
    fn amd_ordering_eliminates_arrow_fill() {
        let a = arrow(40);
        let mut f = FlopCounter::new();
        let nat = SparseLu::factor_ordered(
            &a,
            OrderingChoice::Natural,
            PivotStrategy::default(),
            &mut f,
        )
        .unwrap();
        let amd =
            SparseLu::factor_ordered(&a, OrderingChoice::Amd, PivotStrategy::default(), &mut f)
                .unwrap();
        assert!(
            amd.nnz() < nat.nnz(),
            "amd nnz {} !< natural nnz {}",
            amd.nnz(),
            nat.nnz()
        );
        // AMD eliminates the hub last: zero fill on an arrow matrix.
        assert_eq!(amd.nnz(), a.nnz());
        assert_eq!(amd.ordering_name(), "amd");
        assert_eq!(nat.ordering_name(), "natural");
    }

    #[test]
    fn ordered_solutions_match_natural() {
        let a = arrow(25);
        let b: Vec<f64> = (0..25).map(|i| (i as f64 * 0.7).cos()).collect();
        let mut f = FlopCounter::new();
        let x_nat = SparseLu::factor(&a, &mut f)
            .unwrap()
            .solve(&b, &mut f)
            .unwrap();
        for choice in [OrderingChoice::Rcm, OrderingChoice::Amd] {
            let x = SparseLu::factor_ordered(&a, choice, PivotStrategy::default(), &mut f)
                .unwrap()
                .solve(&b, &mut f)
                .unwrap();
            for (o, n) in x.iter().zip(x_nat.iter()) {
                assert!(approx_eq(*o, *n, 1e-10), "{choice:?}: {o} vs {n}");
            }
        }
    }

    #[test]
    fn ordered_refactor_round_trips() {
        // Refactor under a fill-reducing ordering must solve as exactly as
        // a fresh ordered factor.
        let a1 = arrow(20);
        let mut lu = SparseLu::factor_ordered(
            &a1,
            OrderingChoice::Amd,
            PivotStrategy::default(),
            &mut FlopCounter::new(),
        )
        .unwrap();
        let mut a2 = a1.clone();
        for (i, v) in a2.values_mut().iter_mut().enumerate() {
            *v += 0.02 * ((i % 5) as f64 - 2.0);
        }
        lu.refactor(&a2, &mut FlopCounter::new()).unwrap();
        let b: Vec<f64> = (0..20).map(|i| (i as f64).sin()).collect();
        let x = lu.solve(&b, &mut FlopCounter::new()).unwrap();
        let ax = a2.matvec(&x, &mut FlopCounter::new()).unwrap();
        for (l, r) in ax.iter().zip(b.iter()) {
            assert!(approx_eq(*l, *r, 1e-10), "{l} vs {r}");
        }
    }

    #[test]
    fn ordered_fallback_keeps_ordering_choice() {
        let a1 = arrow(15);
        let mut lu = SparseLu::factor_ordered(
            &a1,
            OrderingChoice::Amd,
            PivotStrategy::default(),
            &mut FlopCounter::new(),
        )
        .unwrap();
        // Different pattern forces the full-factor fallback, which must
        // re-analyze under the same ordering choice.
        let a2 = arrow(16);
        let reused = lu.refactor_or_factor(&a2, &mut FlopCounter::new()).unwrap();
        assert!(!reused);
        assert_eq!(lu.ordering_name(), "amd");
        assert_eq!(lu.dim(), 16);
    }

    #[test]
    fn factor_symbolic_shares_analysis() {
        let a = arrow(12);
        let sym = SymbolicAnalysis::analyze(&a, OrderingChoice::Amd).unwrap();
        let lu1 = SparseLu::factor_symbolic(
            sym.clone(),
            &a,
            PivotStrategy::default(),
            &mut FlopCounter::new(),
        )
        .unwrap();
        let mut a2 = a.clone();
        for v in a2.values_mut() {
            *v *= 1.5;
        }
        let lu2 = SparseLu::factor_symbolic(
            sym.clone(),
            &a2,
            PivotStrategy::default(),
            &mut FlopCounter::new(),
        )
        .unwrap();
        assert_eq!(lu1.nnz(), lu2.nnz());
        // A mismatched matrix is rejected up front.
        let b = arrow(13);
        assert!(matches!(
            SparseLu::factor_symbolic(sym, &b, PivotStrategy::default(), &mut FlopCounter::new()),
            Err(NumericError::PatternChanged { .. })
        ));
    }

    fn mesh(m: usize) -> CsrMatrix {
        // 2-D grid conductance pattern (the structure supernodes grow on).
        let n = m * m;
        let mut t = TripletMatrix::new(n, n);
        for r in 0..m {
            for c in 0..m {
                let v = r * m + c;
                t.push(v, v, 4.0 + (v as f64) * 0.01);
                if c + 1 < m {
                    t.push(v, v + 1, -1.0);
                    t.push(v + 1, v, -1.0);
                }
                if r + 1 < m {
                    t.push(v, v + m, -1.0);
                    t.push(v + m, v, -1.0);
                }
            }
        }
        t.to_csr()
    }

    #[test]
    fn blocked_solve_bit_identical_to_scalar() {
        for choice in [
            OrderingChoice::Natural,
            OrderingChoice::Rcm,
            OrderingChoice::Amd,
        ] {
            let a = mesh(9);
            let mut lu = SparseLu::factor_ordered(
                &a,
                choice,
                PivotStrategy::default(),
                &mut FlopCounter::new(),
            )
            .unwrap();
            // Below the size gate: force the panel kernels on so the
            // comparison exercises them.
            assert!(!lu.blocked_kernels());
            lu.set_blocked_kernels(true);
            let b: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.31).sin()).collect();
            let (mut x1, mut w1) = (Vec::new(), Vec::new());
            let (mut x2, mut w2) = (Vec::new(), Vec::new());
            let mut f1 = FlopCounter::new();
            let mut f2 = FlopCounter::new();
            lu.solve_into(&b, &mut x1, &mut w1, &mut f1).unwrap();
            lu.solve_into_scalar(&b, &mut x2, &mut w2, &mut f2).unwrap();
            assert_eq!(x1, x2, "{choice:?}: blocked vs scalar bits");
            assert_eq!(f1, f2, "{choice:?}: flop accounting");
        }
    }

    #[test]
    fn blocked_refactor_bit_identical_to_scalar() {
        let a1 = mesh(8);
        let mut a2 = a1.clone();
        for (i, v) in a2.values_mut().iter_mut().enumerate() {
            *v += 0.01 * ((i % 5) as f64 - 2.0);
        }
        for choice in [OrderingChoice::Natural, OrderingChoice::Amd] {
            let mut blocked = SparseLu::factor_ordered(
                &a1,
                choice,
                PivotStrategy::default(),
                &mut FlopCounter::new(),
            )
            .unwrap();
            blocked.set_blocked_kernels(true);
            let mut scalar = blocked.clone();
            let mut fb = FlopCounter::new();
            let mut fs = FlopCounter::new();
            blocked.refactor(&a2, &mut fb).unwrap();
            scalar.refactor_scalar(&a2, &mut fs).unwrap();
            assert_eq!(blocked.l_vals, scalar.l_vals, "{choice:?}: L values");
            assert_eq!(blocked.u_vals, scalar.u_vals, "{choice:?}: U values");
            assert_eq!(blocked.u_diag, scalar.u_diag, "{choice:?}: pivots");
            assert_eq!(fb, fs, "{choice:?}: refactor flops");
            let b: Vec<f64> = (0..a1.rows()).map(|i| (i as f64).cos()).collect();
            let xb = blocked.solve(&b, &mut FlopCounter::new()).unwrap();
            let xs = scalar.solve(&b, &mut FlopCounter::new()).unwrap();
            assert_eq!(xb, xs);
        }
    }

    #[test]
    fn mesh_factor_detects_supernodes() {
        let a = mesh(10);
        let lu = SparseLu::factor_ordered(
            &a,
            OrderingChoice::Amd,
            PivotStrategy::default(),
            &mut FlopCounter::new(),
        )
        .unwrap();
        assert!(lu.supernode_count() > 0, "AMD mesh factor grows supernodes");
        assert!(lu.supernode_cols() >= 2 * lu.supernode_count());
        assert!(lu.supernode_cols() <= lu.dim());
    }

    #[test]
    fn solve_many_matches_independent_solves() {
        let a = mesh(7);
        let n = a.rows();
        let mut lu = SparseLu::factor_ordered(
            &a,
            OrderingChoice::Amd,
            PivotStrategy::default(),
            &mut FlopCounter::new(),
        )
        .unwrap();
        lu.set_blocked_kernels(true);
        let k = 5;
        let b: Vec<f64> = (0..n * k).map(|i| ((i as f64) * 0.17).sin()).collect();
        let mut fm = FlopCounter::new();
        let xm = lu.solve_many(&b, k, &mut fm).unwrap();
        let mut fs = FlopCounter::new();
        for j in 0..k {
            let xj = lu.solve(&b[j * n..(j + 1) * n], &mut fs).unwrap();
            assert_eq!(&xm[j * n..(j + 1) * n], &xj[..], "column {j} bits");
        }
        assert_eq!(fm, fs, "multi-RHS flops match k independent solves");
    }

    #[test]
    fn solve_many_validates_shapes() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        let lu = SparseLu::factor(&a, &mut FlopCounter::new()).unwrap();
        assert!(lu
            .solve_many(&[1.0, 2.0], 0, &mut FlopCounter::new())
            .is_err());
        assert!(lu
            .solve_many(&[1.0, 2.0, 3.0], 2, &mut FlopCounter::new())
            .is_err());
        let x = lu
            .solve_many(&[1.0, 2.0, 3.0, 4.0], 2, &mut FlopCounter::new())
            .unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn tolerant_refactor_reports_degraded_ratio() {
        let entries = [(0, 0, 5.0), (1, 0, 1.0), (0, 1, 1.0), (1, 1, 5.0)];
        let a1 = CsrMatrix::from_triplets(2, 2, &entries);
        let mut lu = SparseLu::factor(&a1, &mut FlopCounter::new()).unwrap();
        // Healthy values: ratio close to 1.
        let ratio = lu.refactor_tolerant(&a1, &mut FlopCounter::new()).unwrap();
        assert!(ratio > REFACTOR_PIVOT_RATIO, "healthy ratio {ratio}");
        // Collapsed diagonal: strict refuses, tolerant completes and
        // reports how weak the pivot is.
        let degraded = [(0, 0, 1e-9), (1, 0, 1.0), (0, 1, 1.0), (1, 1, 5.0)];
        let a2 = CsrMatrix::from_triplets(2, 2, &degraded);
        assert!(lu.refactor(&a2, &mut FlopCounter::new()).is_err());
        let ratio = lu.refactor_tolerant(&a2, &mut FlopCounter::new()).unwrap();
        assert!(ratio < REFACTOR_PIVOT_RATIO, "degraded ratio {ratio}");
        // The weak factors still solve approximately; one refinement step
        // recovers full accuracy (the SparseLuSolver policy).
        let b = [1.0, 6.0];
        let mut x = lu.solve(&b, &mut FlopCounter::new()).unwrap();
        let r: Vec<f64> = {
            let ax = a2.matvec(&x, &mut FlopCounter::new()).unwrap();
            b.iter().zip(ax.iter()).map(|(bi, ai)| bi - ai).collect()
        };
        let dx = lu.solve(&r, &mut FlopCounter::new()).unwrap();
        for (xi, di) in x.iter_mut().zip(dx.iter()) {
            *xi += di;
        }
        let ax = a2.matvec(&x, &mut FlopCounter::new()).unwrap();
        assert!((ax[0] - 1.0).abs() < 1e-9 && (ax[1] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn determinant_invariant_under_ordering() {
        let a = arrow(9);
        let mut f = FlopCounter::new();
        let d_nat = SparseLu::factor(&a, &mut f).unwrap().determinant();
        for choice in [OrderingChoice::Rcm, OrderingChoice::Amd] {
            let d = SparseLu::factor_ordered(&a, choice, PivotStrategy::default(), &mut f)
                .unwrap()
                .determinant();
            let rel = (d - d_nat).abs() / d_nat.abs().max(1e-300);
            assert!(rel < 1e-9, "{choice:?}: {d} vs {d_nat}");
        }
    }
}
