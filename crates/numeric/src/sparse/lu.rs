//! Left-looking sparse LU factorization with threshold partial pivoting.
//!
//! The algorithm is the Gilbert–Peierls column method: for each column `j` a
//! sparse triangular solve `L·x = A(:, j)` is performed symbolically (a DFS
//! over the pattern of `L` yielding a topological order) and numerically,
//! after which the pivot is chosen among the not-yet-pivotal rows. Diagonal
//! entries are preferred when within a threshold of the magnitude-maximal
//! candidate, which keeps the permutation stable across the nearly identical
//! matrices of consecutive transient time steps.

use super::CsrMatrix;
use crate::error::NumericError;
use crate::flops::FlopCounter;
use crate::Result;

/// Pivoting policy for [`SparseLu::factor_with`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PivotStrategy {
    /// Pick the largest-magnitude candidate in the column (classic partial
    /// pivoting; maximal numerical robustness).
    PartialPivoting,
    /// Prefer the diagonal entry when its magnitude is at least `threshold`
    /// times the column maximum (0 < threshold <= 1). MNA matrices are close
    /// to diagonally dominant, and a stable permutation keeps fill-in and
    /// pattern identical across transient steps.
    ThresholdDiagonal {
        /// Fraction of the column maximum the diagonal must reach.
        threshold: f64,
    },
}

impl Default for PivotStrategy {
    fn default() -> Self {
        PivotStrategy::ThresholdDiagonal { threshold: 0.1 }
    }
}

/// Sparse LU factors `P·A = L·U` of a square matrix.
///
/// # Example
/// ```
/// use nanosim_numeric::sparse::{SparseLu, TripletMatrix};
/// use nanosim_numeric::flops::FlopCounter;
/// # fn main() -> Result<(), nanosim_numeric::NumericError> {
/// let mut t = TripletMatrix::new(2, 2);
/// t.push(0, 0, 2.0);
/// t.push(1, 1, 4.0);
/// let mut flops = FlopCounter::new();
/// let lu = SparseLu::factor(&t.to_csr(), &mut flops)?;
/// let x = lu.solve(&[2.0, 8.0], &mut flops)?;
/// assert_eq!(x, vec![1.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    /// L columns: entries `(original_row, value)` strictly below the pivot,
    /// already divided by the pivot.
    l_cols: Vec<Vec<(usize, f64)>>,
    /// U columns: entries `(pivot_index, value)` strictly above the diagonal.
    u_cols: Vec<Vec<(usize, f64)>>,
    /// Diagonal of U by pivot index.
    u_diag: Vec<f64>,
    /// `perm[k]` = original row chosen as the k-th pivot.
    perm: Vec<usize>,
}

impl SparseLu {
    /// Factors `a` with the default pivoting strategy.
    ///
    /// # Errors
    /// Returns [`NumericError::SingularMatrix`] when a column has no usable
    /// pivot and [`NumericError::DimensionMismatch`] for non-square input.
    pub fn factor(a: &CsrMatrix, flops: &mut FlopCounter) -> Result<Self> {
        Self::factor_with(a, PivotStrategy::default(), flops)
    }

    /// Factors `a` with an explicit [`PivotStrategy`].
    ///
    /// # Errors
    /// Same as [`SparseLu::factor`]; additionally rejects non-finite values.
    pub fn factor_with(
        a: &CsrMatrix,
        strategy: PivotStrategy,
        flops: &mut FlopCounter,
    ) -> Result<Self> {
        if a.rows() != a.cols() {
            return Err(NumericError::DimensionMismatch {
                context: format!("sparse lu of non-square {}x{}", a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        let (col_ptr, row_idx, values) = a.to_csc();

        let mut l_cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
        let mut u_cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
        let mut u_diag = vec![0.0; n];
        let mut perm = vec![usize::MAX; n];
        // pinv[row] = pivot index of `row`, or usize::MAX when not pivotal yet.
        let mut pinv = vec![usize::MAX; n];

        let mut x = vec![0.0f64; n]; // dense working column
        let mut visited = vec![usize::MAX; n]; // marks per column j
        let mut topo: Vec<usize> = Vec::with_capacity(n);
        let mut dfs_stack: Vec<(usize, usize)> = Vec::new();

        for j in 0..n {
            // Scatter A(:, j) and collect the reachable pattern via DFS.
            topo.clear();
            for p in col_ptr[j]..col_ptr[j + 1] {
                let r = row_idx[p];
                x[r] = values[p];
            }
            for p in col_ptr[j]..col_ptr[j + 1] {
                let start = row_idx[p];
                if visited[start] == j {
                    continue;
                }
                // Iterative DFS producing a post-order.
                dfs_stack.push((start, 0));
                visited[start] = j;
                while let Some(&(node, child)) = dfs_stack.last() {
                    let k = pinv[node];
                    let next = if k != usize::MAX && child < l_cols[k].len() {
                        Some(l_cols[k][child].0)
                    } else {
                        None
                    };
                    match next {
                        Some(next) => {
                            dfs_stack.last_mut().expect("stack nonempty").1 += 1;
                            if visited[next] != j {
                                visited[next] = j;
                                dfs_stack.push((next, 0));
                            }
                        }
                        None => {
                            topo.push(node);
                            dfs_stack.pop();
                        }
                    }
                }
            }

            // Numeric sparse triangular solve in reverse post-order
            // (dependencies first).
            for &r in topo.iter().rev() {
                let k = pinv[r];
                if k == usize::MAX {
                    continue;
                }
                let xr = x[r];
                if xr != 0.0 {
                    for &(row2, lval) in &l_cols[k] {
                        x[row2] -= xr * lval;
                    }
                    flops.fma(l_cols[k].len() as u64);
                }
            }

            // Pivot selection among non-pivotal rows in the pattern.
            let mut max_abs = 0.0f64;
            let mut max_row = usize::MAX;
            let mut diag_abs = -1.0f64;
            for &r in &topo {
                if pinv[r] == usize::MAX {
                    let v = x[r].abs();
                    if !v.is_finite() {
                        return Err(NumericError::SingularMatrix { pivot: j });
                    }
                    if v > max_abs {
                        max_abs = v;
                        max_row = r;
                    }
                    if r == j {
                        diag_abs = v;
                    }
                }
            }
            if max_row == usize::MAX || max_abs == 0.0 {
                return Err(NumericError::SingularMatrix { pivot: j });
            }
            let pivot_row = match strategy {
                PivotStrategy::PartialPivoting => max_row,
                PivotStrategy::ThresholdDiagonal { threshold } => {
                    if diag_abs >= threshold * max_abs {
                        j
                    } else {
                        max_row
                    }
                }
            };
            let pivot_val = x[pivot_row];
            perm[j] = pivot_row;
            pinv[pivot_row] = j;
            u_diag[j] = pivot_val;

            // Split the pattern into U (pivotal rows) and L (the rest).
            let mut ucol = Vec::new();
            let mut lcol = Vec::new();
            for &r in &topo {
                let v = x[r];
                x[r] = 0.0; // clear for next column
                if r == pivot_row {
                    continue;
                }
                let k = pinv[r];
                if k != usize::MAX && k < j {
                    if v != 0.0 {
                        ucol.push((k, v));
                    }
                } else if k == usize::MAX && v != 0.0 {
                    lcol.push((r, v / pivot_val));
                    flops.div(1);
                }
            }
            // Sorted U columns make back-substitution cache-friendly and
            // deterministic.
            ucol.sort_unstable_by_key(|&(k, _)| k);
            u_cols.push(ucol);
            l_cols.push(lcol);
        }

        Ok(SparseLu {
            n,
            l_cols,
            u_cols,
            u_diag,
            perm,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Total stored entries in `L` and `U` (fill-in diagnostic).
    pub fn nnz(&self) -> usize {
        self.l_cols.iter().map(Vec::len).sum::<usize>()
            + self.u_cols.iter().map(Vec::len).sum::<usize>()
            + self.n
    }

    /// Solves `A·x = b` with the stored factors.
    ///
    /// # Errors
    /// Returns [`NumericError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64], flops: &mut FlopCounter) -> Result<Vec<f64>> {
        if b.len() != self.n {
            return Err(NumericError::DimensionMismatch {
                context: format!("sparse lu solve: rhs of {} for n={}", b.len(), self.n),
            });
        }
        let n = self.n;
        // Forward solve L·z = P·b, working in original row numbering.
        let mut work = b.to_vec();
        let mut z = vec![0.0; n];
        for k in 0..n {
            let val = work[self.perm[k]];
            z[k] = val;
            if val != 0.0 {
                for &(row, lval) in &self.l_cols[k] {
                    work[row] -= val * lval;
                }
                flops.fma(self.l_cols[k].len() as u64);
            }
        }
        // Backward solve U·x = z; the solution index equals the column index.
        for k in (0..n).rev() {
            z[k] /= self.u_diag[k];
            flops.div(1);
            let xk = z[k];
            if xk != 0.0 {
                for &(k2, uval) in &self.u_cols[k] {
                    z[k2] -= uval * xk;
                }
                flops.fma(self.u_cols[k].len() as u64);
            }
        }
        Ok(z)
    }

    /// Determinant of the original matrix (product of pivots times the
    /// permutation parity).
    pub fn determinant(&self) -> f64 {
        let mut det: f64 = self.u_diag.iter().product();
        // Parity of the permutation perm.
        let mut seen = vec![false; self.n];
        for start in 0..self.n {
            if seen[start] {
                continue;
            }
            let mut len = 0usize;
            let mut cur = start;
            while !seen[cur] {
                seen[cur] = true;
                cur = self.perm[cur];
                len += 1;
            }
            if len % 2 == 0 {
                det = -det;
            }
        }
        det
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::sparse::TripletMatrix;

    fn solve_via_sparse(entries: &[(usize, usize, f64)], n: usize, b: &[f64]) -> Vec<f64> {
        let a = CsrMatrix::from_triplets(n, n, entries);
        let lu = SparseLu::factor(&a, &mut FlopCounter::new()).unwrap();
        lu.solve(b, &mut FlopCounter::new()).unwrap()
    }

    #[test]
    fn diagonal_system() {
        let x = solve_via_sparse(&[(0, 0, 2.0), (1, 1, 4.0), (2, 2, 8.0)], 3, &[2.0, 4.0, 8.0]);
        assert_eq!(x, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn dense_agreement_on_fixed_matrix() {
        let entries = [
            (0, 0, 4.0),
            (0, 1, -1.0),
            (0, 2, 0.5),
            (1, 0, -1.0),
            (1, 1, 3.0),
            (1, 2, -1.0),
            (2, 0, 0.5),
            (2, 1, -1.0),
            (2, 2, 5.0),
        ];
        let b = [1.0, -2.0, 3.0];
        let xs = solve_via_sparse(&entries, 3, &b);
        let dense = TripletMatrix::new(3, 3);
        let mut t = dense;
        t.extend(entries.iter().cloned());
        let xd = t.to_dense().solve(&b, &mut FlopCounter::new()).unwrap();
        for (a, b) in xs.iter().zip(xd.iter()) {
            assert!(approx_eq(*a, *b, 1e-12), "{a} vs {b}");
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // a11 = 0 forces off-diagonal pivot.
        let entries = [(0, 1, 1.0), (1, 0, 1.0)];
        let x = solve_via_sparse(&entries, 2, &[5.0, 9.0]);
        assert!(approx_eq(x[0], 9.0, 1e-15));
        assert!(approx_eq(x[1], 5.0, 1e-15));
    }

    #[test]
    fn singular_matrix_detected() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 1.0)]);
        match SparseLu::factor(&a, &mut FlopCounter::new()) {
            Err(NumericError::SingularMatrix { .. }) => {}
            other => panic!("expected singular, got {other:?}"),
        }
    }

    #[test]
    fn structurally_empty_column_is_singular() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 0.0)]);
        assert!(SparseLu::factor(&a, &mut FlopCounter::new()).is_err());
    }

    #[test]
    fn non_square_rejected() {
        let a = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]);
        assert!(SparseLu::factor(&a, &mut FlopCounter::new()).is_err());
    }

    #[test]
    fn rhs_length_checked() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        let lu = SparseLu::factor(&a, &mut FlopCounter::new()).unwrap();
        assert!(lu.solve(&[1.0], &mut FlopCounter::new()).is_err());
    }

    #[test]
    fn determinant_matches_dense() {
        let entries = [
            (0, 0, 2.0),
            (0, 1, 1.0),
            (1, 0, 1.0),
            (1, 1, 3.0),
        ];
        let a = CsrMatrix::from_triplets(2, 2, &entries);
        let lu = SparseLu::factor(&a, &mut FlopCounter::new()).unwrap();
        assert!(approx_eq(lu.determinant(), 5.0, 1e-12));
    }

    #[test]
    fn determinant_sign_with_permutation() {
        let entries = [(0, 1, 1.0), (1, 0, 1.0)];
        let a = CsrMatrix::from_triplets(2, 2, &entries);
        let lu =
            SparseLu::factor_with(&a, PivotStrategy::PartialPivoting, &mut FlopCounter::new())
                .unwrap();
        assert!(approx_eq(lu.determinant(), -1.0, 1e-12));
    }

    #[test]
    fn partial_pivoting_strategy_picks_max() {
        // Column 0 has entries 1.0 (row 0) and -10.0 (row 1): PP must pick row 1.
        let entries = [(0, 0, 1.0), (1, 0, -10.0), (0, 1, 1.0), (1, 1, 1.0)];
        let a = CsrMatrix::from_triplets(2, 2, &entries);
        let lu =
            SparseLu::factor_with(&a, PivotStrategy::PartialPivoting, &mut FlopCounter::new())
                .unwrap();
        assert_eq!(lu.perm[0], 1);
    }

    #[test]
    fn threshold_diagonal_prefers_diagonal() {
        let entries = [(0, 0, 1.0), (1, 0, -5.0), (0, 1, 1.0), (1, 1, 1.0)];
        let a = CsrMatrix::from_triplets(2, 2, &entries);
        let lu = SparseLu::factor_with(
            &a,
            PivotStrategy::ThresholdDiagonal { threshold: 0.1 },
            &mut FlopCounter::new(),
        )
        .unwrap();
        assert_eq!(lu.perm[0], 0);
        // And the solve is still correct.
        let x = lu.solve(&[2.0, -4.0], &mut FlopCounter::new()).unwrap();
        // A = [[1, 1], [-5, 1]]; b = [2, -4] -> x = [1, 1]
        assert!(approx_eq(x[0], 1.0, 1e-12));
        assert!(approx_eq(x[1], 1.0, 1e-12));
    }

    #[test]
    fn tridiagonal_large_system() {
        // -u'' discretization: tridiagonal [-1, 2, -1], solution recoverable.
        let n = 50;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i > 0 {
                t.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
            }
        }
        let a = t.to_csr();
        let lu = SparseLu::factor(&a, &mut FlopCounter::new()).unwrap();
        let b = vec![1.0; n];
        let x = lu.solve(&b, &mut FlopCounter::new()).unwrap();
        // Verify A·x = b.
        let ax = a.matvec(&x, &mut FlopCounter::new()).unwrap();
        for (l, r) in ax.iter().zip(b.iter()) {
            assert!(approx_eq(*l, *r, 1e-9), "{l} vs {r}");
        }
        // Fill-in for a tridiagonal matrix with diagonal pivoting is zero.
        assert_eq!(lu.nnz(), a.nnz());
    }

    #[test]
    fn flops_counted_during_factor_and_solve() {
        let entries = [
            (0, 0, 4.0),
            (0, 1, -1.0),
            (1, 0, -1.0),
            (1, 1, 3.0),
        ];
        let a = CsrMatrix::from_triplets(2, 2, &entries);
        let mut f = FlopCounter::new();
        let lu = SparseLu::factor(&a, &mut f).unwrap();
        assert!(f.total() > 0);
        let before = f;
        lu.solve(&[1.0, 1.0], &mut f).unwrap();
        assert!(f.total() > before.total());
    }
}
