//! Numeric phase of the sparse-LU pipeline: left-looking factorization with
//! threshold partial pivoting and KLU-style refactorization, running
//! entirely in the permuted index space of a [`SymbolicAnalysis`].
//!
//! The pipeline has three explicit phases:
//!
//! 1. **ordering** ([`super::order`]) — a fill-reducing permutation computed
//!    from the symmetrized pattern (natural / RCM / AMD, selected by
//!    [`OrderingChoice`]);
//! 2. **symbolic** ([`SymbolicAnalysis`]) — the permuted compressed-column
//!    structure plus the CSR→CSC value shuffle, built once per pattern;
//! 3. **numeric** (this module) — the Gilbert–Peierls column factorization
//!    and the values-only refactorization.
//!
//! The numeric algorithm is the Gilbert–Peierls column method: for each
//! permuted column `j` a sparse triangular solve `L·x = A'(:, j)` is
//! performed symbolically (a DFS over the pattern of `L` yielding a
//! topological order) and numerically, after which the pivot is chosen among
//! the not-yet-pivotal rows. Diagonal entries are preferred when within a
//! threshold of the magnitude-maximal candidate, which keeps the permutation
//! stable across the nearly identical matrices of consecutive transient
//! time steps.
//!
//! That stability is what [`SparseLu::refactor`] exploits: once a matrix has
//! been factored, subsequent matrices with the *same sparsity pattern* (the
//! situation in every Newton iteration, SWEC step and Euler–Maruyama step,
//! where only device conductances change) skip the symbolic analysis and the
//! pivot search entirely and run a values-only numeric pass over the cached
//! `L`/`U` structure — the factor-once/refactor-many strategy of production
//! simulators such as KLU. A refactorization that encounters a new nonzero
//! or a numerically degraded pivot reports [`NumericError::PatternChanged`]
//! so callers can fall back to a full factorization with fresh pivoting
//! ([`SparseLu::refactor_or_factor`] packages that policy, preserving the
//! ordering choice).
//!
//! Callers never see permuted vectors: the fill permutation is applied on
//! scatter-in ([`SymbolicAnalysis::scatter_values`] and the right-hand-side
//! load of [`SparseLu::solve_into`]) and inverted on the way out, so
//! `solve` takes and returns vectors in original MNA numbering whatever the
//! ordering. With [`OrderingChoice::Natural`] every code path degenerates
//! to the identity and results are bit-identical to the pre-ordering
//! pipeline.
//!
//! Factors are stored as flat compressed-column arrays (`colptr`/`rows`/
//! `vals`), not nested `Vec<Vec<_>>`, so the refactor and solve passes are
//! cache-friendly and allocation-free.

use super::order::OrderingChoice;
use super::symbolic::SymbolicAnalysis;
use super::CsrMatrix;
use crate::error::NumericError;
use crate::flops::FlopCounter;
use crate::Result;

/// Pivoting policy for [`SparseLu::factor_with`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PivotStrategy {
    /// Pick the largest-magnitude candidate in the column (classic partial
    /// pivoting; maximal numerical robustness).
    PartialPivoting,
    /// Prefer the diagonal entry when its magnitude is at least `threshold`
    /// times the column maximum (0 < threshold <= 1). MNA matrices are close
    /// to diagonally dominant, and a stable permutation keeps fill-in and
    /// pattern identical across transient steps.
    ThresholdDiagonal {
        /// Fraction of the column maximum the diagonal must reach.
        threshold: f64,
    },
}

impl Default for PivotStrategy {
    fn default() -> Self {
        PivotStrategy::ThresholdDiagonal { threshold: 0.1 }
    }
}

/// A refactorization pivot whose magnitude drops below this fraction of its
/// column maximum is considered numerically degraded; the refactor bails out
/// so the caller can re-pivot from scratch.
const REFACTOR_PIVOT_RATIO: f64 = 1e-6;

/// Sparse LU factors of a square matrix under a fill-reducing ordering
/// (`P·A(q,q) = L·U` with `q` the fill permutation and `P` the pivot
/// permutation), with the symbolic analysis cached for cheap values-only
/// refactorization.
///
/// # Example
/// ```
/// use nanosim_numeric::sparse::{SparseLu, TripletMatrix};
/// use nanosim_numeric::flops::FlopCounter;
/// # fn main() -> Result<(), nanosim_numeric::NumericError> {
/// let mut t = TripletMatrix::new(2, 2);
/// t.push(0, 0, 2.0);
/// t.push(1, 1, 4.0);
/// let mut flops = FlopCounter::new();
/// let mut lu = SparseLu::factor(&t.to_csr(), &mut flops)?;
/// let x = lu.solve(&[2.0, 8.0], &mut flops)?;
/// assert_eq!(x, vec![1.0, 2.0]);
///
/// // Same pattern, new values: reuse the symbolic analysis.
/// let mut t2 = TripletMatrix::new(2, 2);
/// t2.push(0, 0, 4.0);
/// t2.push(1, 1, 8.0);
/// lu.refactor(&t2.to_csr(), &mut flops)?;
/// let x = lu.solve(&[2.0, 8.0], &mut flops)?;
/// assert_eq!(x, vec![0.5, 1.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    /// Column pointers into `l_rows`/`l_vals`; L column `k` holds entries
    /// strictly below the pivot, already divided by the pivot, with rows in
    /// *permuted* numbering.
    l_colptr: Vec<usize>,
    l_rows: Vec<usize>,
    l_vals: Vec<f64>,
    /// Column pointers into `u_rows`/`u_vals`; U column `j` holds entries
    /// strictly above the diagonal keyed by *pivot index*, ascending.
    u_colptr: Vec<usize>,
    u_rows: Vec<usize>,
    u_vals: Vec<f64>,
    /// Diagonal of U by pivot index.
    u_diag: Vec<f64>,
    /// `perm[k]` = permuted row chosen as the k-th pivot.
    perm: Vec<usize>,
    /// Strategy used for the original factorization (reused on fallback).
    strategy: PivotStrategy,
    /// Cached symbolic analysis: fill ordering, permuted CSC structure,
    /// value shuffle, pattern fingerprint.
    sym: SymbolicAnalysis,
    /// Scratch buffers reused by `refactor` (values in permuted CSC order,
    /// dense working column).
    csc_vals: Vec<f64>,
    work: Vec<f64>,
}

impl SparseLu {
    /// Factors `a` with the default pivoting strategy in natural order
    /// (no fill-reducing permutation — bit-identical to the pre-pipeline
    /// behavior; use [`SparseLu::factor_ordered`] for AMD/RCM).
    ///
    /// # Errors
    /// Returns [`NumericError::SingularMatrix`] when a column has no usable
    /// pivot and [`NumericError::DimensionMismatch`] for non-square input.
    pub fn factor(a: &CsrMatrix, flops: &mut FlopCounter) -> Result<Self> {
        Self::factor_with(a, PivotStrategy::default(), flops)
    }

    /// Factors `a` with an explicit [`PivotStrategy`] in natural order.
    ///
    /// # Errors
    /// Same as [`SparseLu::factor`]; additionally rejects non-finite values.
    pub fn factor_with(
        a: &CsrMatrix,
        strategy: PivotStrategy,
        flops: &mut FlopCounter,
    ) -> Result<Self> {
        Self::factor_ordered(a, OrderingChoice::Natural, strategy, flops)
    }

    /// The full three-phase entry point: computes (or resolves) the fill
    /// ordering, builds the symbolic analysis, and runs the numeric factor.
    ///
    /// # Errors
    /// Same as [`SparseLu::factor`].
    pub fn factor_ordered(
        a: &CsrMatrix,
        ordering: OrderingChoice,
        strategy: PivotStrategy,
        flops: &mut FlopCounter,
    ) -> Result<Self> {
        let sym = SymbolicAnalysis::analyze(a, ordering)?;
        Self::factor_symbolic(sym, a, strategy, flops)
    }

    /// Numeric factorization against an already-computed
    /// [`SymbolicAnalysis`] (phase 3 alone — share one analysis across many
    /// factorizations of the same pattern).
    ///
    /// # Errors
    /// [`NumericError::PatternChanged`] when `a` does not match the
    /// analyzed pattern, otherwise as [`SparseLu::factor`].
    pub fn factor_symbolic(
        sym: SymbolicAnalysis,
        a: &CsrMatrix,
        strategy: PivotStrategy,
        flops: &mut FlopCounter,
    ) -> Result<Self> {
        if !sym.matches(a) {
            return Err(NumericError::PatternChanged {
                context: format!(
                    "numeric factor of {}x{} ({} nnz) against analysis of {}x{} ({} nnz)",
                    a.rows(),
                    a.cols(),
                    a.nnz(),
                    sym.dim(),
                    sym.dim(),
                    sym.nnz()
                ),
            });
        }
        let n = sym.dim();
        // Scatter the values through the cached shuffle: from here on the
        // factorization works exclusively in permuted index space.
        let mut values = Vec::new();
        sym.scatter_values(a, &mut values);
        let col_ptr = &sym.csc_colptr;
        let row_idx = &sym.csc_rows;

        let mut l_colptr = Vec::with_capacity(n + 1);
        let mut l_rows: Vec<usize> = Vec::new();
        let mut l_vals: Vec<f64> = Vec::new();
        let mut u_colptr = Vec::with_capacity(n + 1);
        let mut u_rows: Vec<usize> = Vec::new();
        let mut u_vals: Vec<f64> = Vec::new();
        l_colptr.push(0);
        u_colptr.push(0);
        let mut u_diag = vec![0.0; n];
        let mut perm = vec![usize::MAX; n];
        // pinv[row] = pivot index of `row`, or usize::MAX when not pivotal yet.
        let mut pinv = vec![usize::MAX; n];

        let mut x = vec![0.0f64; n]; // dense working column
        let mut visited = vec![usize::MAX; n]; // marks per column j
        let mut topo: Vec<usize> = Vec::with_capacity(n);
        let mut dfs_stack: Vec<(usize, usize)> = Vec::new();
        let mut ucol: Vec<(usize, f64)> = Vec::new();

        for j in 0..n {
            // Scatter A'(:, j) and collect the reachable pattern via DFS.
            topo.clear();
            for p in col_ptr[j]..col_ptr[j + 1] {
                let r = row_idx[p];
                x[r] = values[p];
            }
            for p in col_ptr[j]..col_ptr[j + 1] {
                let start = row_idx[p];
                if visited[start] == j {
                    continue;
                }
                // Iterative DFS producing a post-order.
                dfs_stack.push((start, 0));
                visited[start] = j;
                while let Some(&(node, child)) = dfs_stack.last() {
                    let k = pinv[node];
                    let next = if k != usize::MAX && child < l_colptr[k + 1] - l_colptr[k] {
                        Some(l_rows[l_colptr[k] + child])
                    } else {
                        None
                    };
                    match next {
                        Some(next) => {
                            dfs_stack.last_mut().expect("stack nonempty").1 += 1;
                            if visited[next] != j {
                                visited[next] = j;
                                dfs_stack.push((next, 0));
                            }
                        }
                        None => {
                            topo.push(node);
                            dfs_stack.pop();
                        }
                    }
                }
            }

            // Numeric sparse triangular solve in reverse post-order
            // (dependencies first).
            for &r in topo.iter().rev() {
                let k = pinv[r];
                if k == usize::MAX {
                    continue;
                }
                let xr = x[r];
                if xr != 0.0 {
                    for p in l_colptr[k]..l_colptr[k + 1] {
                        x[l_rows[p]] -= xr * l_vals[p];
                    }
                    flops.fma((l_colptr[k + 1] - l_colptr[k]) as u64);
                }
            }

            // Pivot selection among non-pivotal rows in the pattern.
            let mut max_abs = 0.0f64;
            let mut max_row = usize::MAX;
            let mut diag_abs = -1.0f64;
            for &r in &topo {
                if pinv[r] == usize::MAX {
                    let v = x[r].abs();
                    if !v.is_finite() {
                        return Err(NumericError::SingularMatrix { pivot: j });
                    }
                    if v > max_abs {
                        max_abs = v;
                        max_row = r;
                    }
                    if r == j {
                        diag_abs = v;
                    }
                }
            }
            if max_row == usize::MAX || max_abs == 0.0 {
                return Err(NumericError::SingularMatrix { pivot: j });
            }
            let pivot_row = match strategy {
                PivotStrategy::PartialPivoting => max_row,
                PivotStrategy::ThresholdDiagonal { threshold } => {
                    if diag_abs >= threshold * max_abs {
                        j
                    } else {
                        max_row
                    }
                }
            };
            let pivot_val = x[pivot_row];
            perm[j] = pivot_row;
            pinv[pivot_row] = j;
            u_diag[j] = pivot_val;

            // Split the pattern into U (pivotal rows) and L (the rest). The
            // *entire* reached pattern is kept — including exact numerical
            // zeros — so the stored structure is valid for any values with
            // the same input pattern (a refactor requirement).
            ucol.clear();
            for &r in &topo {
                let v = x[r];
                x[r] = 0.0; // clear for next column
                if r == pivot_row {
                    continue;
                }
                let k = pinv[r];
                if k != usize::MAX && k < j {
                    ucol.push((k, v));
                } else if k == usize::MAX {
                    l_rows.push(r);
                    l_vals.push(v / pivot_val);
                    flops.div(1);
                }
            }
            // Sorted U columns make back-substitution cache-friendly,
            // deterministic, and give refactor its topological order.
            ucol.sort_unstable_by_key(|&(k, _)| k);
            for &(k, v) in &ucol {
                u_rows.push(k);
                u_vals.push(v);
            }
            u_colptr.push(u_rows.len());
            l_colptr.push(l_rows.len());
        }

        // The symbolic analysis is kept for refactorization, and the values
        // buffer becomes its scratch space.
        Ok(SparseLu {
            n,
            l_colptr,
            l_rows,
            l_vals,
            u_colptr,
            u_rows,
            u_vals,
            u_diag,
            perm,
            strategy,
            sym,
            csc_vals: values,
            work: x,
        })
    }

    /// Recomputes the numeric factors of `a`, reusing the cached symbolic
    /// analysis (ordering, pattern, pivot order, fill structure). This
    /// skips the ordering, the DFS and the pivot search and is the hot path
    /// for the nearly identical matrices of consecutive Newton iterations /
    /// transient steps.
    ///
    /// # Errors
    /// Returns [`NumericError::PatternChanged`] when `a`'s sparsity pattern
    /// differs from the factored one (detected up front — the factors are
    /// left unchanged) *or* when a cached pivot has become numerically
    /// degraded (magnitude below `1e-6` of its column maximum), and
    /// [`NumericError::SingularMatrix`] for an exactly zero pivot. The
    /// latter two abort **mid-pass**, leaving the numeric factors partially
    /// updated and unusable: the caller must re-factor before solving
    /// again ([`SparseLu::refactor_or_factor`] packages exactly that
    /// fallback).
    pub fn refactor(&mut self, a: &CsrMatrix, flops: &mut FlopCounter) -> Result<()> {
        if !self.sym.matches(a) {
            return Err(NumericError::PatternChanged {
                context: format!(
                    "refactor of {}x{} ({} nnz) against analysis of {}x{} ({} nnz)",
                    a.rows(),
                    a.cols(),
                    a.nnz(),
                    self.n,
                    self.n,
                    self.sym.nnz()
                ),
            });
        }

        // Shuffle the new values into the cached permuted CSC order.
        for (p, &v) in a.values().iter().enumerate() {
            self.csc_vals[self.sym.csr_to_csc[p]] = v;
        }

        let n = self.n;
        for j in 0..n {
            // Zero the working column over this column's pattern, then
            // scatter A'(:, j). The pattern is exactly: the pivot rows of
            // the U entries, the pivot row itself, and the L rows.
            for p in self.u_colptr[j]..self.u_colptr[j + 1] {
                self.work[self.perm[self.u_rows[p]]] = 0.0;
            }
            self.work[self.perm[j]] = 0.0;
            for p in self.l_colptr[j]..self.l_colptr[j + 1] {
                self.work[self.l_rows[p]] = 0.0;
            }
            for p in self.sym.csc_colptr[j]..self.sym.csc_colptr[j + 1] {
                self.work[self.sym.csc_rows[p]] = self.csc_vals[p];
            }

            // Eliminate with already-final columns in ascending pivot order
            // (a topological order, since L[r, k] with pinv[r] = k' implies
            // k < k').
            for p in self.u_colptr[j]..self.u_colptr[j + 1] {
                let k = self.u_rows[p];
                let ukj = self.work[self.perm[k]];
                self.u_vals[p] = ukj;
                if ukj != 0.0 {
                    for q in self.l_colptr[k]..self.l_colptr[k + 1] {
                        self.work[self.l_rows[q]] -= ukj * self.l_vals[q];
                    }
                    flops.fma((self.l_colptr[k + 1] - self.l_colptr[k]) as u64);
                }
            }

            // Fixed pivot: check it is still numerically sound.
            let pivot_row = self.perm[j];
            let pivot_val = self.work[pivot_row];
            let mut col_max = pivot_val.abs();
            for p in self.l_colptr[j]..self.l_colptr[j + 1] {
                col_max = col_max.max(self.work[self.l_rows[p]].abs());
            }
            if !pivot_val.is_finite() || (pivot_val == 0.0 && col_max == 0.0) {
                return Err(NumericError::SingularMatrix { pivot: j });
            }
            if pivot_val.abs() < REFACTOR_PIVOT_RATIO * col_max {
                return Err(NumericError::PatternChanged {
                    context: format!(
                        "pivot {j} degraded to {:.3e} against column max {:.3e}",
                        pivot_val.abs(),
                        col_max
                    ),
                });
            }
            self.u_diag[j] = pivot_val;
            for p in self.l_colptr[j]..self.l_colptr[j + 1] {
                self.l_vals[p] = self.work[self.l_rows[p]] / pivot_val;
            }
            flops.div((self.l_colptr[j + 1] - self.l_colptr[j]) as u64);
        }
        Ok(())
    }

    /// Refactors `a` in place, falling back to a full numeric
    /// factorization with fresh pivoting when the pattern changed or a
    /// pivot degraded. A degraded pivot on an unchanged pattern reuses the
    /// cached symbolic analysis (the ordering and permuted structure are
    /// still exact); only a genuine pattern change re-runs the ordering
    /// under the same [`OrderingChoice`]. Returns `true` when the cached
    /// numeric factors were refreshed in place, `false` when a full
    /// factorization ran.
    ///
    /// # Errors
    /// Returns [`NumericError::SingularMatrix`] /
    /// [`NumericError::DimensionMismatch`] when even the full factorization
    /// fails; the factors are then in an unspecified (but valid) state.
    pub fn refactor_or_factor(&mut self, a: &CsrMatrix, flops: &mut FlopCounter) -> Result<bool> {
        match self.refactor(a, flops) {
            Ok(()) => Ok(true),
            Err(NumericError::PatternChanged { .. }) | Err(NumericError::SingularMatrix { .. }) => {
                *self = if self.sym.matches(a) {
                    SparseLu::factor_symbolic(self.sym.clone(), a, self.strategy, flops)?
                } else {
                    SparseLu::factor_ordered(a, self.sym.choice(), self.strategy, flops)?
                };
                Ok(false)
            }
            Err(e) => Err(e),
        }
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Total stored entries in `L` and `U` (fill-in diagnostic).
    pub fn nnz(&self) -> usize {
        self.l_vals.len() + self.u_vals.len() + self.n
    }

    /// Nonzeros of the factored input matrix `A`.
    pub fn nnz_a(&self) -> usize {
        self.sym.nnz()
    }

    /// Fill ratio `nnz(L + U) / nnz(A)` — 1.0 means zero fill-in.
    pub fn fill_ratio(&self) -> f64 {
        self.nnz() as f64 / self.nnz_a().max(1) as f64
    }

    /// Name of the fill ordering actually applied ("natural", "rcm",
    /// "amd").
    pub fn ordering_name(&self) -> &'static str {
        self.sym.ordering_name()
    }

    /// The cached symbolic analysis.
    pub fn symbolic(&self) -> &SymbolicAnalysis {
        &self.sym
    }

    /// Solves `A·x = b` with the stored factors.
    ///
    /// # Errors
    /// Returns [`NumericError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64], flops: &mut FlopCounter) -> Result<Vec<f64>> {
        let mut x = vec![0.0; self.n];
        let mut work = vec![0.0; self.n];
        self.solve_into(b, &mut x, &mut work, flops)?;
        Ok(x)
    }

    /// Allocation-free solve `A·x = b` into caller-provided buffers. `x`
    /// receives the solution *in original numbering* — the fill permutation
    /// is applied to `b` on the way in and inverted on the way out, so
    /// callers are ordering-agnostic. `work` is scratch. Both are resized
    /// to the matrix dimension, so reusing the same buffers across calls
    /// performs no allocation after the first.
    ///
    /// # Errors
    /// Returns [`NumericError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve_into(
        &self,
        b: &[f64],
        x: &mut Vec<f64>,
        work: &mut Vec<f64>,
        flops: &mut FlopCounter,
    ) -> Result<()> {
        if b.len() != self.n {
            return Err(NumericError::DimensionMismatch {
                context: format!("sparse lu solve: rhs of {} for n={}", b.len(), self.n),
            });
        }
        let n = self.n;
        x.resize(n, 0.0);
        work.resize(n, 0.0);
        // Forward solve L·z = P·b', working in permuted row numbering
        // (b'[i] = b[q[i]]; the identity fast path keeps the natural-order
        // pipeline bit-exact).
        if self.sym.identity {
            work.copy_from_slice(b);
        } else {
            for (i, w) in work.iter_mut().enumerate() {
                *w = b[self.sym.fill_perm[i]];
            }
        }
        for k in 0..n {
            let val = work[self.perm[k]];
            x[k] = val;
            if val != 0.0 {
                for p in self.l_colptr[k]..self.l_colptr[k + 1] {
                    work[self.l_rows[p]] -= val * self.l_vals[p];
                }
                flops.fma((self.l_colptr[k + 1] - self.l_colptr[k]) as u64);
            }
        }
        // Backward solve U·y = z; the solution index equals the permuted
        // column index.
        for k in (0..n).rev() {
            x[k] /= self.u_diag[k];
            flops.div(1);
            let xk = x[k];
            if xk != 0.0 {
                for p in self.u_colptr[k]..self.u_colptr[k + 1] {
                    x[self.u_rows[p]] -= self.u_vals[p] * xk;
                }
                flops.fma((self.u_colptr[k + 1] - self.u_colptr[k]) as u64);
            }
        }
        // Undo the fill permutation: x_out[q[k]] = y[k].
        if !self.sym.identity {
            work[..n].copy_from_slice(&x[..n]);
            for (k, &w) in work.iter().enumerate() {
                x[self.sym.fill_perm[k]] = w;
            }
        }
        Ok(())
    }

    /// Determinant of the original matrix (product of pivots times the
    /// pivot-permutation parity; the symmetric fill permutation has even
    /// combined parity and never changes the sign).
    pub fn determinant(&self) -> f64 {
        let mut det: f64 = self.u_diag.iter().product();
        // Parity of the permutation perm.
        let mut seen = vec![false; self.n];
        for start in 0..self.n {
            if seen[start] {
                continue;
            }
            let mut len = 0usize;
            let mut cur = start;
            while !seen[cur] {
                seen[cur] = true;
                cur = self.perm[cur];
                len += 1;
            }
            if len % 2 == 0 {
                det = -det;
            }
        }
        det
    }

    /// The pivot permutation (`perm[k]` = permuted row chosen as the k-th
    /// pivot). Exposed for tests.
    #[cfg(test)]
    pub(crate) fn pivot_perm(&self) -> &[usize] {
        &self.perm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::sparse::TripletMatrix;

    fn solve_via_sparse(entries: &[(usize, usize, f64)], n: usize, b: &[f64]) -> Vec<f64> {
        let a = CsrMatrix::from_triplets(n, n, entries);
        let lu = SparseLu::factor(&a, &mut FlopCounter::new()).unwrap();
        lu.solve(b, &mut FlopCounter::new()).unwrap()
    }

    #[test]
    fn diagonal_system() {
        let x = solve_via_sparse(
            &[(0, 0, 2.0), (1, 1, 4.0), (2, 2, 8.0)],
            3,
            &[2.0, 4.0, 8.0],
        );
        assert_eq!(x, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn dense_agreement_on_fixed_matrix() {
        let entries = [
            (0, 0, 4.0),
            (0, 1, -1.0),
            (0, 2, 0.5),
            (1, 0, -1.0),
            (1, 1, 3.0),
            (1, 2, -1.0),
            (2, 0, 0.5),
            (2, 1, -1.0),
            (2, 2, 5.0),
        ];
        let b = [1.0, -2.0, 3.0];
        let xs = solve_via_sparse(&entries, 3, &b);
        let dense = TripletMatrix::new(3, 3);
        let mut t = dense;
        t.extend(entries.iter().cloned());
        let xd = t.to_dense().solve(&b, &mut FlopCounter::new()).unwrap();
        for (a, b) in xs.iter().zip(xd.iter()) {
            assert!(approx_eq(*a, *b, 1e-12), "{a} vs {b}");
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // a11 = 0 forces off-diagonal pivot.
        let entries = [(0, 1, 1.0), (1, 0, 1.0)];
        let x = solve_via_sparse(&entries, 2, &[5.0, 9.0]);
        assert!(approx_eq(x[0], 9.0, 1e-15));
        assert!(approx_eq(x[1], 5.0, 1e-15));
    }

    #[test]
    fn singular_matrix_detected() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 1.0)]);
        match SparseLu::factor(&a, &mut FlopCounter::new()) {
            Err(NumericError::SingularMatrix { .. }) => {}
            other => panic!("expected singular, got {other:?}"),
        }
    }

    #[test]
    fn structurally_empty_column_is_singular() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 0.0)]);
        assert!(SparseLu::factor(&a, &mut FlopCounter::new()).is_err());
    }

    #[test]
    fn non_square_rejected() {
        let a = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]);
        assert!(SparseLu::factor(&a, &mut FlopCounter::new()).is_err());
    }

    #[test]
    fn rhs_length_checked() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        let lu = SparseLu::factor(&a, &mut FlopCounter::new()).unwrap();
        assert!(lu.solve(&[1.0], &mut FlopCounter::new()).is_err());
    }

    #[test]
    fn determinant_matches_dense() {
        let entries = [(0, 0, 2.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0)];
        let a = CsrMatrix::from_triplets(2, 2, &entries);
        let lu = SparseLu::factor(&a, &mut FlopCounter::new()).unwrap();
        assert!(approx_eq(lu.determinant(), 5.0, 1e-12));
    }

    #[test]
    fn determinant_sign_with_permutation() {
        let entries = [(0, 1, 1.0), (1, 0, 1.0)];
        let a = CsrMatrix::from_triplets(2, 2, &entries);
        let lu = SparseLu::factor_with(&a, PivotStrategy::PartialPivoting, &mut FlopCounter::new())
            .unwrap();
        assert!(approx_eq(lu.determinant(), -1.0, 1e-12));
    }

    #[test]
    fn partial_pivoting_strategy_picks_max() {
        // Column 0 has entries 1.0 (row 0) and -10.0 (row 1): PP must pick row 1.
        let entries = [(0, 0, 1.0), (1, 0, -10.0), (0, 1, 1.0), (1, 1, 1.0)];
        let a = CsrMatrix::from_triplets(2, 2, &entries);
        let lu = SparseLu::factor_with(&a, PivotStrategy::PartialPivoting, &mut FlopCounter::new())
            .unwrap();
        assert_eq!(lu.pivot_perm()[0], 1);
    }

    #[test]
    fn threshold_diagonal_prefers_diagonal() {
        let entries = [(0, 0, 1.0), (1, 0, -5.0), (0, 1, 1.0), (1, 1, 1.0)];
        let a = CsrMatrix::from_triplets(2, 2, &entries);
        let lu = SparseLu::factor_with(
            &a,
            PivotStrategy::ThresholdDiagonal { threshold: 0.1 },
            &mut FlopCounter::new(),
        )
        .unwrap();
        assert_eq!(lu.pivot_perm()[0], 0);
        // And the solve is still correct.
        let x = lu.solve(&[2.0, -4.0], &mut FlopCounter::new()).unwrap();
        // A = [[1, 1], [-5, 1]]; b = [2, -4] -> x = [1, 1]
        assert!(approx_eq(x[0], 1.0, 1e-12));
        assert!(approx_eq(x[1], 1.0, 1e-12));
    }

    #[test]
    fn tridiagonal_large_system() {
        // -u'' discretization: tridiagonal [-1, 2, -1], solution recoverable.
        let n = 50;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i > 0 {
                t.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
            }
        }
        let a = t.to_csr();
        let lu = SparseLu::factor(&a, &mut FlopCounter::new()).unwrap();
        let b = vec![1.0; n];
        let x = lu.solve(&b, &mut FlopCounter::new()).unwrap();
        // Verify A·x = b.
        let ax = a.matvec(&x, &mut FlopCounter::new()).unwrap();
        for (l, r) in ax.iter().zip(b.iter()) {
            assert!(approx_eq(*l, *r, 1e-9), "{l} vs {r}");
        }
        // Fill-in for a tridiagonal matrix with diagonal pivoting is zero.
        assert_eq!(lu.nnz(), a.nnz());
        assert!(approx_eq(lu.fill_ratio(), 1.0, 1e-15));
    }

    #[test]
    fn flops_counted_during_factor_and_solve() {
        let entries = [(0, 0, 4.0), (0, 1, -1.0), (1, 0, -1.0), (1, 1, 3.0)];
        let a = CsrMatrix::from_triplets(2, 2, &entries);
        let mut f = FlopCounter::new();
        let lu = SparseLu::factor(&a, &mut f).unwrap();
        assert!(f.total() > 0);
        let before = f;
        lu.solve(&[1.0, 1.0], &mut f).unwrap();
        assert!(f.total() > before.total());
    }

    #[test]
    fn refactor_matches_fresh_factor() {
        // Same pattern, different values: refactor must reproduce a fresh
        // factorization's solution exactly (identical pivot order => the
        // same floating-point operations).
        let n = 30;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 3.0 + i as f64 * 0.1);
            if i > 0 {
                t.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                t.push(i, i + 1, -0.5);
            }
            if i + 5 < n {
                t.push(i, i + 5, 0.25);
            }
        }
        let a1 = t.to_csr();
        let mut lu = SparseLu::factor(&a1, &mut FlopCounter::new()).unwrap();

        // Perturb every value, keeping the pattern.
        let mut a2 = a1.clone();
        for (i, v) in a2.values_mut().iter_mut().enumerate() {
            *v += 0.01 * (i as f64 % 7.0 - 3.0);
        }
        lu.refactor(&a2, &mut FlopCounter::new()).unwrap();
        let fresh = SparseLu::factor(&a2, &mut FlopCounter::new()).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let xr = lu.solve(&b, &mut FlopCounter::new()).unwrap();
        let xf = fresh.solve(&b, &mut FlopCounter::new()).unwrap();
        for (r, f) in xr.iter().zip(xf.iter()) {
            assert!(approx_eq(*r, *f, 1e-12), "{r} vs {f}");
        }
    }

    #[test]
    fn refactor_detects_new_nonzero() {
        let a1 = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (1, 1, 4.0)]);
        let mut lu = SparseLu::factor(&a1, &mut FlopCounter::new()).unwrap();
        // A new structural nonzero must be rejected, not silently dropped.
        let a2 = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (0, 1, 1.0), (1, 1, 4.0)]);
        match lu.refactor(&a2, &mut FlopCounter::new()) {
            Err(NumericError::PatternChanged { .. }) => {}
            other => panic!("expected PatternChanged, got {other:?}"),
        }
        // The original factors survive the failed refactor.
        let x = lu.solve(&[2.0, 8.0], &mut FlopCounter::new()).unwrap();
        assert_eq!(x, vec![1.0, 2.0]);
        // The fallback wrapper recovers by re-factoring.
        let reused = lu.refactor_or_factor(&a2, &mut FlopCounter::new()).unwrap();
        assert!(!reused);
        let x = lu.solve(&[2.0, 4.0], &mut FlopCounter::new()).unwrap();
        assert!(approx_eq(x[0], 0.5, 1e-15), "{}", x[0]);
        assert!(approx_eq(x[1], 1.0, 1e-15), "{}", x[1]);
    }

    #[test]
    fn refactor_detects_degraded_pivot() {
        // Factor with a healthy diagonal, then refactor with the diagonal
        // collapsed so the cached pivot is 1e-9 of the column max: the
        // refactor must refuse rather than amplify rounding error.
        let entries = [(0, 0, 5.0), (1, 0, 1.0), (0, 1, 1.0), (1, 1, 5.0)];
        let a1 = CsrMatrix::from_triplets(2, 2, &entries);
        let mut lu = SparseLu::factor(&a1, &mut FlopCounter::new()).unwrap();
        let degraded = [(0, 0, 1e-9), (1, 0, 1.0), (0, 1, 1.0), (1, 1, 5.0)];
        let a2 = CsrMatrix::from_triplets(2, 2, &degraded);
        match lu.refactor(&a2, &mut FlopCounter::new()) {
            Err(NumericError::PatternChanged { .. }) => {}
            other => panic!("expected degraded-pivot rejection, got {other:?}"),
        }
        // The fallback re-pivots and solves correctly.
        let reused = lu.refactor_or_factor(&a2, &mut FlopCounter::new()).unwrap();
        assert!(!reused);
        let x = lu.solve(&[1.0, 6.0], &mut FlopCounter::new()).unwrap();
        let ax0 = 1e-9 * x[0] + 1.0 * x[1];
        let ax1 = 1.0 * x[0] + 5.0 * x[1];
        assert!(approx_eq(ax0, 1.0, 1e-9), "{ax0}");
        assert!(approx_eq(ax1, 6.0, 1e-9), "{ax1}");
    }

    #[test]
    fn refactor_or_factor_reuses_on_same_pattern() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (1, 1, 4.0)]);
        let mut lu = SparseLu::factor(&a, &mut FlopCounter::new()).unwrap();
        let mut a2 = a.clone();
        a2.values_mut()[0] = 3.0;
        let reused = lu.refactor_or_factor(&a2, &mut FlopCounter::new()).unwrap();
        assert!(reused);
        let x = lu.solve(&[3.0, 8.0], &mut FlopCounter::new()).unwrap();
        assert_eq!(x, vec![1.0, 2.0]);
    }

    #[test]
    fn refactor_handles_permuted_factors() {
        // Force an off-diagonal pivot, then refactor with new values: the
        // permuted structure must still round-trip.
        let entries = [(0, 1, 2.0), (1, 0, 3.0), (1, 1, 0.5)];
        let a1 = CsrMatrix::from_triplets(2, 2, &entries);
        let mut lu =
            SparseLu::factor_with(&a1, PivotStrategy::PartialPivoting, &mut FlopCounter::new())
                .unwrap();
        let entries2 = [(0, 1, 4.0), (1, 0, 5.0), (1, 1, 1.0)];
        let a2 = CsrMatrix::from_triplets(2, 2, &entries2);
        lu.refactor(&a2, &mut FlopCounter::new()).unwrap();
        let x = lu.solve(&[4.0, 6.0], &mut FlopCounter::new()).unwrap();
        // [[0, 4], [5, 1]] x = [4, 6] -> x = [1, 1]
        assert!(approx_eq(x[0], 1.0, 1e-12), "{}", x[0]);
        assert!(approx_eq(x[1], 1.0, 1e-12), "{}", x[1]);
    }

    #[test]
    fn refactor_with_fill_in_columns() {
        // A matrix whose factorization has fill-in: refactor must scatter
        // zeros into fill positions that A does not touch.
        let entries = [
            (0, 0, 4.0),
            (0, 2, 1.0),
            (1, 0, 1.0),
            (1, 1, 4.0),
            (2, 1, 1.0),
            (2, 2, 4.0),
        ];
        let a1 = CsrMatrix::from_triplets(3, 3, &entries);
        let mut lu = SparseLu::factor(&a1, &mut FlopCounter::new()).unwrap();
        let entries2 = [
            (0, 0, 5.0),
            (0, 2, 2.0),
            (1, 0, 2.0),
            (1, 1, 5.0),
            (2, 1, 2.0),
            (2, 2, 5.0),
        ];
        let a2 = CsrMatrix::from_triplets(3, 3, &entries2);
        lu.refactor(&a2, &mut FlopCounter::new()).unwrap();
        let b = [1.0, 2.0, 3.0];
        let x = lu.solve(&b, &mut FlopCounter::new()).unwrap();
        let ax = a2.matvec(&x, &mut FlopCounter::new()).unwrap();
        for (l, r) in ax.iter().zip(b.iter()) {
            assert!(approx_eq(*l, *r, 1e-12), "{l} vs {r}");
        }
    }

    #[test]
    fn solve_into_reuses_buffers() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (1, 1, 4.0)]);
        let lu = SparseLu::factor(&a, &mut FlopCounter::new()).unwrap();
        let mut x = Vec::new();
        let mut work = Vec::new();
        lu.solve_into(&[2.0, 8.0], &mut x, &mut work, &mut FlopCounter::new())
            .unwrap();
        assert_eq!(x, vec![1.0, 2.0]);
        let cap_x = x.capacity();
        lu.solve_into(&[4.0, 4.0], &mut x, &mut work, &mut FlopCounter::new())
            .unwrap();
        assert_eq!(x, vec![2.0, 1.0]);
        assert_eq!(x.capacity(), cap_x, "no reallocation on reuse");
    }

    /// Arrow matrix: dense first row/column + diagonal. Natural order
    /// fills completely; minimum degree keeps L+U as sparse as A.
    fn arrow(n: usize) -> CsrMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 4.0 + i as f64 * 0.01);
            if i > 0 {
                t.push(0, i, 1.0);
                t.push(i, 0, 1.0);
            }
        }
        t.to_csr()
    }

    #[test]
    fn amd_ordering_eliminates_arrow_fill() {
        let a = arrow(40);
        let mut f = FlopCounter::new();
        let nat = SparseLu::factor_ordered(
            &a,
            OrderingChoice::Natural,
            PivotStrategy::default(),
            &mut f,
        )
        .unwrap();
        let amd =
            SparseLu::factor_ordered(&a, OrderingChoice::Amd, PivotStrategy::default(), &mut f)
                .unwrap();
        assert!(
            amd.nnz() < nat.nnz(),
            "amd nnz {} !< natural nnz {}",
            amd.nnz(),
            nat.nnz()
        );
        // AMD eliminates the hub last: zero fill on an arrow matrix.
        assert_eq!(amd.nnz(), a.nnz());
        assert_eq!(amd.ordering_name(), "amd");
        assert_eq!(nat.ordering_name(), "natural");
    }

    #[test]
    fn ordered_solutions_match_natural() {
        let a = arrow(25);
        let b: Vec<f64> = (0..25).map(|i| (i as f64 * 0.7).cos()).collect();
        let mut f = FlopCounter::new();
        let x_nat = SparseLu::factor(&a, &mut f)
            .unwrap()
            .solve(&b, &mut f)
            .unwrap();
        for choice in [OrderingChoice::Rcm, OrderingChoice::Amd] {
            let x = SparseLu::factor_ordered(&a, choice, PivotStrategy::default(), &mut f)
                .unwrap()
                .solve(&b, &mut f)
                .unwrap();
            for (o, n) in x.iter().zip(x_nat.iter()) {
                assert!(approx_eq(*o, *n, 1e-10), "{choice:?}: {o} vs {n}");
            }
        }
    }

    #[test]
    fn ordered_refactor_round_trips() {
        // Refactor under a fill-reducing ordering must solve as exactly as
        // a fresh ordered factor.
        let a1 = arrow(20);
        let mut lu = SparseLu::factor_ordered(
            &a1,
            OrderingChoice::Amd,
            PivotStrategy::default(),
            &mut FlopCounter::new(),
        )
        .unwrap();
        let mut a2 = a1.clone();
        for (i, v) in a2.values_mut().iter_mut().enumerate() {
            *v += 0.02 * ((i % 5) as f64 - 2.0);
        }
        lu.refactor(&a2, &mut FlopCounter::new()).unwrap();
        let b: Vec<f64> = (0..20).map(|i| (i as f64).sin()).collect();
        let x = lu.solve(&b, &mut FlopCounter::new()).unwrap();
        let ax = a2.matvec(&x, &mut FlopCounter::new()).unwrap();
        for (l, r) in ax.iter().zip(b.iter()) {
            assert!(approx_eq(*l, *r, 1e-10), "{l} vs {r}");
        }
    }

    #[test]
    fn ordered_fallback_keeps_ordering_choice() {
        let a1 = arrow(15);
        let mut lu = SparseLu::factor_ordered(
            &a1,
            OrderingChoice::Amd,
            PivotStrategy::default(),
            &mut FlopCounter::new(),
        )
        .unwrap();
        // Different pattern forces the full-factor fallback, which must
        // re-analyze under the same ordering choice.
        let a2 = arrow(16);
        let reused = lu.refactor_or_factor(&a2, &mut FlopCounter::new()).unwrap();
        assert!(!reused);
        assert_eq!(lu.ordering_name(), "amd");
        assert_eq!(lu.dim(), 16);
    }

    #[test]
    fn factor_symbolic_shares_analysis() {
        let a = arrow(12);
        let sym = SymbolicAnalysis::analyze(&a, OrderingChoice::Amd).unwrap();
        let lu1 = SparseLu::factor_symbolic(
            sym.clone(),
            &a,
            PivotStrategy::default(),
            &mut FlopCounter::new(),
        )
        .unwrap();
        let mut a2 = a.clone();
        for v in a2.values_mut() {
            *v *= 1.5;
        }
        let lu2 = SparseLu::factor_symbolic(
            sym.clone(),
            &a2,
            PivotStrategy::default(),
            &mut FlopCounter::new(),
        )
        .unwrap();
        assert_eq!(lu1.nnz(), lu2.nnz());
        // A mismatched matrix is rejected up front.
        let b = arrow(13);
        assert!(matches!(
            SparseLu::factor_symbolic(sym, &b, PivotStrategy::default(), &mut FlopCounter::new()),
            Err(NumericError::PatternChanged { .. })
        ));
    }

    #[test]
    fn determinant_invariant_under_ordering() {
        let a = arrow(9);
        let mut f = FlopCounter::new();
        let d_nat = SparseLu::factor(&a, &mut f).unwrap().determinant();
        for choice in [OrderingChoice::Rcm, OrderingChoice::Amd] {
            let d = SparseLu::factor_ordered(&a, choice, PivotStrategy::default(), &mut f)
                .unwrap()
                .determinant();
            let rel = (d - d_nat).abs() / d_nat.abs().max(1e-300);
            assert!(rel < 1e-9, "{choice:?}: {d} vs {d_nat}");
        }
    }
}
