//! The symbolic phase of the sparse-LU pipeline: apply a fill-reducing
//! ordering and build the permuted column structure once.
//!
//! A [`SymbolicAnalysis`] is everything about a factorization that depends
//! only on the *sparsity pattern* of the input: the resolved fill ordering,
//! the permuted compressed-column structure the numeric factor iterates
//! over, the CSR→permuted-CSC value shuffle that makes re-scattering new
//! values allocation-free, and the CSR fingerprint used to detect pattern
//! changes. One analysis serves arbitrarily many numeric factorizations
//! and refactorizations of matrices with the same pattern — the
//! factor-once/refactor-many strategy of production simulators, now with
//! the ordering decision lifted out of the factorizer.
//!
//! Supernode detection deliberately does **not** live here: the blocked
//! kernels' supernodes are runs of *factor* columns, and the factor's
//! pattern depends on the pivot order the numeric phase chooses. Each
//! [`super::SparseLu`] therefore compiles its own kernel plan (internal
//! `kernels` module) once its pivots are fixed; the
//! analysis's job is to hand the numeric phase a permutation (AMD with
//! supervariables + elimination-tree postorder) under which those runs
//! are long.

use super::order::OrderingChoice;
use super::CsrMatrix;
use crate::error::NumericError;
use crate::Result;

/// Pattern-only analysis shared by every numeric factorization of one
/// sparsity structure: fill ordering + permuted CSC structure + value
/// shuffle + fingerprint.
#[derive(Debug, Clone)]
pub struct SymbolicAnalysis {
    pub(crate) n: usize,
    /// The choice as requested (kept, `Auto` included, so a pattern-change
    /// fallback re-resolves against the new dimension).
    pub(crate) choice: OrderingChoice,
    /// Name of the resolved ordering actually applied.
    pub(crate) ordering_name: &'static str,
    /// `fill_perm[k]` = original index at permuted position `k`.
    pub(crate) fill_perm: Vec<usize>,
    /// Inverse: `fill_pinv[orig]` = permuted position.
    pub(crate) fill_pinv: Vec<usize>,
    /// Fast path flag: the permutation is the identity.
    pub(crate) identity: bool,
    /// CSR fingerprint of the analyzed pattern.
    pub(crate) csr_rowptr: Vec<usize>,
    pub(crate) csr_colidx: Vec<usize>,
    /// Permuted compressed-column structure of the pattern.
    pub(crate) csc_colptr: Vec<usize>,
    pub(crate) csc_rows: Vec<usize>,
    /// Position shuffle: CSR value slot `p` lands in permuted CSC slot
    /// `csr_to_csc[p]`.
    pub(crate) csr_to_csc: Vec<usize>,
}

impl SymbolicAnalysis {
    /// Analyzes the pattern of `a` under the given ordering choice
    /// (`Auto` resolves against the dimension here).
    ///
    /// # Errors
    /// Returns [`NumericError::DimensionMismatch`] for non-square input.
    pub fn analyze(a: &CsrMatrix, choice: OrderingChoice) -> Result<Self> {
        if a.rows() != a.cols() {
            return Err(NumericError::DimensionMismatch {
                context: format!("symbolic analysis of non-square {}x{}", a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        let (row_ptr, col_idx) = a.structure();
        let resolved = choice.resolve(n);
        let fill_perm = match resolved {
            // Skip even building the adjacency for the identity.
            OrderingChoice::Natural => (0..n).collect::<Vec<_>>(),
            other => other.perm(n, row_ptr, col_idx),
        };
        let identity = fill_perm.iter().enumerate().all(|(k, &v)| k == v);
        let mut fill_pinv = vec![0usize; n];
        for (k, &v) in fill_perm.iter().enumerate() {
            fill_pinv[v] = k;
        }
        let (csc_colptr, csc_rows, csr_to_csc) =
            permuted_csc_shuffle(n, row_ptr, col_idx, &fill_pinv);
        Ok(SymbolicAnalysis {
            n,
            choice,
            ordering_name: resolved.name(),
            fill_perm,
            fill_pinv,
            identity,
            csr_rowptr: row_ptr.to_vec(),
            csr_colidx: col_idx.to_vec(),
            csc_colptr,
            csc_rows,
            csr_to_csc,
        })
    }

    /// Dimension of the analyzed pattern.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Nonzeros in the analyzed pattern.
    pub fn nnz(&self) -> usize {
        self.csr_colidx.len()
    }

    /// Name of the resolved ordering ("natural", "rcm", "amd").
    pub fn ordering_name(&self) -> &'static str {
        self.ordering_name
    }

    /// The ordering choice this analysis was requested with (`Auto`
    /// preserved).
    pub fn choice(&self) -> OrderingChoice {
        self.choice
    }

    /// The fill permutation (`perm[k]` = original index at position `k`).
    pub fn fill_perm(&self) -> &[usize] {
        &self.fill_perm
    }

    /// The inverse fill permutation (`pinv[orig]` = permuted position).
    pub fn fill_pinv(&self) -> &[usize] {
        &self.fill_pinv
    }

    /// Whether `a` has exactly the analyzed sparsity pattern.
    pub fn matches(&self, a: &CsrMatrix) -> bool {
        let (row_ptr, col_idx) = a.structure();
        a.rows() == self.n
            && a.cols() == self.n
            && row_ptr == self.csr_rowptr.as_slice()
            && col_idx == self.csr_colidx.as_slice()
    }

    /// Scatters `a`'s values into `out` laid out in this analysis's
    /// permuted CSC slot order (`out` is resized to nnz).
    pub(crate) fn scatter_values(&self, a: &CsrMatrix, out: &mut Vec<f64>) {
        out.resize(self.csr_to_csc.len(), 0.0);
        for (p, &v) in a.values().iter().enumerate() {
            out[self.csr_to_csc[p]] = v;
        }
    }
}

/// Builds the CSC structure of the symmetrically permuted pattern
/// `A(perm, perm)` plus the position shuffle mapping each CSR value slot of
/// `A` to its permuted CSC slot. With the identity permutation this is
/// exactly the plain CSR→CSC transpose shuffle.
fn permuted_csc_shuffle(
    n: usize,
    row_ptr: &[usize],
    col_idx: &[usize],
    pinv: &[usize],
) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let nnz = col_idx.len();
    let mut counts = vec![0usize; n];
    for &c in col_idx {
        counts[pinv[c]] += 1;
    }
    let mut col_ptr = vec![0usize; n + 1];
    for j in 0..n {
        col_ptr[j + 1] = col_ptr[j] + counts[j];
    }
    let mut rows = vec![0usize; nnz];
    let mut shuffle = vec![0usize; nnz];
    let mut next = col_ptr.clone();
    for r in 0..n {
        for p in row_ptr[r]..row_ptr[r + 1] {
            let c = pinv[col_idx[p]];
            let q = next[c];
            rows[q] = pinv[r];
            shuffle[p] = q;
            next[c] += 1;
        }
    }
    (col_ptr, rows, shuffle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::TripletMatrix;

    fn arrow_matrix(n: usize) -> CsrMatrix {
        // Dense first row/column + diagonal: natural order fills
        // completely, minimum degree keeps it sparse.
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 4.0);
            if i > 0 {
                t.push(0, i, 1.0);
                t.push(i, 0, 1.0);
            }
        }
        t.to_csr()
    }

    #[test]
    fn natural_analysis_is_identity() {
        let a = arrow_matrix(6);
        let s = SymbolicAnalysis::analyze(&a, OrderingChoice::Natural).unwrap();
        assert!(s.identity);
        assert_eq!(s.ordering_name(), "natural");
        assert_eq!(s.fill_perm(), (0..6).collect::<Vec<_>>());
        assert!(s.matches(&a));
    }

    #[test]
    fn amd_eliminates_arrow_hub_last() {
        let a = arrow_matrix(8);
        let s = SymbolicAnalysis::analyze(&a, OrderingChoice::Amd).unwrap();
        assert_eq!(s.ordering_name(), "amd");
        // The hub (vertex 0, degree 7) is deferred while leaves (degree 1)
        // are eliminated; once its degree decays to 1 it may tie-break in,
        // so it lands in the last two positions — either way zero fill.
        let hub_pos = s.fill_perm().iter().position(|&v| v == 0).unwrap();
        assert!(hub_pos >= 6, "hub eliminated too early: position {hub_pos}");
    }

    #[test]
    fn auto_resolves_small_to_natural() {
        let a = arrow_matrix(6);
        let s = SymbolicAnalysis::analyze(&a, OrderingChoice::Auto).unwrap();
        assert_eq!(s.ordering_name(), "natural");
        assert_eq!(s.choice(), OrderingChoice::Auto);
    }

    #[test]
    fn mismatched_pattern_detected() {
        let a = arrow_matrix(6);
        let s = SymbolicAnalysis::analyze(&a, OrderingChoice::Natural).unwrap();
        let b = arrow_matrix(7);
        assert!(!s.matches(&b));
    }

    #[test]
    fn non_square_rejected() {
        let a = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]);
        assert!(SymbolicAnalysis::analyze(&a, OrderingChoice::Natural).is_err());
    }

    #[test]
    fn permuted_shuffle_round_trips_values() {
        let a = arrow_matrix(5);
        let s = SymbolicAnalysis::analyze(&a, OrderingChoice::Amd).unwrap();
        let mut vals = Vec::new();
        s.scatter_values(&a, &mut vals);
        // Every permuted CSC slot (j', i') must hold A[perm[i'], perm[j']].
        for j in 0..5 {
            for p in s.csc_colptr[j]..s.csc_colptr[j + 1] {
                let i = s.csc_rows[p];
                let (r, c) = (s.fill_perm[i], s.fill_perm[j]);
                assert_eq!(vals[p], a.get(r, c), "slot ({i},{j}) orig ({r},{c})");
            }
        }
    }
}
