//! Blocked (supernodal) triangular-solve kernels — the fast path behind
//! [`super::SparseLu::solve_into`], `solve_many_into` and `refactor`.
//!
//! # Relaxed supernodes and panels
//!
//! A *supernode* here is a run of adjacent factor columns amalgamated
//! because their patterns overlap enough that one dense, zero-padded
//! *panel* (row-major, one `f64` per row/column cell, no per-entry row
//! indices) is cheaper to stream than the per-entry compressed columns:
//! a padded panel cell costs 8 bytes where a scalar entry costs 16
//! (value + row index), so the amalgamation bound ([`relax_limit_pct`])
//! accepts generous padding. AMD with supervariable detection plus
//! elimination-tree postordering ([`super::order::Amd`]) is what makes
//! such runs common. Each side of a supernode keeps its panel only while
//! the realized padding stays under [`PANEL_MAX_PAD_PCT`]; gated sides
//! fall back to the per-entry loops.
//!
//! The kernels are *push-form*: a supernode's columns update the shared
//! rows through [`panel_update`] — per row one gather, one contiguous
//! dot-chain over the supernode's columns, one scatter — with per-row
//! chains independent across rows, so out-of-order hardware overlaps
//! their floating-point latency (a pure dot-form sweep was measured
//! latency-bound: consecutive rows depend on each other at distance one).
//! The multi-RHS kernel ([`panel_update_multi`]) adds a contiguous
//! right-hand-side lane axis, which is the auto-vectorizable dimension —
//! plain indexed `f64` loops, no nightly `std::simd`.
//!
//! # Bit-exactness contract
//!
//! Every kernel reproduces the scalar reference path
//! ([`super::SparseLu::solve_into_scalar`] / `refactor_scalar`)
//! **bit for bit**: floating-point updates to any one solution entry are
//! applied in the same order and association as the scalar column sweeps;
//! a zero multiplier skips a column's update exactly like the scalar
//! `val != 0.0` guard, and a padded panel cell contributes `acc -= x·0.0`
//! — a bitwise no-op on any finite chain. `tests/solve_kernels.rs` locks
//! the equivalence with proptests over random patterns and orderings.
//!
//! The plan also rewrites both solves into *pivot index space*: the fill
//! permutation, the pivot permutation and the CSR row order collapse into
//! one gather (`in_perm`) on the way in and one scatter (`fill_perm`) on
//! the way out, halving the indirections of the permuted-row scalar path.

use crate::flops::FlopCounter;

/// Maximum supernode width. Bounds the per-kernel stack scratch and keeps
/// the dense triangles small enough to stay cache-resident.
pub(crate) const MAX_SUPERNODE: usize = 32;

/// Row-chunk width of the explicit-SIMD `f64` panel kernels: the shared
/// rows of a panel update are processed in groups of four independent
/// accumulator chains (`[f64; 4]`), a shape the autovectorizer lowers to
/// 256-bit lanes without reassociating any per-row chain.
pub(crate) const LANES_F64: usize = 4;

/// Row-chunk width of the `f32` panel kernels (`[f32; 8]` — same 256-bit
/// register budget, twice the lanes).
pub(crate) const LANES_F32: usize = 8;

/// Per-column absolute slack of the relaxation bound (lets very sparse
/// neighboring columns amalgamate when the constant overhead dominates).
pub(crate) const RELAX_SLACK: usize = 4;

/// Maximum realized padding (zero entries per hundred panel entries) a
/// side's panel may carry before the layout drops it and the kernels fall
/// back to the per-entry scalar loops for that side of the supernode.
pub(crate) const PANEL_MAX_PAD_PCT: usize = 110;

/// Smallest dimension at which the blocked kernels engage by default.
/// Below this the whole factor is cache-resident and the per-supernode
/// machinery costs more than the panels save (measured: mesh10/mesh20 run
/// 10–25% faster through the plain scalar sweeps), so small factors keep
/// the exact pre-blocking hot path; `SparseLu::set_blocked_kernels`
/// overrides the gate for tests and benches.
pub(crate) const BLOCKED_MIN_DIM: usize = 512;

/// Width-dependent relaxed-amalgamation bound (CHOLMOD-style): narrow
/// supernodes accept generous zero padding — width is what amortizes the
/// per-row gather/scatter, so buying it cheaply at small `w` pays — while
/// wide ones must stay tight. Returns the allowed
/// `padded_entries / true_entries` ratio scaled by 100.
#[inline]
pub(crate) fn relax_limit_pct(w: usize) -> usize {
    // A padded panel entry streams 8 bytes where a scalar entry streams 16
    // (value + row index), so padding up to ~100% of the true entries
    // still reduces memory traffic; wider supernodes tighten the bound to
    // keep the dense triangles honest.
    match w {
        0..=8 => 210,
        9..=16 => 180,
        _ => 150,
    }
}

/// The blocked-kernel execution plan of one numeric factorization:
/// supernode partition, pivot-space index maps, and dense value panels
/// mirroring the supernodal entries of `l_vals` / `u_vals`.
#[derive(Debug, Clone, Default)]
pub(crate) struct SupernodePlan {
    /// `in_perm[k]` = original RHS index loaded into pivot slot `k`
    /// (`fill_perm ∘ pivot_perm`).
    pub in_perm: Vec<usize>,
    /// `l_rows_piv[p]` = pivot index of `l_rows[p]` (`u32`: half the
    /// index bytes of the scalar path's `usize` rows — the triangular
    /// sweeps are memory-bound, so index width is wall-clock).
    pub l_rows_piv: Vec<u32>,
    /// `u_rows32[p]` = `u_rows[p]` as `u32` (same byte-width rationale).
    pub u_rows32: Vec<u32>,
    /// `csc_rows_piv[p]` = pivot index of the symbolic analysis's
    /// `csc_rows[p]` (the refactor scatter target).
    pub csc_rows_piv: Vec<u32>,
    /// Supernode column boundaries; supernode `s` spans columns
    /// `sn_ptr[s]..sn_ptr[s+1]`.
    pub sn_ptr: Vec<usize>,
    /// Column → supernode id.
    pub sn_of: Vec<usize>,

    /// Shared below-block L rows (pivot indices `>= sn end`), per
    /// supernode; empty for width-1 supernodes.
    pub l_rows_ptr: Vec<usize>,
    pub l_sn_rows: Vec<usize>,
    /// Row-major `|S_L| × w` shared-row value panels, leading dimension
    /// `w` (+ source slots in `l_vals` used to refresh them after a
    /// refactor; `usize::MAX` slots are structural zero padding).
    pub l_panel_ptr: Vec<usize>,
    pub l_panel: Vec<f64>,
    pub l_panel_src: Vec<usize>,
    /// Dense intra-block strictly-lower triangles, per supernode: for each
    /// column `c`, rows `c+1..w` (length `w(w-1)/2`).
    pub l_tri_ptr: Vec<usize>,
    pub l_tri: Vec<f64>,
    pub l_tri_src: Vec<usize>,

    /// Shared above-block U rows (pivot indices `< sn start`).
    pub u_rows_ptr: Vec<usize>,
    pub u_sn_rows: Vec<usize>,
    pub u_panel_ptr: Vec<usize>,
    pub u_panel: Vec<f64>,
    pub u_panel_src: Vec<usize>,
    /// Dense intra-block strictly-upper triangles: for each column `c`,
    /// rows `0..c`.
    pub u_tri_ptr: Vec<usize>,
    pub u_tri: Vec<f64>,
    pub u_tri_src: Vec<usize>,

    /// Single-precision mirrors of the panels and triangles — the `f32`
    /// storage mode behind mixed-precision solves. Empty (zero upkeep)
    /// until [`SupernodePlan::refresh_f32`] first runs; refreshed from the
    /// **f32 value mirrors** so panel entries are bitwise equal to the
    /// per-entry `f32` fallback path.
    pub l_panel32: Vec<f32>,
    pub u_panel32: Vec<f32>,
    pub l_tri32: Vec<f32>,
    pub u_tri32: Vec<f32>,

    /// Per-supernode kernel gates: a side whose realized union padding is
    /// too high keeps no panel (`false`) and its columns run through the
    /// per-entry scalar path instead — padding beyond
    /// [`PANEL_MAX_PAD_PCT`] costs more than the panel saves.
    pub l_use: Vec<bool>,
    pub u_use: Vec<bool>,

    /// Master gate: `false` (dimension below [`BLOCKED_MIN_DIM`], unless
    /// overridden) skips panel materialization entirely and routes
    /// `solve_into` / `refactor` through the scalar sweeps — the supernode
    /// partition and its statistics are still computed.
    pub enabled: bool,
}

impl SupernodePlan {
    /// Number of multi-column supernodes (width >= 2).
    pub fn supernode_count(&self) -> usize {
        (0..self.sn_ptr.len().saturating_sub(1))
            .filter(|&s| self.width(s) >= 2)
            .count()
    }

    /// Number of factor columns covered by multi-column supernodes.
    pub fn supernode_cols(&self) -> usize {
        (0..self.sn_ptr.len().saturating_sub(1))
            .map(|s| self.width(s))
            .filter(|&w| w >= 2)
            .sum()
    }

    #[inline]
    pub fn width(&self, s: usize) -> usize {
        self.sn_ptr[s + 1] - self.sn_ptr[s]
    }

    /// Builds the plan from a finished numeric factorization: amalgamates
    /// adjacent columns into *relaxed* supernodes wherever the dense-panel
    /// padding stays cheap, lays out the index maps of every panel, and
    /// compiles the pull-form row programs of the single-RHS solves
    /// (values are installed by [`SupernodePlan::refresh`]).
    ///
    /// Relaxation: a supernode's panels cover the **union** of its columns'
    /// patterns, with structurally absent entries padded by explicit
    /// zeros. A zero panel entry subtracts `xs · 0.0` — a bitwise no-op on
    /// any finite update chain — so padding preserves the bit-exactness
    /// contract while letting merged-supervariable columns (whose `U`
    /// patterns differ in the pre-merge region) still share one panel. The
    /// cost model accepts an extension while the padded panel work stays
    /// within [`relax_limit_pct`] of the true entry count (plus a small
    /// per-column slack), so sparsity is never traded away wholesale.
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        n: usize,
        perm: &[usize],
        fill_perm: &[usize],
        csc_rows: &[usize],
        l_colptr: &[usize],
        l_rows: &[usize],
        u_colptr: &[usize],
        u_rows: &[usize],
        force_blocked: Option<bool>,
    ) -> SupernodePlan {
        // Pivot-space index maps.
        let mut pinv_piv = vec![0usize; n];
        for (k, &r) in perm.iter().enumerate() {
            pinv_piv[r] = k;
        }
        let in_perm: Vec<usize> = perm.iter().map(|&r| fill_perm[r]).collect();
        let l_rows_piv: Vec<u32> = l_rows.iter().map(|&r| pinv_piv[r] as u32).collect();
        let u_rows32: Vec<u32> = u_rows.iter().map(|&r| r as u32).collect();
        let csc_rows_piv: Vec<u32> = csc_rows.iter().map(|&r| pinv_piv[r] as u32).collect();

        // Sorted pivot-space L pattern per column (amalgamation scratch).
        let lp_sorted: Vec<Vec<usize>> = (0..n)
            .map(|k| {
                let mut v: Vec<usize> = l_rows_piv[l_colptr[k]..l_colptr[k + 1]]
                    .iter()
                    .map(|&r| r as usize)
                    .collect();
                v.sort_unstable();
                v
            })
            .collect();

        // Greedy cost-bounded amalgamation.
        let mut sn_ptr = vec![0usize];
        let mut sn_of = vec![0usize; n];
        let mut union_l: Vec<usize> = Vec::new();
        let mut union_u: Vec<usize> = Vec::new();
        let mut merged: Vec<usize> = Vec::new();
        let mut k = 0usize;
        while k < n {
            let k0 = k;
            union_l.clear();
            union_l.extend_from_slice(&lp_sorted[k0]);
            union_u.clear();
            union_u.extend_from_slice(&u_rows[u_colptr[k0]..u_colptr[k0 + 1]]);
            let mut true_total = union_l.len() + union_u.len();
            k += 1;
            while k < n && k - k0 < MAX_SUPERNODE {
                let w = k - k0 + 1;
                // Candidate unions with column k folded in (U keeps only
                // the shared region below k0; intra rows live in the
                // padded triangle).
                sorted_union(&union_l, &lp_sorted[k], &mut merged);
                std::mem::swap(&mut union_l, &mut merged);
                sorted_union_filtered(
                    &union_u,
                    &u_rows[u_colptr[k]..u_colptr[k + 1]],
                    k0,
                    &mut merged,
                );
                std::mem::swap(&mut union_u, &mut merged);
                let cand_true =
                    true_total + (l_colptr[k + 1] - l_colptr[k]) + (u_colptr[k + 1] - u_colptr[k]);
                let shared_l = union_l.iter().filter(|&&r| r > k).count();
                let padded = w * (w - 1) + w * (shared_l + union_u.len());
                if padded * 100 <= cand_true * relax_limit_pct(w) + RELAX_SLACK * w * 100 {
                    true_total = cand_true;
                    k += 1;
                } else {
                    // Roll back: the unions are rebuilt at the next k0.
                    break;
                }
            }
            let s = sn_ptr.len() - 1;
            for c in k0..k {
                sn_of[c] = s;
            }
            sn_ptr.push(k);
        }

        let ns = sn_ptr.len() - 1;
        let mut plan = SupernodePlan {
            in_perm,
            l_rows_piv,
            u_rows32,
            csc_rows_piv,
            sn_ptr,
            sn_of,
            l_rows_ptr: vec![0; ns + 1],
            u_rows_ptr: vec![0; ns + 1],
            l_panel_ptr: vec![0; ns + 1],
            u_panel_ptr: vec![0; ns + 1],
            l_tri_ptr: vec![0; ns + 1],
            u_tri_ptr: vec![0; ns + 1],
            l_use: vec![false; ns],
            u_use: vec![false; ns],
            enabled: force_blocked.unwrap_or(n >= BLOCKED_MIN_DIM),
            ..SupernodePlan::default()
        };
        if !plan.enabled {
            // Scalar routing: the partition and its statistics stand, but
            // no panels are materialized and no upkeep is ever paid.
            return plan;
        }

        // Panel layout + source maps. `pos_of` maps a shared row (pivot
        // index) to its slot within the current supernode's row list;
        // `usize::MAX` source slots are zero padding.
        let mut pos_of = vec![usize::MAX; n];
        for s in 0..ns {
            let (k0, k1) = (plan.sn_ptr[s], plan.sn_ptr[s + 1]);
            let w = k1 - k0;
            if w < 2 {
                plan.l_rows_ptr[s + 1] = plan.l_sn_rows.len();
                plan.u_rows_ptr[s + 1] = plan.u_sn_rows.len();
                plan.l_panel_ptr[s + 1] = plan.l_panel_src.len();
                plan.u_panel_ptr[s + 1] = plan.u_panel_src.len();
                plan.l_tri_ptr[s + 1] = plan.l_tri_src.len();
                plan.u_tri_ptr[s + 1] = plan.u_tri_src.len();
                continue;
            }
            // Shared row unions of the supernode's columns.
            union_l.clear();
            union_u.clear();
            for col in k0..k1 {
                sorted_union(&union_l, &lp_sorted[col], &mut merged);
                std::mem::swap(&mut union_l, &mut merged);
                sorted_union_filtered(
                    &union_u,
                    &u_rows[u_colptr[col]..u_colptr[col + 1]],
                    k0,
                    &mut merged,
                );
                std::mem::swap(&mut union_u, &mut merged);
            }
            union_l.retain(|&r| r >= k1);

            // Realized padding decides whether the side keeps a panel at
            // all: the columns of a too-ragged side run scalar instead.
            let true_l: usize = (k0..k1).map(|c| l_colptr[c + 1] - l_colptr[c]).sum();
            let padded_l = w * (w - 1) / 2 + w * union_l.len();
            plan.l_use[s] = padded_l * 100 <= true_l.max(1) * (100 + PANEL_MAX_PAD_PCT);
            let nr = union_l.len();
            if plan.l_use[s] {
                for (i, &r) in union_l.iter().enumerate() {
                    pos_of[r] = i;
                }
                let lp_base = plan.l_panel_src.len();
                plan.l_panel_src.resize(lp_base + nr * w, usize::MAX);
                let lt_base = plan.l_tri_src.len();
                plan.l_tri_src.resize(lt_base + w * (w - 1) / 2, usize::MAX);
                for c in 0..w {
                    let col = k0 + c;
                    let tri_col = lt_base + c * (2 * w - c - 1) / 2;
                    for p in l_colptr[col]..l_colptr[col + 1] {
                        let piv = plan.l_rows_piv[p] as usize;
                        if piv < k1 {
                            // Intra row: dense triangle slot (rows c+1..w).
                            plan.l_tri_src[tri_col + (piv - k0) - c - 1] = p;
                        } else {
                            plan.l_panel_src[lp_base + pos_of[piv] * w + c] = p;
                        }
                    }
                }
                for &r in &union_l {
                    pos_of[r] = usize::MAX;
                }
                plan.l_sn_rows.extend_from_slice(&union_l);
            }

            let true_u: usize = (k0..k1).map(|c| u_colptr[c + 1] - u_colptr[c]).sum();
            let padded_u = w * (w - 1) / 2 + w * union_u.len();
            plan.u_use[s] = padded_u * 100 <= true_u.max(1) * (100 + PANEL_MAX_PAD_PCT);
            if plan.u_use[s] {
                let nru = union_u.len();
                let up_base = plan.u_panel_src.len();
                let ut_base = plan.u_tri_src.len();
                for (i, &r) in union_u.iter().enumerate() {
                    pos_of[r] = i;
                }
                plan.u_panel_src.resize(up_base + nru * w, usize::MAX);
                plan.u_tri_src.resize(ut_base + w * (w - 1) / 2, usize::MAX);
                for c in 0..w {
                    let col = k0 + c;
                    let tri_base = ut_base + (c * c - c) / 2;
                    for p in u_colptr[col]..u_colptr[col + 1] {
                        let piv = u_rows[p];
                        if piv >= k0 {
                            // Intra row: triangle slot (rows 0..c of column c).
                            plan.u_tri_src[tri_base + (piv - k0)] = p;
                        } else {
                            plan.u_panel_src[up_base + pos_of[piv] * w + c] = p;
                        }
                    }
                }
                for &r in &union_u {
                    pos_of[r] = usize::MAX;
                }
                plan.u_sn_rows.extend_from_slice(&union_u);
            }

            plan.l_rows_ptr[s + 1] = plan.l_sn_rows.len();
            plan.u_rows_ptr[s + 1] = plan.u_sn_rows.len();
            plan.l_panel_ptr[s + 1] = plan.l_panel_src.len();
            plan.u_panel_ptr[s + 1] = plan.u_panel_src.len();
            plan.l_tri_ptr[s + 1] = plan.l_tri_src.len();
            plan.u_tri_ptr[s + 1] = plan.u_tri_src.len();
        }
        plan.l_panel = vec![0.0; plan.l_panel_src.len()];
        plan.u_panel = vec![0.0; plan.u_panel_src.len()];
        plan.l_tri = vec![0.0; plan.l_tri_src.len()];
        plan.u_tri = vec![0.0; plan.u_tri_src.len()];
        plan
    }

    /// Refreshes every panel and pull-stream value from the canonical
    /// factor arrays (`usize::MAX` source slots are structural zero
    /// padding).
    pub fn refresh(&mut self, l_vals: &[f64], u_vals: &[f64]) {
        refresh_range(&mut self.l_panel, &self.l_panel_src, l_vals, 0, usize::MAX);
        refresh_range(&mut self.l_tri, &self.l_tri_src, l_vals, 0, usize::MAX);
        refresh_range(&mut self.u_panel, &self.u_panel_src, u_vals, 0, usize::MAX);
        refresh_range(&mut self.u_tri, &self.u_tri_src, u_vals, 0, usize::MAX);
    }

    /// Refreshes one supernode's panels (called by the blocked refactor as
    /// soon as the supernode's last column is final, so later columns can
    /// eliminate against up-to-date panels; the pull streams are mirrored
    /// in place by the refactor itself).
    pub fn refresh_supernode(&mut self, s: usize, l_vals: &[f64], u_vals: &[f64]) {
        refresh_range(
            &mut self.l_panel,
            &self.l_panel_src,
            l_vals,
            self.l_panel_ptr[s],
            self.l_panel_ptr[s + 1],
        );
        refresh_range(
            &mut self.l_tri,
            &self.l_tri_src,
            l_vals,
            self.l_tri_ptr[s],
            self.l_tri_ptr[s + 1],
        );
        refresh_range(
            &mut self.u_panel,
            &self.u_panel_src,
            u_vals,
            self.u_panel_ptr[s],
            self.u_panel_ptr[s + 1],
        );
        refresh_range(
            &mut self.u_tri,
            &self.u_tri_src,
            u_vals,
            self.u_tri_ptr[s],
            self.u_tri_ptr[s + 1],
        );
    }

    /// Refreshes (allocating on first use) the `f32` panel mirrors from the
    /// single-precision value mirrors. Called only when mixed precision is
    /// enabled, after the canonical `f64` panels are current — plans that
    /// never solve in mixed mode pay nothing.
    pub fn refresh_f32(&mut self, l_vals32: &[f32], u_vals32: &[f32]) {
        self.l_panel32.resize(self.l_panel_src.len(), 0.0);
        self.u_panel32.resize(self.u_panel_src.len(), 0.0);
        self.l_tri32.resize(self.l_tri_src.len(), 0.0);
        self.u_tri32.resize(self.u_tri_src.len(), 0.0);
        refresh_range_f32(&mut self.l_panel32, &self.l_panel_src, l_vals32);
        refresh_range_f32(&mut self.l_tri32, &self.l_tri_src, l_vals32);
        refresh_range_f32(&mut self.u_panel32, &self.u_panel_src, u_vals32);
        refresh_range_f32(&mut self.u_tri32, &self.u_tri_src, u_vals32);
    }
}

/// Copies `vals[src[i]]` into `dst[i]` over `[lo, hi)` (`hi = usize::MAX`
/// means the whole array); `usize::MAX` sources are zero padding.
fn refresh_range(dst: &mut [f64], src: &[usize], vals: &[f64], lo: usize, hi: usize) {
    let hi = hi.min(dst.len());
    for i in lo..hi {
        let s = src[i];
        dst[i] = if s == usize::MAX { 0.0 } else { vals[s] };
    }
}

/// Whole-array [`refresh_range`] analogue for the `f32` mirrors.
fn refresh_range_f32(dst: &mut [f32], src: &[usize], vals: &[f32]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = if s == usize::MAX { 0.0 } else { vals[s] };
    }
}

/// Merges two ascending index lists into `out` (set union).
fn sorted_union(a: &[usize], b: &[usize], out: &mut Vec<usize>) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// [`sorted_union`] keeping only `b` entries strictly below `limit` (the
/// shared above-block region of a U column).
fn sorted_union_filtered(a: &[usize], b: &[usize], limit: usize, out: &mut Vec<usize>) {
    let cut = b.partition_point(|&r| r < limit);
    sorted_union(a, &b[..cut], out);
}

/// Shared-row panel update `z[rows[i]] -= Σ_c xs[c] · panel[i·w + c]`
/// (row-major panel, leading dimension `w`), chained over `active` columns
/// in the given order *per row* — bit-equal to the scalar per-column
/// scatter, with one gather + one scatter per row instead of one per
/// factor entry. The per-row chains are independent, so out-of-order
/// hardware overlaps them freely.
#[inline]
pub(crate) fn panel_update(
    z: &mut [f64],
    rows: &[usize],
    panel: &[f64],
    w: usize,
    xs: &[f64],
    active: &[usize],
) {
    // Full-active panels run row-chunked: [`LANES_F64`] rows advance as one
    // `[f64; 4]` accumulator group, every lane a *separate* row whose
    // column chain keeps the exact scalar order and association — the lane
    // axis is across independent chains, never within one, so the shape
    // vectorizes without touching the bit-exactness contract. Shared rows
    // are distinct pivot indices, so lanes never alias.
    if active.len() == w && active[0] == 0 {
        // All columns active in ascending order (the common forward case):
        // straight contiguous dot-chains, no index indirection. The
        // iterator zips compile without bounds checks.
        let mut rc = rows.chunks_exact(LANES_F64);
        let mut pc = panel.chunks_exact(LANES_F64 * w);
        for (rq, pq) in (&mut rc).zip(&mut pc) {
            let mut acc = [z[rq[0]], z[rq[1]], z[rq[2]], z[rq[3]]];
            let (p0, rest) = pq.split_at(w);
            let (p1, rest) = rest.split_at(w);
            let (p2, p3) = rest.split_at(w);
            for ((((x, a0), a1), a2), a3) in xs[..w].iter().zip(p0).zip(p1).zip(p2).zip(p3) {
                acc[0] -= x * a0;
                acc[1] -= x * a1;
                acc[2] -= x * a2;
                acc[3] -= x * a3;
            }
            for (&row, &a) in rq.iter().zip(&acc) {
                z[row] = a;
            }
        }
        for (&row, prow) in rc.remainder().iter().zip(pc.remainder().chunks_exact(w)) {
            let mut acc = z[row];
            for (p, x) in prow.iter().zip(&xs[..w]) {
                acc -= x * p;
            }
            z[row] = acc;
        }
    } else if active.len() == w {
        // All columns active in descending order (the common backward
        // case) — same chains, reversed, preserving the scalar update
        // order per row.
        let mut rc = rows.chunks_exact(LANES_F64);
        let mut pc = panel.chunks_exact(LANES_F64 * w);
        for (rq, pq) in (&mut rc).zip(&mut pc) {
            let mut acc = [z[rq[0]], z[rq[1]], z[rq[2]], z[rq[3]]];
            let (p0, rest) = pq.split_at(w);
            let (p1, rest) = rest.split_at(w);
            let (p2, p3) = rest.split_at(w);
            for ((((x, a0), a1), a2), a3) in xs[..w].iter().zip(p0).zip(p1).zip(p2).zip(p3).rev() {
                acc[0] -= x * a0;
                acc[1] -= x * a1;
                acc[2] -= x * a2;
                acc[3] -= x * a3;
            }
            for (&row, &a) in rq.iter().zip(&acc) {
                z[row] = a;
            }
        }
        for (&row, prow) in rc.remainder().iter().zip(pc.remainder().chunks_exact(w)) {
            let mut acc = z[row];
            for (p, x) in prow.iter().zip(&xs[..w]).rev() {
                acc -= x * p;
            }
            z[row] = acc;
        }
    } else {
        for (&row, prow) in rows.iter().zip(panel.chunks_exact(w)) {
            let mut acc = z[row];
            for &c in active {
                acc -= xs[c] * prow[c];
            }
            z[row] = acc;
        }
    }
}

/// Single-precision [`panel_update`]: identical structure with `[f32; 8]`
/// row chunks ([`LANES_F32`]). Serves the mixed-precision triangular
/// sweeps, whose answers are polished back to f64 by iterative refinement
/// — so this kernel has no bit-exactness obligation to the f64 path, only
/// to the per-entry `f32` fallback loops (same chains, same order).
#[inline]
pub(crate) fn panel_update_f32(
    z: &mut [f32],
    rows: &[usize],
    panel: &[f32],
    w: usize,
    xs: &[f32],
    active: &[usize],
) {
    if active.len() == w && active[0] == 0 {
        let mut rc = rows.chunks_exact(LANES_F32);
        let mut pc = panel.chunks_exact(LANES_F32 * w);
        for (rq, pq) in (&mut rc).zip(&mut pc) {
            let mut acc = [0.0f32; LANES_F32];
            for (a, &row) in acc.iter_mut().zip(rq) {
                *a = z[row];
            }
            for (l, prow) in pq.chunks_exact(w).enumerate() {
                let mut a = acc[l];
                for (p, x) in prow.iter().zip(&xs[..w]) {
                    a -= x * p;
                }
                acc[l] = a;
            }
            for (&row, &a) in rq.iter().zip(&acc) {
                z[row] = a;
            }
        }
        for (&row, prow) in rc.remainder().iter().zip(pc.remainder().chunks_exact(w)) {
            let mut acc = z[row];
            for (p, x) in prow.iter().zip(&xs[..w]) {
                acc -= x * p;
            }
            z[row] = acc;
        }
    } else if active.len() == w {
        for (&row, prow) in rows.iter().zip(panel.chunks_exact(w)) {
            let mut acc = z[row];
            for (p, x) in prow.iter().zip(&xs[..w]).rev() {
                acc -= x * p;
            }
            z[row] = acc;
        }
    } else {
        for (&row, prow) in rows.iter().zip(panel.chunks_exact(w)) {
            let mut acc = z[row];
            for &c in active {
                acc -= xs[c] * prow[c];
            }
            z[row] = acc;
        }
    }
}

/// Multi-RHS shared-row panel update over `nrhs` interleaved lanes:
/// `z[rows[i]·K + r] -= Σ_c xs[c·K + r] · panel[i·w + c]`, columns chained
/// in `active` order per (row, lane); the contiguous lane loop is the
/// auto-vectorizable axis.
#[inline]
pub(crate) fn panel_update_multi(
    z: &mut [f64],
    rows: &[usize],
    panel: &[f64],
    w: usize,
    xs: &[f64],
    active: &[usize],
    nrhs: usize,
) {
    for (&row, prow) in rows.iter().zip(panel.chunks_exact(w)) {
        let dst = &mut z[row * nrhs..row * nrhs + nrhs];
        for &c in active {
            let col_val = prow[c];
            let xr = &xs[c * nrhs..c * nrhs + nrhs];
            // RHS lanes in [`LANES_F64`] chunks: each lane is an
            // independent right-hand side, so the chunking changes no
            // chain — it only hands the compiler a fixed `[f64; 4]`
            // shape per iteration.
            let mut dc = dst.chunks_exact_mut(LANES_F64);
            let mut xc = xr.chunks_exact(LANES_F64);
            for (dq, xq) in (&mut dc).zip(&mut xc) {
                dq[0] -= xq[0] * col_val;
                dq[1] -= xq[1] * col_val;
                dq[2] -= xq[2] * col_val;
                dq[3] -= xq[3] * col_val;
            }
            for (d, &x) in dc.into_remainder().iter_mut().zip(xc.remainder()) {
                *d -= x * col_val;
            }
        }
    }
}

/// Counts lanes of an interleaved multi-RHS slot group that are nonzero —
/// the multi-RHS flop accounting mirrors `nrhs` independent scalar solves,
/// which skip zero columns.
#[inline]
pub(crate) fn nonzero_lanes(xs: &[f64]) -> u64 {
    xs.iter().filter(|v| **v != 0.0).count() as u64
}

/// Records the flops of one forward/backward column update applied to
/// `len` rows for `nz` nonzero lanes.
#[inline]
pub(crate) fn count_col_fma(flops: &mut FlopCounter, len: usize, nz: u64) {
    if nz > 0 {
        flops.fma(len as u64 * nz);
    }
}
