//! Compressed sparse row storage.

use crate::dense::DenseMatrix;
use crate::error::NumericError;
use crate::flops::FlopCounter;
use crate::Result;

/// An immutable compressed-sparse-row matrix.
///
/// Built from triplets (see [`crate::sparse::TripletMatrix::to_csr`]); column
/// indices within each row are sorted and duplicate positions summed.
///
/// # Example
/// ```
/// use nanosim_numeric::sparse::CsrMatrix;
/// use nanosim_numeric::flops::FlopCounter;
/// let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (1, 1, 3.0)]);
/// let y = m.matvec(&[1.0, 1.0], &mut FlopCounter::new()).unwrap();
/// assert_eq!(y, vec![2.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from coordinate entries, summing duplicates.
    ///
    /// # Panics
    /// Panics if any entry is out of bounds.
    pub fn from_triplets(rows: usize, cols: usize, entries: &[(usize, usize, f64)]) -> Self {
        for &(r, c, _) in entries {
            assert!(
                r < rows && c < cols,
                "triplet ({r}, {c}) out of bounds for {rows}x{cols}"
            );
        }
        // Count entries per row.
        let mut counts = vec![0usize; rows];
        for &(r, _, _) in entries {
            counts[r] += 1;
        }
        let mut row_ptr = vec![0usize; rows + 1];
        for i in 0..rows {
            row_ptr[i + 1] = row_ptr[i] + counts[i];
        }
        // Scatter into place.
        let mut col_idx = vec![0usize; entries.len()];
        let mut values = vec![0.0; entries.len()];
        let mut next = row_ptr.clone();
        for &(r, c, v) in entries {
            let p = next[r];
            col_idx[p] = c;
            values[p] = v;
            next[r] += 1;
        }
        // Sort each row by column and merge duplicates.
        let mut out_col = Vec::with_capacity(entries.len());
        let mut out_val = Vec::with_capacity(entries.len());
        let mut out_ptr = vec![0usize; rows + 1];
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for r in 0..rows {
            scratch.clear();
            for p in row_ptr[r]..row_ptr[r + 1] {
                scratch.push((col_idx[p], values[p]));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                let mut v = scratch[i].1;
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == c {
                    v += scratch[j].1;
                    j += 1;
                }
                out_col.push(c);
                out_val.push(v);
                i = j;
            }
            out_ptr[r + 1] = out_col.len();
        }
        CsrMatrix {
            rows,
            cols,
            row_ptr: out_ptr,
            col_idx: out_col,
            values: out_val,
        }
    }

    /// Builds a CSR matrix from a dense one, dropping exact zeros.
    pub fn from_dense(m: &DenseMatrix) -> Self {
        let mut entries = Vec::new();
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                let v = m[(i, j)];
                if v != 0.0 {
                    entries.push((i, j, v));
                }
            }
        }
        CsrMatrix::from_triplets(m.rows(), m.cols(), &entries)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries (including explicit zeros).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The stored values in row-major position order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the stored values. The sparsity *pattern* is
    /// immutable; this is the hook that lets assembly workspaces re-stamp a
    /// prebuilt pattern in place instead of rebuilding the matrix.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// The structural arrays `(row_ptr, col_idx)` of the CSR layout.
    pub fn structure(&self) -> (&[usize], &[usize]) {
        (&self.row_ptr, &self.col_idx)
    }

    /// Flat position of the stored entry at `(row, col)` (an index into
    /// [`CsrMatrix::values`]), or `None` when the position is structurally
    /// absent.
    ///
    /// # Panics
    /// Panics if out of bounds.
    pub fn position(&self, row: usize, col: usize) -> Option<usize> {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        let lo = self.row_ptr[row];
        let hi = self.row_ptr[row + 1];
        self.col_idx[lo..hi]
            .binary_search(&col)
            .ok()
            .map(|p| lo + p)
    }

    /// Value at `(row, col)`; zero when the position is not stored.
    ///
    /// # Panics
    /// Panics if out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        let lo = self.row_ptr[row];
        let hi = self.row_ptr[row + 1];
        match self.col_idx[lo..hi].binary_search(&col) {
            Ok(p) => self.values[lo + p],
            Err(_) => 0.0,
        }
    }

    /// Iterates over row `r` as `(col, value)` pairs.
    ///
    /// # Panics
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(r < self.rows, "row {r} out of bounds");
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        self.col_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Iterates over every stored `(row, col, value)` entry.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |r| self.row(r).map(move |(c, v)| (r, c, v)))
    }

    /// Matrix–vector product `y = A·x`, recording one FMA per stored entry.
    ///
    /// # Errors
    /// Returns [`NumericError::DimensionMismatch`] if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64], flops: &mut FlopCounter) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(NumericError::DimensionMismatch {
                context: format!(
                    "sparse matvec: {}x{} by vector of {}",
                    self.rows,
                    self.cols,
                    x.len()
                ),
            });
        }
        let mut y = vec![0.0; self.rows];
        for r in 0..self.rows {
            let mut acc = 0.0;
            for p in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[p] * x[self.col_idx[p]];
            }
            y[r] = acc;
        }
        flops.fma(self.nnz() as u64);
        Ok(y)
    }

    /// Allocation-free product `y = A·x` into a caller-provided buffer.
    ///
    /// # Errors
    /// Returns [`NumericError::DimensionMismatch`] on shape mismatch.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64], flops: &mut FlopCounter) -> Result<()> {
        if x.len() != self.cols || y.len() != self.rows {
            return Err(NumericError::DimensionMismatch {
                context: format!(
                    "sparse matvec_into: {}x{} by x of {} into y of {}",
                    self.rows,
                    self.cols,
                    x.len(),
                    y.len()
                ),
            });
        }
        for r in 0..self.rows {
            let mut acc = 0.0;
            for p in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[p] * x[self.col_idx[p]];
            }
            y[r] = acc;
        }
        flops.fma(self.nnz() as u64);
        Ok(())
    }

    /// In-place accumulating product `y += alpha * A·x`.
    ///
    /// # Errors
    /// Returns [`NumericError::DimensionMismatch`] on shape mismatch.
    pub fn matvec_acc(
        &self,
        alpha: f64,
        x: &[f64],
        y: &mut [f64],
        flops: &mut FlopCounter,
    ) -> Result<()> {
        if x.len() != self.cols || y.len() != self.rows {
            return Err(NumericError::DimensionMismatch {
                context: format!(
                    "sparse matvec_acc: {}x{} by x of {} into y of {}",
                    self.rows,
                    self.cols,
                    x.len(),
                    y.len()
                ),
            });
        }
        for r in 0..self.rows {
            let mut acc = 0.0;
            for p in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[p] * x[self.col_idx[p]];
            }
            y[r] += alpha * acc;
        }
        flops.fma(self.nnz() as u64 + self.rows as u64);
        Ok(())
    }

    /// Transposed copy (rows become columns).
    pub fn transpose(&self) -> CsrMatrix {
        let entries: Vec<_> = self.iter().map(|(r, c, v)| (c, r, v)).collect();
        CsrMatrix::from_triplets(self.cols, self.rows, &entries)
    }

    /// Converts to dense storage (testing/debug aid).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            m[(r, c)] += v;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn from_triplets_sorts_and_merges() {
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 2, 1.0), (0, 0, 2.0), (0, 2, 3.0)]);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(0, 2), 4.0);
        assert_eq!(m.get(0, 1), 0.0);
        let row: Vec<_> = m.row(0).collect();
        assert_eq!(row, vec![(0, 2.0), (2, 4.0)]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_triplets_bounds_checked() {
        CsrMatrix::from_triplets(1, 1, &[(0, 1, 1.0)]);
    }

    #[test]
    fn matvec_matches_dense() {
        let entries = [(0, 0, 1.0), (0, 2, 2.0), (1, 1, -3.0), (2, 0, 4.0)];
        let m = CsrMatrix::from_triplets(3, 3, &entries);
        let x = [1.0, 2.0, 3.0];
        let mut f = FlopCounter::new();
        let y = m.matvec(&x, &mut f).unwrap();
        let yd = m.to_dense().matvec(&x, &mut FlopCounter::new()).unwrap();
        for (a, b) in y.iter().zip(yd.iter()) {
            assert!(approx_eq(*a, *b, 1e-15));
        }
        assert_eq!(f.muls(), 4);
        assert!(m.matvec(&[1.0], &mut f).is_err());
    }

    #[test]
    fn matvec_acc_accumulates_scaled() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        let mut y = vec![10.0, 20.0];
        m.matvec_acc(2.0, &[1.0, 2.0], &mut y, &mut FlopCounter::new())
            .unwrap();
        assert_eq!(y, vec![12.0, 24.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 1, 5.0), (1, 2, -1.0)]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(1, 0), 5.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn from_dense_drops_zeros() {
        let mut d = DenseMatrix::zeros(2, 2);
        d[(0, 1)] = 7.0;
        let s = CsrMatrix::from_dense(&d);
        assert_eq!(s.nnz(), 1);
        assert_eq!(s.get(0, 1), 7.0);
    }

    #[test]
    fn iter_yields_all_entries_in_row_order() {
        let m = CsrMatrix::from_triplets(2, 2, &[(1, 0, 1.0), (0, 1, 2.0)]);
        let all: Vec<_> = m.iter().collect();
        assert_eq!(all, vec![(0, 1, 2.0), (1, 0, 1.0)]);
    }

    #[test]
    fn empty_matrix_ok() {
        let m = CsrMatrix::from_triplets(2, 2, &[]);
        assert_eq!(m.nnz(), 0);
        let y = m.matvec(&[1.0, 1.0], &mut FlopCounter::new()).unwrap();
        assert_eq!(y, vec![0.0, 0.0]);
    }
}
