//! Fill-reducing orderings — the first phase of the sparse-LU pipeline.
//!
//! Factoring a sparse matrix in its natural index order can create far more
//! fill-in (new nonzeros in `L`/`U`) than the matrix requires: on the
//! mesh-structured MNA systems of replicated nano-cell arrays the natural
//! order eliminates along long grid rows and fills whole separators. A
//! *fill-reducing ordering* permutes the matrix symmetrically before the
//! symbolic analysis so every subsequent full factorization **and** every
//! values-only refactorization touches fewer entries.
//!
//! The pipeline is ordering → symbolic → numeric:
//!
//! 1. an [`Ordering`] implementation computes a permutation from the
//!    *symmetrized* sparsity pattern (values are never consulted),
//! 2. [`super::SymbolicAnalysis`] applies it, building the permuted
//!    compressed-column structure and scatter maps once,
//! 3. the numeric factor/refactor of [`super::SparseLu`] runs entirely in
//!    permuted index space.
//!
//! Three orderings are provided: [`Natural`] (identity — bit-compatible
//! with the pre-ordering pipeline), [`Rcm`] (reverse Cuthill–McKee,
//! bandwidth-reducing) and [`Amd`] (approximate minimum degree on a
//! quotient graph — the fill-reducer production sparse solvers default to).
//! [`OrderingChoice`] is the plumbing-friendly selector engines and the
//! session API carry; its [`OrderingChoice::Auto`] default picks AMD for
//! systems of at least [`OrderingChoice::AUTO_AMD_THRESHOLD`] unknowns and
//! the natural order below, where ordering overhead outweighs the saved
//! fill.
//!
//! Every ordering is a pure function of the sparsity structure, so results
//! are deterministic across runs, platforms and thread counts.

use std::fmt::Debug;

/// A fill-reducing ordering algorithm: computes a symmetric permutation of
/// an `n × n` sparsity pattern given in CSR form (values are irrelevant;
/// only the structure matters).
pub trait Ordering: Debug {
    /// Returns `perm`, where `perm[k]` is the original row/column index
    /// placed at permuted position `k`. The result is always a valid
    /// permutation of `0..n`.
    fn order(&self, n: usize, row_ptr: &[usize], col_idx: &[usize]) -> Vec<usize>;

    /// Short lowercase name for reports ("natural", "rcm", "amd").
    fn name(&self) -> &'static str;
}

/// The identity ordering: factor in natural MNA index order. Bit-identical
/// to the pre-pipeline behavior; the right choice for small systems where
/// fill is negligible.
#[derive(Debug, Clone, Copy, Default)]
pub struct Natural;

impl Ordering for Natural {
    fn order(&self, n: usize, _row_ptr: &[usize], _col_idx: &[usize]) -> Vec<usize> {
        (0..n).collect()
    }

    fn name(&self) -> &'static str {
        "natural"
    }
}

/// Reverse Cuthill–McKee: breadth-first levelization from a
/// pseudo-peripheral start node, neighbors visited in ascending
/// (degree, index) order, the whole order reversed. Minimizes bandwidth
/// rather than fill directly, but on mesh/chain graphs that translates to
/// a tight envelope and much less fill than the natural order.
#[derive(Debug, Clone, Copy, Default)]
pub struct Rcm;

impl Ordering for Rcm {
    fn order(&self, n: usize, row_ptr: &[usize], col_idx: &[usize]) -> Vec<usize> {
        let (xadj, adj) = symmetrized_adjacency(n, row_ptr, col_idx);
        let degree = |v: usize| xadj[v + 1] - xadj[v];
        let mut order = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        let mut level: Vec<usize> = Vec::new();
        let mut next_level: Vec<usize> = Vec::new();
        // One BFS tree per connected component.
        for seed in 0..n {
            if visited[seed] {
                continue;
            }
            // Component min-degree node, then pseudo-peripheral refinement:
            // repeat BFS to the farthest level and restart from its
            // min-degree node until the eccentricity stops growing.
            let mut comp: Vec<usize> = Vec::new();
            {
                level.clear();
                level.push(seed);
                visited[seed] = true;
                comp.push(seed);
                while !level.is_empty() {
                    next_level.clear();
                    for &v in &level {
                        for &u in &adj[xadj[v]..xadj[v + 1]] {
                            if !visited[u] {
                                visited[u] = true;
                                comp.push(u);
                                next_level.push(u);
                            }
                        }
                    }
                    std::mem::swap(&mut level, &mut next_level);
                }
            }
            let mut root = comp
                .iter()
                .copied()
                .min_by_key(|&v| (degree(v), v))
                .expect("component nonempty");
            let mut ecc = 0usize;
            let mut seen = vec![false; n];
            loop {
                // BFS from root recording the last level.
                for &v in &comp {
                    seen[v] = false;
                }
                level.clear();
                level.push(root);
                seen[root] = true;
                let mut last: Vec<usize> = vec![root];
                let mut depth = 0usize;
                while !level.is_empty() {
                    next_level.clear();
                    for &v in &level {
                        for &u in &adj[xadj[v]..xadj[v + 1]] {
                            if !seen[u] {
                                seen[u] = true;
                                next_level.push(u);
                            }
                        }
                    }
                    if !next_level.is_empty() {
                        depth += 1;
                        last.clear();
                        last.extend_from_slice(&next_level);
                    }
                    std::mem::swap(&mut level, &mut next_level);
                }
                if depth <= ecc {
                    break;
                }
                ecc = depth;
                root = last
                    .iter()
                    .copied()
                    .min_by_key(|&v| (degree(v), v))
                    .expect("last level nonempty");
            }
            // Cuthill–McKee BFS from the refined root.
            for &v in &comp {
                seen[v] = false;
            }
            let start = order.len();
            order.push(root);
            seen[root] = true;
            let mut head = start;
            let mut nbrs: Vec<usize> = Vec::new();
            while head < order.len() {
                let v = order[head];
                head += 1;
                nbrs.clear();
                nbrs.extend(
                    adj[xadj[v]..xadj[v + 1]]
                        .iter()
                        .copied()
                        .filter(|&u| !seen[u]),
                );
                nbrs.sort_unstable_by_key(|&u| (degree(u), u));
                for &u in &nbrs {
                    seen[u] = true;
                    order.push(u);
                }
            }
        }
        order.reverse();
        order
    }

    fn name(&self) -> &'static str {
        "rcm"
    }
}

/// Approximate minimum degree on the symmetrized pattern: quotient-graph
/// elimination (Amestoy/Davis/Duff style) where each pivot's boundary
/// becomes an *element*, absorbed elements are dropped, and degrees are
/// approximated by summing element boundary sizes instead of forming their
/// union — now **with supervariable detection (mass elimination)**:
/// boundary variables whose quotient-graph adjacency becomes identical are
/// merged into one weighted supervariable, eliminated together, and emitted
/// consecutively. That both sharpens the degree approximation (weights
/// replace unit counts) and orders indistinguishable columns adjacently,
/// which is exactly what grows the supernodes the blocked triangular-solve
/// kernels of [`super::SparseLu`] batch over. Ties break on the smallest
/// index, which keeps the ordering fully deterministic.
#[derive(Debug, Clone, Copy, Default)]
pub struct Amd;

/// FNV-1a hash of a variable's quotient-graph adjacency, used to bucket
/// candidate supervariable merges before the exact comparison.
fn quotient_hash(adj: &[usize], elems: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &u in adj {
        h = (h ^ (u as u64 + 1)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h = (h ^ u64::MAX).wrapping_mul(0x0000_0100_0000_01b3);
    for &e in elems {
        h = (h ^ (e as u64 + 1)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Ordering for Amd {
    fn order(&self, n: usize, row_ptr: &[usize], col_idx: &[usize]) -> Vec<usize> {
        if n == 0 {
            return Vec::new();
        }
        let (xadj, adj_flat) = symmetrized_adjacency(n, row_ptr, col_idx);
        // Variable→variable edges still uncovered by an element. Lists stay
        // sorted: they start sorted and are only ever filtered.
        let mut adj: Vec<Vec<usize>> = (0..n)
            .map(|v| adj_flat[xadj[v]..xadj[v + 1]].to_vec())
            .collect();
        // Elements (eliminated pivots) adjacent to each variable, and each
        // element's boundary variables. Invariant: `e ∈ elems[v]` iff
        // `v ∈ elem_nodes[e]` (modulo dead variables, filtered on use).
        let mut elems: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut elem_nodes: Vec<Vec<usize>> = vec![Vec::new(); n];
        // Total weight of each element's boundary, fixed at creation: a
        // boundary variable can only leave by whole-element absorption,
        // and supervariable merges move mass between members of the same
        // boundary — so the sum is invariant, making weighted degree
        // updates O(#elements) instead of O(total boundary size).
        let mut elem_weight: Vec<usize> = vec![0; n];
        let mut absorbed = vec![false; n];
        // Supervariable bookkeeping: `weight[v]` counts the original
        // variables a representative stands for; `members[v]` lists them in
        // merge order (the order they are emitted on elimination).
        let mut weight: Vec<usize> = vec![1usize; n];
        let mut members: Vec<Vec<usize>> = (0..n).map(|v| vec![v]).collect();
        let mut degree: Vec<usize> = (0..n).map(|v| adj[v].len()).collect();
        let mut alive = vec![true; n];
        let mut mark = vec![usize::MAX; n];
        let mut order = Vec::with_capacity(n);
        let mut lp: Vec<usize> = Vec::new();
        // Lazy min-heap over (degree, index): stale entries (dead vertices
        // or superseded degrees) are skipped on pop, so selection is the
        // exact lexicographic minimum the scan-based version would pick —
        // same ordering, without the Θ(n) scan per pivot.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut heap: BinaryHeap<Reverse<(usize, usize)>> =
            (0..n).map(|v| Reverse((degree[v], v))).collect();

        let mut step = 0usize;
        while order.len() < n {
            // Minimum approximate degree, smallest index on ties.
            let p = loop {
                let Reverse((d, v)) = heap.pop().expect("alive variable remains");
                if alive[v] && degree[v] == d {
                    break v;
                }
            };
            // Boundary of the new element: uncovered neighbors plus the
            // boundaries of every adjacent element.
            lp.clear();
            for &u in &adj[p] {
                if alive[u] && mark[u] != step {
                    mark[u] = step;
                    lp.push(u);
                }
            }
            for &e in &elems[p] {
                for &u in &elem_nodes[e] {
                    if u != p && alive[u] && mark[u] != step {
                        mark[u] = step;
                        lp.push(u);
                    }
                }
            }
            lp.sort_unstable();
            alive[p] = false;
            // Mass elimination: the pivot's merged variables leave together,
            // consecutively.
            order.append(&mut members[p]);
            // Absorb the elements p touched (their boundaries are now
            // covered by element p), then clean every boundary variable.
            let old_elems = std::mem::take(&mut elems[p]);
            for &e in &old_elems {
                absorbed[e] = true;
                elem_nodes[e].clear();
            }
            for &v in &lp {
                // Edges into the new element's boundary (and to p itself)
                // are covered by the element.
                adj[v].retain(|&u| u != p && alive[u] && mark[u] != step);
                elems[v].retain(|&e| !absorbed[e]);
                elems[v].push(p);
            }
            // Supervariable detection: boundary variables with identical
            // cleaned adjacency (same uncovered edges, same elements —
            // mutual edges are covered by element p, so plain equality is
            // the indistinguishability test) merge into the
            // smallest-indexed representative.
            if lp.len() > 1 {
                let mut keyed: Vec<(u64, usize)> = lp
                    .iter()
                    .map(|&v| (quotient_hash(&adj[v], &elems[v]), v))
                    .collect();
                keyed.sort_unstable();
                let mut i = 0;
                while i < keyed.len() {
                    let mut j = i + 1;
                    while j < keyed.len() && keyed[j].0 == keyed[i].0 {
                        j += 1;
                    }
                    for a in i..j {
                        let va = keyed[a].1;
                        if !alive[va] {
                            continue;
                        }
                        for b in a + 1..j {
                            let vb = keyed[b].1;
                            if alive[vb] && adj[va] == adj[vb] && elems[va] == elems[vb] {
                                weight[va] += weight[vb];
                                alive[vb] = false;
                                let mut absorbed_members = std::mem::take(&mut members[vb]);
                                members[va].append(&mut absorbed_members);
                                adj[vb].clear();
                                elems[vb].clear();
                            }
                        }
                    }
                    i = j;
                }
            }
            // Weighted approximate external degrees for the surviving
            // boundary variables (overlapping element boundaries counted
            // once per element — the "approximate" in AMD). The new
            // element's weight is installed first so it contributes like
            // any other adjacent element, and the constant per-element
            // weights keep this loop O(#elements) per variable.
            let lp_weight: usize = lp.iter().filter(|&&u| alive[u]).map(|&u| weight[u]).sum();
            elem_weight[p] = lp_weight;
            for &v in &lp {
                if !alive[v] {
                    continue;
                }
                let mut d: usize = adj[v]
                    .iter()
                    .filter(|&&u| alive[u])
                    .map(|&u| weight[u])
                    .sum();
                for &e in &elems[v] {
                    d += elem_weight[e] - weight[v];
                }
                degree[v] = d;
                heap.push(Reverse((d, v)));
            }
            adj[p].clear();
            elem_nodes[p] = lp.iter().copied().filter(|&u| alive[u]).collect();
            step += 1;
        }
        // Elimination-tree postorder: a topological reordering of the
        // etree leaves the fill unchanged (for the symmetrized pattern)
        // but places each subtree's columns consecutively, which is what
        // turns the factor's fundamental supernodes into *contiguous*
        // column runs the blocked kernels can panel.
        etree_postorder(n, row_ptr, col_idx, &order)
    }

    fn name(&self) -> &'static str {
        "amd"
    }
}

/// Refines a fill permutation by postordering the elimination tree of the
/// symmetrically permuted pattern. Returns the composed permutation
/// (`result[k]` = original index at permuted position `k`). Fill and flop
/// counts of the factorization are invariant under this reordering; only
/// the column adjacency changes.
fn etree_postorder(n: usize, row_ptr: &[usize], col_idx: &[usize], perm: &[usize]) -> Vec<usize> {
    let mut pinv = vec![0usize; n];
    for (k, &v) in perm.iter().enumerate() {
        pinv[v] = k;
    }
    // Liu's algorithm with path compression over the symmetrized pattern.
    let mut parent = vec![usize::MAX; n];
    let mut ancestor = vec![usize::MAX; n];
    // Permuted upper-triangular adjacency: for column j (permuted), the
    // permuted rows i < j of A + Aᵀ.
    let mut cols: Vec<Vec<usize>> = vec![Vec::new(); n];
    for r in 0..n {
        for p in row_ptr[r]..row_ptr[r + 1] {
            let (i, j) = (pinv[r], pinv[col_idx[p]]);
            if i < j {
                cols[j].push(i);
            } else if j < i {
                cols[i].push(j);
            }
        }
    }
    for j in 0..n {
        for idx in 0..cols[j].len() {
            let mut r = cols[j][idx];
            while ancestor[r] != usize::MAX && ancestor[r] != j {
                let next = ancestor[r];
                ancestor[r] = j;
                r = next;
            }
            if ancestor[r] == usize::MAX && r != j {
                ancestor[r] = j;
                parent[r] = j;
            }
        }
    }
    // Children lists in ascending order make the postorder deterministic.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut roots: Vec<usize> = Vec::new();
    for v in 0..n {
        if parent[v] == usize::MAX {
            roots.push(v);
        } else {
            children[parent[v]].push(v);
        }
    }
    let mut post = Vec::with_capacity(n);
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for &root in &roots {
        stack.push((root, 0));
        while let Some(&(v, ci)) = stack.last() {
            if ci < children[v].len() {
                stack.last_mut().expect("nonempty").1 += 1;
                stack.push((children[v][ci], 0));
            } else {
                post.push(v);
                stack.pop();
            }
        }
    }
    debug_assert_eq!(post.len(), n);
    post.iter().map(|&k| perm[k]).collect()
}

/// The ordering selector carried through options structs and the session
/// API. `Auto` (the default) resolves per matrix size at analysis time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OrderingChoice {
    /// Natural MNA index order (identity permutation).
    Natural,
    /// Reverse Cuthill–McKee.
    Rcm,
    /// Approximate minimum degree.
    Amd,
    /// AMD for systems with at least
    /// [`OrderingChoice::AUTO_AMD_THRESHOLD`] unknowns, natural below.
    #[default]
    Auto,
}

impl OrderingChoice {
    /// Dimension at which `Auto` switches from natural order to AMD. Below
    /// this the whole factorization fits in cache and the ordering pass
    /// costs more than the fill it saves; the Table I 10×10 mesh (102
    /// unknowns) deliberately stays natural so seeded regression results
    /// are bit-stable.
    pub const AUTO_AMD_THRESHOLD: usize = 128;

    /// Resolves `Auto` against a concrete dimension; concrete choices
    /// return themselves.
    pub fn resolve(self, n: usize) -> OrderingChoice {
        match self {
            OrderingChoice::Auto => {
                if n >= Self::AUTO_AMD_THRESHOLD {
                    OrderingChoice::Amd
                } else {
                    OrderingChoice::Natural
                }
            }
            other => other,
        }
    }

    /// The [`Ordering`] algorithm behind a resolved choice.
    ///
    /// # Panics
    /// Panics on `Auto` — call [`OrderingChoice::resolve`] first.
    pub fn algorithm(self) -> &'static dyn Ordering {
        match self {
            OrderingChoice::Natural => &Natural,
            OrderingChoice::Rcm => &Rcm,
            OrderingChoice::Amd => &Amd,
            OrderingChoice::Auto => panic!("resolve OrderingChoice::Auto before dispatch"),
        }
    }

    /// Computes the permutation for the given CSR pattern (resolving
    /// `Auto` against `n` first).
    pub fn perm(self, n: usize, row_ptr: &[usize], col_idx: &[usize]) -> Vec<usize> {
        self.resolve(n).algorithm().order(n, row_ptr, col_idx)
    }

    /// Lowercase tag for reports; `Auto` reports as "auto".
    pub fn name(self) -> &'static str {
        match self {
            OrderingChoice::Natural => "natural",
            OrderingChoice::Rcm => "rcm",
            OrderingChoice::Amd => "amd",
            OrderingChoice::Auto => "auto",
        }
    }
}

/// Builds the adjacency structure of `A + Aᵀ` without the diagonal, in
/// flat `(xadj, adj)` form with each neighbor list sorted ascending.
/// Orderings run on this symmetrized pattern because LU with symmetric
/// permutation eliminates rows and columns together.
pub(crate) fn symmetrized_adjacency(
    n: usize,
    row_ptr: &[usize],
    col_idx: &[usize],
) -> (Vec<usize>, Vec<usize>) {
    let mut nbr: Vec<Vec<usize>> = vec![Vec::new(); n];
    for r in 0..n {
        for p in row_ptr[r]..row_ptr[r + 1] {
            let c = col_idx[p];
            if c != r {
                nbr[r].push(c);
                nbr[c].push(r);
            }
        }
    }
    let mut xadj = Vec::with_capacity(n + 1);
    xadj.push(0);
    let mut adj = Vec::new();
    for list in nbr.iter_mut() {
        list.sort_unstable();
        list.dedup();
        adj.extend_from_slice(list);
        xadj.push(adj.len());
    }
    (xadj, adj)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2-D Laplacian-style mesh pattern (the structure of the Table I
    /// resistor grid).
    fn mesh_pattern(m: usize) -> (usize, Vec<usize>, Vec<usize>) {
        let n = m * m;
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        row_ptr.push(0);
        for r in 0..m {
            for c in 0..m {
                let v = r * m + c;
                col_idx.push(v);
                if c + 1 < m {
                    col_idx.push(v + 1);
                }
                if r + 1 < m {
                    col_idx.push(v + m);
                }
                if c > 0 {
                    col_idx.push(v - 1);
                }
                if r > 0 {
                    col_idx.push(v - m);
                }
                row_ptr.push(col_idx.len());
            }
        }
        (n, row_ptr, col_idx)
    }

    fn assert_permutation(perm: &[usize], n: usize) {
        assert_eq!(perm.len(), n);
        let mut seen = vec![false; n];
        for &p in perm {
            assert!(p < n && !seen[p], "not a permutation: {perm:?}");
            seen[p] = true;
        }
    }

    #[test]
    fn natural_is_identity() {
        let (n, rp, ci) = mesh_pattern(4);
        let perm = Natural.order(n, &rp, &ci);
        assert_eq!(perm, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn rcm_and_amd_produce_valid_permutations() {
        for m in [1, 2, 3, 5, 8] {
            let (n, rp, ci) = mesh_pattern(m);
            assert_permutation(&Rcm.order(n, &rp, &ci), n);
            assert_permutation(&Amd.order(n, &rp, &ci), n);
        }
    }

    #[test]
    fn orderings_are_deterministic() {
        let (n, rp, ci) = mesh_pattern(7);
        assert_eq!(Rcm.order(n, &rp, &ci), Rcm.order(n, &rp, &ci));
        assert_eq!(Amd.order(n, &rp, &ci), Amd.order(n, &rp, &ci));
    }

    #[test]
    fn rcm_reduces_mesh_bandwidth() {
        let (n, rp, ci) = mesh_pattern(8);
        let perm = Rcm.order(n, &rp, &ci);
        let mut pinv = vec![0usize; n];
        for (k, &v) in perm.iter().enumerate() {
            pinv[v] = k;
        }
        let bandwidth = |pinv: &[usize]| {
            let mut bw = 0usize;
            for r in 0..n {
                for p in rp[r]..rp[r + 1] {
                    bw = bw.max(pinv[r].abs_diff(pinv[ci[p]]));
                }
            }
            bw
        };
        let natural_bw = bandwidth(&(0..n).collect::<Vec<_>>());
        assert!(
            bandwidth(&pinv) <= natural_bw,
            "rcm bandwidth {} vs natural {natural_bw}",
            bandwidth(&pinv)
        );
    }

    #[test]
    fn disconnected_graph_covered() {
        // Two disjoint 2-cliques plus an isolated vertex.
        let row_ptr = vec![0, 1, 2, 3, 4, 4];
        let col_idx = vec![1, 0, 3, 2];
        assert_permutation(&Rcm.order(5, &row_ptr, &col_idx), 5);
        assert_permutation(&Amd.order(5, &row_ptr, &col_idx), 5);
    }

    #[test]
    fn auto_resolves_by_threshold() {
        assert_eq!(OrderingChoice::Auto.resolve(10), OrderingChoice::Natural);
        assert_eq!(
            OrderingChoice::Auto.resolve(OrderingChoice::AUTO_AMD_THRESHOLD),
            OrderingChoice::Amd
        );
        assert_eq!(OrderingChoice::Rcm.resolve(10_000), OrderingChoice::Rcm);
        assert_eq!(OrderingChoice::default(), OrderingChoice::Auto);
        assert_eq!(OrderingChoice::Amd.name(), "amd");
        assert_eq!(OrderingChoice::Auto.name(), "auto");
    }

    #[test]
    fn symmetrized_adjacency_unions_pattern() {
        // Asymmetric pattern: (0,1) present, (1,0) absent.
        let row_ptr = vec![0, 2, 3];
        let col_idx = vec![0, 1, 1];
        let (xadj, adj) = symmetrized_adjacency(2, &row_ptr, &col_idx);
        assert_eq!(adj[xadj[0]..xadj[1]], [1]);
        assert_eq!(adj[xadj[1]..xadj[2]], [0]);
    }
}
