//! Coordinate (COO) format used while stamping MNA matrices.

use super::CsrMatrix;
use crate::dense::DenseMatrix;

/// A growable coordinate-format sparse matrix.
///
/// Duplicate `(row, col)` entries are *summed* on conversion, which is exactly
/// the semantics of MNA stamping: every device adds its contribution to the
/// shared conductance matrix.
///
/// # Example
/// ```
/// use nanosim_numeric::sparse::TripletMatrix;
/// let mut t = TripletMatrix::new(2, 2);
/// t.push(0, 0, 1.0);
/// t.push(0, 0, 2.0); // same position: summed
/// let csr = t.to_csr();
/// assert_eq!(csr.get(0, 0), 3.0);
/// assert_eq!(csr.nnz(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TripletMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl TripletMatrix {
    /// Creates an empty `rows x cols` triplet matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        TripletMatrix {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty matrix with pre-allocated capacity for `cap` entries.
    pub fn with_capacity(rows: usize, cols: usize, cap: usize) -> Self {
        TripletMatrix {
            rows,
            cols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of raw (possibly duplicate) entries pushed so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends `value` at `(row, col)`. Zero values are kept (they preserve
    /// the symbolic pattern, which matters for factorization reuse).
    ///
    /// # Panics
    /// Panics if the position is out of bounds — stamping out of bounds is a
    /// programming error in the assembler, not a runtime condition.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "triplet ({row}, {col}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.entries.push((row, col, value));
    }

    /// Removes all entries, keeping the allocation (used when re-stamping a
    /// circuit at a new time point).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Iterates over the raw `(row, col, value)` entries.
    pub fn iter(&self) -> impl Iterator<Item = &(usize, usize, f64)> {
        self.entries.iter()
    }

    /// Converts to compressed sparse row format, summing duplicates.
    pub fn to_csr(&self) -> CsrMatrix {
        CsrMatrix::from_triplets(self.rows, self.cols, &self.entries)
    }

    /// Converts to a dense matrix (testing/debug aid).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(self.rows, self.cols);
        for &(r, c, v) in &self.entries {
            m[(r, c)] += v;
        }
        m
    }
}

impl Extend<(usize, usize, f64)> for TripletMatrix {
    fn extend<I: IntoIterator<Item = (usize, usize, f64)>>(&mut self, iter: I) {
        for (r, c, v) in iter {
            self.push(r, c, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_empty() {
        let t = TripletMatrix::new(3, 4);
        assert!(t.is_empty());
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 4);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn push_and_iter() {
        let mut t = TripletMatrix::with_capacity(2, 2, 4);
        t.push(0, 1, 5.0);
        t.push(1, 0, -5.0);
        assert_eq!(t.len(), 2);
        let collected: Vec<_> = t.iter().cloned().collect();
        assert_eq!(collected, vec![(0, 1, 5.0), (1, 0, -5.0)]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_out_of_bounds_panics() {
        let mut t = TripletMatrix::new(1, 1);
        t.push(1, 0, 1.0);
    }

    #[test]
    fn duplicates_summed_in_dense() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(1, 1, 1.0);
        t.push(1, 1, 2.5);
        let d = t.to_dense();
        assert_eq!(d[(1, 1)], 3.5);
    }

    #[test]
    fn clear_keeps_shape() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.rows(), 2);
    }

    #[test]
    fn extend_from_iterator() {
        let mut t = TripletMatrix::new(2, 2);
        t.extend(vec![(0, 0, 1.0), (1, 1, 2.0)]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn zero_entries_are_kept() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 1, 0.0);
        assert_eq!(t.len(), 1);
        assert_eq!(t.to_csr().nnz(), 1);
    }
}
