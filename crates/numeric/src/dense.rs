//! Dense row-major matrices with LU factorization.
//!
//! Dense storage is used for small systems (reference results in tests, the
//! capacitance matrix factored once by the Euler–Maruyama engine, and the
//! dense fallback of [`crate::solve::LinearSolver`]). MNA systems of any real
//! size go through [`crate::sparse`].

use crate::error::NumericError;
use crate::flops::FlopCounter;
use crate::Result;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `rows x cols` matrix of `f64`.
///
/// # Example
/// ```
/// use nanosim_numeric::DenseMatrix;
/// let mut m = DenseMatrix::zeros(2, 2);
/// m[(0, 0)] = 4.0;
/// m[(1, 1)] = 2.0;
/// assert_eq!(m[(0, 0)], 4.0);
/// assert_eq!(m.rows(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major slice.
    ///
    /// # Errors
    /// Returns [`NumericError::DimensionMismatch`] if `data.len() != rows*cols`.
    pub fn from_rows(rows: usize, cols: usize, data: &[f64]) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(NumericError::DimensionMismatch {
                context: format!(
                    "{} elements supplied for a {rows}x{cols} matrix",
                    data.len()
                ),
            });
        }
        Ok(DenseMatrix {
            rows,
            cols,
            data: data.to_vec(),
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the element at `(row, col)`, or `None` when out of bounds.
    pub fn get(&self, row: usize, col: usize) -> Option<f64> {
        if row < self.rows && col < self.cols {
            Some(self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Adds `value` to the element at `(row, col)` (the MNA "stamp" op).
    ///
    /// # Errors
    /// Returns [`NumericError::IndexOutOfBounds`] when outside the matrix.
    pub fn stamp(&mut self, row: usize, col: usize, value: f64) -> Result<()> {
        if row >= self.rows || col >= self.cols {
            return Err(NumericError::IndexOutOfBounds {
                row,
                col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        self.data[row * self.cols + col] += value;
        Ok(())
    }

    /// Returns a view of row `i`.
    ///
    /// # Panics
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(
            i < self.rows,
            "row {i} out of bounds for {} rows",
            self.rows
        );
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix–vector product `y = A·x`, recording FLOPs.
    ///
    /// # Errors
    /// Returns [`NumericError::DimensionMismatch`] if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64], flops: &mut FlopCounter) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(NumericError::DimensionMismatch {
                context: format!(
                    "matvec: {}x{} by vector of {}",
                    self.rows,
                    self.cols,
                    x.len()
                ),
            });
        }
        let mut y = vec![0.0; self.rows];
        for i in 0..self.rows {
            let mut acc = 0.0;
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (a, b) in row.iter().zip(x.iter()) {
                acc += a * b;
            }
            flops.fma(self.cols as u64);
            y[i] = acc;
        }
        Ok(y)
    }

    /// Matrix–matrix product `self · other`.
    ///
    /// # Errors
    /// Returns [`NumericError::DimensionMismatch`] on incompatible shapes.
    pub fn matmul(&self, other: &DenseMatrix, flops: &mut FlopCounter) -> Result<DenseMatrix> {
        if self.cols != other.rows {
            return Err(NumericError::DimensionMismatch {
                context: format!(
                    "matmul: {}x{} by {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.data[i * self.cols + k];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += aik * other.data[k * other.cols + j];
                }
                flops.fma(other.cols as u64);
            }
        }
        Ok(out)
    }

    /// Transposed copy of the matrix.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Infinity norm (maximum absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|i| self.row(i).iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// LU factorization with partial pivoting.
    ///
    /// # Errors
    /// Returns [`NumericError::SingularMatrix`] if a pivot column is all zero,
    /// and [`NumericError::DimensionMismatch`] for non-square matrices.
    pub fn lu(&self, flops: &mut FlopCounter) -> Result<DenseLu> {
        if self.rows != self.cols {
            return Err(NumericError::DimensionMismatch {
                context: format!("lu of non-square {}x{}", self.rows, self.cols),
            });
        }
        let n = self.rows;
        let mut lu = self.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for k in 0..n {
            // Partial pivoting: find the largest magnitude entry in column k.
            let mut pivot_row = k;
            let mut pivot_val = lu[k * n + k].abs();
            for i in (k + 1)..n {
                let v = lu[i * n + k].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val == 0.0 || !pivot_val.is_finite() {
                return Err(NumericError::SingularMatrix { pivot: k });
            }
            if pivot_row != k {
                for j in 0..n {
                    lu.swap(k * n + j, pivot_row * n + j);
                }
                perm.swap(k, pivot_row);
                sign = -sign;
            }
            let pivot = lu[k * n + k];
            for i in (k + 1)..n {
                let factor = lu[i * n + k] / pivot;
                flops.div(1);
                lu[i * n + k] = factor;
                if factor != 0.0 {
                    for j in (k + 1)..n {
                        lu[i * n + j] -= factor * lu[k * n + j];
                    }
                    flops.fma((n - k - 1) as u64);
                }
            }
        }
        Ok(DenseLu { n, lu, perm, sign })
    }

    /// Solves `A·x = b` through a fresh LU factorization.
    ///
    /// # Errors
    /// Propagates factorization errors and shape mismatches.
    pub fn solve(&self, b: &[f64], flops: &mut FlopCounter) -> Result<Vec<f64>> {
        let lu = self.lu(flops)?;
        lu.solve(b, flops)
    }
}

impl Index<(usize, usize)> for DenseMatrix {
    type Output = f64;

    fn index(&self, (row, col): (usize, usize)) -> &f64 {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[row * self.cols + col]
    }
}

impl IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut f64 {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[row * self.cols + col]
    }
}

impl fmt::Display for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:12.5e}", self.data[i * self.cols + j])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// LU factorization (with row permutation) of a dense square matrix.
///
/// Produced by [`DenseMatrix::lu`]; can be reused for many right-hand sides.
#[derive(Debug, Clone)]
pub struct DenseLu {
    n: usize,
    lu: Vec<f64>,
    perm: Vec<usize>,
    sign: f64,
}

impl DenseLu {
    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `A·x = b` using the stored factors.
    ///
    /// # Errors
    /// Returns [`NumericError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64], flops: &mut FlopCounter) -> Result<Vec<f64>> {
        if b.len() != self.n {
            return Err(NumericError::DimensionMismatch {
                context: format!("lu solve: rhs of {} for n={}", b.len(), self.n),
            });
        }
        let n = self.n;
        // Apply the permutation.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward substitution with unit-diagonal L.
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[i * n + j] * x[j];
            }
            flops.fma(i as u64);
            x[i] = acc;
        }
        // Backward substitution with U.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[i * n + j] * x[j];
            }
            flops.fma((n - i - 1) as u64);
            x[i] = acc / self.lu[i * n + i];
            flops.div(1);
        }
        Ok(x)
    }

    /// Determinant of the original matrix (product of pivots times the
    /// permutation sign).
    pub fn determinant(&self) -> f64 {
        let mut det = self.sign;
        for i in 0..self.n {
            det *= self.lu[i * self.n + i];
        }
        det
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn flops() -> FlopCounter {
        FlopCounter::new()
    }

    #[test]
    fn zeros_and_identity() {
        let z = DenseMatrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert_eq!(z.get(1, 2), Some(0.0));
        assert_eq!(z.get(2, 0), None);
        let i = DenseMatrix::identity(3);
        assert_eq!(i[(1, 1)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
    }

    #[test]
    fn from_rows_checks_length() {
        assert!(DenseMatrix::from_rows(2, 2, &[1.0, 2.0, 3.0]).is_err());
        let m = DenseMatrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn stamp_accumulates() {
        let mut m = DenseMatrix::zeros(2, 2);
        m.stamp(0, 0, 1.5).unwrap();
        m.stamp(0, 0, 2.5).unwrap();
        assert_eq!(m[(0, 0)], 4.0);
        assert!(m.stamp(5, 0, 1.0).is_err());
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let m = DenseMatrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let mut f = flops();
        let y = m.matvec(&[1.0, 1.0, 1.0], &mut f).unwrap();
        assert_eq!(y, vec![6.0, 15.0]);
        assert_eq!(f.muls(), 6);
        assert!(m.matvec(&[1.0], &mut f).is_err());
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = DenseMatrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let id = DenseMatrix::identity(2);
        let p = m.matmul(&id, &mut flops()).unwrap();
        assert_eq!(p, m);
    }

    #[test]
    fn transpose_involution() {
        let m = DenseMatrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn lu_solves_small_system() {
        let a =
            DenseMatrix::from_rows(3, 3, &[2.0, 1.0, 1.0, 4.0, -6.0, 0.0, -2.0, 7.0, 2.0]).unwrap();
        let mut f = flops();
        let x = a.solve(&[5.0, -2.0, 9.0], &mut f).unwrap();
        assert!(approx_eq(x[0], 1.0, 1e-12));
        assert!(approx_eq(x[1], 1.0, 1e-12));
        assert!(approx_eq(x[2], 2.0, 1e-12));
        assert!(f.total() > 0);
    }

    #[test]
    fn lu_requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = DenseMatrix::from_rows(2, 2, &[0.0, 1.0, 1.0, 0.0]).unwrap();
        let x = a.solve(&[3.0, 7.0], &mut flops()).unwrap();
        assert!(approx_eq(x[0], 7.0, 1e-15));
        assert!(approx_eq(x[1], 3.0, 1e-15));
    }

    #[test]
    fn lu_detects_singular() {
        let a = DenseMatrix::from_rows(2, 2, &[1.0, 2.0, 2.0, 4.0]).unwrap();
        match a.lu(&mut flops()) {
            Err(NumericError::SingularMatrix { .. }) => {}
            other => panic!("expected singular, got {other:?}"),
        }
    }

    #[test]
    fn lu_rejects_non_square() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(a.lu(&mut flops()).is_err());
    }

    #[test]
    fn determinant_of_permuted_matrix() {
        let a = DenseMatrix::from_rows(2, 2, &[0.0, 2.0, 3.0, 0.0]).unwrap();
        let lu = a.lu(&mut flops()).unwrap();
        assert!(approx_eq(lu.determinant(), -6.0, 1e-12));
        assert_eq!(lu.dim(), 2);
    }

    #[test]
    fn solve_reuses_factorization_for_multiple_rhs() {
        let a = DenseMatrix::from_rows(2, 2, &[4.0, 1.0, 1.0, 3.0]).unwrap();
        let lu = a.lu(&mut flops()).unwrap();
        let x1 = lu.solve(&[1.0, 0.0], &mut flops()).unwrap();
        let x2 = lu.solve(&[0.0, 1.0], &mut flops()).unwrap();
        // A * [x1 x2] = I
        assert!(approx_eq(4.0 * x1[0] + x1[1], 1.0, 1e-12));
        assert!(approx_eq(x1[0] + 3.0 * x1[1], 0.0, 1e-12));
        assert!(approx_eq(4.0 * x2[0] + x2[1], 0.0, 1e-12));
        assert!(approx_eq(x2[0] + 3.0 * x2[1], 1.0, 1e-12));
    }

    #[test]
    fn rhs_length_checked() {
        let a = DenseMatrix::identity(3);
        let lu = a.lu(&mut flops()).unwrap();
        assert!(lu.solve(&[1.0], &mut flops()).is_err());
    }

    #[test]
    fn norm_inf_is_max_row_sum() {
        let m = DenseMatrix::from_rows(2, 2, &[1.0, -2.0, 0.5, 0.25]).unwrap();
        assert!(approx_eq(m.norm_inf(), 3.0, 1e-15));
    }

    #[test]
    fn display_is_nonempty() {
        let m = DenseMatrix::identity(2);
        let s = m.to_string();
        assert!(s.contains("1.00000"));
    }
}
