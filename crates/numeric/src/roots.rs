//! Scalar root finding: Newton–Raphson with iteration history, damped
//! Newton, and bisection.
//!
//! Besides being a building block for operating-point utilities, the
//! undamped Newton iteration reproduces the paper's **Figure 2**: on a
//! non-monotone curve the iteration either converges or oscillates between
//! two points depending on the initial guess. [`NewtonOutcome`] exposes the
//! full iterate history so the oscillation is observable, not just a failed
//! `Result`.

use crate::error::NumericError;
use crate::flops::FlopCounter;
use crate::Result;

/// Termination status of a Newton–Raphson run.
#[derive(Debug, Clone, PartialEq)]
pub enum NewtonOutcome {
    /// Converged to the contained root.
    Converged {
        /// Final iterate.
        root: f64,
        /// Iterations used.
        iterations: usize,
    },
    /// The iterate sequence entered a (near-)cycle — the NDR failure mode of
    /// the paper's Figure 2: `x0 -> x1 -> x2 -> x1 -> x2 -> ...`.
    Oscillating {
        /// The set of iterates forming the detected cycle.
        cycle: Vec<f64>,
    },
    /// Iteration budget exhausted without convergence or a detected cycle.
    Exhausted {
        /// Last iterate reached.
        last: f64,
    },
    /// The derivative vanished (or was non-finite) at an iterate.
    ZeroDerivative {
        /// Iterate at which the derivative vanished.
        at: f64,
    },
}

/// Options controlling [`newton_raphson`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonOptions {
    /// Absolute tolerance on `|f(x)|` for convergence.
    pub f_tol: f64,
    /// Absolute tolerance on the step size for convergence.
    pub x_tol: f64,
    /// Maximum iterations before giving up.
    pub max_iter: usize,
    /// Damping factor in `(0, 1]` applied to every step (1 = pure Newton).
    pub damping: f64,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            f_tol: 1e-12,
            x_tol: 1e-12,
            max_iter: 100,
            damping: 1.0,
        }
    }
}

/// Full record of a Newton–Raphson run: outcome plus every iterate.
#[derive(Debug, Clone, PartialEq)]
pub struct NewtonTrace {
    /// Termination status.
    pub outcome: NewtonOutcome,
    /// All iterates including the initial guess.
    pub iterates: Vec<f64>,
}

/// Newton–Raphson iteration `x <- x - damping * f(x)/f'(x)` with cycle
/// detection.
///
/// Returns the full [`NewtonTrace`]; callers that only care about the root
/// can match on [`NewtonOutcome::Converged`].
///
/// # Errors
/// Returns [`NumericError::InvalidArgument`] for a non-finite initial guess
/// or damping outside `(0, 1]`.
///
/// # Example
/// ```
/// use nanosim_numeric::roots::{newton_raphson, NewtonOptions, NewtonOutcome};
/// use nanosim_numeric::flops::FlopCounter;
/// # fn main() -> Result<(), nanosim_numeric::NumericError> {
/// let trace = newton_raphson(
///     |x| x * x - 2.0,
///     |x| 2.0 * x,
///     1.0,
///     NewtonOptions::default(),
///     &mut FlopCounter::new(),
/// )?;
/// match trace.outcome {
///     NewtonOutcome::Converged { root, .. } => assert!((root - 2f64.sqrt()).abs() < 1e-10),
///     other => panic!("unexpected outcome {other:?}"),
/// }
/// # Ok(())
/// # }
/// ```
pub fn newton_raphson<F, D>(
    f: F,
    df: D,
    x0: f64,
    opts: NewtonOptions,
    flops: &mut FlopCounter,
) -> Result<NewtonTrace>
where
    F: Fn(f64) -> f64,
    D: Fn(f64) -> f64,
{
    if !x0.is_finite() {
        return Err(NumericError::InvalidArgument {
            context: format!("newton initial guess {x0}"),
        });
    }
    if !(opts.damping > 0.0 && opts.damping <= 1.0) {
        return Err(NumericError::InvalidArgument {
            context: format!("newton damping {} outside (0, 1]", opts.damping),
        });
    }
    let mut iterates = vec![x0];
    let mut x = x0;
    for iter in 0..opts.max_iter {
        let fx = f(x);
        flops.func(1);
        if fx.abs() <= opts.f_tol {
            return Ok(NewtonTrace {
                outcome: NewtonOutcome::Converged {
                    root: x,
                    iterations: iter,
                },
                iterates,
            });
        }
        let dfx = df(x);
        flops.func(1);
        if dfx == 0.0 || !dfx.is_finite() {
            return Ok(NewtonTrace {
                outcome: NewtonOutcome::ZeroDerivative { at: x },
                iterates,
            });
        }
        let step = opts.damping * fx / dfx;
        flops.div(1);
        flops.mul(1);
        let x_next = x - step;
        flops.add(1);
        iterates.push(x_next);
        if step.abs() <= opts.x_tol {
            return Ok(NewtonTrace {
                outcome: NewtonOutcome::Converged {
                    root: x_next,
                    iterations: iter + 1,
                },
                iterates,
            });
        }
        // Cycle detection: does the new iterate revisit (within tolerance) a
        // recent iterate that is NOT its immediate predecessor?
        if let Some(cycle) = detect_cycle(&iterates) {
            return Ok(NewtonTrace {
                outcome: NewtonOutcome::Oscillating { cycle },
                iterates,
            });
        }
        x = x_next;
    }
    Ok(NewtonTrace {
        outcome: NewtonOutcome::Exhausted { last: x },
        iterates,
    })
}

/// Looks for a period-2..4 cycle at the tail of the iterate sequence.
fn detect_cycle(iterates: &[f64]) -> Option<Vec<f64>> {
    let n = iterates.len();
    for period in 2..=4usize {
        // Need two full periods to claim a cycle.
        if n < 2 * period + 1 {
            continue;
        }
        let tail = &iterates[n - 2 * period..];
        let scale = tail.iter().fold(1.0f64, |acc, v| acc.max(v.abs()));
        let tol = 1e-9 * scale;
        let mut is_cycle = true;
        for i in 0..period {
            if (tail[i] - tail[i + period]).abs() > tol {
                is_cycle = false;
                break;
            }
        }
        // A fixed point would also match; require genuine movement.
        if is_cycle {
            let spread = tail[..period]
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                    (lo.min(v), hi.max(v))
                });
            if spread.1 - spread.0 > tol * 10.0 {
                return Some(tail[..period].to_vec());
            }
        }
    }
    None
}

/// Bisection on a sign-changing bracket `[lo, hi]`.
///
/// # Errors
/// Returns [`NumericError::InvalidArgument`] when the bracket does not
/// straddle a sign change, and [`NumericError::DidNotConverge`] if `max_iter`
/// halvings do not reach `x_tol`.
pub fn bisect<F>(f: F, mut lo: f64, mut hi: f64, x_tol: f64, max_iter: usize) -> Result<f64>
where
    F: Fn(f64) -> f64,
{
    if !(lo < hi) {
        return Err(NumericError::InvalidArgument {
            context: format!("bisect bracket [{lo}, {hi}]"),
        });
    }
    let mut flo = f(lo);
    let fhi = f(hi);
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo.signum() == fhi.signum() {
        return Err(NumericError::InvalidArgument {
            context: format!("bisect: no sign change on [{lo}, {hi}]"),
        });
    }
    for _ in 0..max_iter {
        let mid = 0.5 * (lo + hi);
        let fmid = f(mid);
        if fmid == 0.0 || (hi - lo) * 0.5 < x_tol {
            return Ok(mid);
        }
        if fmid.signum() == flo.signum() {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    Err(NumericError::DidNotConverge {
        iterations: max_iter,
        residual: hi - lo,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn run_newton<F, D>(f: F, df: D, x0: f64, opts: NewtonOptions) -> NewtonTrace
    where
        F: Fn(f64) -> f64,
        D: Fn(f64) -> f64,
    {
        newton_raphson(f, df, x0, opts, &mut FlopCounter::new()).unwrap()
    }

    #[test]
    fn converges_on_sqrt2() {
        let t = run_newton(|x| x * x - 2.0, |x| 2.0 * x, 1.0, NewtonOptions::default());
        match t.outcome {
            NewtonOutcome::Converged { root, iterations } => {
                assert!(approx_eq(root, 2f64.sqrt(), 1e-10));
                assert!(iterations < 10);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(t.iterates.len() >= 2);
    }

    #[test]
    fn figure2_oscillation_from_bad_guess() {
        // f(x) = x^3 - 2x + 2 is the classic Newton 2-cycle: from x0 = 0 the
        // iterates alternate 0 -> 1 -> 0 -> 1 ... — the paper's Figure 2
        // "oscillation between x1 and x2" scenario.
        let f = |x: f64| x.powi(3) - 2.0 * x + 2.0;
        let df = |x: f64| 3.0 * x * x - 2.0;
        let t = run_newton(f, df, 0.0, NewtonOptions::default());
        match &t.outcome {
            NewtonOutcome::Oscillating { cycle } => {
                assert_eq!(cycle.len(), 2);
                let mut c = cycle.clone();
                c.sort_by(|a, b| a.partial_cmp(b).unwrap());
                assert!(approx_eq(c[0], 0.0, 1e-9));
                assert!(approx_eq(c[1], 1.0, 1e-9));
            }
            other => panic!("expected oscillation, got {other:?}"),
        }
    }

    #[test]
    fn figure2_good_guess_converges() {
        // Same cubic: from x0 = -2 Newton converges to the real root ~ -1.7693.
        let f = |x: f64| x.powi(3) - 2.0 * x + 2.0;
        let df = |x: f64| 3.0 * x * x - 2.0;
        let t = run_newton(f, df, -2.0, NewtonOptions::default());
        match t.outcome {
            NewtonOutcome::Converged { root, .. } => {
                assert!(approx_eq(f(root), 0.0, 1e-9));
                assert!(approx_eq(root, -1.769_292_354_238_631, 1e-9));
            }
            other => panic!("expected convergence, got {other:?}"),
        }
    }

    #[test]
    fn damping_rescues_the_oscillating_guess() {
        let f = |x: f64| x.powi(3) - 2.0 * x + 2.0;
        let df = |x: f64| 3.0 * x * x - 2.0;
        let opts = NewtonOptions {
            damping: 0.5,
            max_iter: 200,
            ..NewtonOptions::default()
        };
        let t = run_newton(f, df, 0.0, opts);
        match t.outcome {
            NewtonOutcome::Converged { root, .. } => assert!(approx_eq(f(root), 0.0, 1e-9)),
            other => panic!("expected damped convergence, got {other:?}"),
        }
    }

    #[test]
    fn zero_derivative_reported() {
        let t = run_newton(|x| x * x + 1.0, |x| 2.0 * x, 0.0, NewtonOptions::default());
        assert!(matches!(t.outcome, NewtonOutcome::ZeroDerivative { at } if at == 0.0));
    }

    #[test]
    fn exhausted_when_no_root() {
        // f(x) = exp(x) has no root; Newton walks to -inf without cycling.
        let opts = NewtonOptions {
            max_iter: 20,
            ..NewtonOptions::default()
        };
        let t = run_newton(|x: f64| x.exp(), |x: f64| x.exp(), 0.0, opts);
        assert!(matches!(t.outcome, NewtonOutcome::Exhausted { .. }));
    }

    #[test]
    fn invalid_arguments_rejected() {
        let mut f = FlopCounter::new();
        assert!(
            newton_raphson(|x| x, |_| 1.0, f64::NAN, NewtonOptions::default(), &mut f).is_err()
        );
        let bad = NewtonOptions {
            damping: 0.0,
            ..NewtonOptions::default()
        };
        assert!(newton_raphson(|x| x, |_| 1.0, 0.0, bad, &mut f).is_err());
    }

    #[test]
    fn newton_counts_flops() {
        let mut f = FlopCounter::new();
        newton_raphson(
            |x| x * x - 2.0,
            |x| 2.0 * x,
            1.0,
            NewtonOptions::default(),
            &mut f,
        )
        .unwrap();
        assert!(f.total() > 0);
        assert!(f.divs() > 0);
    }

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 100).unwrap();
        assert!(approx_eq(r, 2f64.sqrt(), 1e-10));
    }

    #[test]
    fn bisect_exact_endpoints() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-12, 10).unwrap(), 0.0);
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-12, 10).unwrap(), 1.0);
    }

    #[test]
    fn bisect_rejects_bad_bracket() {
        assert!(bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100).is_err());
        assert!(bisect(|x| x, 1.0, 0.0, 1e-12, 100).is_err());
    }

    #[test]
    fn bisect_budget_exhaustion() {
        match bisect(|x| x - 0.123456789, 0.0, 1.0, 1e-15, 3) {
            Err(NumericError::DidNotConverge { iterations, .. }) => assert_eq!(iterations, 3),
            other => panic!("unexpected {other:?}"),
        }
    }
}
