//! Run budgets and cooperative cancellation.
//!
//! Long-running analyses (sharded DC sweeps, stiff transients, Monte-Carlo
//! ensembles) need a way to be *bounded* — in wall-clock, in iterations, in
//! steps, in result size — and a way to be *stopped* from outside without
//! killing the process. This module provides both halves:
//!
//! * [`Budget`] — a declarative, [`Copy`]able set of optional limits. A
//!   default budget is unlimited and costs one branch per checkpoint.
//! * [`CancelToken`] — a cheap cooperative cancellation flag
//!   (`Arc<AtomicBool>`); cloning shares the flag, [`CancelToken::cancel`]
//!   trips every holder at its next checkpoint.
//! * [`BudgetMeter`] — the runtime companion the engines actually carry: it
//!   owns the local spend counters and answers `Err(BudgetStop)` at the
//!   deterministic checkpoints placed in every long-running loop.
//!
//! # Determinism contract
//!
//! The iteration/step/byte limits are accounted in *deterministic units*
//! (Newton iterations, accepted transient steps, result samples) against
//! counters local to one serial unit of work — [`BudgetMeter::fork`] starts
//! a sweep chunk or ensemble chunk from zero, so the accounting is a pure
//! function of the chunk index and never of thread scheduling. A run killed
//! by a unit budget therefore fails at the *same checkpoint with the same
//! [`BudgetStop`] at every worker count*, exactly like the fault-injection
//! plans in [`crate::fault`]. The wall-clock deadline and the cancel token
//! are inherently asynchronous; their [`BudgetStop`] payloads carry no
//! clock values, so a token cancelled *before* a run starts still produces
//! a bit-identical error everywhere.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Declarative resource limits of one analysis run. All limits are optional;
/// the default budget is unlimited. `Copy`, so it embeds freely in option
/// structs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock ceiling measured from the creation of the
    /// [`BudgetMeter`]. Checked at every checkpoint; a `Duration::ZERO`
    /// deadline trips deterministically at the first one.
    pub deadline: Option<Duration>,
    /// Cap on nonlinear (Newton / fixed-point) iterations per solve — one
    /// operating point, one sweep point, or one transient step. Engines
    /// fork the meter at each solve so the accounting is a pure function of
    /// the solve's position in the analysis.
    pub max_newton_iterations: Option<u64>,
    /// Cap on accepted transient time steps (per transient run).
    pub max_transient_steps: Option<u64>,
    /// Cap on the approximate size of the produced dataset in bytes.
    pub max_result_bytes: Option<u64>,
}

impl Budget {
    /// An unlimited budget (the default).
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Sets the wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the per-unit Newton/fixed-point iteration cap.
    #[must_use]
    pub fn with_max_newton_iterations(mut self, limit: u64) -> Self {
        self.max_newton_iterations = Some(limit);
        self
    }

    /// Sets the accepted-transient-step cap.
    #[must_use]
    pub fn with_max_transient_steps(mut self, limit: u64) -> Self {
        self.max_transient_steps = Some(limit);
        self
    }

    /// Sets the result-size cap in bytes.
    #[must_use]
    pub fn with_max_result_bytes(mut self, limit: u64) -> Self {
        self.max_result_bytes = Some(limit);
        self
    }

    /// `true` when no limit is set (every checkpoint reduces to one cancel
    /// check).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_newton_iterations.is_none()
            && self.max_transient_steps.is_none()
            && self.max_result_bytes.is_none()
    }
}

/// Cooperative cancellation flag. Cloning shares the flag; every holder
/// observes [`CancelToken::cancel`] at its next checkpoint. One relaxed
/// atomic load per check — cheap enough for per-iteration placement.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Trips the token. Idempotent; there is no un-cancel.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the token has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// Whether `self` and `other` share the same underlying flag.
    pub fn same_as(&self, other: &CancelToken) -> bool {
        Arc::ptr_eq(&self.flag, &other.flag)
    }
}

/// Why a budgeted run was stopped. Deliberately free of wall-clock values
/// so the same stop compares equal wherever and whenever it is observed —
/// the payload of `SimError::BudgetExceeded` upstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetStop {
    /// The run's [`CancelToken`] was tripped.
    Cancelled,
    /// The wall-clock deadline passed.
    DeadlineExceeded,
    /// The per-unit Newton/fixed-point iteration cap was hit.
    NewtonIterations {
        /// The configured cap.
        limit: u64,
    },
    /// The accepted-transient-step cap was hit.
    TransientSteps {
        /// The configured cap.
        limit: u64,
    },
    /// The projected or accumulated result size exceeded the byte cap.
    ResultBytes {
        /// The configured cap.
        limit: u64,
    },
}

impl fmt::Display for BudgetStop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetStop::Cancelled => f.write_str("cancelled"),
            BudgetStop::DeadlineExceeded => f.write_str("deadline exceeded"),
            BudgetStop::NewtonIterations { limit } => {
                write!(f, "newton-iteration budget exhausted (limit {limit})")
            }
            BudgetStop::TransientSteps { limit } => {
                write!(f, "transient-step budget exhausted (limit {limit})")
            }
            BudgetStop::ResultBytes { limit } => {
                write!(f, "result-byte budget exhausted (limit {limit})")
            }
        }
    }
}

/// The runtime half of a [`Budget`]: local spend counters plus the shared
/// [`CancelToken`] and deadline clock. Engines carry one meter per serial
/// unit of work and call the `tick_*`/`checkpoint` methods at the
/// deterministic checkpoints (see the module docs).
#[derive(Debug, Clone)]
pub struct BudgetMeter {
    budget: Budget,
    token: CancelToken,
    start: Instant,
    iterations: u64,
    steps: u64,
    bytes: u64,
}

impl Default for BudgetMeter {
    fn default() -> Self {
        BudgetMeter::unlimited()
    }
}

impl BudgetMeter {
    /// A meter over `budget`, cancellable through `token`. The deadline
    /// clock starts now.
    pub fn new(budget: Budget, token: CancelToken) -> Self {
        BudgetMeter {
            budget,
            token,
            start: Instant::now(),
            iterations: 0,
            steps: 0,
            bytes: 0,
        }
    }

    /// An unlimited meter with a private token — the zero-cost default
    /// engines fall back to when no budget is threaded in.
    pub fn unlimited() -> Self {
        BudgetMeter::new(Budget::unlimited(), CancelToken::new())
    }

    /// Starts a fresh serial unit of work: same budget, same token, same
    /// deadline clock, *zeroed local counters*. Sweep and ensemble chunks
    /// fork so their iteration accounting is a function of the chunk alone,
    /// never of how chunks were scheduled onto workers.
    #[must_use]
    pub fn fork(&self) -> Self {
        BudgetMeter {
            budget: self.budget,
            token: self.token.clone(),
            start: self.start,
            iterations: 0,
            steps: 0,
            bytes: 0,
        }
    }

    /// The configured limits.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// The shared cancellation token.
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// `true` when no limit is set and the token is untripped — i.e. the
    /// meter can never stop the run (the bit-identity fast path).
    pub fn is_inert(&self) -> bool {
        self.budget.is_unlimited() && !self.token.is_cancelled()
    }

    /// The pure cancel + deadline check every checkpoint performs.
    ///
    /// # Errors
    /// [`BudgetStop::Cancelled`] once the token trips;
    /// [`BudgetStop::DeadlineExceeded`] once the wall-clock deadline passes.
    pub fn checkpoint(&self) -> Result<(), BudgetStop> {
        if self.token.is_cancelled() {
            return Err(BudgetStop::Cancelled);
        }
        if let Some(deadline) = self.budget.deadline {
            if self.start.elapsed() >= deadline {
                return Err(BudgetStop::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// Charges one nonlinear iteration against the per-unit cap, then runs
    /// the [`BudgetMeter::checkpoint`] checks.
    ///
    /// # Errors
    /// [`BudgetStop::NewtonIterations`] past the cap, plus everything
    /// [`BudgetMeter::checkpoint`] raises.
    pub fn tick_iteration(&mut self) -> Result<(), BudgetStop> {
        self.iterations += 1;
        if let Some(limit) = self.budget.max_newton_iterations {
            if self.iterations > limit {
                return Err(BudgetStop::NewtonIterations { limit });
            }
        }
        self.checkpoint()
    }

    /// Charges one accepted transient step, then runs the checkpoint
    /// checks.
    ///
    /// # Errors
    /// [`BudgetStop::TransientSteps`] past the cap, plus everything
    /// [`BudgetMeter::checkpoint`] raises.
    pub fn tick_step(&mut self) -> Result<(), BudgetStop> {
        self.steps += 1;
        if let Some(limit) = self.budget.max_transient_steps {
            if self.steps > limit {
                return Err(BudgetStop::TransientSteps { limit });
            }
        }
        self.checkpoint()
    }

    /// Charges `bytes` of produced result data against the byte cap. Also
    /// used up front with the full projected size of analyses whose result
    /// shape is known before any work runs (sweeps, ensembles).
    ///
    /// # Errors
    /// [`BudgetStop::ResultBytes`] once the accumulated charge passes the
    /// cap.
    pub fn charge_bytes(&mut self, bytes: u64) -> Result<(), BudgetStop> {
        self.bytes = self.bytes.saturating_add(bytes);
        if let Some(limit) = self.budget.max_result_bytes {
            if self.bytes > limit {
                return Err(BudgetStop::ResultBytes { limit });
            }
        }
        Ok(())
    }

    /// Nonlinear iterations charged to this unit so far.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Accepted transient steps charged so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Result bytes charged so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_unlimited() {
        let b = Budget::default();
        assert!(b.is_unlimited());
        assert!(!b.with_max_newton_iterations(5).is_unlimited());
        assert!(!Budget::unlimited()
            .with_deadline(Duration::from_millis(1))
            .is_unlimited());
    }

    #[test]
    fn cancel_token_is_shared_and_sticky() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!u.is_cancelled());
        t.cancel();
        assert!(u.is_cancelled());
        assert!(t.same_as(&u));
        assert!(!t.same_as(&CancelToken::new()));
    }

    #[test]
    fn inert_meter_never_stops() {
        let mut m = BudgetMeter::unlimited();
        assert!(m.is_inert());
        for _ in 0..1000 {
            m.tick_iteration().unwrap();
            m.tick_step().unwrap();
            m.charge_bytes(1 << 20).unwrap();
        }
        m.checkpoint().unwrap();
    }

    #[test]
    fn iteration_budget_trips_past_the_limit() {
        let mut m = BudgetMeter::new(
            Budget::unlimited().with_max_newton_iterations(3),
            CancelToken::new(),
        );
        for _ in 0..3 {
            m.tick_iteration().unwrap();
        }
        assert_eq!(
            m.tick_iteration(),
            Err(BudgetStop::NewtonIterations { limit: 3 })
        );
        assert_eq!(m.iterations(), 4);
    }

    #[test]
    fn step_and_byte_budgets_trip() {
        let mut m = BudgetMeter::new(
            Budget::unlimited()
                .with_max_transient_steps(2)
                .with_max_result_bytes(100),
            CancelToken::new(),
        );
        m.tick_step().unwrap();
        m.tick_step().unwrap();
        assert_eq!(m.tick_step(), Err(BudgetStop::TransientSteps { limit: 2 }));
        m.charge_bytes(100).unwrap();
        assert_eq!(
            m.charge_bytes(1),
            Err(BudgetStop::ResultBytes { limit: 100 })
        );
    }

    #[test]
    fn cancellation_beats_every_other_check() {
        let token = CancelToken::new();
        let mut m = BudgetMeter::new(
            Budget::unlimited().with_max_newton_iterations(1000),
            token.clone(),
        );
        m.tick_iteration().unwrap();
        token.cancel();
        assert_eq!(m.checkpoint(), Err(BudgetStop::Cancelled));
        assert_eq!(m.tick_iteration(), Err(BudgetStop::Cancelled));
        assert!(!m.is_inert());
    }

    #[test]
    fn zero_deadline_trips_at_first_checkpoint() {
        let m = BudgetMeter::new(
            Budget::unlimited().with_deadline(Duration::ZERO),
            CancelToken::new(),
        );
        assert_eq!(m.checkpoint(), Err(BudgetStop::DeadlineExceeded));
    }

    #[test]
    fn fork_resets_local_spend_but_shares_token_and_clock() {
        let token = CancelToken::new();
        let mut m = BudgetMeter::new(
            Budget::unlimited().with_max_newton_iterations(2),
            token.clone(),
        );
        m.tick_iteration().unwrap();
        m.tick_iteration().unwrap();
        assert!(m.tick_iteration().is_err());
        let mut chunk = m.fork();
        assert_eq!(chunk.iterations(), 0);
        chunk.tick_iteration().unwrap();
        token.cancel();
        assert_eq!(chunk.tick_iteration(), Err(BudgetStop::Cancelled));
    }

    #[test]
    fn stop_reasons_display() {
        assert_eq!(BudgetStop::Cancelled.to_string(), "cancelled");
        assert!(BudgetStop::DeadlineExceeded
            .to_string()
            .contains("deadline"));
        assert!(BudgetStop::NewtonIterations { limit: 7 }
            .to_string()
            .contains('7'));
        assert!(BudgetStop::TransientSteps { limit: 9 }
            .to_string()
            .contains('9'));
        assert!(BudgetStop::ResultBytes { limit: 11 }
            .to_string()
            .contains("11"));
    }
}
