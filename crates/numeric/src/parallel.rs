//! Deterministic scoped-thread parallelism for Monte-Carlo ensembles.
//!
//! The build environment is offline, so instead of depending on `rayon`
//! this module provides the one primitive the simulator needs: an
//! order-preserving parallel map over an index range, built on
//! [`std::thread::scope`] with an atomic work-stealing counter.
//!
//! **Determinism contract:** `par_map(n, threads, f)` returns
//! `vec![f(0), f(1), ..., f(n-1)]` with results slotted by index, so the
//! output is *identical for every thread count* (including 1) as long as
//! each `f(i)` is itself deterministic. Scheduling only changes *when* each
//! item runs, never where its result lands. The Euler–Maruyama engine
//! builds its bit-identical serial-vs-parallel guarantee on this.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a requested thread count: `0` means "use all available
/// hardware parallelism", anything else is taken literally.
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Maps `f` over `0..n` using up to `threads` worker threads (0 = auto),
/// returning results in index order.
///
/// Work is distributed dynamically (an atomic counter hands out the next
/// index), so uneven item costs balance across workers. With `threads <= 1`
/// or `n <= 1` the map runs inline on the caller's thread with no spawning.
///
/// # Panics
/// Propagates a panic from any invocation of `f`.
///
/// # Example
/// ```
/// use nanosim_numeric::parallel::par_map;
/// let serial = par_map(8, 1, |i| i * i);
/// let parallel = par_map(8, 4, |i| i * i);
/// assert_eq!(serial, parallel);
/// ```
pub fn par_map<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = effective_threads(threads).min(n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let counter = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut produced: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = counter.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        produced.push((i, f(i)));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            for (i, r) in handle.join().expect("parallel worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index produced exactly once"))
        .collect()
}

/// Like [`par_map`] for fallible items: returns the first error by index
/// order, if any.
///
/// All items are still evaluated (workers don't observe other workers'
/// failures), which keeps the call deterministic; the *reported* error is
/// the one with the smallest index.
///
/// # Errors
/// Returns the error of the smallest failing index.
pub fn try_par_map<R, E, F>(n: usize, threads: usize, f: F) -> Result<Vec<R>, E>
where
    R: Send,
    E: Send,
    F: Fn(usize) -> Result<R, E> + Sync,
{
    par_map(n, threads, f).into_iter().collect()
}

/// Like [`try_par_map`], but keeps the successful items alongside the
/// first-by-index error instead of discarding them: returns
/// `(results, error)` where `results[i]` is `Some` for every item that
/// succeeded and `error` is `Some((i, e))` for the smallest failing index.
///
/// All items are evaluated either way (same contract as [`try_par_map`]),
/// so the partition of successes/failures — and therefore any prefix a
/// caller salvages from it — is identical at every thread count. This is
/// the partial-result path of budget-killed sharded sweeps: chunks before
/// the failing index form a deterministic accepted prefix.
pub fn try_par_map_partial<R, E, F>(
    n: usize,
    threads: usize,
    f: F,
) -> (Vec<Option<R>>, Option<(usize, E)>)
where
    R: Send,
    E: Send,
    F: Fn(usize) -> Result<R, E> + Sync,
{
    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    let mut error: Option<(usize, E)> = None;
    for (i, item) in par_map(n, threads, f).into_iter().enumerate() {
        match item {
            Ok(r) => results.push(Some(r)),
            Err(e) => {
                results.push(None);
                if error.is_none() {
                    error = Some((i, e));
                }
            }
        }
    }
    (results, error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_index_ordered() {
        let out = par_map(100, 4, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let serial = par_map(37, 1, |i| (i as f64).sqrt());
        let parallel = par_map(37, 8, |i| (i as f64).sqrt());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn zero_and_one_item_edge_cases() {
        assert_eq!(par_map(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(1, 4, |i| i + 1), vec![1]);
    }

    #[test]
    fn auto_thread_count_resolves() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }

    #[test]
    fn try_par_map_reports_first_error() {
        let r: Result<Vec<usize>, usize> =
            try_par_map(10, 4, |i| if i % 4 == 3 { Err(i) } else { Ok(i) });
        assert_eq!(r.unwrap_err(), 3);
        let ok: Result<Vec<usize>, usize> = try_par_map(5, 2, Ok);
        assert_eq!(ok.unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn try_par_map_partial_keeps_successes_and_smallest_error() {
        let f = |i: usize| if i % 4 == 3 { Err(i) } else { Ok(i * 2) };
        for threads in [1, 2, 4] {
            let (results, err) = try_par_map_partial(10, threads, f);
            assert_eq!(err, Some((3, 3)), "threads={threads}");
            assert_eq!(results.len(), 10);
            assert_eq!(results[2], Some(4));
            assert_eq!(results[3], None);
            assert_eq!(results[7], None);
            assert_eq!(results[8], Some(16));
        }
        let (all, err) = try_par_map_partial(5, 2, Ok::<_, ()>);
        assert!(err.is_none());
        assert!(all.iter().all(Option::is_some));
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Just exercises the stealing path with skewed item costs.
        let out = par_map(32, 4, |i| {
            let mut acc = 0u64;
            for k in 0..(i * 1000) {
                acc = acc.wrapping_add(k as u64);
            }
            (i, acc)
        });
        for (i, (j, _)) in out.iter().enumerate() {
            assert_eq!(i, *j);
        }
    }
}
