//! Streaming statistics for Monte-Carlo ensembles.
//!
//! The Euler–Maruyama experiments run hundreds of stochastic paths; these
//! helpers accumulate moments without storing every sample (Welford's
//! algorithm) and estimate percentiles/histograms when samples are kept.

use std::fmt;

/// Streaming mean/variance/min/max accumulator (Welford).
///
/// # Example
/// ```
/// use nanosim_numeric::stats::RunningStats;
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.variance(), 1.0); // sample variance
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of samples pushed.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Smallest sample seen (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample seen (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let total = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / total as f64;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / total as f64;
        self.n = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for RunningStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.6e} std={:.6e} min={:.6e} max={:.6e}",
            self.n,
            self.mean(),
            self.std_dev(),
            self.min,
            self.max
        )
    }
}

impl Extend<f64> for RunningStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = RunningStats::new();
        s.extend(iter);
        s
    }
}

/// Percentile of a sample set by linear interpolation between order
/// statistics (the "linear" / type-7 estimator).
///
/// `q` is in `[0, 1]`. Returns `None` for an empty slice.
///
/// # Example
/// ```
/// use nanosim_numeric::stats::percentile;
/// let data = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&data, 0.5), Some(2.5));
/// ```
pub fn percentile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let w = pos - lo as f64;
        Some(sorted[lo] * (1.0 - w) + sorted[hi] * w)
    }
}

/// A fixed-bin histogram over `[lo, hi)` with out-of-range counters.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "invalid histogram range [{lo}, {hi})");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records a sample.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / (self.hi - self.lo) * self.bins.len() as f64) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Counts per bin.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Center value of bin `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.bins.len(), "bin {i} out of range");
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn empty_stats_are_neutral() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
    }

    #[test]
    fn known_small_sample() {
        let s: RunningStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!(approx_eq(s.mean(), 5.0, 1e-12));
        // population variance 4.0 -> sample variance 32/7
        assert!(approx_eq(s.variance(), 32.0 / 7.0, 1e-12));
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 3.0 + 1.0).collect();
        let all: RunningStats = data.iter().copied().collect();
        let first: RunningStats = data[..37].iter().copied().collect();
        let mut merged = first;
        let second: RunningStats = data[37..].iter().copied().collect();
        merged.merge(&second);
        assert_eq!(merged.count(), all.count());
        assert!(approx_eq(merged.mean(), all.mean(), 1e-12));
        assert!(approx_eq(merged.variance(), all.variance(), 1e-12));
        assert_eq!(merged.min(), all.min());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: RunningStats = [1.0, 2.0].into_iter().collect();
        let before = s;
        s.merge(&RunningStats::new());
        assert_eq!(s, before);
        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn percentile_edges() {
        let data = [3.0, 1.0, 2.0];
        assert_eq!(percentile(&data, 0.0), Some(1.0));
        assert_eq!(percentile(&data, 1.0), Some(3.0));
        assert_eq!(percentile(&data, 0.5), Some(2.0));
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&data, 1.5), None);
    }

    #[test]
    fn percentile_interpolates() {
        let data = [0.0, 10.0];
        assert!(approx_eq(percentile(&data, 0.25).unwrap(), 2.5, 1e-12));
    }

    #[test]
    fn histogram_bins_and_ranges() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.5, 2.5, 9.9, -1.0, 10.0, 11.0] {
            h.push(x);
        }
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 7);
        assert!(approx_eq(h.bin_center(0), 1.0, 1e-12));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn display_shows_summary() {
        let s: RunningStats = [1.0].into_iter().collect();
        assert!(s.to_string().contains("n=1"));
    }
}
