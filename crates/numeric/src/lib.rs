//! Numerical substrate for the Nano-Sim circuit simulator.
//!
//! This crate provides every piece of numerics the simulator engines need,
//! implemented from scratch so that the floating-point operation accounting
//! used by the paper's Table I is exact and auditable:
//!
//! * [`dense`] — small dense matrices with LU factorization (reference
//!   solver and `C`-matrix factorization for the Euler–Maruyama engine).
//! * [`sparse`] — triplet (COO) assembly and compressed sparse row storage
//!   with a partial-pivoting sparse LU whose symbolic analysis is cached so
//!   the many nearly-identical solves of a transient run go through a
//!   values-only [`sparse::SparseLu::refactor`] instead of a full
//!   factorization.
//! * [`fault`] — a deterministic fault-injection harness ([`FaultPlan`])
//!   that schedules singular pivots, degraded pivots, conductance
//!   collapses, NaN poisons and deterministic stalls at exact solver
//!   calls, so every recovery path is testable on demand.
//! * [`budget`] — run budgets ([`Budget`]) and cooperative cancellation
//!   ([`CancelToken`]): deterministic checkpoints that bound any analysis
//!   in wall-clock, iterations, steps or result bytes.
//! * [`parallel`] — deterministic order-preserving scoped-thread map used
//!   by the Monte-Carlo ensemble engine (offline stand-in for rayon).
//! * [`solve`] — a [`solve::LinearSolver`] abstraction over the dense and
//!   sparse factorizations.
//! * [`rng`] — a deterministic PCG64-family pseudo random number generator
//!   plus Gaussian variates (Box–Muller), so stochastic experiments are
//!   reproducible without external dependencies.
//! * [`stats`] — running moments, histograms and percentile estimation for
//!   Monte-Carlo ensembles.
//! * [`flops`] — the floating-point operation counters behind the paper's
//!   Table I ("Comparison of DC simulations performance").
//! * [`interp`] — piecewise-linear functions used by source waveforms and
//!   the ACES-like PWL baseline engine.
//! * [`roots`] — scalar Newton–Raphson and bisection; the Newton iteration
//!   history reproduces the paper's Figure 2 (oscillation of NR on
//!   non-monotone curves depending on the initial guess).
//!
//! # Example
//!
//! Solving a small conductance system `G·v = i`:
//!
//! ```
//! use nanosim_numeric::sparse::TripletMatrix;
//! use nanosim_numeric::solve::{LinearSolver, SparseLuSolver};
//! use nanosim_numeric::flops::FlopCounter;
//!
//! # fn main() -> Result<(), nanosim_numeric::NumericError> {
//! let mut t = TripletMatrix::new(2, 2);
//! t.push(0, 0, 3.0);
//! t.push(0, 1, -1.0);
//! t.push(1, 0, -1.0);
//! t.push(1, 1, 2.0);
//! let mut solver = SparseLuSolver::new();
//! let mut flops = FlopCounter::new();
//! let x = solver.solve(&t.to_csr(), &[1.0, 0.0], &mut flops)?;
//! assert!((x[0] - 0.4).abs() < 1e-12);
//! assert!((x[1] - 0.2).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod budget;
pub mod dense;
pub mod error;
pub mod fault;
pub mod flops;
pub mod interp;
pub mod parallel;
pub mod rng;
pub mod roots;
pub mod solve;
pub mod sparse;
pub mod stats;

pub use budget::{Budget, BudgetMeter, BudgetStop, CancelToken};
pub use dense::DenseMatrix;
pub use error::NumericError;
pub use fault::FaultPlan;
pub use flops::FlopCounter;
pub use rng::Pcg64;
pub use sparse::{CsrMatrix, OrderingChoice, TripletMatrix};

/// Convenience alias used across the workspace for fallible numeric results.
pub type Result<T> = std::result::Result<T, NumericError>;

/// Relative/absolute comparison used throughout the test-suites.
///
/// Returns `true` when `a` and `b` agree to within `tol` either absolutely or
/// relative to the larger magnitude. `NaN` never compares close.
///
/// # Example
/// ```
/// assert!(nanosim_numeric::approx_eq(1.0, 1.0 + 1e-13, 1e-9));
/// assert!(!nanosim_numeric::approx_eq(1.0, 1.1, 1e-9));
/// ```
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    if a.is_nan() || b.is_nan() {
        return false;
    }
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    let scale = a.abs().max(b.abs());
    diff <= tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute_window() {
        assert!(approx_eq(0.0, 1e-12, 1e-9));
        assert!(!approx_eq(0.0, 1e-6, 1e-9));
    }

    #[test]
    fn approx_eq_relative_window() {
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-9));
        assert!(!approx_eq(1e12, 1.1e12, 1e-9));
    }

    #[test]
    fn approx_eq_rejects_nan() {
        assert!(!approx_eq(f64::NAN, 0.0, 1.0));
        assert!(!approx_eq(0.0, f64::NAN, 1.0));
        assert!(!approx_eq(f64::NAN, f64::NAN, 1.0));
    }

    #[test]
    fn approx_eq_symmetric() {
        assert_eq!(approx_eq(3.0, 3.1, 0.05), approx_eq(3.1, 3.0, 0.05));
    }
}
