//! Floating-point operation accounting.
//!
//! The Nano-Sim paper's Table I compares simulators by the *number of
//! floating point operations* needed for a DC analysis, not by wall-clock
//! time (which depends on the host). Every solver and device-model routine in
//! this workspace threads a [`FlopCounter`] so both the SWEC engine and the
//! baseline engines are measured with identical accounting rules:
//!
//! * `add` — additions and subtractions,
//! * `mul` — multiplications,
//! * `div` — divisions and reciprocals,
//! * `func` — transcendental evaluations (`exp`, `ln`, `atan`, `sqrt`, ...),
//!   each counted as one operation (the conventional FLOP-counting rule for
//!   simulator comparisons).

use std::fmt;
use std::ops::AddAssign;

/// Tallies of floating point operations by category.
///
/// # Example
/// ```
/// use nanosim_numeric::flops::FlopCounter;
/// let mut c = FlopCounter::new();
/// c.add(2);
/// c.mul(3);
/// c.div(1);
/// c.func(1);
/// assert_eq!(c.total(), 7);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct FlopCounter {
    adds: u64,
    muls: u64,
    divs: u64,
    funcs: u64,
}

impl FlopCounter {
    /// Creates a counter with all tallies at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` additions/subtractions.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.adds += n;
    }

    /// Records `n` multiplications.
    #[inline]
    pub fn mul(&mut self, n: u64) {
        self.muls += n;
    }

    /// Records `n` divisions.
    #[inline]
    pub fn div(&mut self, n: u64) {
        self.divs += n;
    }

    /// Records `n` transcendental function evaluations.
    #[inline]
    pub fn func(&mut self, n: u64) {
        self.funcs += n;
    }

    /// Records one fused multiply-accumulate (one `mul` plus one `add`),
    /// the inner-loop operation of LU elimination and mat-vec products.
    #[inline]
    pub fn fma(&mut self, n: u64) {
        self.muls += n;
        self.adds += n;
    }

    /// Number of additions/subtractions recorded so far.
    pub fn adds(&self) -> u64 {
        self.adds
    }

    /// Number of multiplications recorded so far.
    pub fn muls(&self) -> u64 {
        self.muls
    }

    /// Number of divisions recorded so far.
    pub fn divs(&self) -> u64 {
        self.divs
    }

    /// Number of transcendental evaluations recorded so far.
    pub fn funcs(&self) -> u64 {
        self.funcs
    }

    /// Total floating point operations across all categories.
    pub fn total(&self) -> u64 {
        self.adds + self.muls + self.divs + self.funcs
    }

    /// Resets every tally to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Difference `self - earlier`, useful to attribute operations to a
    /// phase of a larger computation.
    ///
    /// # Panics
    /// Panics in debug builds if `earlier` has larger tallies than `self`.
    pub fn since(&self, earlier: &FlopCounter) -> FlopCounter {
        debug_assert!(self.adds >= earlier.adds);
        debug_assert!(self.muls >= earlier.muls);
        debug_assert!(self.divs >= earlier.divs);
        debug_assert!(self.funcs >= earlier.funcs);
        FlopCounter {
            adds: self.adds - earlier.adds,
            muls: self.muls - earlier.muls,
            divs: self.divs - earlier.divs,
            funcs: self.funcs - earlier.funcs,
        }
    }
}

impl AddAssign for FlopCounter {
    fn add_assign(&mut self, rhs: FlopCounter) {
        self.adds += rhs.adds;
        self.muls += rhs.muls;
        self.divs += rhs.divs;
        self.funcs += rhs.funcs;
    }
}

impl fmt::Display for FlopCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} flops ({} add, {} mul, {} div, {} func)",
            self.total(),
            self.adds,
            self.muls,
            self.divs,
            self.funcs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_counter_is_zero() {
        let c = FlopCounter::new();
        assert_eq!(c.total(), 0);
        assert_eq!(c, FlopCounter::default());
    }

    #[test]
    fn categories_accumulate_independently() {
        let mut c = FlopCounter::new();
        c.add(1);
        c.mul(2);
        c.div(3);
        c.func(4);
        assert_eq!(c.adds(), 1);
        assert_eq!(c.muls(), 2);
        assert_eq!(c.divs(), 3);
        assert_eq!(c.funcs(), 4);
        assert_eq!(c.total(), 10);
    }

    #[test]
    fn fma_counts_one_mul_and_one_add() {
        let mut c = FlopCounter::new();
        c.fma(5);
        assert_eq!(c.adds(), 5);
        assert_eq!(c.muls(), 5);
        assert_eq!(c.total(), 10);
    }

    #[test]
    fn since_subtracts_componentwise() {
        let mut c = FlopCounter::new();
        c.add(10);
        let snapshot = c;
        c.add(5);
        c.mul(2);
        let delta = c.since(&snapshot);
        assert_eq!(delta.adds(), 5);
        assert_eq!(delta.muls(), 2);
    }

    #[test]
    fn add_assign_merges_counters() {
        let mut a = FlopCounter::new();
        a.add(1);
        a.func(2);
        let mut b = FlopCounter::new();
        b.mul(3);
        let mut c = a;
        c += b;
        assert_eq!(c.adds(), 1);
        assert_eq!(c.muls(), 3);
        assert_eq!(c.funcs(), 2);
        assert_eq!(c.total(), 6);
    }

    #[test]
    fn reset_clears_all() {
        let mut c = FlopCounter::new();
        c.fma(100);
        c.reset();
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn display_mentions_every_category() {
        let mut c = FlopCounter::new();
        c.add(1);
        c.mul(2);
        c.div(3);
        c.func(4);
        let s = c.to_string();
        assert!(s.contains("10 flops"));
        assert!(s.contains("1 add"));
        assert!(s.contains("4 func"));
    }
}
