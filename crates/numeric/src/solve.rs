//! Solver abstraction over the dense and sparse LU factorizations.
//!
//! The simulation engines are written against [`LinearSolver`] so the same
//! engine code runs with either backend; tests use the dense solver as a
//! reference implementation for the sparse one.
//!
//! [`SparseLuSolver`] is *stateful*: it keeps the last factorization and,
//! when asked to solve a matrix with the same sparsity pattern, reuses the
//! cached symbolic analysis via [`SparseLu::refactor_or_factor`] — the
//! factor-once/refactor-many strategy the transient engines rely on. The
//! [`LinearSolver::solve_into`] entry point additionally avoids allocating
//! the solution vector, so a warmed-up solver performs zero heap
//! allocations per solve.

use crate::dense::DenseMatrix;
use crate::flops::FlopCounter;
use crate::sparse::{CsrMatrix, PivotStrategy, SparseLu};
use crate::Result;
use std::fmt::Debug;

/// A linear solver for `A·x = b` with `A` given in CSR form.
///
/// Implementations may cache state between calls (factorization reuse),
/// which is why `solve` takes `&mut self`.
pub trait LinearSolver: Debug {
    /// Solves `a·x = b`, recording floating point operations in `flops`.
    ///
    /// # Errors
    /// Returns a [`crate::NumericError`] when the matrix is singular or the
    /// shapes mismatch.
    fn solve(&mut self, a: &CsrMatrix, b: &[f64], flops: &mut FlopCounter) -> Result<Vec<f64>>;

    /// Solves `a·x = b` into a caller-provided buffer (resized as needed).
    /// Backends that cache factorizations avoid all per-call allocation
    /// here; the default implementation simply delegates to
    /// [`LinearSolver::solve`].
    ///
    /// # Errors
    /// Same as [`LinearSolver::solve`].
    fn solve_into(
        &mut self,
        a: &CsrMatrix,
        b: &[f64],
        x: &mut Vec<f64>,
        flops: &mut FlopCounter,
    ) -> Result<()> {
        let result = self.solve(a, b, flops)?;
        x.clear();
        x.extend_from_slice(&result);
        Ok(())
    }

    /// Human-readable backend name (for reports).
    fn name(&self) -> &'static str;
}

/// Dense LU backend; reference implementation, O(n^3) factor.
#[derive(Debug, Clone, Copy, Default)]
pub struct DenseLuSolver;

impl DenseLuSolver {
    /// Creates a dense solver.
    pub fn new() -> Self {
        DenseLuSolver
    }
}

impl LinearSolver for DenseLuSolver {
    fn solve(&mut self, a: &CsrMatrix, b: &[f64], flops: &mut FlopCounter) -> Result<Vec<f64>> {
        let dense: DenseMatrix = a.to_dense();
        dense.solve(b, flops)
    }

    fn name(&self) -> &'static str {
        "dense-lu"
    }
}

/// Sparse LU backend (Gilbert–Peierls with threshold diagonal pivoting)
/// with cached-factorization reuse across same-pattern solves.
#[derive(Debug, Clone, Default)]
pub struct SparseLuSolver {
    strategy: PivotStrategy,
    cached: Option<SparseLu>,
    work: Vec<f64>,
    full_factors: u64,
    refactors: u64,
}

impl SparseLuSolver {
    /// Creates a sparse solver with the default pivot strategy.
    pub fn new() -> Self {
        SparseLuSolver {
            strategy: PivotStrategy::default(),
            ..SparseLuSolver::default()
        }
    }

    /// Creates a sparse solver with an explicit pivot strategy.
    pub fn with_strategy(strategy: PivotStrategy) -> Self {
        SparseLuSolver {
            strategy,
            ..SparseLuSolver::default()
        }
    }

    /// `(full factorizations, pattern-reusing refactorizations)` performed
    /// so far — the factor/refactor split behind the speedup benches.
    pub fn factor_counts(&self) -> (u64, u64) {
        (self.full_factors, self.refactors)
    }

    /// Drops the cached factorization (next solve runs a full factor).
    pub fn invalidate(&mut self) {
        self.cached = None;
    }
}

impl LinearSolver for SparseLuSolver {
    fn solve(&mut self, a: &CsrMatrix, b: &[f64], flops: &mut FlopCounter) -> Result<Vec<f64>> {
        let mut x = Vec::new();
        self.solve_into(a, b, &mut x, flops)?;
        Ok(x)
    }

    fn solve_into(
        &mut self,
        a: &CsrMatrix,
        b: &[f64],
        x: &mut Vec<f64>,
        flops: &mut FlopCounter,
    ) -> Result<()> {
        match &mut self.cached {
            Some(lu) => {
                if lu.refactor_or_factor(a, flops)? {
                    self.refactors += 1;
                } else {
                    self.full_factors += 1;
                }
            }
            None => {
                self.cached = Some(SparseLu::factor_with(a, self.strategy, flops)?);
                self.full_factors += 1;
            }
        }
        let lu = self.cached.as_ref().expect("factorization cached above");
        lu.solve_into(b, x, &mut self.work, flops)
    }

    fn name(&self) -> &'static str {
        "sparse-lu"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::sparse::TripletMatrix;

    fn test_system() -> (CsrMatrix, Vec<f64>) {
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 5.0);
        t.push(0, 1, -1.0);
        t.push(1, 0, -1.0);
        t.push(1, 1, 4.0);
        t.push(1, 2, -2.0);
        t.push(2, 1, -2.0);
        t.push(2, 2, 6.0);
        (t.to_csr(), vec![1.0, 2.0, 3.0])
    }

    #[test]
    fn dense_and_sparse_agree() {
        let (a, b) = test_system();
        let mut dense = DenseLuSolver::new();
        let mut sparse = SparseLuSolver::new();
        let xd = dense.solve(&a, &b, &mut FlopCounter::new()).unwrap();
        let xs = sparse.solve(&a, &b, &mut FlopCounter::new()).unwrap();
        for (d, s) in xd.iter().zip(xs.iter()) {
            assert!(approx_eq(*d, *s, 1e-12));
        }
    }

    #[test]
    fn solution_satisfies_system() {
        let (a, b) = test_system();
        let mut sparse = SparseLuSolver::new();
        let x = sparse.solve(&a, &b, &mut FlopCounter::new()).unwrap();
        let ax = a.matvec(&x, &mut FlopCounter::new()).unwrap();
        for (l, r) in ax.iter().zip(b.iter()) {
            assert!(approx_eq(*l, *r, 1e-12));
        }
    }

    #[test]
    fn repeated_solves_reuse_the_factorization() {
        let (a, b) = test_system();
        let mut sparse = SparseLuSolver::new();
        let mut x = Vec::new();
        sparse
            .solve_into(&a, &b, &mut x, &mut FlopCounter::new())
            .unwrap();
        assert_eq!(sparse.factor_counts(), (1, 0));
        // Same pattern, perturbed values: must refactor, not factor.
        let mut a2 = a.clone();
        for v in a2.values_mut() {
            *v *= 1.25;
        }
        sparse
            .solve_into(&a2, &b, &mut x, &mut FlopCounter::new())
            .unwrap();
        assert_eq!(sparse.factor_counts(), (1, 1));
        let ax = a2.matvec(&x, &mut FlopCounter::new()).unwrap();
        for (l, r) in ax.iter().zip(b.iter()) {
            assert!(approx_eq(*l, *r, 1e-12));
        }
        // A different pattern falls back to a full factorization.
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        t.push(2, 2, 1.0);
        sparse
            .solve_into(&t.to_csr(), &b, &mut x, &mut FlopCounter::new())
            .unwrap();
        assert_eq!(sparse.factor_counts(), (2, 1));
        assert_eq!(x, b);
        sparse.invalidate();
        sparse
            .solve_into(&t.to_csr(), &b, &mut x, &mut FlopCounter::new())
            .unwrap();
        assert_eq!(sparse.factor_counts(), (3, 1));
    }

    #[test]
    fn names_are_distinct() {
        assert_ne!(DenseLuSolver::new().name(), SparseLuSolver::new().name());
    }

    #[test]
    fn trait_object_usable() {
        let (a, b) = test_system();
        let mut solvers: Vec<Box<dyn LinearSolver>> = vec![
            Box::new(DenseLuSolver::new()),
            Box::new(SparseLuSolver::with_strategy(
                PivotStrategy::PartialPivoting,
            )),
        ];
        for s in solvers.iter_mut() {
            let x = s.solve(&a, &b, &mut FlopCounter::new()).unwrap();
            assert_eq!(x.len(), 3);
        }
    }
}
