//! Solver abstraction over the dense and sparse LU factorizations.
//!
//! The simulation engines are written against [`LinearSolver`] so the same
//! engine code runs with either backend; tests use the dense solver as a
//! reference implementation for the sparse one.
//!
//! [`SparseLuSolver`] is *stateful*: it keeps the last factorization and,
//! when asked to solve a matrix with the same sparsity pattern, reuses the
//! cached symbolic analysis through a tolerant values-only refactor — the
//! factor-once/refactor-many strategy the transient engines rely on. A
//! refactor whose cached pivot has degraded no longer forces a full
//! re-pivot: the solver completes the pass and recovers accuracy with one
//! **iterative-refinement step** at solve time, re-pivoting only when the
//! refined residual is still unacceptable (counted in
//! [`LuStats::refinement_steps`]). The [`LinearSolver::solve_into`] entry
//! point avoids allocating the solution vector, so a warmed-up solver
//! performs zero heap allocations per solve, and
//! [`LinearSolver::solve_many_into`] batches many right-hand sides
//! through one factor traversal.
//!
//! The sparse backend carries an [`OrderingChoice`]: the fill-reducing
//! ordering is applied inside the cached analysis (phase 1 of the
//! ordering → symbolic → numeric pipeline) and is completely transparent to
//! callers — right-hand sides and solutions stay in original numbering.
//! [`LuStats`] exposes the resulting fill and work telemetry (`nnz_lu`,
//! fill ratio, supernode coverage, the factor/refactor/solve flop split
//! and refinement counts) that the engine statistics surface.

use crate::dense::DenseMatrix;
use crate::flops::FlopCounter;
use crate::sparse::{CsrMatrix, OrderingChoice, PivotStrategy, SparseLu};
use crate::Result;
use std::fmt::Debug;

/// A linear solver for `A·x = b` with `A` given in CSR form.
///
/// Implementations may cache state between calls (factorization reuse),
/// which is why `solve` takes `&mut self`.
pub trait LinearSolver: Debug {
    /// Solves `a·x = b`, recording floating point operations in `flops`.
    ///
    /// # Errors
    /// Returns a [`crate::NumericError`] when the matrix is singular or the
    /// shapes mismatch.
    fn solve(&mut self, a: &CsrMatrix, b: &[f64], flops: &mut FlopCounter) -> Result<Vec<f64>>;

    /// Solves `a·x = b` into a caller-provided buffer (resized as needed).
    /// Backends that cache factorizations avoid all per-call allocation
    /// here; the default implementation simply delegates to
    /// [`LinearSolver::solve`].
    ///
    /// # Errors
    /// Same as [`LinearSolver::solve`].
    fn solve_into(
        &mut self,
        a: &CsrMatrix,
        b: &[f64],
        x: &mut Vec<f64>,
        flops: &mut FlopCounter,
    ) -> Result<()> {
        let result = self.solve(a, b, flops)?;
        x.clear();
        x.extend_from_slice(&result);
        Ok(())
    }

    /// Solves `a·X = B` for `nrhs` right-hand sides given column-major in
    /// `b` (`b[j*n..][..n]` is column `j`), writing the solutions
    /// column-major into `x`. Backends that cache factorizations traverse
    /// the factor structure **once** for all columns; the default
    /// implementation simply loops [`LinearSolver::solve_into`], which is
    /// the reference behavior batched backends must match bit for bit.
    ///
    /// # Errors
    /// Same as [`LinearSolver::solve`]; additionally rejects `nrhs == 0`
    /// or a `b` whose length is not `nrhs * a.rows()`.
    fn solve_many_into(
        &mut self,
        a: &CsrMatrix,
        b: &[f64],
        nrhs: usize,
        x: &mut Vec<f64>,
        flops: &mut FlopCounter,
    ) -> Result<()> {
        let n = a.rows();
        if nrhs == 0 || b.len() != n * nrhs {
            return Err(crate::NumericError::DimensionMismatch {
                context: format!(
                    "multi-rhs solve: rhs block of {} for n={n} x k={nrhs}",
                    b.len()
                ),
            });
        }
        x.resize(n * nrhs, 0.0);
        let mut col = Vec::new();
        for j in 0..nrhs {
            self.solve_into(a, &b[j * n..(j + 1) * n], &mut col, flops)?;
            x[j * n..(j + 1) * n].copy_from_slice(&col);
        }
        Ok(())
    }

    /// Human-readable backend name (for reports).
    fn name(&self) -> &'static str;
}

/// Working precision of a [`SparseLuSolver`]'s triangular solves.
///
/// The factorization itself always runs in f64 — pivot health, the
/// degraded-pivot ladder, and pattern fallback are precision-independent.
/// What `Mixed` changes is the *solve*: the forward/backward sweeps run
/// over `f32` factor mirrors (wider SIMD lanes, half the memory traffic),
/// and f64 iterative refinement polishes the answer to a relative
/// residual ≤ `1e-12` of the problem scale. When refinement fails to
/// contract (degraded pivots, stiff collapse) the solve falls back to the
/// plain f64 path transparently — counted in
/// [`LuStats::precision_fallbacks`], never visible in the results beyond
/// the last few bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrecisionMode {
    /// Pure double precision everywhere (the default).
    #[default]
    F64,
    /// `f32` panel solves + f64 iterative refinement, with automatic
    /// fallback to [`PrecisionMode::F64`] when refinement stalls.
    Mixed,
}

/// Dense LU backend; reference implementation, O(n^3) factor.
#[derive(Debug, Clone, Copy, Default)]
pub struct DenseLuSolver;

impl DenseLuSolver {
    /// Creates a dense solver.
    pub fn new() -> Self {
        DenseLuSolver
    }
}

impl LinearSolver for DenseLuSolver {
    fn solve(&mut self, a: &CsrMatrix, b: &[f64], flops: &mut FlopCounter) -> Result<Vec<f64>> {
        let dense: DenseMatrix = a.to_dense();
        dense.solve(b, flops)
    }

    fn name(&self) -> &'static str {
        "dense-lu"
    }
}

/// Cumulative factorization telemetry of one [`SparseLuSolver`]: counts,
/// the factor-vs-refactor flop split, and the fill of the current cached
/// factorization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LuStats {
    /// Full (ordering + symbolic + numeric) factorizations performed.
    pub full_factors: u64,
    /// Values-only refactorizations that reused the cached analysis.
    pub refactors: u64,
    /// Floating point operations spent in full factorizations.
    pub factor_flops: u64,
    /// Floating point operations spent in refactorizations.
    pub refactor_flops: u64,
    /// Floating point operations spent in triangular solves (forward /
    /// backward substitution after the factors were ready).
    pub solve_flops: u64,
    /// Iterative-refinement steps performed on degraded-pivot
    /// refactorizations (each one extends the life of the cached analysis
    /// past a pivot decay that previously forced a full re-pivot).
    pub refinement_steps: u64,
    /// `nnz(L + U)` of the current cached factorization (0 when cold).
    pub nnz_lu: u64,
    /// `nnz(A)` of the current cached factorization (0 when cold).
    pub nnz_a: u64,
    /// Multi-column supernodes of the cached factorization's blocked
    /// kernel plan (0 when cold).
    pub supernodes: u64,
    /// Factor columns covered by those supernodes (0 when cold).
    pub supernode_cols: u64,
    /// Single-precision panel solves performed under
    /// [`PrecisionMode::Mixed`] (initial f32 sweeps plus f32 correction
    /// solves; the f64 refinement iterations around them are *not*
    /// [`LuStats::refinement_steps`] — those count degraded-pivot
    /// rescues, which flag the engine health as degraded).
    pub f32_panel_solves: u64,
    /// Mixed-precision solves whose refinement failed to contract and
    /// fell back to the plain f64 path. Zero on healthy decks — gated in
    /// CI by the bench smoke.
    pub precision_fallbacks: u64,
    /// Batched ensemble factorizations ([`crate::sparse::BatchedLu`]
    /// passes advancing k same-pattern factors in lockstep). Always 0 at
    /// the solver level — the EM engine drives the batch directly and
    /// folds the count into its engine stats.
    pub batched_factors: u64,
    /// Smallest `|pivot| / column-max` ratio seen across every numeric
    /// pass this solver has run — the reciprocal pivot-growth health
    /// monitor. `f64::INFINITY` when no factorization has run yet.
    pub min_recip_pivot: f64,
}

impl Default for LuStats {
    fn default() -> Self {
        LuStats {
            full_factors: 0,
            refactors: 0,
            factor_flops: 0,
            refactor_flops: 0,
            solve_flops: 0,
            refinement_steps: 0,
            nnz_lu: 0,
            nnz_a: 0,
            supernodes: 0,
            supernode_cols: 0,
            f32_panel_solves: 0,
            precision_fallbacks: 0,
            batched_factors: 0,
            min_recip_pivot: f64::INFINITY,
        }
    }
}

impl LuStats {
    /// Fill ratio `nnz(L + U) / nnz(A)`; 0 when no factorization is cached.
    pub fn fill_ratio(&self) -> f64 {
        if self.nnz_a == 0 {
            0.0
        } else {
            self.nnz_lu as f64 / self.nnz_a as f64
        }
    }
}

/// Sparse LU backend (Gilbert–Peierls with threshold diagonal pivoting and
/// a pluggable fill-reducing ordering) with cached-factorization reuse
/// across same-pattern solves.
#[derive(Debug, Clone, Default)]
pub struct SparseLuSolver {
    strategy: PivotStrategy,
    ordering: OrderingChoice,
    cached: Option<SparseLu>,
    /// Cached factors carry a degraded pivot (tolerant refactor): solves
    /// run one iterative-refinement step and fall back to a full
    /// re-pivoting factorization only when refinement cannot restore
    /// accuracy.
    degraded: bool,
    /// One-shot override armed by [`SparseLuSolver::force_degraded`]:
    /// consumed by the next `ensure_factors`, which then reports the pass
    /// degraded regardless of the measured pivot ratios.
    force_degrade: bool,
    /// Working precision of the triangular solves (factorizations always
    /// run f64; see [`PrecisionMode`]).
    precision: PrecisionMode,
    work: Vec<f64>,
    /// f32 scratch of the mixed-precision panel solves.
    work32: Vec<f32>,
    /// Residual / correction scratch of the refinement step.
    resid: Vec<f64>,
    corr: Vec<f64>,
    full_factors: u64,
    refactors: u64,
    factor_flops: u64,
    refactor_flops: u64,
    solve_flops: u64,
    refinement_steps: u64,
    f32_panel_solves: u64,
    precision_fallbacks: u64,
    /// Smallest reciprocal pivot-growth ratio seen across the solver's
    /// lifetime (`None` before the first factorization).
    min_recip_pivot: Option<f64>,
}

impl SparseLuSolver {
    /// Creates a sparse solver with the default pivot strategy and the
    /// default [`OrderingChoice::Auto`] fill ordering.
    pub fn new() -> Self {
        SparseLuSolver {
            strategy: PivotStrategy::default(),
            ..SparseLuSolver::default()
        }
    }

    /// Creates a sparse solver with an explicit pivot strategy (ordering
    /// stays `Auto`).
    pub fn with_strategy(strategy: PivotStrategy) -> Self {
        SparseLuSolver {
            strategy,
            ..SparseLuSolver::default()
        }
    }

    /// Creates a sparse solver with an explicit fill-reducing ordering.
    pub fn with_ordering(ordering: OrderingChoice) -> Self {
        SparseLuSolver {
            strategy: PivotStrategy::default(),
            ordering,
            ..SparseLuSolver::default()
        }
    }

    /// The configured ordering choice.
    pub fn ordering(&self) -> OrderingChoice {
        self.ordering
    }

    /// `(full factorizations, pattern-reusing refactorizations)` performed
    /// so far — the factor/refactor split behind the speedup benches.
    pub fn factor_counts(&self) -> (u64, u64) {
        (self.full_factors, self.refactors)
    }

    /// Cumulative factorization telemetry: counts, flop split, and the
    /// fill of the cached analysis.
    pub fn lu_stats(&self) -> LuStats {
        let (nnz_lu, nnz_a, supernodes, supernode_cols) = match &self.cached {
            Some(lu) => (
                lu.nnz() as u64,
                lu.nnz_a() as u64,
                lu.supernode_count() as u64,
                lu.supernode_cols() as u64,
            ),
            None => (0, 0, 0, 0),
        };
        LuStats {
            full_factors: self.full_factors,
            refactors: self.refactors,
            factor_flops: self.factor_flops,
            refactor_flops: self.refactor_flops,
            solve_flops: self.solve_flops,
            refinement_steps: self.refinement_steps,
            nnz_lu,
            nnz_a,
            supernodes,
            supernode_cols,
            f32_panel_solves: self.f32_panel_solves,
            precision_fallbacks: self.precision_fallbacks,
            batched_factors: 0,
            min_recip_pivot: self.min_recip_pivot.unwrap_or(f64::INFINITY),
        }
    }

    /// Selects the working precision of the triangular solves. Switching
    /// to [`PrecisionMode::Mixed`] arms the cached factorization's f32
    /// mirrors immediately (subsequent refactors keep them fresh);
    /// switching back stops the mirror upkeep. Factorizations are
    /// unaffected either way.
    pub fn set_precision(&mut self, mode: PrecisionMode) {
        self.precision = mode;
        if let Some(lu) = &mut self.cached {
            lu.set_mixed_precision(mode == PrecisionMode::Mixed);
        }
    }

    /// The configured working precision.
    pub fn precision(&self) -> PrecisionMode {
        self.precision
    }

    /// Name of the ordering applied by the cached factorization, or the
    /// configured choice's tag when cold.
    pub fn ordering_name(&self) -> &'static str {
        match &self.cached {
            Some(lu) => lu.ordering_name(),
            None => self.ordering.name(),
        }
    }

    /// Drops the cached factorization (next solve runs a full factor).
    pub fn invalidate(&mut self) {
        self.cached = None;
        self.degraded = false;
    }

    /// Test-support hook for the fault-injection harness: routes the next
    /// solve through the degraded-pivot refinement path as if its
    /// factorization pass had reported pivot decay. One-shot — the flag is
    /// consumed by the next solve and healthy passes after that clear it
    /// as usual.
    pub fn force_degraded(&mut self) {
        self.force_degrade = true;
    }

    /// Folds a pass's worst reciprocal pivot ratio into the lifetime
    /// minimum.
    fn note_ratio(&mut self, ratio: f64) {
        self.min_recip_pivot = Some(match self.min_recip_pivot {
            Some(m) => m.min(ratio),
            None => ratio,
        });
    }
}

impl SparseLuSolver {
    /// Refactors (tolerantly) or factors so the cached factorization
    /// matches `a`, maintaining the factor/refactor accounting and the
    /// `degraded` flag the solve paths consult.
    fn ensure_factors(&mut self, a: &CsrMatrix, flops: &mut FlopCounter) -> Result<()> {
        let before = flops.total();
        match &mut self.cached {
            Some(lu) => {
                // Degraded pivots no longer abort the refactor: the pass
                // completes and the solve recovers accuracy with one
                // iterative-refinement step, extending the cached
                // analysis's life past pivot decay. Work burned in a
                // failed attempt is still refactor work, not factor work.
                match lu.refactor_tolerant(a, flops) {
                    Ok(worst_ratio) => {
                        let worst_col = lu.worst_pivot_col();
                        self.refactors += 1;
                        self.refactor_flops += flops.total() - before;
                        self.degraded = worst_ratio < crate::sparse::REFACTOR_PIVOT_RATIO;
                        self.note_ratio(worst_ratio);
                        // A pivot this far gone leaves no trustworthy
                        // digits — refinement cannot rescue it, so the
                        // failure surfaces for the engine-level ladder.
                        if worst_ratio < crate::sparse::PIVOT_COLLAPSE_RATIO {
                            return Err(crate::NumericError::SingularMatrix { pivot: worst_col });
                        }
                    }
                    Err(crate::NumericError::PatternChanged { .. })
                    | Err(crate::NumericError::SingularMatrix { .. }) => {
                        self.refactor_flops += flops.total() - before;
                        self.full_factor(a, flops)?;
                    }
                    Err(e) => return Err(e),
                }
            }
            None => {
                let mut lu = SparseLu::factor_ordered(a, self.ordering, self.strategy, flops)?;
                if self.precision == PrecisionMode::Mixed {
                    lu.set_mixed_precision(true);
                }
                let ratio = lu.min_recip_pivot();
                self.cached = Some(lu);
                self.full_factors += 1;
                self.factor_flops += flops.total() - before;
                self.degraded = false;
                self.note_ratio(ratio);
            }
        }
        if std::mem::take(&mut self.force_degrade) {
            self.degraded = true;
        }
        Ok(())
    }

    /// Full re-pivoting factorization of `a`, reusing the cached symbolic
    /// analysis when the pattern still matches (only a genuine pattern
    /// change re-runs the ordering).
    fn full_factor(&mut self, a: &CsrMatrix, flops: &mut FlopCounter) -> Result<()> {
        let start = flops.total();
        let mut fresh = match &self.cached {
            Some(lu) if lu.symbolic().matches(a) => {
                SparseLu::factor_symbolic(lu.symbolic().clone(), a, self.strategy, flops)?
            }
            _ => SparseLu::factor_ordered(a, self.ordering, self.strategy, flops)?,
        };
        if self.precision == PrecisionMode::Mixed {
            fresh.set_mixed_precision(true);
        }
        let ratio = fresh.min_recip_pivot();
        self.cached = Some(fresh);
        self.full_factors += 1;
        self.factor_flops += flops.total() - start;
        self.degraded = false;
        self.note_ratio(ratio);
        Ok(())
    }

    /// NaN/Inf screen applied to every solution leaving the sparse
    /// backend: a non-finite component is surfaced as a structured error
    /// before it can silently corrupt an engine iterate. Read-only — no
    /// floating-point behavior changes on healthy solves.
    fn screen_finite(x: &[f64]) -> Result<()> {
        match x.iter().position(|v| !v.is_finite()) {
            Some(i) => Err(crate::NumericError::NonFiniteValue {
                context: format!("sparse lu solution component {i}"),
            }),
            None => Ok(()),
        }
    }

    /// One solve against the already-ensured factors, with the
    /// degraded-pivot refinement policy applied (shared by the single- and
    /// the degraded multi-RHS paths).
    fn solve_one(
        &mut self,
        a: &CsrMatrix,
        b: &[f64],
        x: &mut Vec<f64>,
        flops: &mut FlopCounter,
    ) -> Result<()> {
        // Mixed precision only attempts the fast ladder on healthy
        // factors — degraded pivots go straight to the f64 refinement
        // path, which owns that regime.
        if self.precision == PrecisionMode::Mixed
            && !self.degraded
            && self.solve_mixed(a, b, x, flops)?
        {
            return Self::screen_finite(x);
        }
        let solve_start = flops.total();
        let lu = self.cached.as_ref().expect("factors ensured");
        lu.solve_into(b, x, &mut self.work, flops)?;
        if self.degraded {
            // Try one residual-refinement step before surrendering the
            // cached pivot order; only an unrecoverable residual pays for
            // a full re-pivot.
            if !self.refine_once(a, b, x, flops)? {
                self.solve_flops += flops.total() - solve_start;
                self.full_factor(a, flops)?;
                let resolve_start = flops.total();
                let lu = self.cached.as_ref().expect("factors ensured");
                lu.solve_into(b, x, &mut self.work, flops)?;
                self.solve_flops += flops.total() - resolve_start;
                return Self::screen_finite(x);
            }
        }
        self.solve_flops += flops.total() - solve_start;
        Self::screen_finite(x)
    }

    /// The mixed-precision solve ladder: an f32 panel solve, then up to
    /// [`MIXED_MAX_STEPS`] f64-residual / f32-correction refinement
    /// iterations. Returns `Ok(true)` with `x` polished to a relative
    /// residual ≤ `1e-12` of the problem scale, or `Ok(false)` when
    /// refinement failed to contract — the caller then reruns the plain
    /// f64 path (counted in [`LuStats::precision_fallbacks`]).
    ///
    /// These refinement iterations are part of the precision ladder, not
    /// degraded-pivot rescues: they are counted in
    /// [`LuStats::f32_panel_solves`] and deliberately **not** in
    /// [`LuStats::refinement_steps`], which the engine health roll-up
    /// treats as a degradation signal.
    fn solve_mixed(
        &mut self,
        a: &CsrMatrix,
        b: &[f64],
        x: &mut Vec<f64>,
        flops: &mut FlopCounter,
    ) -> Result<bool> {
        /// Refinement iterations before conceding to the f64 path.
        const MIXED_MAX_STEPS: usize = 4;
        /// Relative residual (∞-norm, against `max(‖A·x‖, ‖b‖)`) at which
        /// a mixed-precision solve is accepted.
        const MIXED_ACCEPT: f64 = 1e-12;
        let solve_start = flops.total();
        {
            let Self { cached, work32, .. } = self;
            let lu = cached.as_ref().expect("factors ensured");
            lu.solve_into_f32(b, x, work32, flops)?;
        }
        self.f32_panel_solves += 1;
        let n = x.len();
        let mut prev = f64::INFINITY;
        for _ in 0..=MIXED_MAX_STEPS {
            self.resid.resize(n, 0.0);
            a.matvec_into(x, &mut self.resid, flops)?;
            let mut scale = 0.0f64;
            let mut rmax = 0.0f64;
            for (ax, bi) in self.resid.iter_mut().zip(b) {
                scale = scale.max(ax.abs()).max(bi.abs());
                *ax = bi - *ax;
                rmax = rmax.max(ax.abs());
            }
            flops.add(n as u64);
            if rmax.is_finite() && rmax <= MIXED_ACCEPT * scale.max(f64::MIN_POSITIVE) {
                self.solve_flops += flops.total() - solve_start;
                return Ok(true);
            }
            // Require at least a halving per iteration — anything slower
            // means f32 has no digits left to contribute here (degraded
            // pivots, stiff collapse) and the f64 path should take over.
            if !rmax.is_finite() || rmax >= 0.5 * prev {
                break;
            }
            prev = rmax;
            {
                let Self {
                    cached,
                    work32,
                    resid,
                    corr,
                    ..
                } = self;
                let lu = cached.as_ref().expect("factors ensured");
                lu.solve_into_f32(resid, corr, work32, flops)?;
            }
            self.f32_panel_solves += 1;
            for (xi, c) in x.iter_mut().zip(&self.corr) {
                *xi += c;
            }
            flops.add(n as u64);
        }
        self.precision_fallbacks += 1;
        self.solve_flops += flops.total() - solve_start;
        Ok(false)
    }

    /// One iterative-refinement step on `x` (`r = b − A·x`, solve the
    /// correction, apply it), returning whether the refined solution's
    /// residual is acceptably small relative to the problem scale.
    fn refine_once(
        &mut self,
        a: &CsrMatrix,
        b: &[f64],
        x: &mut [f64],
        flops: &mut FlopCounter,
    ) -> Result<bool> {
        /// Relative residual (∞-norm, against `‖b‖ + ‖A·x‖`) below which a
        /// refined degraded-pivot solve is accepted without re-pivoting.
        const REFINE_ACCEPT: f64 = 1e-9;
        let n = x.len();
        self.resid.resize(n, 0.0);
        a.matvec_into(x, &mut self.resid, flops)?;
        for (r, bi) in self.resid.iter_mut().zip(b) {
            *r = bi - *r;
        }
        flops.add(n as u64);
        let Self {
            cached, work, corr, ..
        } = self;
        let lu = cached.as_ref().expect("factors ensured");
        lu.solve_into(&self.resid, corr, work, flops)?;
        for (xi, c) in x.iter_mut().zip(&self.corr) {
            *xi += c;
        }
        flops.add(n as u64);
        self.refinement_steps += 1;
        // Accept when the post-refinement residual is small against the
        // natural scale of the system.
        a.matvec_into(x, &mut self.resid, flops)?;
        let mut scale = 0.0f64;
        let mut resid_max = 0.0f64;
        for (ax, bi) in self.resid.iter().zip(b) {
            scale = scale.max(ax.abs()).max(bi.abs());
            resid_max = resid_max.max((bi - ax).abs());
        }
        flops.add(n as u64);
        Ok(resid_max.is_finite() && resid_max <= REFINE_ACCEPT * scale.max(f64::MIN_POSITIVE))
    }
}

impl LinearSolver for SparseLuSolver {
    fn solve(&mut self, a: &CsrMatrix, b: &[f64], flops: &mut FlopCounter) -> Result<Vec<f64>> {
        let mut x = Vec::new();
        self.solve_into(a, b, &mut x, flops)?;
        Ok(x)
    }

    fn solve_into(
        &mut self,
        a: &CsrMatrix,
        b: &[f64],
        x: &mut Vec<f64>,
        flops: &mut FlopCounter,
    ) -> Result<()> {
        self.ensure_factors(a, flops)?;
        self.solve_one(a, b, x, flops)
    }

    fn solve_many_into(
        &mut self,
        a: &CsrMatrix,
        b: &[f64],
        nrhs: usize,
        x: &mut Vec<f64>,
        flops: &mut FlopCounter,
    ) -> Result<()> {
        let n = a.rows();
        if nrhs == 0 || b.len() != n * nrhs {
            return Err(crate::NumericError::DimensionMismatch {
                context: format!(
                    "multi-rhs solve: rhs block of {} for n={n} x k={nrhs}",
                    b.len()
                ),
            });
        }
        self.ensure_factors(a, flops)?;
        // The batched path stays f64 in every precision mode: the
        // interleaved multi-RHS kernel is already bandwidth-optimal, and
        // its bit-for-bit contract against `nrhs` independent solves is a
        // CI gate that f32 lanes would break.
        if self.degraded {
            // Degraded factors refine per right-hand side, exactly like
            // `nrhs` independent `solve_into` calls would — keeping the
            // trait's bit-for-bit equivalence in the degraded regime too.
            x.resize(n * nrhs, 0.0);
            let mut col = Vec::new();
            for j in 0..nrhs {
                self.solve_one(a, &b[j * n..(j + 1) * n], &mut col, flops)?;
                x[j * n..(j + 1) * n].copy_from_slice(&col);
            }
            return Ok(());
        }
        let solve_start = flops.total();
        let lu = self.cached.as_ref().expect("factors ensured above");
        lu.solve_many_into(b, nrhs, x, &mut self.work, flops)?;
        self.solve_flops += flops.total() - solve_start;
        Self::screen_finite(x)
    }

    fn name(&self) -> &'static str {
        "sparse-lu"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::sparse::TripletMatrix;

    fn test_system() -> (CsrMatrix, Vec<f64>) {
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 5.0);
        t.push(0, 1, -1.0);
        t.push(1, 0, -1.0);
        t.push(1, 1, 4.0);
        t.push(1, 2, -2.0);
        t.push(2, 1, -2.0);
        t.push(2, 2, 6.0);
        (t.to_csr(), vec![1.0, 2.0, 3.0])
    }

    #[test]
    fn dense_and_sparse_agree() {
        let (a, b) = test_system();
        let mut dense = DenseLuSolver::new();
        let mut sparse = SparseLuSolver::new();
        let xd = dense.solve(&a, &b, &mut FlopCounter::new()).unwrap();
        let xs = sparse.solve(&a, &b, &mut FlopCounter::new()).unwrap();
        for (d, s) in xd.iter().zip(xs.iter()) {
            assert!(approx_eq(*d, *s, 1e-12));
        }
    }

    #[test]
    fn solution_satisfies_system() {
        let (a, b) = test_system();
        let mut sparse = SparseLuSolver::new();
        let x = sparse.solve(&a, &b, &mut FlopCounter::new()).unwrap();
        let ax = a.matvec(&x, &mut FlopCounter::new()).unwrap();
        for (l, r) in ax.iter().zip(b.iter()) {
            assert!(approx_eq(*l, *r, 1e-12));
        }
    }

    #[test]
    fn repeated_solves_reuse_the_factorization() {
        let (a, b) = test_system();
        let mut sparse = SparseLuSolver::new();
        let mut x = Vec::new();
        sparse
            .solve_into(&a, &b, &mut x, &mut FlopCounter::new())
            .unwrap();
        assert_eq!(sparse.factor_counts(), (1, 0));
        // Same pattern, perturbed values: must refactor, not factor.
        let mut a2 = a.clone();
        for v in a2.values_mut() {
            *v *= 1.25;
        }
        sparse
            .solve_into(&a2, &b, &mut x, &mut FlopCounter::new())
            .unwrap();
        assert_eq!(sparse.factor_counts(), (1, 1));
        let ax = a2.matvec(&x, &mut FlopCounter::new()).unwrap();
        for (l, r) in ax.iter().zip(b.iter()) {
            assert!(approx_eq(*l, *r, 1e-12));
        }
        // A different pattern falls back to a full factorization.
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        t.push(2, 2, 1.0);
        sparse
            .solve_into(&t.to_csr(), &b, &mut x, &mut FlopCounter::new())
            .unwrap();
        assert_eq!(sparse.factor_counts(), (2, 1));
        assert_eq!(x, b);
        sparse.invalidate();
        sparse
            .solve_into(&t.to_csr(), &b, &mut x, &mut FlopCounter::new())
            .unwrap();
        assert_eq!(sparse.factor_counts(), (3, 1));
    }

    #[test]
    fn lu_stats_split_factor_and_refactor_flops() {
        let (a, b) = test_system();
        let mut sparse = SparseLuSolver::new();
        let mut x = Vec::new();
        let mut flops = FlopCounter::new();
        sparse.solve_into(&a, &b, &mut x, &mut flops).unwrap();
        let s1 = sparse.lu_stats();
        assert_eq!((s1.full_factors, s1.refactors), (1, 0));
        assert!(s1.factor_flops > 0);
        assert_eq!(s1.refactor_flops, 0);
        assert_eq!(s1.nnz_a, a.nnz() as u64);
        assert!(s1.nnz_lu >= s1.nnz_a, "L+U at least as dense as A");
        assert!(s1.fill_ratio() >= 1.0);
        let mut a2 = a.clone();
        for v in a2.values_mut() {
            *v *= 2.0;
        }
        sparse.solve_into(&a2, &b, &mut x, &mut flops).unwrap();
        let s2 = sparse.lu_stats();
        assert_eq!((s2.full_factors, s2.refactors), (1, 1));
        assert!(s2.refactor_flops > 0);
        assert_eq!(s2.factor_flops, s1.factor_flops, "no new factor flops");
    }

    #[test]
    fn explicit_ordering_is_applied_and_transparent() {
        // Arrow matrix large enough that fill differs between orderings.
        let n = 30;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 4.0);
            if i > 0 {
                t.push(0, i, 1.0);
                t.push(i, 0, 1.0);
            }
        }
        let a = t.to_csr();
        let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut nat = SparseLuSolver::with_ordering(OrderingChoice::Natural);
        let mut amd = SparseLuSolver::with_ordering(OrderingChoice::Amd);
        let xn = nat.solve(&a, &b, &mut FlopCounter::new()).unwrap();
        let xa = amd.solve(&a, &b, &mut FlopCounter::new()).unwrap();
        for (l, r) in xn.iter().zip(xa.iter()) {
            assert!(approx_eq(*l, *r, 1e-10), "{l} vs {r}");
        }
        assert!(amd.lu_stats().nnz_lu < nat.lu_stats().nnz_lu);
        assert_eq!(amd.ordering_name(), "amd");
        assert_eq!(nat.ordering_name(), "natural");
        assert_eq!(amd.ordering(), OrderingChoice::Amd);
    }

    #[test]
    fn cold_solver_reports_configured_ordering() {
        let s = SparseLuSolver::with_ordering(OrderingChoice::Rcm);
        assert_eq!(s.ordering_name(), "rcm");
        assert_eq!(s.lu_stats(), LuStats::default());
        assert_eq!(s.lu_stats().fill_ratio(), 0.0);
    }

    #[test]
    fn degraded_refactor_refines_instead_of_repivoting() {
        // Healthy factor, then values that collapse the cached pivot to
        // 1e-9 of its column max: the solver must complete the tolerant
        // refactor, apply one refinement step, and keep the cached pivot
        // order alive (no new full factorization).
        let entries = [(0, 0, 5.0), (1, 0, 1.0), (0, 1, 1.0), (1, 1, 5.0)];
        let a1 = CsrMatrix::from_triplets(2, 2, &entries);
        let mut solver = SparseLuSolver::new();
        let b = [1.0, 6.0];
        let mut x = Vec::new();
        let mut flops = FlopCounter::new();
        solver.solve_into(&a1, &b, &mut x, &mut flops).unwrap();
        assert_eq!(solver.lu_stats().refinement_steps, 0);
        let degraded = [(0, 0, 1e-9), (1, 0, 1.0), (0, 1, 1.0), (1, 1, 5.0)];
        let a2 = CsrMatrix::from_triplets(2, 2, &degraded);
        solver.solve_into(&a2, &b, &mut x, &mut flops).unwrap();
        let stats = solver.lu_stats();
        assert_eq!(stats.full_factors, 1, "refinement avoided the re-pivot");
        assert_eq!(stats.refactors, 1);
        assert_eq!(stats.refinement_steps, 1);
        assert!(stats.solve_flops > 0);
        // The refined solution satisfies the degraded system tightly.
        let ax = a2.matvec(&x, &mut flops).unwrap();
        assert!((ax[0] - 1.0).abs() < 1e-9 && (ax[1] - 6.0).abs() < 1e-9);
        // A healthy refactor afterwards clears the degraded state: no
        // further refinement.
        solver.solve_into(&a1, &b, &mut x, &mut flops).unwrap();
        assert_eq!(solver.lu_stats().refinement_steps, 1);
    }

    #[test]
    fn pivot_collapse_is_reported_as_singular() {
        // Healthy factor, then values that collapse the cached pivot 13
        // decades below its column max: refinement has no digits to work
        // with, so the solver must surface a singular-matrix failure for
        // the engine-level rescue ladder instead of solving garbage.
        let entries = [(0, 0, 5.0), (1, 0, 1.0), (0, 1, 1.0), (1, 1, 5.0)];
        let a1 = CsrMatrix::from_triplets(2, 2, &entries);
        let mut solver = SparseLuSolver::new();
        let b = [1.0, 6.0];
        let mut x = Vec::new();
        let mut flops = FlopCounter::new();
        solver.solve_into(&a1, &b, &mut x, &mut flops).unwrap();
        let collapsed = [(0, 0, 1e-13), (1, 0, 1.0), (0, 1, 1.0), (1, 1, 5.0)];
        let a2 = CsrMatrix::from_triplets(2, 2, &collapsed);
        let err = solver.solve_into(&a2, &b, &mut x, &mut flops).unwrap_err();
        assert!(
            matches!(err, crate::NumericError::SingularMatrix { .. }),
            "{err:?}"
        );
        // The health monitor recorded the collapse.
        assert!(solver.lu_stats().min_recip_pivot < 1e-12);
        // A clean retry on the healthy values recovers bit-identically.
        let mut fresh = SparseLuSolver::new();
        let mut xf = Vec::new();
        fresh.solve_into(&a1, &b, &mut xf, &mut flops).unwrap();
        solver.solve_into(&a1, &b, &mut x, &mut flops).unwrap();
        assert_eq!(x, xf);
    }

    #[test]
    fn nan_poisoned_system_is_screened_not_solved() {
        let (a, b) = test_system();
        let mut solver = SparseLuSolver::new();
        let mut x = Vec::new();
        let mut flops = FlopCounter::new();
        solver.solve_into(&a, &b, &mut x, &mut flops).unwrap();
        // NaN in the rhs propagates into the solution: the screen must
        // reject it as a structured error, never return NaN silently.
        let bad = [1.0, f64::NAN, 3.0];
        let err = solver.solve_into(&a, &bad, &mut x, &mut flops).unwrap_err();
        assert!(
            matches!(err, crate::NumericError::NonFiniteValue { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn min_recip_pivot_tracks_factorization_health() {
        let (a, b) = test_system();
        let mut solver = SparseLuSolver::new();
        let mut flops = FlopCounter::new();
        solver.solve(&a, &b, &mut flops).unwrap();
        let r1 = solver.lu_stats().min_recip_pivot;
        assert!(r1.is_finite() && r1 > 0.0 && r1 <= 1.0, "{r1}");
        // A refactor with decayed (but not collapsed) pivots drags the
        // lifetime minimum down.
        let mut a2 = a.clone();
        let p = a2.position(0, 0).unwrap();
        a2.values_mut()[p] = 1e-4;
        solver.solve(&a2, &b, &mut flops).unwrap();
        let r2 = solver.lu_stats().min_recip_pivot;
        assert!(r2 < r1, "{r2} !< {r1}");
    }

    #[test]
    fn force_degraded_routes_through_refinement() {
        let (a, b) = test_system();
        let mut solver = SparseLuSolver::new();
        let mut x = Vec::new();
        let mut flops = FlopCounter::new();
        solver.solve_into(&a, &b, &mut x, &mut flops).unwrap();
        assert_eq!(solver.lu_stats().refinement_steps, 0);
        // The one-shot flag must survive the (healthy) refactor the next
        // solve performs and route that solve through refinement.
        solver.force_degraded();
        solver.solve_into(&a, &b, &mut x, &mut flops).unwrap();
        assert!(solver.lu_stats().refinement_steps >= 1);
        let ax = a.matvec(&x, &mut flops).unwrap();
        for (l, r) in ax.iter().zip(b.iter()) {
            assert!(approx_eq(*l, *r, 1e-9));
        }
    }

    #[test]
    fn solver_batched_solve_matches_singles() {
        let (a, _) = test_system();
        let n = a.rows();
        let k = 5;
        let b: Vec<f64> = (0..n * k).map(|i| (i as f64 * 0.29).sin()).collect();
        let mut batched = SparseLuSolver::new();
        let mut singles = SparseLuSolver::new();
        let mut xb = Vec::new();
        let mut flops = FlopCounter::new();
        batched
            .solve_many_into(&a, &b, k, &mut xb, &mut flops)
            .unwrap();
        for j in 0..k {
            let xj = singles
                .solve(&a, &b[j * n..(j + 1) * n], &mut FlopCounter::new())
                .unwrap();
            assert_eq!(&xb[j * n..(j + 1) * n], &xj[..], "column {j} bits");
        }
        // One factorization serves the whole batch.
        assert_eq!(batched.factor_counts(), (1, 0));
        assert!(batched.lu_stats().solve_flops > 0);
        // Shape validation.
        assert!(batched
            .solve_many_into(&a, &b[..n], 0, &mut xb, &mut flops)
            .is_err());
        assert!(batched
            .solve_many_into(&a, &b[..n + 1], 2, &mut xb, &mut flops)
            .is_err());
    }

    #[test]
    fn default_trait_batched_solve_works_for_dense_backend() {
        let (a, _) = test_system();
        let n = a.rows();
        let b: Vec<f64> = (0..n * 2).map(|i| i as f64).collect();
        let mut dense = DenseLuSolver::new();
        let mut x = Vec::new();
        dense
            .solve_many_into(&a, &b, 2, &mut x, &mut FlopCounter::new())
            .unwrap();
        for j in 0..2 {
            let xj = dense
                .solve(&a, &b[j * n..(j + 1) * n], &mut FlopCounter::new())
                .unwrap();
            assert_eq!(&x[j * n..(j + 1) * n], &xj[..]);
        }
    }

    #[test]
    fn lu_stats_report_supernodes() {
        // Arrow matrix under AMD grows at least one multi-column supernode
        // (the dense tail).
        let n = 40;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 4.0);
            if i > 0 {
                t.push(0, i, 1.0);
                t.push(i, 0, 1.0);
            }
        }
        let a = t.to_csr();
        let b = vec![1.0; n];
        let mut solver = SparseLuSolver::with_ordering(OrderingChoice::Amd);
        solver.solve(&a, &b, &mut FlopCounter::new()).unwrap();
        let stats = solver.lu_stats();
        assert!(stats.supernodes > 0, "{stats:?}");
        assert!(stats.supernode_cols >= 2 * stats.supernodes);
    }

    #[test]
    fn names_are_distinct() {
        assert_ne!(DenseLuSolver::new().name(), SparseLuSolver::new().name());
    }

    #[test]
    fn trait_object_usable() {
        let (a, b) = test_system();
        let mut solvers: Vec<Box<dyn LinearSolver>> = vec![
            Box::new(DenseLuSolver::new()),
            Box::new(SparseLuSolver::with_strategy(
                PivotStrategy::PartialPivoting,
            )),
        ];
        for s in solvers.iter_mut() {
            let x = s.solve(&a, &b, &mut FlopCounter::new()).unwrap();
            assert_eq!(x.len(), 3);
        }
    }
}
