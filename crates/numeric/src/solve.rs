//! Solver abstraction over the dense and sparse LU factorizations.
//!
//! The simulation engines are written against [`LinearSolver`] so the same
//! engine code runs with either backend; tests use the dense solver as a
//! reference implementation for the sparse one.
//!
//! [`SparseLuSolver`] is *stateful*: it keeps the last factorization and,
//! when asked to solve a matrix with the same sparsity pattern, reuses the
//! cached symbolic analysis via [`SparseLu::refactor_or_factor`] — the
//! factor-once/refactor-many strategy the transient engines rely on. The
//! [`LinearSolver::solve_into`] entry point additionally avoids allocating
//! the solution vector, so a warmed-up solver performs zero heap
//! allocations per solve.
//!
//! The sparse backend carries an [`OrderingChoice`]: the fill-reducing
//! ordering is applied inside the cached analysis (phase 1 of the
//! ordering → symbolic → numeric pipeline) and is completely transparent to
//! callers — right-hand sides and solutions stay in original numbering.
//! [`LuStats`] exposes the resulting fill and work telemetry
//! (`nnz_lu`, fill ratio, factor-vs-refactor flop split) that the engine
//! statistics surface.

use crate::dense::DenseMatrix;
use crate::flops::FlopCounter;
use crate::sparse::{CsrMatrix, OrderingChoice, PivotStrategy, SparseLu};
use crate::Result;
use std::fmt::Debug;

/// A linear solver for `A·x = b` with `A` given in CSR form.
///
/// Implementations may cache state between calls (factorization reuse),
/// which is why `solve` takes `&mut self`.
pub trait LinearSolver: Debug {
    /// Solves `a·x = b`, recording floating point operations in `flops`.
    ///
    /// # Errors
    /// Returns a [`crate::NumericError`] when the matrix is singular or the
    /// shapes mismatch.
    fn solve(&mut self, a: &CsrMatrix, b: &[f64], flops: &mut FlopCounter) -> Result<Vec<f64>>;

    /// Solves `a·x = b` into a caller-provided buffer (resized as needed).
    /// Backends that cache factorizations avoid all per-call allocation
    /// here; the default implementation simply delegates to
    /// [`LinearSolver::solve`].
    ///
    /// # Errors
    /// Same as [`LinearSolver::solve`].
    fn solve_into(
        &mut self,
        a: &CsrMatrix,
        b: &[f64],
        x: &mut Vec<f64>,
        flops: &mut FlopCounter,
    ) -> Result<()> {
        let result = self.solve(a, b, flops)?;
        x.clear();
        x.extend_from_slice(&result);
        Ok(())
    }

    /// Human-readable backend name (for reports).
    fn name(&self) -> &'static str;
}

/// Dense LU backend; reference implementation, O(n^3) factor.
#[derive(Debug, Clone, Copy, Default)]
pub struct DenseLuSolver;

impl DenseLuSolver {
    /// Creates a dense solver.
    pub fn new() -> Self {
        DenseLuSolver
    }
}

impl LinearSolver for DenseLuSolver {
    fn solve(&mut self, a: &CsrMatrix, b: &[f64], flops: &mut FlopCounter) -> Result<Vec<f64>> {
        let dense: DenseMatrix = a.to_dense();
        dense.solve(b, flops)
    }

    fn name(&self) -> &'static str {
        "dense-lu"
    }
}

/// Cumulative factorization telemetry of one [`SparseLuSolver`]: counts,
/// the factor-vs-refactor flop split, and the fill of the current cached
/// factorization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LuStats {
    /// Full (ordering + symbolic + numeric) factorizations performed.
    pub full_factors: u64,
    /// Values-only refactorizations that reused the cached analysis.
    pub refactors: u64,
    /// Floating point operations spent in full factorizations.
    pub factor_flops: u64,
    /// Floating point operations spent in refactorizations.
    pub refactor_flops: u64,
    /// `nnz(L + U)` of the current cached factorization (0 when cold).
    pub nnz_lu: u64,
    /// `nnz(A)` of the current cached factorization (0 when cold).
    pub nnz_a: u64,
}

impl LuStats {
    /// Fill ratio `nnz(L + U) / nnz(A)`; 0 when no factorization is cached.
    pub fn fill_ratio(&self) -> f64 {
        if self.nnz_a == 0 {
            0.0
        } else {
            self.nnz_lu as f64 / self.nnz_a as f64
        }
    }
}

/// Sparse LU backend (Gilbert–Peierls with threshold diagonal pivoting and
/// a pluggable fill-reducing ordering) with cached-factorization reuse
/// across same-pattern solves.
#[derive(Debug, Clone, Default)]
pub struct SparseLuSolver {
    strategy: PivotStrategy,
    ordering: OrderingChoice,
    cached: Option<SparseLu>,
    work: Vec<f64>,
    full_factors: u64,
    refactors: u64,
    factor_flops: u64,
    refactor_flops: u64,
}

impl SparseLuSolver {
    /// Creates a sparse solver with the default pivot strategy and the
    /// default [`OrderingChoice::Auto`] fill ordering.
    pub fn new() -> Self {
        SparseLuSolver {
            strategy: PivotStrategy::default(),
            ..SparseLuSolver::default()
        }
    }

    /// Creates a sparse solver with an explicit pivot strategy (ordering
    /// stays `Auto`).
    pub fn with_strategy(strategy: PivotStrategy) -> Self {
        SparseLuSolver {
            strategy,
            ..SparseLuSolver::default()
        }
    }

    /// Creates a sparse solver with an explicit fill-reducing ordering.
    pub fn with_ordering(ordering: OrderingChoice) -> Self {
        SparseLuSolver {
            strategy: PivotStrategy::default(),
            ordering,
            ..SparseLuSolver::default()
        }
    }

    /// The configured ordering choice.
    pub fn ordering(&self) -> OrderingChoice {
        self.ordering
    }

    /// `(full factorizations, pattern-reusing refactorizations)` performed
    /// so far — the factor/refactor split behind the speedup benches.
    pub fn factor_counts(&self) -> (u64, u64) {
        (self.full_factors, self.refactors)
    }

    /// Cumulative factorization telemetry: counts, flop split, and the
    /// fill of the cached analysis.
    pub fn lu_stats(&self) -> LuStats {
        let (nnz_lu, nnz_a) = match &self.cached {
            Some(lu) => (lu.nnz() as u64, lu.nnz_a() as u64),
            None => (0, 0),
        };
        LuStats {
            full_factors: self.full_factors,
            refactors: self.refactors,
            factor_flops: self.factor_flops,
            refactor_flops: self.refactor_flops,
            nnz_lu,
            nnz_a,
        }
    }

    /// Name of the ordering applied by the cached factorization, or the
    /// configured choice's tag when cold.
    pub fn ordering_name(&self) -> &'static str {
        match &self.cached {
            Some(lu) => lu.ordering_name(),
            None => self.ordering.name(),
        }
    }

    /// Drops the cached factorization (next solve runs a full factor).
    pub fn invalidate(&mut self) {
        self.cached = None;
    }
}

impl LinearSolver for SparseLuSolver {
    fn solve(&mut self, a: &CsrMatrix, b: &[f64], flops: &mut FlopCounter) -> Result<Vec<f64>> {
        let mut x = Vec::new();
        self.solve_into(a, b, &mut x, flops)?;
        Ok(x)
    }

    fn solve_into(
        &mut self,
        a: &CsrMatrix,
        b: &[f64],
        x: &mut Vec<f64>,
        flops: &mut FlopCounter,
    ) -> Result<()> {
        let before = flops.total();
        match &mut self.cached {
            Some(lu) => {
                // Same policy as `SparseLu::refactor_or_factor`, inlined so
                // the flop split stays honest: work burned in an aborted
                // refactor attempt is refactor work, not factor work.
                match lu.refactor(a, flops) {
                    Ok(()) => {
                        self.refactors += 1;
                        self.refactor_flops += flops.total() - before;
                    }
                    Err(crate::NumericError::PatternChanged { .. })
                    | Err(crate::NumericError::SingularMatrix { .. }) => {
                        self.refactor_flops += flops.total() - before;
                        let factor_start = flops.total();
                        *lu = if lu.symbolic().matches(a) {
                            // Pivot degraded on an unchanged pattern: the
                            // ordering and permuted structure are still
                            // exact — only re-pivot.
                            SparseLu::factor_symbolic(
                                lu.symbolic().clone(),
                                a,
                                self.strategy,
                                flops,
                            )?
                        } else {
                            SparseLu::factor_ordered(a, self.ordering, self.strategy, flops)?
                        };
                        self.full_factors += 1;
                        self.factor_flops += flops.total() - factor_start;
                    }
                    Err(e) => return Err(e),
                }
            }
            None => {
                self.cached = Some(SparseLu::factor_ordered(
                    a,
                    self.ordering,
                    self.strategy,
                    flops,
                )?);
                self.full_factors += 1;
                self.factor_flops += flops.total() - before;
            }
        }
        let lu = self.cached.as_ref().expect("factorization cached above");
        lu.solve_into(b, x, &mut self.work, flops)
    }

    fn name(&self) -> &'static str {
        "sparse-lu"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::sparse::TripletMatrix;

    fn test_system() -> (CsrMatrix, Vec<f64>) {
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 5.0);
        t.push(0, 1, -1.0);
        t.push(1, 0, -1.0);
        t.push(1, 1, 4.0);
        t.push(1, 2, -2.0);
        t.push(2, 1, -2.0);
        t.push(2, 2, 6.0);
        (t.to_csr(), vec![1.0, 2.0, 3.0])
    }

    #[test]
    fn dense_and_sparse_agree() {
        let (a, b) = test_system();
        let mut dense = DenseLuSolver::new();
        let mut sparse = SparseLuSolver::new();
        let xd = dense.solve(&a, &b, &mut FlopCounter::new()).unwrap();
        let xs = sparse.solve(&a, &b, &mut FlopCounter::new()).unwrap();
        for (d, s) in xd.iter().zip(xs.iter()) {
            assert!(approx_eq(*d, *s, 1e-12));
        }
    }

    #[test]
    fn solution_satisfies_system() {
        let (a, b) = test_system();
        let mut sparse = SparseLuSolver::new();
        let x = sparse.solve(&a, &b, &mut FlopCounter::new()).unwrap();
        let ax = a.matvec(&x, &mut FlopCounter::new()).unwrap();
        for (l, r) in ax.iter().zip(b.iter()) {
            assert!(approx_eq(*l, *r, 1e-12));
        }
    }

    #[test]
    fn repeated_solves_reuse_the_factorization() {
        let (a, b) = test_system();
        let mut sparse = SparseLuSolver::new();
        let mut x = Vec::new();
        sparse
            .solve_into(&a, &b, &mut x, &mut FlopCounter::new())
            .unwrap();
        assert_eq!(sparse.factor_counts(), (1, 0));
        // Same pattern, perturbed values: must refactor, not factor.
        let mut a2 = a.clone();
        for v in a2.values_mut() {
            *v *= 1.25;
        }
        sparse
            .solve_into(&a2, &b, &mut x, &mut FlopCounter::new())
            .unwrap();
        assert_eq!(sparse.factor_counts(), (1, 1));
        let ax = a2.matvec(&x, &mut FlopCounter::new()).unwrap();
        for (l, r) in ax.iter().zip(b.iter()) {
            assert!(approx_eq(*l, *r, 1e-12));
        }
        // A different pattern falls back to a full factorization.
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        t.push(2, 2, 1.0);
        sparse
            .solve_into(&t.to_csr(), &b, &mut x, &mut FlopCounter::new())
            .unwrap();
        assert_eq!(sparse.factor_counts(), (2, 1));
        assert_eq!(x, b);
        sparse.invalidate();
        sparse
            .solve_into(&t.to_csr(), &b, &mut x, &mut FlopCounter::new())
            .unwrap();
        assert_eq!(sparse.factor_counts(), (3, 1));
    }

    #[test]
    fn lu_stats_split_factor_and_refactor_flops() {
        let (a, b) = test_system();
        let mut sparse = SparseLuSolver::new();
        let mut x = Vec::new();
        let mut flops = FlopCounter::new();
        sparse.solve_into(&a, &b, &mut x, &mut flops).unwrap();
        let s1 = sparse.lu_stats();
        assert_eq!((s1.full_factors, s1.refactors), (1, 0));
        assert!(s1.factor_flops > 0);
        assert_eq!(s1.refactor_flops, 0);
        assert_eq!(s1.nnz_a, a.nnz() as u64);
        assert!(s1.nnz_lu >= s1.nnz_a, "L+U at least as dense as A");
        assert!(s1.fill_ratio() >= 1.0);
        let mut a2 = a.clone();
        for v in a2.values_mut() {
            *v *= 2.0;
        }
        sparse.solve_into(&a2, &b, &mut x, &mut flops).unwrap();
        let s2 = sparse.lu_stats();
        assert_eq!((s2.full_factors, s2.refactors), (1, 1));
        assert!(s2.refactor_flops > 0);
        assert_eq!(s2.factor_flops, s1.factor_flops, "no new factor flops");
    }

    #[test]
    fn explicit_ordering_is_applied_and_transparent() {
        // Arrow matrix large enough that fill differs between orderings.
        let n = 30;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 4.0);
            if i > 0 {
                t.push(0, i, 1.0);
                t.push(i, 0, 1.0);
            }
        }
        let a = t.to_csr();
        let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut nat = SparseLuSolver::with_ordering(OrderingChoice::Natural);
        let mut amd = SparseLuSolver::with_ordering(OrderingChoice::Amd);
        let xn = nat.solve(&a, &b, &mut FlopCounter::new()).unwrap();
        let xa = amd.solve(&a, &b, &mut FlopCounter::new()).unwrap();
        for (l, r) in xn.iter().zip(xa.iter()) {
            assert!(approx_eq(*l, *r, 1e-10), "{l} vs {r}");
        }
        assert!(amd.lu_stats().nnz_lu < nat.lu_stats().nnz_lu);
        assert_eq!(amd.ordering_name(), "amd");
        assert_eq!(nat.ordering_name(), "natural");
        assert_eq!(amd.ordering(), OrderingChoice::Amd);
    }

    #[test]
    fn cold_solver_reports_configured_ordering() {
        let s = SparseLuSolver::with_ordering(OrderingChoice::Rcm);
        assert_eq!(s.ordering_name(), "rcm");
        assert_eq!(s.lu_stats(), LuStats::default());
        assert_eq!(s.lu_stats().fill_ratio(), 0.0);
    }

    #[test]
    fn names_are_distinct() {
        assert_ne!(DenseLuSolver::new().name(), SparseLuSolver::new().name());
    }

    #[test]
    fn trait_object_usable() {
        let (a, b) = test_system();
        let mut solvers: Vec<Box<dyn LinearSolver>> = vec![
            Box::new(DenseLuSolver::new()),
            Box::new(SparseLuSolver::with_strategy(
                PivotStrategy::PartialPivoting,
            )),
        ];
        for s in solvers.iter_mut() {
            let x = s.solve(&a, &b, &mut FlopCounter::new()).unwrap();
            assert_eq!(x.len(), 3);
        }
    }
}
