//! Error type shared by the numeric routines.

use std::error::Error;
use std::fmt;

/// Errors produced by the linear-algebra and root-finding routines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NumericError {
    /// A matrix was structurally or numerically singular; the payload is the
    /// pivot row/column at which factorization broke down.
    SingularMatrix {
        /// Pivot index at which elimination failed.
        pivot: usize,
    },
    /// Operand shapes do not agree (e.g. multiplying a 3x2 by a 4x4).
    DimensionMismatch {
        /// Human-readable description of the two shapes involved.
        context: String,
    },
    /// An index was outside the matrix bounds.
    IndexOutOfBounds {
        /// Row requested.
        row: usize,
        /// Column requested.
        col: usize,
        /// Number of rows available.
        rows: usize,
        /// Number of columns available.
        cols: usize,
    },
    /// An iterative method exhausted its iteration budget.
    DidNotConverge {
        /// Number of iterations performed before giving up.
        iterations: usize,
        /// Residual or step size at the last iterate.
        residual: f64,
    },
    /// A scalar argument was invalid (negative tolerance, empty bracket, ...).
    InvalidArgument {
        /// Human-readable description of the offending argument.
        context: String,
    },
    /// A computed vector or matrix contained a NaN or infinity — the
    /// numerical-health screens reject it before it can silently corrupt
    /// downstream results.
    NonFiniteValue {
        /// Where the non-finite value was detected.
        context: String,
    },
    /// A refactorization was asked to reuse a cached symbolic analysis, but
    /// the matrix no longer matches it (new nonzero, different shape) or the
    /// cached pivot order went numerically bad. Callers normally respond by
    /// running a full factorization with fresh pivoting.
    PatternChanged {
        /// Human-readable description of the mismatch.
        context: String,
    },
}

impl fmt::Display for NumericError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericError::SingularMatrix { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            NumericError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
            NumericError::IndexOutOfBounds {
                row,
                col,
                rows,
                cols,
            } => write!(
                f,
                "index ({row}, {col}) out of bounds for {rows}x{cols} matrix"
            ),
            NumericError::DidNotConverge {
                iterations,
                residual,
            } => write!(
                f,
                "iteration did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            NumericError::InvalidArgument { context } => {
                write!(f, "invalid argument: {context}")
            }
            NumericError::NonFiniteValue { context } => {
                write!(f, "non-finite value detected: {context}")
            }
            NumericError::PatternChanged { context } => {
                write!(f, "sparse pattern changed: {context}")
            }
        }
    }
}

impl Error for NumericError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = NumericError::SingularMatrix { pivot: 3 };
        assert_eq!(e.to_string(), "matrix is singular at pivot 3");
        let e = NumericError::DimensionMismatch {
            context: "3x2 * 4x4".into(),
        };
        assert!(e.to_string().contains("3x2 * 4x4"));
        let e = NumericError::IndexOutOfBounds {
            row: 5,
            col: 6,
            rows: 2,
            cols: 2,
        };
        assert!(e.to_string().contains("(5, 6)"));
        let e = NumericError::DidNotConverge {
            iterations: 10,
            residual: 1.0,
        };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumericError>();
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(NumericError::SingularMatrix { pivot: 0 });
        assert!(e.source().is_none());
    }
}
