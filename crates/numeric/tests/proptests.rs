//! Property-based tests for the numeric substrate.

use nanosim_numeric::flops::FlopCounter;
use nanosim_numeric::interp::PwlFunction;
use nanosim_numeric::rng::Pcg64;
use nanosim_numeric::solve::{DenseLuSolver, LinearSolver, SparseLuSolver};
use nanosim_numeric::sparse::{
    CsrMatrix, OrderingChoice, PivotStrategy, SparseLu, SymbolicAnalysis, TripletMatrix,
};
use nanosim_numeric::stats::{percentile, RunningStats};
use nanosim_numeric::NumericError;
use proptest::prelude::*;

/// Strategy: a random diagonally dominant n x n sparse system (guaranteed
/// nonsingular) plus a right-hand side.
fn dominant_system() -> impl Strategy<Value = (usize, Vec<(usize, usize, f64)>, Vec<f64>)> {
    (2usize..12).prop_flat_map(|n| {
        let offdiag = proptest::collection::vec(((0..n), (0..n), -1.0f64..1.0), 0..(n * 2));
        let rhs = proptest::collection::vec(-10.0f64..10.0, n);
        (Just(n), offdiag, rhs).prop_map(|(n, off, rhs)| {
            let mut entries: Vec<(usize, usize, f64)> = Vec::new();
            // Row sums of |off-diagonal| to size the dominant diagonal.
            let mut rowsum = vec![0.0f64; n];
            for &(r, c, v) in &off {
                if r != c {
                    entries.push((r, c, v));
                    rowsum[r] += v.abs();
                }
            }
            for (i, rs) in rowsum.iter().enumerate() {
                entries.push((i, i, rs + 1.0));
            }
            (n, entries, rhs)
        })
    })
}

proptest! {
    /// Sparse LU agrees with dense LU on random nonsingular systems.
    #[test]
    fn sparse_matches_dense((n, entries, b) in dominant_system()) {
        let a = CsrMatrix::from_triplets(n, n, &entries);
        let mut dense = DenseLuSolver::new();
        let mut sparse = SparseLuSolver::new();
        let xd = dense.solve(&a, &b, &mut FlopCounter::new()).unwrap();
        let xs = sparse.solve(&a, &b, &mut FlopCounter::new()).unwrap();
        for (d, s) in xd.iter().zip(xs.iter()) {
            prop_assert!((d - s).abs() < 1e-8 * (1.0 + d.abs()), "{d} vs {s}");
        }
    }

    /// The sparse solution actually satisfies A x = b.
    #[test]
    fn sparse_residual_is_small((n, entries, b) in dominant_system()) {
        let a = CsrMatrix::from_triplets(n, n, &entries);
        let lu = SparseLu::factor(&a, &mut FlopCounter::new()).unwrap();
        let x = lu.solve(&b, &mut FlopCounter::new()).unwrap();
        let ax = a.matvec(&x, &mut FlopCounter::new()).unwrap();
        for (l, r) in ax.iter().zip(b.iter()) {
            prop_assert!((l - r).abs() < 1e-8 * (1.0 + r.abs()), "{l} vs {r}");
        }
    }

    /// Partial pivoting and threshold-diagonal pivoting give the same solution.
    #[test]
    fn pivot_strategies_agree((n, entries, b) in dominant_system()) {
        let a = CsrMatrix::from_triplets(n, n, &entries);
        let pp = SparseLu::factor_with(&a, PivotStrategy::PartialPivoting, &mut FlopCounter::new())
            .unwrap()
            .solve(&b, &mut FlopCounter::new())
            .unwrap();
        let td = SparseLu::factor(&a, &mut FlopCounter::new())
            .unwrap()
            .solve(&b, &mut FlopCounter::new())
            .unwrap();
        for (p, t) in pp.iter().zip(td.iter()) {
            prop_assert!((p - t).abs() < 1e-8 * (1.0 + p.abs()));
        }
    }

    /// Every fill-reducing ordering solves random systems to the same
    /// answer as natural order (callers never see the permutation).
    #[test]
    fn orderings_agree_with_natural((n, entries, b) in dominant_system()) {
        let a = CsrMatrix::from_triplets(n, n, &entries);
        let xn = SparseLu::factor_ordered(
            &a,
            OrderingChoice::Natural,
            PivotStrategy::default(),
            &mut FlopCounter::new(),
        )
        .unwrap()
        .solve(&b, &mut FlopCounter::new())
        .unwrap();
        for choice in [OrderingChoice::Rcm, OrderingChoice::Amd] {
            let x = SparseLu::factor_ordered(
                &a,
                choice,
                PivotStrategy::default(),
                &mut FlopCounter::new(),
            )
            .unwrap()
            .solve(&b, &mut FlopCounter::new())
            .unwrap();
            for (o, nat) in x.iter().zip(xn.iter()) {
                prop_assert!(
                    (o - nat).abs() < 1e-10 * (1.0 + nat.abs()),
                    "{choice:?}: {o} vs {nat}"
                );
            }
        }
    }

    /// Orderings are valid permutations and bit-deterministic across
    /// repeated runs *and* across threads (they are pure functions of the
    /// sparsity structure).
    #[test]
    fn orderings_deterministic_across_threads((n, entries, _b) in dominant_system()) {
        let a = CsrMatrix::from_triplets(n, n, &entries);
        for choice in [OrderingChoice::Rcm, OrderingChoice::Amd, OrderingChoice::Auto] {
            let reference = SymbolicAnalysis::analyze(&a, choice).unwrap();
            // Valid permutation.
            let mut seen = vec![false; n];
            for &p in reference.fill_perm() {
                prop_assert!(p < n && !seen[p], "{choice:?}: invalid perm");
                seen[p] = true;
            }
            // Same result again on this thread and on 4 fresh threads.
            let again = SymbolicAnalysis::analyze(&a, choice).unwrap();
            prop_assert_eq!(reference.fill_perm(), again.fill_perm());
            let perms: Vec<Vec<usize>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..4)
                    .map(|_| {
                        let a = &a;
                        s.spawn(move || {
                            SymbolicAnalysis::analyze(a, choice)
                                .unwrap()
                                .fill_perm()
                                .to_vec()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            for p in &perms {
                prop_assert_eq!(reference.fill_perm(), p.as_slice(), "{:?}", choice);
            }
        }
    }

    /// CSR round-trips through dense.
    #[test]
    fn csr_dense_roundtrip((n, entries, _b) in dominant_system()) {
        let a = CsrMatrix::from_triplets(n, n, &entries);
        let back = CsrMatrix::from_dense(&a.to_dense());
        for (r, c, v) in a.iter() {
            prop_assert!((back.get(r, c) - v).abs() < 1e-15);
        }
    }

    /// Triplet duplicate summation matches naive accumulation.
    #[test]
    fn triplet_duplicates_sum(
        n in 1usize..6,
        entries in proptest::collection::vec(((0usize..6), (0usize..6), -5.0f64..5.0), 0..30)
    ) {
        let entries: Vec<_> = entries
            .into_iter()
            .map(|(r, c, v)| (r % n, c % n, v))
            .collect();
        let mut t = TripletMatrix::new(n, n);
        t.extend(entries.iter().cloned());
        let csr = t.to_csr();
        for r in 0..n {
            for c in 0..n {
                let expected: f64 = entries
                    .iter()
                    .filter(|&&(er, ec, _)| er == r && ec == c)
                    .map(|&(_, _, v)| v)
                    .sum();
                prop_assert!((csr.get(r, c) - expected).abs() < 1e-12);
            }
        }
    }

    /// Matvec distributes over vector addition: A(x+y) = Ax + Ay.
    #[test]
    fn matvec_linearity((n, entries, x) in dominant_system(), seed in 0u64..1000) {
        let a = CsrMatrix::from_triplets(n, n, &entries);
        let mut rng = Pcg64::seed_from_u64(seed);
        let y: Vec<f64> = (0..n).map(|_| rng.uniform(-5.0, 5.0)).collect();
        let xy: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let mut f = FlopCounter::new();
        let axy = a.matvec(&xy, &mut f).unwrap();
        let ax = a.matvec(&x, &mut f).unwrap();
        let ay = a.matvec(&y, &mut f).unwrap();
        for i in 0..n {
            prop_assert!((axy[i] - ax[i] - ay[i]).abs() < 1e-9 * (1.0 + axy[i].abs()));
        }
    }

    /// Percentile is monotone in q and bounded by min/max.
    #[test]
    fn percentile_monotone(samples in proptest::collection::vec(-100.0f64..100.0, 1..50)) {
        let p25 = percentile(&samples, 0.25).unwrap();
        let p50 = percentile(&samples, 0.50).unwrap();
        let p75 = percentile(&samples, 0.75).unwrap();
        prop_assert!(p25 <= p50 && p50 <= p75);
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(lo <= p25 && p75 <= hi);
    }

    /// RunningStats merge is equivalent to pushing everything sequentially.
    #[test]
    fn stats_merge_associative(
        a in proptest::collection::vec(-50.0f64..50.0, 0..30),
        b in proptest::collection::vec(-50.0f64..50.0, 0..30)
    ) {
        let combined: RunningStats = a.iter().chain(b.iter()).copied().collect();
        let mut merged: RunningStats = a.iter().copied().collect();
        let sb: RunningStats = b.iter().copied().collect();
        merged.merge(&sb);
        prop_assert_eq!(merged.count(), combined.count());
        prop_assert!((merged.mean() - combined.mean()).abs() < 1e-9);
        prop_assert!((merged.variance() - combined.variance()).abs() < 1e-7);
    }

    /// PWL eval stays within the convex hull of neighboring breakpoints and
    /// is exact at breakpoints.
    #[test]
    fn pwl_eval_bounded(points in proptest::collection::vec(-10.0f64..10.0, 2..10)) {
        let pts: Vec<(f64, f64)> = points
            .iter()
            .enumerate()
            .map(|(i, &y)| (i as f64, y))
            .collect();
        let f = PwlFunction::new(pts.clone()).unwrap();
        for &(x, y) in &pts {
            prop_assert!((f.eval(x) - y).abs() < 1e-12);
        }
        for w in pts.windows(2) {
            let mid = 0.5 * (w[0].0 + w[1].0);
            let lo = w[0].1.min(w[1].1) - 1e-12;
            let hi = w[0].1.max(w[1].1) + 1e-12;
            let v = f.eval(mid);
            prop_assert!(v >= lo && v <= hi);
        }
    }

    /// The PRNG's uniform doubles honor arbitrary finite ranges.
    #[test]
    fn uniform_in_range(seed in 0u64..10_000, lo in -1e6f64..0.0, width in 1e-3f64..1e6) {
        let mut rng = Pcg64::seed_from_u64(seed);
        let hi = lo + width;
        for _ in 0..32 {
            let x = rng.uniform(lo, hi);
            prop_assert!(x >= lo && x < hi);
        }
    }

    /// Determinant from sparse LU matches the dense determinant.
    #[test]
    fn determinant_matches_dense((n, entries, _b) in dominant_system()) {
        let a = CsrMatrix::from_triplets(n, n, &entries);
        let sparse_det = SparseLu::factor(&a, &mut FlopCounter::new())
            .unwrap()
            .determinant();
        let dense_det = a
            .to_dense()
            .lu(&mut FlopCounter::new())
            .unwrap()
            .determinant();
        prop_assert!(
            (sparse_det - dense_det).abs() < 1e-6 * (1.0 + dense_det.abs()),
            "{sparse_det} vs {dense_det}"
        );
    }

    /// `factor` then `refactor` with perturbed (same-pattern) values matches
    /// a fresh factorization of the perturbed matrix to 1e-12 — the
    /// correctness contract of the KLU-style values-only pass.
    #[test]
    fn refactor_matches_fresh_factor(
        (n, entries, b) in dominant_system(),
        wobble in 0.01f64..0.4,
    ) {
        let a1 = CsrMatrix::from_triplets(n, n, &entries);
        let mut lu = SparseLu::factor(&a1, &mut FlopCounter::new()).unwrap();
        // Perturb every stored value deterministically, keeping diagonal
        // dominance (scale, don't sign-flip).
        let mut a2 = a1.clone();
        for (i, v) in a2.values_mut().iter_mut().enumerate() {
            *v *= 1.0 + wobble * ((i % 5) as f64 - 2.0) / 10.0;
        }
        lu.refactor(&a2, &mut FlopCounter::new()).unwrap();
        let fresh = SparseLu::factor(&a2, &mut FlopCounter::new()).unwrap();
        let xr = lu.solve(&b, &mut FlopCounter::new()).unwrap();
        let xf = fresh.solve(&b, &mut FlopCounter::new()).unwrap();
        for (r, f) in xr.iter().zip(xf.iter()) {
            prop_assert!((r - f).abs() < 1e-12 * (1.0 + f.abs()), "{r} vs {f}");
        }
    }

    /// A refactor against a matrix with any *new* structural nonzero is
    /// detected and refused — never silent garbage — and the fallback path
    /// recovers with a correct full factorization.
    #[test]
    fn refactor_rejects_pattern_growth(
        (n, entries, b) in dominant_system(),
        extra_row in 0usize..12,
        extra_col in 0usize..12,
    ) {
        let a1 = CsrMatrix::from_triplets(n, n, &entries);
        let mut lu = SparseLu::factor(&a1, &mut FlopCounter::new()).unwrap();
        let (r, c) = (extra_row % n, extra_col % n);
        prop_assume!(a1.position(r, c).is_none());
        let mut grown = entries.clone();
        grown.push((r, c, 0.5));
        let a2 = CsrMatrix::from_triplets(n, n, &grown);
        match lu.refactor(&a2, &mut FlopCounter::new()) {
            Err(NumericError::PatternChanged { .. }) => {}
            other => prop_assert!(false, "expected PatternChanged, got {other:?}"),
        }
        // refactor_or_factor falls back to a full factorization whose
        // solution satisfies the grown system.
        let reused = lu.refactor_or_factor(&a2, &mut FlopCounter::new()).unwrap();
        prop_assert!(!reused);
        let x = lu.solve(&b, &mut FlopCounter::new()).unwrap();
        let ax = a2.matvec(&x, &mut FlopCounter::new()).unwrap();
        for (l, rr) in ax.iter().zip(b.iter()) {
            prop_assert!((l - rr).abs() < 1e-7 * (1.0 + rr.abs()), "{l} vs {rr}");
        }
    }

    /// The caching `SparseLuSolver` takes the refactor path across a stream
    /// of same-pattern solves and stays correct on every one.
    #[test]
    fn caching_solver_reuses_and_stays_correct((n, entries, b) in dominant_system()) {
        let mut solver = SparseLuSolver::new();
        let mut x = Vec::new();
        for round in 0..4u32 {
            let mut a = CsrMatrix::from_triplets(n, n, &entries);
            for v in a.values_mut() {
                *v *= 1.0 + 0.1 * round as f64;
            }
            solver.solve_into(&a, &b, &mut x, &mut FlopCounter::new()).unwrap();
            let ax = a.matvec(&x, &mut FlopCounter::new()).unwrap();
            for (l, r) in ax.iter().zip(b.iter()) {
                prop_assert!((l - r).abs() < 1e-8 * (1.0 + r.abs()), "{l} vs {r}");
            }
        }
        let (full, reused) = solver.factor_counts();
        prop_assert_eq!(full, 1);
        prop_assert_eq!(reused, 3);
    }
}
