//! Figure 8 timing companion: the FET-RTD inverter transient under the
//! SWEC, Newton and PWL engines (shortened window to keep iterations
//! tractable for criterion).

use criterion::{criterion_group, criterion_main, Criterion};
use nanosim::core::pwl::PwlEngine;
use nanosim::core::swec::SwecTransient;
use nanosim::prelude::*;
use nanosim_bench::{spice3_options, swec_options};
use std::hint::black_box;

fn bench_inverter(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_inverter");
    group.sample_size(10);
    let ckt = nanosim::workloads::fet_rtd_inverter();
    let (tstep, tstop) = (0.2e-9, 20e-9);
    group.bench_function("swec", |b| {
        b.iter(|| {
            SwecTransient::new(swec_options())
                .run(black_box(&ckt), tstep, tstop)
                .expect("runs")
        })
    });
    group.bench_function("nr_spice3", |b| {
        b.iter(|| {
            NrEngine::new(spice3_options())
                .run_transient(black_box(&ckt), tstep, tstop)
                .expect("runs")
        })
    });
    group.bench_function("pwl_aces", |b| {
        b.iter(|| {
            PwlEngine::new(PwlOptions::default())
                .run_transient(black_box(&ckt), tstep, tstop)
                .expect("runs")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_inverter);
criterion_main!(benches);
