//! §5 headline timing: SWEC vs MLA wall-clock on the Table I DC sweep
//! (the FLOP-count version is `report_speedup` / `report_table1`).

use criterion::{criterion_group, criterion_main, Criterion};
use nanosim::prelude::*;
use nanosim_bench::{mla_options, swec_fixed_step_options, swec_options};
use std::hint::black_box;

fn bench_speedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("speedup");
    group.sample_size(10);
    let ckt = nanosim::workloads::rtd_chain(4);
    group.bench_function("dc_swec", |b| {
        b.iter(|| {
            SwecDcSweep::new(swec_options())
                .run(black_box(&ckt), "V1", 0.0, 5.0, 0.05)
                .expect("runs")
        })
    });
    group.bench_function("dc_mla", |b| {
        b.iter(|| {
            MlaEngine::new(mla_options())
                .run_dc_sweep(black_box(&ckt), "V1", 0.0, 5.0, 0.05)
                .expect("runs")
        })
    });

    // Fixed-step transient comparison (same accepted-step count).
    let mut tr = Circuit::new();
    let a = tr.node("in");
    let b_ = tr.node("mid");
    tr.add_voltage_source(
        "V1",
        a,
        Circuit::GROUND,
        SourceWaveform::pwl(vec![(0.0, 0.0), (10e-9, 5.0), (20e-9, 5.0)]).expect("valid"),
    )
    .expect("fresh");
    tr.add_resistor("R1", a, b_, 50.0).expect("fresh");
    tr.add_rtd("X1", b_, Circuit::GROUND, Rtd::date2005())
        .expect("fresh");
    tr.add_capacitor("C1", b_, Circuit::GROUND, 1e-13).expect("fresh");
    group.bench_function("tran_swec_fixed", |b| {
        b.iter(|| {
            SwecTransient::new(swec_fixed_step_options())
                .run(black_box(&tr), 0.05e-9, 20e-9)
                .expect("runs")
        })
    });
    group.bench_function("tran_mla_fixed", |b| {
        b.iter(|| {
            MlaEngine::new(mla_options())
                .run_transient(black_box(&tr), 0.05e-9, 20e-9)
                .expect("runs")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_speedup);
criterion_main!(benches);
