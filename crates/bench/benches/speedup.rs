//! §5 headline timing: SWEC vs MLA wall-clock on the Table I DC sweep
//! (the FLOP-count version is `report_speedup` / `report_table1`).

use criterion::{criterion_group, criterion_main, Criterion};
use nanosim::core::em::EmEngine;
use nanosim::core::mla::MlaEngine;
use nanosim::core::swec::{SwecDcSweep, SwecTransient};
use nanosim::prelude::*;
use nanosim_bench::{mla_options, swec_fixed_step_options, swec_options};
use std::hint::black_box;

fn bench_speedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("speedup");
    group.sample_size(10);
    let ckt = nanosim::workloads::rtd_chain(4);
    group.bench_function("dc_swec", |b| {
        b.iter(|| {
            SwecDcSweep::new(swec_options())
                .run(black_box(&ckt), "V1", 0.0, 5.0, 0.05)
                .expect("runs")
        })
    });
    group.bench_function("dc_mla", |b| {
        b.iter(|| {
            MlaEngine::new(mla_options())
                .run_dc_sweep(black_box(&ckt), "V1", 0.0, 5.0, 0.05)
                .expect("runs")
        })
    });

    // Fixed-step transient comparison (same accepted-step count).
    let mut tr = Circuit::new();
    let a = tr.node("in");
    let b_ = tr.node("mid");
    tr.add_voltage_source(
        "V1",
        a,
        Circuit::GROUND,
        SourceWaveform::pwl(vec![(0.0, 0.0), (10e-9, 5.0), (20e-9, 5.0)]).expect("valid"),
    )
    .expect("fresh");
    tr.add_resistor("R1", a, b_, 50.0).expect("fresh");
    tr.add_rtd("X1", b_, Circuit::GROUND, Rtd::date2005())
        .expect("fresh");
    tr.add_capacitor("C1", b_, Circuit::GROUND, 1e-13)
        .expect("fresh");
    group.bench_function("tran_swec_fixed", |b| {
        b.iter(|| {
            SwecTransient::new(swec_fixed_step_options())
                .run(black_box(&tr), 0.05e-9, 20e-9)
                .expect("runs")
        })
    });
    group.bench_function("tran_mla_fixed", |b| {
        b.iter(|| {
            MlaEngine::new(mla_options())
                .run_transient(black_box(&tr), 0.05e-9, 20e-9)
                .expect("runs")
        })
    });
    group.finish();
}

/// Thread-scaling variant: the Monte-Carlo ensemble of the statistical
/// engine at 1 vs 4 workers (bit-identical results; wall clock only).
fn bench_speedup_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("speedup_em_threads");
    group.sample_size(10);
    let noisy = nanosim::workloads::noisy_rc_node_fig10();
    for threads in [1usize, 4] {
        let engine = EmEngine::new(EmOptions {
            dt: 2e-12,
            paths: 200,
            seed: 1,
            threads,
            ..EmOptions::default()
        });
        group.bench_function(&format!("em_ensemble_200_t{threads}"), |b| {
            b.iter(|| engine.run(black_box(&noisy), 1e-9).expect("runs"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_speedup, bench_speedup_threads);
criterion_main!(benches);
