//! Figure 10 timing companion: the EM ensemble on the noisy node, and the
//! single-path EM-vs-exact machinery.

use criterion::{criterion_group, criterion_main, Criterion};
use nanosim::core::em::EmEngine;
use nanosim::prelude::*;
use nanosim::sde::ou::OrnsteinUhlenbeck;
use nanosim::sde::wiener::WienerPath;
use nanosim_numeric::rng::Pcg64;
use std::hint::black_box;

fn bench_em(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_em");
    group.sample_size(10);
    let ckt = nanosim::workloads::noisy_rc_node_fig10();
    group.bench_function("ensemble_100x500", |b| {
        let engine = EmEngine::new(EmOptions {
            dt: 2e-12,
            paths: 100,
            seed: 1,
            ..EmOptions::default()
        });
        b.iter(|| engine.run(black_box(&ckt), 1e-9).expect("runs"))
    });
    group.bench_function("single_path_500_steps", |b| {
        let engine = EmEngine::new(EmOptions {
            dt: 2e-12,
            ..EmOptions::default()
        });
        let mut rng = Pcg64::seed_from_u64(5);
        let path = WienerPath::generate(1e-9, 500, &mut rng);
        b.iter(|| {
            engine
                .run_with_paths(black_box(&ckt), &[path.clone()])
                .expect("runs")
        })
    });
    group.bench_function("ou_exact_reference", |b| {
        let ou = OrnsteinUhlenbeck::from_rc_node(1e-3, 1e-12, 0.85e-3, 2.2e-9);
        let mut rng = Pcg64::seed_from_u64(6);
        let path = WienerPath::generate(1e-9, 500, &mut rng);
        b.iter(|| ou.pathwise_reference(0.0, black_box(&path), 4, &mut rng))
    });
    group.finish();
}

criterion_group!(benches, bench_em);
criterion_main!(benches);
