//! Triangular-solve kernel benches: scalar reference vs blocked
//! (supernodal-panel) `solve_into`, batched `solve_many_into` vs `k`
//! independent solves, and scalar vs blocked refactor, across the Table I
//! `rtd_mesh_n` family (N ∈ {10, 20, 40}) and every fill ordering.
//!
//! Reading the numbers: the blocked path wins big wherever the factor
//! carries wide low-padding supernodes — the banded natural/RCM factors —
//! and stays at parity on AMD mesh factors (already index-light after the
//! supervariable fill reduction), where its wins are the refactor and the
//! batched multi-RHS path instead. `report_solve` prints the same
//! comparison as one table.

use criterion::{criterion_group, criterion_main, Criterion};
use nanosim::prelude::*;
use nanosim_numeric::solve::{LinearSolver, PrecisionMode, SparseLuSolver};
use nanosim_numeric::sparse::{BatchedLu, CsrMatrix, OrderingChoice, PivotStrategy, SparseLu};
use std::hint::black_box;

const ORDERINGS: [OrderingChoice; 3] = [
    OrderingChoice::Natural,
    OrderingChoice::Rcm,
    OrderingChoice::Amd,
];

/// Batch width of the multi-RHS comparison (≥ 4, where batching is
/// expected to win).
const K: usize = 8;

fn bench_solve(c: &mut Criterion) {
    for n in [10usize, 20, 40] {
        let mut group = c.benchmark_group(&format!("solve_mesh{n}"));
        group.sample_size(if n >= 40 { 10 } else { 20 });
        let a = nanosim_bench::table1_mesh_matrix(n, 0.8);
        let dim = a.rows();
        let b: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.37).sin()).collect();
        let bk: Vec<f64> = (0..dim * K).map(|i| (i as f64 * 0.11).cos()).collect();

        for ordering in ORDERINGS {
            let tag = ordering.name();
            let mut lu = SparseLu::factor_ordered(
                &a,
                ordering,
                PivotStrategy::default(),
                &mut FlopCounter::new(),
            )
            .expect("factors");
            // Force the panel kernels on so "blocked_*" always measures
            // them; `default_gate` records whether production would.
            let default_gate = lu.blocked_kernels();
            lu.set_blocked_kernels(true);
            let (mut x, mut w) = (Vec::new(), Vec::new());
            let mut flops = FlopCounter::new();

            // One counted solve and refactor per configuration so every
            // ordering's header row carries the same nnz/flop columns.
            let mut a2 = a.clone();
            for (i, v) in a2.values_mut().iter_mut().enumerate() {
                *v *= 1.0 + 1e-4 * ((i % 7) as f64);
            }
            let (solve_flops, refactor_flops) = {
                let mut counted = FlopCounter::new();
                lu.solve_into(&b, &mut x, &mut w, &mut counted)
                    .expect("solves");
                let solve = counted.total();
                let mut probe = lu.clone();
                probe.refactor(&a2, &mut counted).expect("refactors");
                (solve, counted.total() - solve)
            };
            println!(
                "  mesh{n} {tag:>7}: nnz_lu {:>6}, solve {:>7} flops, refactor {:>8} flops, \
                 {} supernodes over {}/{} columns, default gate: {}",
                lu.nnz(),
                solve_flops,
                refactor_flops,
                lu.supernode_count(),
                lu.supernode_cols(),
                lu.dim(),
                if default_gate { "blocked" } else { "scalar" },
            );

            group.bench_function(&format!("scalar_{tag}"), |bch| {
                bch.iter(|| {
                    lu.solve_into_scalar(black_box(&b), &mut x, &mut w, &mut flops)
                        .expect("solves")
                })
            });
            group.bench_function(&format!("blocked_{tag}"), |bch| {
                bch.iter(|| {
                    lu.solve_into(black_box(&b), &mut x, &mut w, &mut flops)
                        .expect("solves")
                })
            });
            group.bench_function(&format!("k_singles_{tag}"), |bch| {
                bch.iter(|| {
                    for j in 0..K {
                        lu.solve_into(
                            black_box(&bk[j * dim..(j + 1) * dim]),
                            &mut x,
                            &mut w,
                            &mut flops,
                        )
                        .expect("solves");
                    }
                })
            });
            group.bench_function(&format!("batched_k{K}_{tag}"), |bch| {
                bch.iter(|| {
                    lu.solve_many_into(black_box(&bk), K, &mut x, &mut w, &mut flops)
                        .expect("solves")
                })
            });

            // Mixed-precision solve (f32 panels + f64 refinement), gated:
            // the golden mesh workloads are well-conditioned, so refinement
            // must converge without ever falling back to the f64 path.
            let mut mixed = SparseLuSolver::with_ordering(ordering);
            mixed.set_precision(PrecisionMode::Mixed);
            let mut xm = Vec::new();
            group.bench_function(&format!("mixed_{tag}"), |bch| {
                bch.iter(|| {
                    mixed
                        .solve_into(black_box(&a), &b, &mut xm, &mut flops)
                        .expect("solves")
                })
            });
            let mstats = mixed.lu_stats();
            assert!(
                mstats.f32_panel_solves > 0,
                "mesh{n} {tag}: mixed solves never took the f32 path"
            );
            assert_eq!(
                mstats.precision_fallbacks, 0,
                "mesh{n} {tag}: mixed precision fell back on a healthy mesh"
            );
            lu.solve_into(&b, &mut x, &mut w, &mut flops)
                .expect("solves");
            let scale = x.iter().fold(1.0f64, |m, v| m.max(v.abs()));
            for (m, f) in xm.iter().zip(x.iter()) {
                assert!(
                    (m - f).abs() <= 1e-12 * scale,
                    "mesh{n} {tag}: mixed {m} vs f64 {f}"
                );
            }

            // Refactor paths (values-only updates — the sweep/transient
            // hot operation).
            let mut lu_blocked = lu.clone();
            let mut lu_scalar = lu.clone();
            group.bench_function(&format!("refactor_scalar_{tag}"), |bch| {
                bch.iter(|| {
                    lu_scalar
                        .refactor_scalar(black_box(&a2), &mut flops)
                        .expect("refactors")
                })
            });
            group.bench_function(&format!("refactor_blocked_{tag}"), |bch| {
                bch.iter(|| {
                    lu_blocked
                        .refactor(black_box(&a2), &mut flops)
                        .expect("refactors")
                })
            });
        }

        // Ensemble-batched factorization (mesh20/mesh40): one interleaved
        // k-lane batch vs a shared solver re-refactoring at every path
        // switch — the pre-`BatchedLu` way to run per-path parameter
        // spread over a T-step window. Recorded, not benched: the ratio is
        // a pure flop count.
        if n >= 20 {
            const T_STEPS: u64 = 100;
            let lanes: Vec<CsrMatrix> = (0..K)
                .map(|r| {
                    let mut m = a.clone();
                    for (i, v) in m.values_mut().iter_mut().enumerate() {
                        *v *= 1.0 + 1e-3 * (((i + r) % 5) as f64);
                    }
                    m
                })
                .collect();
            let lane_refs: Vec<&CsrMatrix> = lanes.iter().collect();
            let mut fc = FlopCounter::new();
            BatchedLu::factor_ordered(
                &lane_refs,
                OrderingChoice::Natural,
                PivotStrategy::default(),
                &mut fc,
            )
            .expect("factors");
            let per_path_batched = fc.total() as f64 / K as f64;
            let mut fs = FlopCounter::new();
            let mut shared = SparseLu::factor_ordered(
                &lanes[0],
                OrderingChoice::Natural,
                PivotStrategy::default(),
                &mut fs,
            )
            .expect("factors");
            let before = fs.total();
            shared.refactor(&lanes[1], &mut fs).expect("refactors");
            let r_switch = fs.total() - before;
            let per_path_scalar = (T_STEPS * r_switch) as f64;
            println!(
                "  mesh{n} batched-vs-scalar factor flops ({K} lanes, {T_STEPS} steps): \
                 batched {:.0}/path, per-switch refactor {:.0}/path, ratio {:.1}x",
                per_path_batched,
                per_path_scalar,
                per_path_scalar / per_path_batched,
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_solve);
criterion_main!(benches);
