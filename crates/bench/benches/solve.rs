//! Triangular-solve kernel benches: scalar reference vs blocked
//! (supernodal-panel) `solve_into`, batched `solve_many_into` vs `k`
//! independent solves, and scalar vs blocked refactor, across the Table I
//! `rtd_mesh_n` family (N ∈ {10, 20, 40}) and every fill ordering.
//!
//! Reading the numbers: the blocked path wins big wherever the factor
//! carries wide low-padding supernodes — the banded natural/RCM factors —
//! and stays at parity on AMD mesh factors (already index-light after the
//! supervariable fill reduction), where its wins are the refactor and the
//! batched multi-RHS path instead. `report_solve` prints the same
//! comparison as one table.

use criterion::{criterion_group, criterion_main, Criterion};
use nanosim::prelude::*;
use nanosim_numeric::sparse::{OrderingChoice, PivotStrategy, SparseLu};
use std::hint::black_box;

const ORDERINGS: [OrderingChoice; 3] = [
    OrderingChoice::Natural,
    OrderingChoice::Rcm,
    OrderingChoice::Amd,
];

/// Batch width of the multi-RHS comparison (≥ 4, where batching is
/// expected to win).
const K: usize = 8;

fn bench_solve(c: &mut Criterion) {
    for n in [10usize, 20, 40] {
        let mut group = c.benchmark_group(&format!("solve_mesh{n}"));
        group.sample_size(if n >= 40 { 10 } else { 20 });
        let a = nanosim_bench::table1_mesh_matrix(n, 0.8);
        let dim = a.rows();
        let b: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.37).sin()).collect();
        let bk: Vec<f64> = (0..dim * K).map(|i| (i as f64 * 0.11).cos()).collect();

        for ordering in ORDERINGS {
            let tag = ordering.name();
            let mut lu = SparseLu::factor_ordered(
                &a,
                ordering,
                PivotStrategy::default(),
                &mut FlopCounter::new(),
            )
            .expect("factors");
            // Force the panel kernels on so "blocked_*" always measures
            // them; `default_gate` records whether production would.
            let default_gate = lu.blocked_kernels();
            lu.set_blocked_kernels(true);
            println!(
                "  mesh{n} {tag:>7}: nnz_lu {:>6}, {} supernodes over {}/{} columns, \
                 default gate: {}",
                lu.nnz(),
                lu.supernode_count(),
                lu.supernode_cols(),
                lu.dim(),
                if default_gate { "blocked" } else { "scalar" },
            );
            let (mut x, mut w) = (Vec::new(), Vec::new());
            let mut flops = FlopCounter::new();

            group.bench_function(&format!("scalar_{tag}"), |bch| {
                bch.iter(|| {
                    lu.solve_into_scalar(black_box(&b), &mut x, &mut w, &mut flops)
                        .expect("solves")
                })
            });
            group.bench_function(&format!("blocked_{tag}"), |bch| {
                bch.iter(|| {
                    lu.solve_into(black_box(&b), &mut x, &mut w, &mut flops)
                        .expect("solves")
                })
            });
            group.bench_function(&format!("k_singles_{tag}"), |bch| {
                bch.iter(|| {
                    for j in 0..K {
                        lu.solve_into(
                            black_box(&bk[j * dim..(j + 1) * dim]),
                            &mut x,
                            &mut w,
                            &mut flops,
                        )
                        .expect("solves");
                    }
                })
            });
            group.bench_function(&format!("batched_k{K}_{tag}"), |bch| {
                bch.iter(|| {
                    lu.solve_many_into(black_box(&bk), K, &mut x, &mut w, &mut flops)
                        .expect("solves")
                })
            });

            // Refactor paths (values-only updates — the sweep/transient
            // hot operation).
            let mut a2 = a.clone();
            for (i, v) in a2.values_mut().iter_mut().enumerate() {
                *v *= 1.0 + 1e-4 * ((i % 7) as f64);
            }
            let mut lu_blocked = lu.clone();
            let mut lu_scalar = lu.clone();
            group.bench_function(&format!("refactor_scalar_{tag}"), |bch| {
                bch.iter(|| {
                    lu_scalar
                        .refactor_scalar(black_box(&a2), &mut flops)
                        .expect("refactors")
                })
            });
            group.bench_function(&format!("refactor_blocked_{tag}"), |bch| {
                bch.iter(|| {
                    lu_blocked
                        .refactor(black_box(&a2), &mut flops)
                        .expect("refactors")
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_solve);
criterion_main!(benches);
