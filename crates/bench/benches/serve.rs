//! Service-layer benches: the latency ladder the caches buy.
//!
//! For the parameterized Table I meshes (`rtd_mesh_param_deck`) each DC
//! sweep submit is measured three ways:
//!
//! * **cold** — a fresh `SimService` per iteration: pays parsing, the
//!   sparse-LU symbolic analysis, the supernode plan and every factor;
//! * **warm_session** — one long-lived service, a new `rgrid` override per
//!   iteration: same topology, different values, so the pooled session
//!   rebinds and only *refactors* (0 full factors after the first submit);
//! * **result_hit** — the identical deck resubmitted: answered from the
//!   full result cache, bit-identically, with no engine work at all.
//!
//! The acceptance bar for the service layer is warm_session and
//! result_hit strictly below cold on mesh20.

use criterion::{criterion_group, criterion_main, Criterion};
use nanosim::serve::{ServiceOptions, SimService};
use std::hint::black_box;

fn bench_service_ladder(c: &mut Criterion) {
    for n in [10usize, 20] {
        let name = format!("serve_mesh{n}");
        let mut group = c.benchmark_group(&name);
        group.sample_size(10);
        let deck = nanosim::workloads::rtd_mesh_param_deck(n);

        group.bench_function("cold", |b| {
            b.iter(|| {
                let mut svc = SimService::new(ServiceOptions::default());
                svc.submit(black_box(&deck)).expect("deck submits")
            })
        });

        // One service, a fresh resistance value every iteration: the
        // DeckKey always changes (no result-cache hit) but the topology
        // never does, so every submit after the first rides a rebound
        // session.
        let mut warm_svc = SimService::new(ServiceOptions::default());
        warm_svc.submit(&deck).expect("priming submit");
        let mut variant = 0u64;
        group.bench_function("warm_session", |b| {
            b.iter(|| {
                variant += 1;
                let rgrid = 100.0 + variant as f64 * 1e-3;
                warm_svc
                    .submit_opts(black_box(&deck), &[("rgrid".into(), rgrid)], None)
                    .expect("deck submits")
            })
        });

        let mut hit_svc = SimService::new(ServiceOptions::default());
        hit_svc.submit(&deck).expect("priming submit");
        group.bench_function("result_hit", |b| {
            b.iter(|| hit_svc.submit(black_box(&deck)).expect("deck submits"))
        });

        group.finish();
    }
}

criterion_group!(benches, bench_service_ladder);
criterion_main!(benches);
