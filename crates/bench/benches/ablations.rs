//! Ablation benches for the design choices called out in DESIGN.md:
//! Geq Taylor extrapolation on/off, backward-Euler vs trapezoidal,
//! paper-constraint vs local-error step control, MLA cold vs warm start.

use criterion::{criterion_group, criterion_main, Criterion};
use nanosim::core::swec::SwecTransient;
use nanosim::prelude::*;
use nanosim_bench::swec_options;
use std::hint::black_box;

fn rtd_ramp() -> Circuit {
    let mut ckt = Circuit::new();
    let a = ckt.node("in");
    let b = ckt.node("mid");
    ckt.add_voltage_source(
        "V1",
        a,
        Circuit::GROUND,
        SourceWaveform::pwl(vec![(0.0, 0.0), (10e-9, 5.0), (20e-9, 5.0)]).expect("valid"),
    )
    .expect("fresh");
    ckt.add_resistor("R1", a, b, 50.0).expect("fresh");
    ckt.add_rtd("X1", b, Circuit::GROUND, Rtd::date2005())
        .expect("fresh");
    ckt.add_capacitor("C1", b, Circuit::GROUND, 1e-12)
        .expect("fresh");
    ckt
}

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    let ckt = rtd_ramp();

    group.bench_function("taylor_on", |b| {
        b.iter(|| {
            SwecTransient::new(SwecOptions {
                taylor_extrapolation: true,
                ..swec_options()
            })
            .run(black_box(&ckt), 0.1e-9, 20e-9)
            .expect("runs")
        })
    });
    group.bench_function("taylor_off", |b| {
        b.iter(|| {
            SwecTransient::new(SwecOptions {
                taylor_extrapolation: false,
                ..swec_options()
            })
            .run(black_box(&ckt), 0.1e-9, 20e-9)
            .expect("runs")
        })
    });
    group.bench_function("backward_euler", |b| {
        b.iter(|| {
            SwecTransient::new(SwecOptions {
                integration: IntegrationMethod::BackwardEuler,
                ..swec_options()
            })
            .run(black_box(&ckt), 0.1e-9, 20e-9)
            .expect("runs")
        })
    });
    group.bench_function("trapezoidal", |b| {
        b.iter(|| {
            SwecTransient::new(SwecOptions {
                integration: IntegrationMethod::Trapezoidal,
                ..swec_options()
            })
            .run(black_box(&ckt), 0.1e-9, 20e-9)
            .expect("runs")
        })
    });
    // The paper's closed-form eq. 11/12 step bounds are far more
    // conservative than the eq. 10 local-error test on stiff nodes; run
    // them on a gentler workload so the bench finishes.
    group.bench_function("paper_constraint_control", |b| {
        b.iter(|| {
            SwecTransient::new(SwecOptions {
                step_control: nanosim::core::swec::StepControl::PaperConstraints,
                ..swec_options()
            })
            .run(black_box(&ckt), 0.1e-9, 20e-9)
            .expect("runs")
        })
    });
    group.bench_function("local_error_control", |b| {
        b.iter(|| {
            SwecTransient::new(SwecOptions {
                step_control: nanosim::core::swec::StepControl::LocalError,
                ..swec_options()
            })
            .run(black_box(&ckt), 0.1e-9, 20e-9)
            .expect("runs")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
