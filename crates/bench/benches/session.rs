//! Session-API benches: serial vs sharded DC sweep wall-time on the
//! Table I RTD mesh, and the cost of the session facade itself (the
//! sharded runs are bit-identical to serial — see `tests/session.rs` —
//! so this measures pure scheduling).

use criterion::{criterion_group, criterion_main, Criterion};
use nanosim::prelude::*;
use std::hint::black_box;

fn bench_sharded_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_sweep");
    group.sample_size(10);
    // Table I mesh: 10x10 grid = 101 MNA variables, 100 RTDs; 121 sweep
    // points = 8 shard chunks.
    let circuit = nanosim::workloads::rtd_mesh(10);
    let mut sim = Simulator::new(circuit).expect("mesh assembles");
    for workers in [1usize, 2, 4, 8] {
        let plan = if workers == 1 {
            ExecPlan::Serial
        } else {
            ExecPlan::sharded(workers)
        };
        group.bench_function(&format!("dc_mesh10_121pts_w{workers}"), |b| {
            b.iter(|| {
                sim.run(black_box(
                    Analysis::dc_sweep("V1", 0.0, 3.0, 0.025).plan(plan),
                ))
                .expect("sweep runs")
            })
        });
    }
    group.finish();
}

fn bench_session_vs_engine(c: &mut Criterion) {
    // The facade must not tax the serial path: compare the session serial
    // sweep against the legacy engine on the same workload.
    let mut group = c.benchmark_group("session_overhead");
    group.sample_size(10);
    let circuit = nanosim::workloads::rtd_mesh(6);
    let mut sim = Simulator::new(circuit.clone()).expect("mesh assembles");
    group.bench_function("session_serial_mesh6", |b| {
        b.iter(|| {
            sim.run(black_box(Analysis::dc_sweep("V1", 0.0, 3.0, 0.1)))
                .expect("sweep runs")
        })
    });
    group.bench_function("legacy_engine_mesh6", |b| {
        b.iter(|| {
            nanosim::core::swec::SwecDcSweep::new(SwecOptions::default())
                .run(black_box(&circuit), "V1", 0.0, 3.0, 0.1)
                .expect("sweep runs")
        })
    });
    group.finish();
}

fn bench_transient_ensemble(c: &mut Criterion) {
    // Parameter-variation transient ensemble through run_ensemble.
    let mut group = c.benchmark_group("session_ensemble");
    group.sample_size(10);
    let variants: Vec<Circuit> = (0..8)
        .map(|i| {
            let mut ckt = Circuit::new();
            let a = ckt.node("in");
            let b = ckt.node("mid");
            ckt.add_voltage_source(
                "V1",
                a,
                Circuit::GROUND,
                SourceWaveform::pwl(vec![(0.0, 0.0), (5e-9, 3.0), (10e-9, 3.0)]).unwrap(),
            )
            .unwrap();
            ckt.add_resistor("R1", a, b, 50.0).unwrap();
            ckt.add_rtd("X1", b, Circuit::GROUND, Rtd::date2005())
                .unwrap();
            ckt.add_capacitor("C1", b, Circuit::GROUND, (1.0 + i as f64) * 5e-14)
                .unwrap();
            ckt
        })
        .collect();
    let analysis: nanosim::core::sim::Analysis = Analysis::transient(0.1e-9, 10e-9).into();
    for workers in [1usize, 4] {
        let plan = if workers == 1 {
            ExecPlan::Serial
        } else {
            ExecPlan::sharded(workers)
        };
        group.bench_function(&format!("tran_ensemble_8x_w{workers}"), |b| {
            b.iter(|| run_ensemble(black_box(&variants), &analysis, plan).expect("ensemble runs"))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sharded_sweep,
    bench_session_vs_engine,
    bench_transient_ensemble
);
criterion_main!(benches);
