//! Figure 9 timing companion: one clock cycle of the RTD D-flip-flop.

use criterion::{criterion_group, criterion_main, Criterion};
use nanosim::core::swec::SwecTransient;
use nanosim_bench::swec_options;
use std::hint::black_box;

fn bench_dff(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_dff");
    group.sample_size(10);
    let ckt = nanosim::workloads::rtd_d_flip_flop();
    group.bench_function("swec_one_cycle", |b| {
        b.iter(|| {
            SwecTransient::new(swec_options())
                .run(black_box(&ckt), 0.2e-9, 100e-9)
                .expect("runs")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_dff);
criterion_main!(benches);
