//! Fill-reducing-ordering benches: natural vs RCM vs AMD full-factor,
//! values-only refactor, and solve time on the Table I `rtd_mesh_n` matrix
//! family (N ∈ {10, 20, 40}), plus the resulting `nnz_lu` so the
//! wall-clock numbers can be read against the fill they buy.

use criterion::{criterion_group, criterion_main, Criterion};
use nanosim::prelude::*;
use nanosim_numeric::sparse::{OrderingChoice, PivotStrategy, SparseLu};
use std::hint::black_box;

const ORDERINGS: [OrderingChoice; 3] = [
    OrderingChoice::Natural,
    OrderingChoice::Rcm,
    OrderingChoice::Amd,
];

fn bench_ordering(c: &mut Criterion) {
    for n in [10usize, 20, 40] {
        let group_name = format!("ordering_mesh{n}");
        let mut group = c.benchmark_group(&group_name);
        group.sample_size(if n >= 40 { 10 } else { 20 });
        let a1 = nanosim_bench::table1_mesh_matrix(n, 0.8);
        let a2 = nanosim_bench::table1_mesh_matrix(n, 1.1); // same pattern, step-updated values
        let b: Vec<f64> = (0..a1.rows()).map(|i| (i as f64 * 0.37).sin()).collect();

        // Fill summary first, so the timing numbers below have context.
        let nnz_natural = SparseLu::factor_ordered(
            &a1,
            OrderingChoice::Natural,
            PivotStrategy::default(),
            &mut FlopCounter::new(),
        )
        .expect("factors")
        .nnz();
        println!("  mesh{n}: {} unknowns, nnz(A) = {}", a1.rows(), a1.nnz());
        for ordering in ORDERINGS {
            let lu = SparseLu::factor_ordered(
                &a1,
                ordering,
                PivotStrategy::default(),
                &mut FlopCounter::new(),
            )
            .expect("factors");
            println!(
                "  mesh{n} {:>7}: nnz_lu {:>6} (fill {:>5.2}x, {:+.1}% vs natural)",
                lu.ordering_name(),
                lu.nnz(),
                lu.fill_ratio(),
                100.0 * (lu.nnz() as f64 - nnz_natural as f64) / nnz_natural as f64
            );
        }

        for ordering in ORDERINGS {
            let tag = ordering.name();
            group.bench_function(&format!("full_factor_{tag}"), |bch| {
                bch.iter(|| {
                    SparseLu::factor_ordered(
                        black_box(&a1),
                        ordering,
                        PivotStrategy::default(),
                        &mut FlopCounter::new(),
                    )
                    .expect("factors")
                })
            });
            group.bench_function(&format!("refactor_{tag}"), |bch| {
                let mut lu = SparseLu::factor_ordered(
                    &a1,
                    ordering,
                    PivotStrategy::default(),
                    &mut FlopCounter::new(),
                )
                .expect("factors");
                let mut which = false;
                bch.iter(|| {
                    which = !which;
                    let a = if which { &a2 } else { &a1 };
                    lu.refactor(black_box(a), &mut FlopCounter::new())
                        .expect("same pattern");
                })
            });
            group.bench_function(&format!("solve_{tag}"), |bch| {
                let lu = SparseLu::factor_ordered(
                    &a1,
                    ordering,
                    PivotStrategy::default(),
                    &mut FlopCounter::new(),
                )
                .expect("factors");
                let mut x = Vec::new();
                let mut work = Vec::new();
                bch.iter(|| {
                    lu.solve_into(black_box(&b), &mut x, &mut work, &mut FlopCounter::new())
                        .expect("solves")
                })
            });
        }
        group.finish();
    }
}

fn bench_session_ordering(c: &mut Criterion) {
    // Whole-session effect: a DC sweep on the 20×20 mesh under each
    // ordering (one warm-up factor + per-point refactors, all cheaper
    // under AMD).
    let mut group = c.benchmark_group("session_ordering_mesh20");
    group.sample_size(10);
    for ordering in ORDERINGS {
        group.bench_function(&format!("dc_sweep_{}", ordering.name()), |b| {
            b.iter(|| {
                let mut sim = Simulator::with_options(
                    nanosim::workloads::rtd_mesh_n(20),
                    SimOptions {
                        ordering,
                        ..Default::default()
                    },
                )
                .expect("assembles");
                sim.run(Analysis::dc_sweep("V1", 0.0, 1.0, 0.1))
                    .expect("sweep runs")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ordering, bench_session_ordering);
criterion_main!(benches);
