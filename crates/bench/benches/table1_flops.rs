//! Table I timing companion: wall-clock of the DC sweeps whose FLOP counts
//! `report_table1` prints (SWEC vs MLA on the RTD divider).

use criterion::{criterion_group, criterion_main, Criterion};
use nanosim::core::mla::MlaEngine;
use nanosim::core::swec::SwecDcSweep;
use nanosim::prelude::*;
use nanosim_bench::{mla_options, swec_options};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_dc");
    group.sample_size(20);
    let ckt = nanosim::workloads::rtd_divider(50.0);
    group.bench_function("swec_rtd_divider", |b| {
        b.iter(|| {
            SwecDcSweep::new(swec_options())
                .run(black_box(&ckt), "V1", 0.0, 5.0, 0.05)
                .expect("sweep runs")
        })
    });
    group.bench_function("mla_rtd_divider", |b| {
        b.iter(|| {
            MlaEngine::new(mla_options())
                .run_dc_sweep(black_box(&ckt), "V1", 0.0, 5.0, 0.05)
                .expect("sweep runs")
        })
    });
    let chain = nanosim::workloads::rtd_chain(4);
    group.bench_function("swec_rtd_chain4", |b| {
        b.iter(|| {
            SwecDcSweep::new(swec_options())
                .run(black_box(&chain), "V1", 0.0, 5.0, 0.05)
                .expect("sweep runs")
        })
    });
    group.finish();
}

/// Refactor-vs-factor variant on the Table I mesh matrix: the values-only
/// refactorization that the sweep's inner loop performs after its first
/// solve, against the full symbolic + numeric factorization.
fn bench_table1_refactor(c: &mut Criterion) {
    use nanosim_numeric::sparse::{SparseLu, TripletMatrix};
    let mut group = c.benchmark_group("table1_refactor");
    group.sample_size(30);
    let mesh = nanosim::workloads::rtd_mesh(8);
    let mna = MnaSystem::new(&mesh).expect("mesh assembles");
    let mut flops = FlopCounter::new();
    let assemble = |bias: f64, flops: &mut FlopCounter| {
        let mut g = TripletMatrix::new(mna.dim(), mna.dim());
        mna.stamp_linear_g(&mut g);
        for b in mna.nonlinear_bindings() {
            let geq = b.device.equivalent_conductance(bias, flops) + 1e-12;
            MnaSystem::stamp_conductance(&mut g, b.var_plus, b.var_minus, geq);
        }
        g.to_csr()
    };
    let a1 = assemble(0.7, &mut flops);
    let a2 = assemble(1.2, &mut flops);
    group.bench_function("mesh8_full_factor", |b| {
        b.iter(|| SparseLu::factor(black_box(&a1), &mut FlopCounter::new()).expect("factors"))
    });
    group.bench_function("mesh8_refactor", |b| {
        let mut lu = SparseLu::factor(&a1, &mut FlopCounter::new()).expect("factors");
        let mut which = false;
        b.iter(|| {
            which = !which;
            let a = if which { &a2 } else { &a1 };
            lu.refactor(black_box(a), &mut FlopCounter::new())
                .expect("same pattern")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table1, bench_table1_refactor);
criterion_main!(benches);
