//! Table I timing companion: wall-clock of the DC sweeps whose FLOP counts
//! `report_table1` prints (SWEC vs MLA on the RTD divider).

use criterion::{criterion_group, criterion_main, Criterion};
use nanosim::prelude::*;
use nanosim_bench::{mla_options, swec_options};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_dc");
    group.sample_size(20);
    let ckt = nanosim::workloads::rtd_divider(50.0);
    group.bench_function("swec_rtd_divider", |b| {
        b.iter(|| {
            SwecDcSweep::new(swec_options())
                .run(black_box(&ckt), "V1", 0.0, 5.0, 0.05)
                .expect("sweep runs")
        })
    });
    group.bench_function("mla_rtd_divider", |b| {
        b.iter(|| {
            MlaEngine::new(mla_options())
                .run_dc_sweep(black_box(&ckt), "V1", 0.0, 5.0, 0.05)
                .expect("sweep runs")
        })
    });
    let chain = nanosim::workloads::rtd_chain(4);
    group.bench_function("swec_rtd_chain4", |b| {
        b.iter(|| {
            SwecDcSweep::new(swec_options())
                .run(black_box(&chain), "V1", 0.0, 5.0, 0.05)
                .expect("sweep runs")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
