//! Figure 1 timing companion: cost of evaluating the RTT and nanowire
//! models (current + differential conductance), the inner loop of every
//! engine.

use criterion::{criterion_group, criterion_main, Criterion};
use nanosim::prelude::*;
use std::hint::black_box;

fn bench_devices(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_devices");
    let rtt = Rtt::three_peak();
    let wire = Nanowire::metallic_cnt();
    let rtd = Rtd::date2005();
    group.bench_function("rtt_current", |b| {
        let mut flops = FlopCounter::new();
        b.iter(|| rtt.current(black_box(2.3), &mut flops))
    });
    group.bench_function("nanowire_conductance", |b| {
        let mut flops = FlopCounter::new();
        b.iter(|| wire.differential_conductance(black_box(1.3), &mut flops))
    });
    group.bench_function("rtd_current", |b| {
        let mut flops = FlopCounter::new();
        b.iter(|| rtd.current(black_box(3.1), &mut flops))
    });
    group.bench_function("rtd_geq_with_taylor_term", |b| {
        let mut flops = FlopCounter::new();
        b.iter(|| {
            let g = rtd.equivalent_conductance(black_box(3.1), &mut flops);
            let dg = rtd.d_equivalent_conductance_dv(black_box(3.1), &mut flops);
            (g, dg)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_devices);
criterion_main!(benches);
