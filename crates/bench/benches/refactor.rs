//! Solver-core benches for the hot-path overhaul: KLU-style refactor vs
//! full factorization on the Table I RTD mesh matrix, the allocation-free
//! `solve_into` path, and Monte-Carlo ensemble thread scaling.

use criterion::{criterion_group, criterion_main, Criterion};
use nanosim::core::em::EmEngine;
use nanosim::core::swec::SwecDcSweep;
use nanosim::prelude::*;
use nanosim_numeric::solve::LinearSolver;
use nanosim_numeric::sparse::SparseLu;
use std::hint::black_box;

fn bench_refactor(c: &mut Criterion) {
    let mut group = c.benchmark_group("lu_refactor");
    group.sample_size(30);
    // Table I mesh: 10x10 grid = 101 MNA variables, 100 RTDs.
    let a1 = nanosim_bench::table1_mesh_matrix(10, 0.8);
    let a2 = nanosim_bench::table1_mesh_matrix(10, 1.1); // same pattern, step-updated conductances
    let b: Vec<f64> = (0..a1.rows()).map(|i| (i as f64 * 0.37).sin()).collect();

    group.bench_function("full_factor_mesh10", |bch| {
        bch.iter(|| SparseLu::factor(black_box(&a1), &mut FlopCounter::new()).expect("factors"))
    });
    group.bench_function("refactor_mesh10", |bch| {
        let mut lu = SparseLu::factor(&a1, &mut FlopCounter::new()).expect("factors");
        let mut which = false;
        bch.iter(|| {
            which = !which;
            let a = if which { &a2 } else { &a1 };
            lu.refactor(black_box(a), &mut FlopCounter::new())
                .expect("same pattern");
        })
    });
    group.bench_function("solve_into_mesh10", |bch| {
        let lu = SparseLu::factor(&a1, &mut FlopCounter::new()).expect("factors");
        let mut x = Vec::new();
        let mut work = Vec::new();
        bch.iter(|| {
            lu.solve_into(black_box(&b), &mut x, &mut work, &mut FlopCounter::new())
                .expect("solves")
        })
    });
    group.bench_function("caching_solver_mesh10", |bch| {
        // The LinearSolver-level view: alternating same-pattern matrices go
        // through refactor after the first call.
        let mut solver = nanosim_numeric::solve::SparseLuSolver::new();
        let mut x = Vec::new();
        let mut which = false;
        bch.iter(|| {
            which = !which;
            let a = if which { &a2 } else { &a1 };
            solver
                .solve_into(black_box(a), &b, &mut x, &mut FlopCounter::new())
                .expect("solves");
        })
    });
    group.finish();
}

fn bench_engine_refactor_win(c: &mut Criterion) {
    // Whole-engine effect on the Table I mesh DC sweep: every solve after
    // the first reuses the symbolic analysis (see stats.refactors).
    let mut group = c.benchmark_group("engine_refactor");
    group.sample_size(10);
    let mesh = nanosim::workloads::rtd_mesh(6);
    group.bench_function("swec_dc_mesh6", |b| {
        b.iter(|| {
            SwecDcSweep::new(SwecOptions::default())
                .run(black_box(&mesh), "V1", 0.0, 3.0, 0.1)
                .expect("sweep runs")
        })
    });
    let r = SwecDcSweep::new(SwecOptions::default())
        .run(&mesh, "V1", 0.0, 3.0, 0.1)
        .expect("sweep runs");
    println!(
        "  swec_dc_mesh6 solver mix: {} full factorizations, {} refactorizations",
        r.stats.full_factors, r.stats.refactors
    );
    group.finish();
}

fn bench_em_thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("em_thread_scaling");
    group.sample_size(10);
    let ckt = nanosim::workloads::noisy_rc_node_fig10();
    for threads in [1usize, 2, 4, 8] {
        let engine = EmEngine::new(EmOptions {
            dt: 2e-12,
            paths: 256,
            seed: 7,
            threads,
            ..EmOptions::default()
        });
        group.bench_function(&format!("ensemble_256x500_t{threads}"), |b| {
            b.iter(|| engine.run(black_box(&ckt), 1e-9).expect("runs"))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_refactor,
    bench_engine_refactor_win,
    bench_em_thread_scaling
);
criterion_main!(benches);
