//! Figure 7 timing companion: the DC sweeps of the RTD and nanowire
//! dividers under SWEC.

use criterion::{criterion_group, criterion_main, Criterion};
use nanosim::core::swec::SwecDcSweep;
use nanosim::prelude::*;
use nanosim_bench::swec_options;
use std::hint::black_box;

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_dc");
    group.sample_size(30);
    let rtd = nanosim::workloads::rtd_divider(50.0);
    group.bench_function("rtd_divider_sweep", |b| {
        b.iter(|| {
            SwecDcSweep::new(swec_options())
                .run(black_box(&rtd), "V1", 0.0, 5.0, 0.05)
                .expect("runs")
        })
    });
    let nw = nanosim::workloads::nanowire_divider(100.0);
    group.bench_function("nanowire_divider_sweep", |b| {
        b.iter(|| {
            SwecDcSweep::new(swec_options())
                .run(black_box(&nw), "V1", -2.5, 2.5, 0.05)
                .expect("runs")
        })
    });
    // Fixed-point refinement mode as the accuracy-vs-cost contrast.
    group.bench_function("rtd_divider_sweep_fixed_point", |b| {
        b.iter(|| {
            SwecDcSweep::new(SwecOptions {
                dc_mode: DcMode::FixedPoint,
                ..swec_options()
            })
            .run(black_box(&rtd), "V1", 0.0, 5.0, 0.05)
            .expect("runs")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
