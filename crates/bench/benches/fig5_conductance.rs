//! Figure 5 timing companion: sweeping the two conductance definitions
//! (differential vs step-wise equivalent) across the full bias range.

use criterion::{criterion_group, criterion_main, Criterion};
use nanosim::prelude::*;
use std::hint::black_box;

fn bench_conductance(c: &mut Criterion) {
    let rtd = Rtd::date2005();
    let mut group = c.benchmark_group("fig5_conductance");
    group.bench_function("differential_sweep", |b| {
        let mut flops = FlopCounter::new();
        b.iter(|| {
            let mut acc = 0.0;
            let mut v = 0.0;
            while v <= 6.0 {
                acc += rtd.differential_conductance(black_box(v), &mut flops);
                v += 0.01;
            }
            acc
        })
    });
    group.bench_function("swec_sweep", |b| {
        let mut flops = FlopCounter::new();
        b.iter(|| {
            let mut acc = 0.0;
            let mut v = 0.0;
            while v <= 6.0 {
                acc += rtd.equivalent_conductance(black_box(v), &mut flops);
                v += 0.01;
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_conductance);
criterion_main!(benches);
