//! Shared harness utilities for the Nano-Sim benchmark/report suite.
//!
//! Every table and figure of the paper has a `report_*` binary in
//! `src/bin/` that prints the corresponding rows/series, and a criterion
//! bench in `benches/` that times the underlying computation. This library
//! holds the pieces they share: table formatting and the standard engine
//! configurations used throughout the comparison.

#![deny(missing_docs)]

use nanosim::prelude::*;
use nanosim_numeric::sparse::{CsrMatrix, TripletMatrix};

/// Assembles the DC SWEC matrix `G_lin + Geq(x)` of the Table I N×N RTD
/// mesh at a fixed bias-like state, as CSR — the standard matrix of the
/// solver benches (`refactor`, `ordering`, `solve`) and their report
/// bins, kept in one place so every comparison stamps identical values.
pub fn table1_mesh_matrix(n: usize, bias: f64) -> CsrMatrix {
    let ckt = nanosim::workloads::rtd_mesh_n(n);
    let mna = MnaSystem::new(&ckt).expect("mesh assembles");
    let mut flops = FlopCounter::new();
    let mut g = TripletMatrix::new(mna.dim(), mna.dim());
    mna.stamp_linear_g(&mut g);
    for b in mna.nonlinear_bindings() {
        let geq = b.device.equivalent_conductance(bias, &mut flops) + 1e-12;
        MnaSystem::stamp_conductance(&mut g, b.var_plus, b.var_minus, geq);
    }
    g.to_csr()
}

/// Prints a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (cell, w) in cells.iter().zip(widths.iter()) {
        line.push_str(&format!("{cell:>w$}  ", w = w));
    }
    println!("{}", line.trim_end());
}

/// Prints a rule matching the given column widths.
pub fn rule(widths: &[usize]) {
    let total: usize = widths.iter().map(|w| w + 2).sum();
    println!("{}", "-".repeat(total));
}

/// The SWEC configuration used by every comparison (paper defaults).
pub fn swec_options() -> SwecOptions {
    SwecOptions::default()
}

/// The MLA configuration used by Table I (cold-start current stepping per
/// \[1\]).
pub fn mla_options() -> MlaOptions {
    MlaOptions::default()
}

/// The SPICE3-like Newton configuration of Figure 8(c).
pub fn spice3_options() -> NrOptions {
    NrOptions::spice3()
}

/// SWEC configured for *fixed-step* transients (error control disabled):
/// used when comparing against the fixed-step Newton baselines so both
/// engines do exactly the same number of accepted steps.
pub fn swec_fixed_step_options() -> SwecOptions {
    SwecOptions {
        epsilon: 1e9,
        dv_max: f64::INFINITY,
        taylor_extrapolation: false,
        ..SwecOptions::default()
    }
}

/// Formats a flop count in engineering notation.
pub fn eng(x: f64) -> String {
    if x == 0.0 {
        return "0".into();
    }
    let mag = x.abs().log10().floor() as i32;
    match mag {
        0..=2 => format!("{x:.0}"),
        3..=5 => format!("{:.1}k", x / 1e3),
        6..=8 => format!("{:.1}M", x / 1e6),
        _ => format!("{:.2e}", x),
    }
}

/// One Table-I style measurement: engine name, flops, solves, iterations.
#[derive(Debug, Clone)]
pub struct CostRow {
    /// Engine label.
    pub engine: &'static str,
    /// Total floating point operations.
    pub flops: u64,
    /// Linear solves.
    pub solves: u64,
    /// Nonlinear iterations.
    pub iterations: u64,
}

impl CostRow {
    /// Extracts the cost columns from engine statistics.
    pub fn from_stats(engine: &'static str, stats: &EngineStats) -> Self {
        CostRow {
            engine,
            flops: stats.flops.total(),
            solves: stats.linear_solves,
            iterations: stats.iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eng_formatting() {
        assert_eq!(eng(0.0), "0");
        assert_eq!(eng(123.0), "123");
        assert_eq!(eng(45_600.0), "45.6k");
        assert_eq!(eng(7_890_000.0), "7.9M");
    }

    #[test]
    fn cost_row_extraction() {
        let mut s = EngineStats::new();
        s.linear_solves = 5;
        s.iterations = 7;
        s.flops.add(100);
        let r = CostRow::from_stats("swec", &s);
        assert_eq!(r.engine, "swec");
        assert_eq!(r.flops, 100);
        assert_eq!(r.solves, 5);
        assert_eq!(r.iterations, 7);
    }
}
