//! Triangular-solve kernel report: scalar reference vs blocked
//! (supernodal-panel) `solve_into`, batched `solve_many_into` vs `k`
//! independent solves, and the scalar-vs-blocked refactor, on the Table I
//! RTD mesh family under every fill ordering.
//!
//! Run with `cargo run --release -p nanosim-bench --bin report_solve`.
//!
//! The blocked path's single-RHS win concentrates where the factor
//! carries wide low-padding supernodes (the banded natural/RCM factors);
//! AMD mesh factors — already ~50% smaller thanks to supervariable mass
//! elimination — stay near parity on one right-hand side and win through
//! the blocked refactor and the batched multi-RHS path instead.

use nanosim::prelude::*;
use nanosim_numeric::solve::{LinearSolver, PrecisionMode, SparseLuSolver};
use nanosim_numeric::sparse::{BatchedLu, CsrMatrix, OrderingChoice, PivotStrategy, SparseLu};
use std::hint::black_box;
use std::time::Instant;

fn time<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    // One warm-up pass, then the best of three measured passes (seconds
    // per rep) to damp scheduler noise on shared hosts.
    f();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() / reps as f64);
    }
    best
}

const K: usize = 8;

fn main() {
    println!("triangular-solve kernel report (RTD mesh family, k = {K} batched RHS)");
    println!(
        "{:>7} {:>8} {:>7} {:>9} {:>10} {:>10} {:>8} {:>8} {:>8} {:>10} {:>10} {:>8} {:>9}",
        "mesh",
        "ordering",
        "nnz_lu",
        "sn(cols)",
        "scalar_us",
        "blocked_us",
        "speedup",
        "slv64_us",
        "mixed_us",
        "singles_us",
        "batched_us",
        "speedup",
        "refac_spd"
    );
    for n in [10usize, 20, 40] {
        let a = nanosim_bench::table1_mesh_matrix(n, 0.8);
        let dim = a.rows();
        let reps = if n >= 40 { 200 } else { 1000 };
        for ordering in [
            OrderingChoice::Natural,
            OrderingChoice::Rcm,
            OrderingChoice::Amd,
        ] {
            let mut lu = SparseLu::factor_ordered(
                &a,
                ordering,
                PivotStrategy::default(),
                &mut FlopCounter::new(),
            )
            .expect("factors");
            // Force the panel kernels on so the blocked columns always
            // measure them; the `gate` column says whether production
            // routes this factor through them by default (factors under
            // 512 unknowns keep the scalar hot path).
            let default_gate = lu.blocked_kernels();
            lu.set_blocked_kernels(true);
            let b: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.37).sin()).collect();
            let bk: Vec<f64> = (0..dim * K).map(|i| (i as f64 * 0.11).cos()).collect();
            let (mut x, mut w) = (Vec::new(), Vec::new());
            let mut flops = FlopCounter::new();

            let t_scalar = time(reps, || {
                lu.solve_into_scalar(black_box(&b), &mut x, &mut w, &mut flops)
                    .unwrap();
            });
            let t_blocked = time(reps, || {
                lu.solve_into(black_box(&b), &mut x, &mut w, &mut flops)
                    .unwrap();
            });
            let t_singles = time(reps, || {
                for j in 0..K {
                    lu.solve_into(
                        black_box(&bk[j * dim..(j + 1) * dim]),
                        &mut x,
                        &mut w,
                        &mut flops,
                    )
                    .unwrap();
                }
            });
            let t_batched = time(reps, || {
                lu.solve_many_into(black_box(&bk), K, &mut x, &mut w, &mut flops)
                    .unwrap();
            });

            // Solver-level rows (both include the per-call tolerant
            // refactor every engine solve pays): the f64 baseline, then
            // mixed precision — f32 panel sweeps polished by f64 iterative
            // refinement. Gated exactly like CI's bench smoke — healthy
            // meshes must refine to 1e-12 of scale without ever falling
            // back to the f64 path.
            let mut slv64 = SparseLuSolver::with_ordering(ordering);
            let mut x64 = Vec::new();
            let t_slv64 = time(reps, || {
                slv64
                    .solve_into(black_box(&a), &b, &mut x64, &mut flops)
                    .unwrap();
            });
            let mut mixed = SparseLuSolver::with_ordering(ordering);
            mixed.set_precision(PrecisionMode::Mixed);
            let mut xm = Vec::new();
            let t_mixed = time(reps, || {
                mixed
                    .solve_into(black_box(&a), &b, &mut xm, &mut flops)
                    .unwrap();
            });
            let mstats = mixed.lu_stats();
            assert_eq!(
                mstats.precision_fallbacks,
                0,
                "mesh{n} {}: mixed precision fell back on a healthy mesh",
                lu.ordering_name()
            );
            lu.solve_into(&b, &mut x, &mut w, &mut flops).unwrap();
            let scale = x.iter().fold(1.0f64, |m, v| m.max(v.abs()));
            for (m, f) in xm.iter().zip(x.iter()) {
                assert!((m - f).abs() <= 1e-12 * scale, "mixed {m} vs f64 {f}");
            }

            let mut a2 = a.clone();
            for (i, v) in a2.values_mut().iter_mut().enumerate() {
                *v *= 1.0 + 1e-4 * ((i % 7) as f64);
            }
            let mut lu_b = lu.clone();
            let mut lu_s = lu.clone();
            let t_ref_blocked = time(reps, || {
                lu_b.refactor(black_box(&a2), &mut flops).unwrap();
            });
            let t_ref_scalar = time(reps, || {
                lu_s.refactor_scalar(black_box(&a2), &mut flops).unwrap();
            });

            println!(
                "{:>5}x{:<2} {:>8} {:>7} {:>4}({:>4}) {:>10.2} {:>10.2} {:>7.2}x {:>8.2} {:>8.2} {:>10.2} {:>10.2} {:>7.2}x {:>8.2}x  {}",
                n,
                n,
                lu.ordering_name(),
                lu.nnz(),
                lu.supernode_count(),
                lu.supernode_cols(),
                t_scalar * 1e6,
                t_blocked * 1e6,
                t_scalar / t_blocked,
                t_slv64 * 1e6,
                t_mixed * 1e6,
                t_singles * 1e6,
                t_batched * 1e6,
                t_singles / t_batched,
                t_ref_scalar / t_ref_blocked,
                if default_gate { "gate:blocked" } else { "gate:scalar" },
            );
        }
    }

    // Ensemble-batched factorization: per-path factor flops of one
    // interleaved k-lane batch vs a shared solver re-refactoring at every
    // path switch over a T-step window (how per-path parameter spread ran
    // before `BatchedLu`).
    const T_STEPS: u64 = 100;
    println!("\nbatched factorization ({K} lanes, {T_STEPS}-step window, natural ordering)");
    println!(
        "{:>7} {:>14} {:>16} {:>8} {:>12} {:>12}",
        "mesh", "batched/path", "per-switch/path", "ratio", "batched_us", "k_refac_us"
    );
    for n in [20usize, 40] {
        let a = nanosim_bench::table1_mesh_matrix(n, 0.8);
        let reps = if n >= 40 { 50 } else { 200 };
        let lanes: Vec<CsrMatrix> = (0..K)
            .map(|r| {
                let mut m = a.clone();
                for (i, v) in m.values_mut().iter_mut().enumerate() {
                    *v *= 1.0 + 1e-3 * (((i + r) % 5) as f64);
                }
                m
            })
            .collect();
        let lane_refs: Vec<&CsrMatrix> = lanes.iter().collect();
        let mut fc = FlopCounter::new();
        BatchedLu::factor_ordered(
            &lane_refs,
            OrderingChoice::Natural,
            PivotStrategy::default(),
            &mut fc,
        )
        .expect("factors");
        let per_path_batched = fc.total() as f64 / K as f64;
        let mut fs = FlopCounter::new();
        let mut shared = SparseLu::factor_ordered(
            &lanes[0],
            OrderingChoice::Natural,
            PivotStrategy::default(),
            &mut fs,
        )
        .expect("factors");
        let before = fs.total();
        shared.refactor(&lanes[1], &mut fs).expect("refactors");
        let r_switch = fs.total() - before;
        let per_path_scalar = (T_STEPS * r_switch) as f64;

        let mut flops = FlopCounter::new();
        let t_batch = time(reps, || {
            BatchedLu::factor_ordered(
                &lane_refs,
                OrderingChoice::Natural,
                PivotStrategy::default(),
                &mut flops,
            )
            .expect("factors");
        });
        let mut lu_sw = shared.clone();
        let t_k_refac = time(reps, || {
            for m in &lanes {
                lu_sw.refactor(black_box(m), &mut flops).expect("refactors");
            }
        });
        println!(
            "{:>5}x{:<2} {:>14.0} {:>16.0} {:>7.1}x {:>12.2} {:>12.2}",
            n,
            n,
            per_path_batched,
            per_path_scalar,
            per_path_scalar / per_path_batched,
            t_batch * 1e6,
            t_k_refac * 1e6,
        );
    }
}
