//! Figure 8 reproduction: the FET-RTD inverter transient simulated by
//! (b) SWEC, (c) a SPICE3-like plain Newton engine, (d) the ACES-like PWL
//! engine — plus the NDR-stress variant on which plain Newton visibly
//! fails while SWEC completes.

use nanosim::prelude::*;
use nanosim_bench::{row, rule, spice3_options, swec_options};

fn sample_table(result_names: &[(&str, &Waveform)]) {
    let widths: Vec<usize> = std::iter::once(8)
        .chain(result_names.iter().map(|_| 12))
        .collect();
    let mut header = vec!["t (ns)".to_string()];
    header.extend(result_names.iter().map(|(n, _)| n.to_string()));
    row(&header, &widths);
    rule(&widths);
    for t_ns in [2.0, 6.0, 10.0, 25.0, 45.0, 49.5, 52.0, 70.0, 95.0] {
        let mut cells = vec![format!("{t_ns:.1}")];
        for (_, w) in result_names {
            cells.push(format!("{:.3}", w.value_at(t_ns * 1e-9)));
        }
        row(&cells, &widths);
    }
}

fn main() -> Result<(), SimError> {
    let circuit = nanosim::workloads::fet_rtd_inverter();
    let (tstep, tstop) = (0.2e-9, 100e-9);
    let mut sim = Simulator::new(circuit.clone())?;

    let swec = sim.run(Analysis::transient(tstep, tstop).options(swec_options()))?;
    let nr = NrEngine::new(spice3_options()).run_transient(&circuit, tstep, tstop)?;
    let pwl = sim.run(Analysis::pwl_transient(tstep, tstop))?;

    let s_out = swec.curve("out").expect("node exists");
    let n_out = nr.result.waveform("out").expect("node exists");
    let p_out = pwl.curve("out").expect("node exists");
    let vin = swec.curve("in").expect("node exists");

    println!("Figure 8: FET-RTD inverter (input 0 <-> 5 V pulse)\n");
    sample_table(&[
        ("Vin", &vin),
        ("SWEC", &s_out),
        ("NR", &n_out),
        ("PWL", &p_out),
    ]);
    println!(
        "\nSWEC: {} accepted steps, {} rejected | NR failures: {} | PWL-vs-SWEC rms {:.3} V",
        swec.stats.steps,
        swec.stats.rejected_steps,
        nr.failures.len(),
        p_out.rms_difference(&s_out)
    );

    // The stress variant: Figure 8(c)'s "SPICE3 fails to converge".
    println!("\nNDR-stress variant (sharp RTDs, Vdd = 4 V, bistable divider):");
    let stress = nanosim::workloads::fet_rtd_inverter_stress();
    let nr_s = NrEngine::new(spice3_options()).run_transient(&stress, 0.5e-9, 30e-9)?;
    println!(
        "  SPICE3-like NR: {} non-converged steps out of {}",
        nr_s.failures.len(),
        nr_s.result.stats.steps
    );
    for (t, outcome) in nr_s.failures.iter().take(3) {
        println!("    t = {:.2} ns: {:?}", t * 1e9, outcome);
    }
    let swec_s =
        Simulator::new(stress)?.run(Analysis::transient(0.5e-9, 30e-9).options(swec_options()))?;
    let out_s = swec_s.curve("out").expect("node exists");
    println!(
        "  SWEC: completes cleanly, out(25 ns) = {:.3} V, {} steps",
        out_s.value_at(25e-9),
        swec_s.stats.steps
    );
    assert!(
        !nr_s.failures.is_empty(),
        "the stress deck must expose the NDR failure"
    );
    println!("\n\"SPICE3 fails to converge to the correct solution. SWEC generates");
    println!("more accurate response without needing to solve set of non linear");
    println!("equations\" (paper §5.2).");
    Ok(())
}
