//! Figure 7 reproduction: DC I-V characteristics captured by SWEC —
//! (a) the RTD divider with the MLA re-implementation overlaid,
//! (b) the nanowire divider.

use nanosim::prelude::*;
use nanosim_bench::{mla_options, row, rule, swec_options};

fn main() -> Result<(), SimError> {
    // (a) RTD.
    let mut sim = Simulator::new(nanosim::workloads::rtd_divider(50.0))?;
    let swec = sim.run(Analysis::dc_sweep("V1", 0.0, 5.0, 0.05).options(swec_options()))?;
    let mla = sim.run(Analysis::mla_dc_sweep("V1", 0.0, 5.0, 0.05).options(mla_options()))?;
    let s_iv = swec.curve("I(X1)").expect("recorded");
    let m_iv = mla.curve("I(X1)").expect("recorded");

    println!("Figure 7(a): RTD I-V (SWEC vs our MLA implementation)\n");
    let widths = [8, 16, 16, 12];
    row(
        &[
            "V1".into(),
            "I_swec (mA)".into(),
            "I_mla (mA)".into(),
            "diff (uA)".into(),
        ],
        &widths,
    );
    rule(&widths);
    let mut v = 0.0;
    while v <= 5.0 + 1e-9 {
        let a = s_iv.value_at(v);
        let b = m_iv.value_at(v);
        row(
            &[
                format!("{v:.2}"),
                format!("{:.4}", a * 1e3),
                format!("{:.4}", b * 1e3),
                format!("{:+.2}", (a - b) * 1e6),
            ],
            &widths,
        );
        v += 0.25;
    }
    let peak = m_iv.peak().expect("peak").1;
    let rms = s_iv.rms_difference(&m_iv);
    println!(
        "\nagreement: rms {:.3e} A = {:.2}% of the peak current",
        rms,
        100.0 * rms / peak
    );
    println!("\"our approach is able to capture the negative resistance region of the");
    println!("I-V curve very closely and accurately\" (paper §5.1)\n");

    // (b) nanowire.
    let mut sim = Simulator::new(nanosim::workloads::nanowire_divider(100.0))?;
    let nw = sim.run(Analysis::dc_sweep("V1", -2.5, 2.5, 0.05).options(swec_options()))?;
    let nw_iv = nw.curve("I(W1)").expect("recorded");
    println!("Figure 7(b): nanowire I-V by SWEC");
    let widths = [8, 14];
    row(&["V1".into(), "I (uA)".into()], &widths);
    rule(&widths);
    let mut v: f64 = -2.5;
    while v <= 2.5 + 1e-9 {
        row(
            &[format!("{v:.2}"), format!("{:.3}", nw_iv.value_at(v) * 1e6)],
            &widths,
        );
        v += 0.5;
    }
    println!("\nthe curve \"conforms well to the I-V characteristics of a carbon");
    println!("nanotube, indicating that SWEC is able to simulate the circuits");
    println!("involving nanowires\" (paper §5.1).");
    Ok(())
}
