//! Figure 2 reproduction: Newton–Raphson's dependence on the initial
//! guess. One start converges; another oscillates between two points —
//! first on the textbook cubic, then on the RTD current equation itself.

use nanosim::numeric::roots::{newton_raphson, NewtonOptions, NewtonOutcome};
use nanosim::prelude::*;

fn describe(label: &str, trace: &nanosim::numeric::roots::NewtonTrace) {
    print!("{label}: ");
    match &trace.outcome {
        NewtonOutcome::Converged { root, iterations } => {
            println!("converged to {root:.6} in {iterations} iterations");
        }
        NewtonOutcome::Oscillating { cycle } => {
            println!(
                "OSCILLATES between {}",
                cycle
                    .iter()
                    .map(|x| format!("{x:.4}"))
                    .collect::<Vec<_>>()
                    .join(" <-> ")
            );
        }
        other => println!("{other:?}"),
    }
    let shown: Vec<String> = trace
        .iterates
        .iter()
        .take(8)
        .map(|x| format!("{x:.4}"))
        .collect();
    println!("  iterates: {} ...", shown.join(" -> "));
}

fn main() {
    println!("Figure 2: Newton-Raphson and the initial guess\n");
    println!("textbook cubic f(x) = x^3 - 2x + 2:");
    let f = |x: f64| x.powi(3) - 2.0 * x + 2.0;
    let df = |x: f64| 3.0 * x * x - 2.0;
    let mut flops = FlopCounter::new();
    let bad = newton_raphson(f, df, 0.0, NewtonOptions::default(), &mut flops).unwrap();
    describe("  x0 = 0  (the paper's x0)", &bad);
    let good = newton_raphson(f, df, -2.0, NewtonOptions::default(), &mut flops).unwrap();
    describe("  x0 = -2 (the paper's x0')", &good);

    println!("\nRTD current equation I(v) = I_target solved by Newton:");
    let rtd = Rtd::sharp_valley();
    let target = 1e-3; // between valley and peak current: 3 intersections
    let g = {
        let rtd = rtd.clone();
        move |v: f64| {
            let mut f = FlopCounter::new();
            rtd.current(v, &mut f) - target
        }
    };
    let dg = {
        let rtd = rtd.clone();
        move |v: f64| {
            let mut f = FlopCounter::new();
            rtd.differential_conductance(v, &mut f)
        }
    };
    let opts = NewtonOptions {
        max_iter: 60,
        ..NewtonOptions::default()
    };
    let bad = newton_raphson(&g, &dg, 1.9, opts, &mut flops).unwrap();
    describe("  v0 = 1.9 V (flat valley side)", &bad);
    let good = newton_raphson(&g, &dg, 1.0, opts, &mut flops).unwrap();
    describe("  v0 = 1.0 V (steep PDR1 side)", &good);

    let good_root = match &good.outcome {
        NewtonOutcome::Converged { root, .. } => *root,
        other => panic!("the good guess must converge, got {other:?}"),
    };
    assert!(
        good_root < 1.2,
        "good guess lands on the physical PDR1 branch, got {good_root}"
    );
    match &bad.outcome {
        NewtonOutcome::Converged { root, .. } => {
            println!(
                "\nthe bad guess wanders (note the excursions above) and lands on a \
                 DIFFERENT branch at {root:.3} V — the paper's \"false convergence\"."
            );
            assert!((root - good_root).abs() > 0.5, "branches must differ");
        }
        other => {
            println!("\nthe bad guess fails outright: {other:?} — the paper's oscillation mode.");
        }
    }
    println!(
        "the good guess finds the physical PDR1 operating point at {good_root:.3} V directly."
    );
}
