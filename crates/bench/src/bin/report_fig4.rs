//! Figure 4 reproduction: the Schulman RTD I-V characteristics with the
//! PDR1 / NDR / PDR2 regions annotated, for both the paper's §5.2
//! parameter set and the sharp-valley rendering set.

use nanosim::prelude::*;
use nanosim_bench::{row, rule};

fn print_curve(label: &str, rtd: &Rtd, v_max: f64, step: f64) {
    let mut flops = FlopCounter::new();
    println!("{label}");
    let peak = rtd.peak();
    let valley = rtd.valley();
    if let (Some(p), Some(v)) = (&peak, &valley) {
        println!(
            "  peak {:.3} mA @ {:.2} V | valley {:.3} mA @ {:.2} V | PVR {:.2}",
            p.current * 1e3,
            p.voltage,
            v.current * 1e3,
            v.voltage,
            rtd.peak_to_valley_ratio().unwrap_or(f64::NAN)
        );
    }
    let widths = [8, 14, 10];
    row(&["V".into(), "J (mA)".into(), "region".into()], &widths);
    rule(&widths);
    let mut v = 0.0;
    while v <= v_max + 1e-9 {
        let i = rtd.current(v, &mut flops);
        row(
            &[
                format!("{v:.2}"),
                format!("{:.4}", i * 1e3),
                format!("{:?}", rtd.region(v)),
            ],
            &widths,
        );
        v += step;
    }
    println!();
}

fn main() {
    println!("Figure 4: RTD I-V characteristics (Schulman model, paper eq. 4)\n");
    print_curve(
        "paper §5.2 parameters (A=1e-4 B=2 C=1.5 D=0.3 n1=0.35 n2=0.0172 H=1.43e-8):",
        &Rtd::date2005(),
        6.0,
        0.4,
    );
    print_curve(
        "sharp-valley rendering set (all three regions within 0..4 V):",
        &Rtd::sharp_valley(),
        4.0,
        0.2,
    );
}
