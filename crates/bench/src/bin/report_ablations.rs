//! Ablation report for the design choices DESIGN.md calls out:
//! Geq Taylor extrapolation (paper eq. 5) on/off, backward-Euler vs
//! trapezoidal, local-error vs paper-constraint step control, DC
//! non-iterative vs fixed point, MLA cold vs warm start, and the EM
//! integrator's convergence orders.

use nanosim::core::swec::StepControl;
use nanosim::prelude::*;
use nanosim::sde::convergence::{em_strong_order, em_weak_order};
use nanosim::sde::gbm::GeometricBrownianMotion;
use nanosim_bench::{eng, row, rule};
use nanosim_numeric::rng::Pcg64;

fn rtd_ramp(cap: f64) -> Circuit {
    let mut ckt = Circuit::new();
    let a = ckt.node("in");
    let b = ckt.node("mid");
    ckt.add_voltage_source(
        "V1",
        a,
        Circuit::GROUND,
        SourceWaveform::pwl(vec![(0.0, 0.0), (10e-9, 5.0), (20e-9, 5.0)]).expect("valid"),
    )
    .expect("fresh");
    ckt.add_resistor("R1", a, b, 50.0).expect("fresh");
    ckt.add_rtd("X1", b, Circuit::GROUND, Rtd::date2005())
        .expect("fresh");
    ckt.add_capacitor("C1", b, Circuit::GROUND, cap)
        .expect("fresh");
    ckt
}

fn main() -> Result<(), SimError> {
    let ckt = rtd_ramp(1e-12);
    let (tstep, tstop) = (0.1e-9, 20e-9);

    // Reference: tight-tolerance run (one session serves every variant).
    let mut sim = Simulator::new(ckt)?;
    let reference = sim.run(
        Analysis::transient(tstep / 4.0, tstop).options(SwecOptions {
            epsilon: 0.002,
            ..SwecOptions::default()
        }),
    )?;
    let ref_mid = reference.curve("mid").expect("node exists");

    println!("Ablation 1: SWEC transient variants on the RTD ramp (20 ns)\n");
    let widths = [26, 9, 10, 12, 12];
    row(
        &[
            "variant".into(),
            "steps".into(),
            "rejected".into(),
            "flops".into(),
            "rms vs ref".into(),
        ],
        &widths,
    );
    rule(&widths);
    let variants: Vec<(&str, SwecOptions)> = vec![
        ("taylor on (default)", SwecOptions::default()),
        (
            "taylor off",
            SwecOptions {
                taylor_extrapolation: false,
                ..SwecOptions::default()
            },
        ),
        (
            "trapezoidal",
            SwecOptions {
                integration: IntegrationMethod::Trapezoidal,
                ..SwecOptions::default()
            },
        ),
        (
            "paper eq.11/12 control",
            SwecOptions {
                step_control: StepControl::PaperConstraints,
                ..SwecOptions::default()
            },
        ),
    ];
    for (name, opts) in variants {
        let r = sim.run(Analysis::transient(tstep, tstop).options(opts))?;
        let rms = r
            .curve("mid")
            .expect("node exists")
            .rms_difference(&ref_mid);
        row(
            &[
                name.into(),
                format!("{}", r.stats.steps),
                format!("{}", r.stats.rejected_steps),
                eng(r.stats.flops.total() as f64),
                format!("{rms:.4} V"),
            ],
            &widths,
        );
    }

    println!("\nAblation 2: DC modes on the RTD divider sweep (0..5 V, 10 mV)\n");
    let mut dc_sim = Simulator::new(nanosim::workloads::rtd_divider(50.0))?;
    let widths = [26, 9, 12, 12];
    row(
        &[
            "mode".into(),
            "points".into(),
            "solves".into(),
            "flops".into(),
        ],
        &widths,
    );
    rule(&widths);
    for (name, mode) in [
        ("non-iterative (paper)", DcMode::NonIterative),
        ("fixed point", DcMode::FixedPoint),
    ] {
        let r = dc_sim.run(
            Analysis::dc_sweep("V1", 0.0, 5.0, 0.01).options(SwecOptions {
                dc_mode: mode,
                ..SwecOptions::default()
            }),
        )?;
        row(
            &[
                name.into(),
                format!("{}", r.points()),
                format!("{}", r.stats.linear_solves),
                eng(r.stats.flops.total() as f64),
            ],
            &widths,
        );
    }

    println!("\nAblation 3: MLA cold-start (per [1]) vs warm continuation\n");
    let widths = [26, 12, 12];
    row(&["variant".into(), "flops".into(), "iters".into()], &widths);
    rule(&widths);
    for (name, opts) in [
        ("cold start + ramp", MlaOptions::default()),
        ("warm continuation", MlaOptions::warm_start()),
    ] {
        let r = dc_sim.run(Analysis::mla_dc_sweep("V1", 0.0, 5.0, 0.05).options(opts))?;
        row(
            &[
                name.into(),
                eng(r.stats.flops.total() as f64),
                format!("{}", r.stats.iterations),
            ],
            &widths,
        );
    }

    println!("\nAblation 4: Euler–Maruyama convergence orders (GBM reference)\n");
    let gbm = GeometricBrownianMotion::new(2.0, 1.0);
    let mut rng = Pcg64::seed_from_u64(42);
    let strong = em_strong_order(&gbm, 1.0, 1.0, 512, 5, 300, &mut rng);
    let weak = em_weak_order(
        &GeometricBrownianMotion::new(2.0, 0.1),
        1.0,
        1.0,
        256,
        4,
        20_000,
        &mut rng,
    );
    println!("  strong order: {:.2}  (theory: 0.5)", strong.order);
    println!("  weak order:   {:.2}  (theory: 1.0)", weak.order);
    for p in &strong.points {
        println!("    strong err @ dt={:.1e}: {:.3e}", p.dt, p.error);
    }
    Ok(())
}
