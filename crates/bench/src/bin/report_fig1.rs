//! Figure 1 reproduction: (a) the RTT's multi-peak collector I-V and
//! (b) the CNT quantum wire's staircase I-V / quantized conductance.

use nanosim::devices::constants::QUANTUM_CONDUCTANCE;
use nanosim::prelude::*;
use nanosim_bench::{row, rule};

fn main() {
    let mut flops = FlopCounter::new();

    println!("Figure 1(a): RTT collector current vs V_CE (multi-peak staircase)");
    let rtt = Rtt::three_peak();
    let peaks = rtt.peak_voltages();
    println!(
        "resonant peaks at: {}",
        peaks
            .iter()
            .map(|v| format!("{v:.2} V"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let widths = [8, 14, 14];
    row(
        &["V_CE".into(), "I_C (mA)".into(), "gd (mS)".into()],
        &widths,
    );
    rule(&widths);
    let mut v = 0.0;
    while v <= 5.0 + 1e-9 {
        let i = rtt.current(v, &mut flops);
        let g = rtt.differential_conductance(v, &mut flops);
        row(
            &[
                format!("{v:.2}"),
                format!("{:.4}", i * 1e3),
                format!("{:.4}", g * 1e3),
            ],
            &widths,
        );
        v += 0.25;
    }
    assert!(peaks.len() >= 3, "Figure 1(a) requires >= 3 peaks");

    println!("\ngate control (collector current at V_CE = first peak):");
    let mut gated = Rtt::three_peak();
    let v_probe = peaks[0];
    for vbe in [0.0, 0.4, 0.8, 1.2, 1.6] {
        gated.set_vbe(vbe);
        println!(
            "  V_BE = {vbe:.1} V -> I_C = {:.4} mA (gate factor {:.3})",
            gated.current(v_probe, &mut flops) * 1e3,
            gated.gate_factor(vbe)
        );
    }

    println!("\nFigure 1(b): CNT I-V and conductance staircase (G0 = 2e^2/h)");
    let wire = Nanowire::metallic_cnt();
    let widths = [8, 14, 14, 12];
    row(
        &["V".into(), "I (uA)".into(), "G (uS)".into(), "G/G0".into()],
        &widths,
    );
    rule(&widths);
    let mut v: f64 = -2.5;
    while v <= 2.5 + 1e-9 {
        let i = wire.current(v, &mut flops);
        let g = wire.differential_conductance(v, &mut flops);
        row(
            &[
                format!("{v:.2}"),
                format!("{:.3}", i * 1e6),
                format!("{:.3}", g * 1e6),
                format!("{:.2}", g / QUANTUM_CONDUCTANCE),
            ],
            &widths,
        );
        v += 0.25;
    }
    println!("\nconductance plateaus sit at integer multiples of G0 — the");
    println!("\"staircase characteristics ... confirms that the carbon nanotubes");
    println!("behave as quantum wires\" (paper §2.1.1).");
}
