//! Figure 9 reproduction: the RTD D-flip-flop. The data input switches at
//! t = 300 ns (clock low); the output follows at the rising clock edge at
//! t = 350 ns.

use nanosim::prelude::*;
use nanosim_bench::{row, rule, swec_options};

fn main() -> Result<(), SimError> {
    let circuit = nanosim::workloads::rtd_d_flip_flop();
    let result = Simulator::new(circuit)?
        .run(Analysis::transient(0.2e-9, 500e-9).options(swec_options()))?;
    let out = result.curve("out").expect("node exists");
    let clk = result.curve("clk").expect("node exists");
    let d = result.curve("d").expect("node exists");

    println!("Figure 9: RTD D-flip-flop (clock period 100 ns, edges at 50+100k ns)\n");
    let widths = [9, 10, 10, 10];
    row(
        &[
            "t (ns)".into(),
            "clk (V)".into(),
            "D (V)".into(),
            "Q (V)".into(),
        ],
        &widths,
    );
    rule(&widths);
    for t_ns in [
        40.0, 70.0, 120.0, 170.0, 220.0, 270.0, 290.0, 310.0, 340.0, 352.0, 370.0, 420.0, 470.0,
    ] {
        let t = t_ns * 1e-9;
        row(
            &[
                format!("{t_ns:.0}"),
                format!("{:.2}", clk.value_at(t)),
                format!("{:.2}", d.value_at(t)),
                format!("{:.2}", out.value_at(t)),
            ],
            &widths,
        );
    }

    let q_cycle2 = out.value_at(270e-9); // clock high, D = 0
    let q_cycle3 = out.value_at(370e-9); // clock high, D = 1 (after 300 ns)
    println!("\nlatched clock-high levels: D=0 -> Q = {q_cycle2:.2} V, D=1 -> Q = {q_cycle3:.2} V");
    println!("D switches at 300 ns; Q changes at the 350 ns rising edge (paper: \"the");
    println!("output waveform switches at the rising edge of clock at t = 350ns\")");
    assert!(
        q_cycle3 > q_cycle2 + 1.0,
        "the latch must sample the new data at the 350 ns edge"
    );
    // And not before: during 300..350 ns (clock low) the output is unchanged.
    assert!(out.value_at(320e-9).abs() < 0.5);
    println!("\ncost: {}", result.stats);
    Ok(())
}
