//! Fill-reducing-ordering report: LU fill and factor/refactor work under
//! natural, RCM and AMD orderings on the Table I `rtd_mesh_n` family.
//!
//! For each mesh size the table shows the MNA dimension, `nnz(A)`, the
//! stored `nnz(L + U)` per ordering with its fill ratio and reduction vs
//! natural order, and the factor/refactor flops a DC sweep through the
//! session API actually spends — the whole-pipeline view of what the
//! ordering buys (every full factor *and* every values-only refactor
//! touches `nnz_lu` entries).

use nanosim::prelude::*;
use nanosim_bench::{row, rule};

fn sweep_stats(n: usize, ordering: OrderingChoice) -> (usize, EngineStats) {
    let ckt = nanosim::workloads::rtd_mesh_n(n);
    let mut sim = Simulator::with_options(
        ckt,
        SimOptions {
            ordering,
            ..Default::default()
        },
    )
    .expect("assembles");
    let ds = sim
        .run(Analysis::dc_sweep("V1", 0.0, 1.0, 0.1))
        .expect("sweep runs");
    (
        MnaSystem::new(sim.circuit()).expect("assembles").dim(),
        ds.stats.clone(),
    )
}

fn main() {
    println!("Fill-reducing ordering on the Table I rtd_mesh_n family");
    println!("(11-point DC sweep per row; flops split into factor vs refactor)\n");
    let widths = [7usize, 9, 9, 9, 7, 9, 13, 13];
    row(
        &[
            "mesh".into(),
            "dim".into(),
            "ordering".into(),
            "nnz_lu".into(),
            "fill".into(),
            "vs nat".into(),
            "factor flops".into(),
            "refac flops".into(),
        ],
        &widths,
    );
    rule(&widths);
    for n in [10usize, 20, 40] {
        let mut natural_nnz = 0u64;
        for ordering in [
            OrderingChoice::Natural,
            OrderingChoice::Rcm,
            OrderingChoice::Amd,
        ] {
            let (dim, stats) = sweep_stats(n, ordering);
            if ordering == OrderingChoice::Natural {
                natural_nnz = stats.nnz_lu;
            }
            let delta = if natural_nnz > 0 {
                format!(
                    "{:+.1}%",
                    100.0 * (stats.nnz_lu as f64 - natural_nnz as f64) / natural_nnz as f64
                )
            } else {
                "-".into()
            };
            row(
                &[
                    format!("{n}x{n}"),
                    dim.to_string(),
                    ordering.name().into(),
                    stats.nnz_lu.to_string(),
                    format!("{:.2}x", stats.fill_ratio),
                    delta,
                    stats.factor_flops.to_string(),
                    stats.refactor_flops.to_string(),
                ],
                &widths,
            );
        }
        rule(&widths);
    }
    println!(
        "\nAuto (the session default) picks AMD at dim >= {} and natural below.",
        OrderingChoice::AUTO_AMD_THRESHOLD
    );
}
