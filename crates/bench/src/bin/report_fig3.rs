//! Figure 3 reproduction: equivalent conductance per the piecewise-linear
//! model (segment slope, negative in NDR) versus the step-wise model (I/V
//! secant, always positive).

use nanosim::circuit::element::SharedDevice;
use nanosim::core::pwl::PwlDeviceTable;
use nanosim::prelude::*;
use nanosim_bench::{row, rule};
use std::sync::Arc;

fn main() {
    let rtd = Rtd::date2005();
    let peak = rtd.peak().expect("peak");
    let valley = rtd.valley().expect("valley");
    let dev: SharedDevice = Arc::new(rtd);
    let table = PwlDeviceTable::tabulate(&dev, -1.0, 6.0, 300);

    println!("Figure 3: PWL segment conductance vs SWEC equivalent conductance");
    println!(
        "RTD peak at {:.2} V, valley at {:.2} V\n",
        peak.voltage, valley.voltage
    );
    let widths = [8, 16, 16, 10];
    row(
        &[
            "V".into(),
            "g_pwl (mS)".into(),
            "Geq_swec (mS)".into(),
            "region".into(),
        ],
        &widths,
    );
    rule(&widths);
    let mut flops = FlopCounter::new();
    let mut negative_seen = 0usize;
    let mut v = 0.25;
    while v <= 6.0 + 1e-9 {
        let g_pwl = table.segment_conductance(v);
        let g_swec = dev.equivalent_conductance(v, &mut flops);
        let region = if v <= peak.voltage {
            "PDR1"
        } else if v < valley.voltage.min(6.0) {
            "NDR"
        } else {
            "PDR2"
        };
        if g_pwl < 0.0 {
            negative_seen += 1;
        }
        assert!(g_swec > 0.0, "SWEC conductance must stay positive");
        row(
            &[
                format!("{v:.2}"),
                format!("{:+.4}", g_pwl * 1e3),
                format!("{:+.4}", g_swec * 1e3),
                region.into(),
            ],
            &widths,
        );
        v += 0.25;
    }
    println!("\n{negative_seen} sampled points have NEGATIVE PWL conductance; SWEC has none.");
    println!("That sign difference is the NDR problem (paper §3.2, Figure 3).");
}
