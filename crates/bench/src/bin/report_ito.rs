//! Equation (15)/(16) reproduction: the Ito and Stratonovich
//! discretizations of the stochastic integral give markedly different
//! answers, and the mismatch does not vanish as dt -> 0.

use nanosim::sde::ito::{ito_w_dw, ito_w_dw_exact, stratonovich_w_dw, stratonovich_w_dw_exact};
use nanosim::sde::wiener::WienerPath;
use nanosim_bench::{row, rule};
use nanosim_numeric::rng::Pcg64;
use nanosim_numeric::stats::RunningStats;

fn main() {
    let horizon = 1.0;
    let paths = 3000;
    println!("eq. (15)/(16): Ito vs Stratonovich sums of  ∫ W dW  over [0, {horizon}]\n");
    let widths = [8, 12, 14, 14, 12];
    row(
        &[
            "N".into(),
            "dt".into(),
            "E[Ito]".into(),
            "E[Strat]".into(),
            "gap".into(),
        ],
        &widths,
    );
    rule(&widths);
    for &n in &[16usize, 64, 256, 1024] {
        let mut rng = Pcg64::seed_from_u64(1234 + n as u64);
        let mut ito = RunningStats::new();
        let mut strat = RunningStats::new();
        for _ in 0..paths {
            let p = WienerPath::generate(horizon, n, &mut rng);
            ito.push(ito_w_dw(&p));
            strat.push(stratonovich_w_dw(&p));
        }
        row(
            &[
                format!("{n}"),
                format!("{:.1e}", horizon / n as f64),
                format!("{:+.4}", ito.mean()),
                format!("{:+.4}", strat.mean()),
                format!("{:+.4}", strat.mean() - ito.mean()),
            ],
            &widths,
        );
    }
    rule(&widths);
    println!(
        "closed forms:  E[Ito] = 0,  E[Strat] = T/2 = {}\n",
        horizon / 2.0
    );
    println!("\"Even with Δt -> 0, the mismatch of the two equations does not go");
    println!("away\" (paper §4.2) — the gap stays T/2 at every refinement.\n");

    // Pathwise closed-form check on one fine path.
    let mut rng = Pcg64::seed_from_u64(7);
    let p = WienerPath::generate(horizon, 4096, &mut rng);
    println!("single fine path (N = 4096):");
    println!(
        "  Ito sum   {:+.5}  vs closed form (W(T)^2 - T)/2 = {:+.5}",
        ito_w_dw(&p),
        ito_w_dw_exact(&p)
    );
    println!(
        "  Strat sum {:+.5}  vs closed form  W(T)^2/2      = {:+.5}",
        stratonovich_w_dw(&p),
        stratonovich_w_dw_exact(&p)
    );
}
