//! `nanosim-serve` — JSON-lines front-end for the in-process simulation
//! service ([`nanosim::serve`]).
//!
//! Each stdin line is one request object (`submit`, `batch`, `status`,
//! `result`, `stats`, `evict`), each stdout line the matching response;
//! malformed input produces a structured error response, never a panic or
//! an early exit. See the protocol table in `nanosim_serve::proto`.
//!
//! ```text
//! nanosim-serve [options]
//!
//!   (no options)     serve requests from stdin until EOF
//!   --corpus <dir>   replay <dir>/requests.jsonl and compare volatile-
//!                    masked responses against <dir>/expected.jsonl
//!   --record <dir>   replay <dir>/requests.jsonl and rewrite
//!                    <dir>/expected.jsonl with the masked responses
//!   --chaos <dir>    replay <dir>/requests.jsonl through a service armed
//!                    with seeded stall/pivot faults, tight run budgets and
//!                    tiny admission limits; pass iff every line produces a
//!                    response (zero panics) and the `budget_exceeded` and
//!                    `shed` counters are both positive
//!   -h, --help       this text
//!
//! exit status: 0 ok, 1 corpus/chaos gate failure, 2 usage/io error
//! ```

use nanosim::core::Budget;
use nanosim::serve::{handle_line, mask_volatile, ServiceOptions, SimService};
use std::io::{BufRead, Write};
use std::path::Path;
use std::process::ExitCode;

fn usage() {
    eprintln!("usage: nanosim-serve [--corpus <dir> | --record <dir> | --chaos <dir>]");
}

/// Replays every request line through a fresh service and returns the
/// volatile-masked response lines.
fn replay(requests: &str) -> Vec<String> {
    let mut svc = SimService::new(ServiceOptions::default());
    requests
        .lines()
        .map(|line| mask_volatile(&handle_line(&mut svc, line)))
        .collect()
}

/// `--corpus`: masked responses must match `expected.jsonl` line for line.
fn check_corpus(dir: &Path) -> Result<bool, String> {
    let requests = std::fs::read_to_string(dir.join("requests.jsonl"))
        .map_err(|e| format!("{}: {e}", dir.join("requests.jsonl").display()))?;
    let expected = std::fs::read_to_string(dir.join("expected.jsonl"))
        .map_err(|e| format!("{}: {e}", dir.join("expected.jsonl").display()))?;
    let got = replay(&requests);
    let want: Vec<&str> = expected.lines().collect();
    let mut ok = true;
    if got.len() != want.len() {
        ok = false;
        println!(
            "corpus length mismatch: {} responses, {} expected",
            got.len(),
            want.len()
        );
    }
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        if g != w {
            ok = false;
            println!("line {}:\n  expected: {w}\n  got:      {g}", i + 1);
        }
    }
    if ok {
        println!("corpus ok: {} responses match", got.len());
    }
    Ok(ok)
}

/// `--record`: regenerate `expected.jsonl` from the current responses.
fn record_corpus(dir: &Path) -> Result<(), String> {
    let requests = std::fs::read_to_string(dir.join("requests.jsonl"))
        .map_err(|e| format!("{}: {e}", dir.join("requests.jsonl").display()))?;
    let mut out = replay(&requests).join("\n");
    out.push('\n');
    let path = dir.join("expected.jsonl");
    std::fs::write(&path, out).map_err(|e| format!("{}: {e}", path.display()))?;
    println!("recorded {}", path.display());
    Ok(())
}

/// `--chaos`: replay the corpus through a deliberately hostile service —
/// seeded solver faults on every run, a tight default budget, and admission
/// limits small enough to shed part of the corpus — and gate the robustness
/// contract: every request line yields a structured response (no panics),
/// at least one run dies on its budget, and at least one request is shed.
fn chaos_corpus(dir: &Path) -> Result<bool, String> {
    let requests = std::fs::read_to_string(dir.join("requests.jsonl"))
        .map_err(|e| format!("{}: {e}", dir.join("requests.jsonl").display()))?;
    let opts = ServiceOptions {
        budget: Budget::unlimited()
            .with_max_transient_steps(1)
            .with_deadline(std::time::Duration::from_millis(250)),
        max_deck_bytes: 64,
        chaos_seed: Some(0xC4A0_5EED),
        ..ServiceOptions::default()
    };
    let mut svc = SimService::new(opts);
    let mut panics = 0usize;
    let mut lines = 0usize;
    for line in requests.lines() {
        lines += 1;
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handle_line(&mut svc, line)));
        if outcome.is_err() {
            panics += 1;
            println!("line {lines} PANICKED: {line}");
        }
    }
    let s = svc.stats();
    println!(
        "chaos: {lines} requests, {panics} panics, shed {}, budget_exceeded {}, \
         deadline_timeouts {}, cancelled {}",
        s.shed, s.budget_exceeded, s.deadline_timeouts, s.cancelled
    );
    let ok = panics == 0 && s.shed > 0 && s.budget_exceeded > 0;
    if !ok {
        println!("chaos gate FAILED (need zero panics, shed > 0, budget_exceeded > 0)");
    }
    Ok(ok)
}

/// Interactive mode: one response line per request line until EOF.
fn serve_stdin() -> ExitCode {
    let mut svc = SimService::new(ServiceOptions::default());
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("nanosim-serve: stdin: {e}");
                return ExitCode::from(2);
            }
        };
        let response = handle_line(&mut svc, &line);
        if writeln!(out, "{response}")
            .and_then(|()| out.flush())
            .is_err()
        {
            // Reader hung up; nothing left to serve.
            return ExitCode::SUCCESS;
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut corpus: Option<(String, Mode)> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--corpus" | "--record" | "--chaos" => {
                let Some(dir) = args.next() else {
                    eprintln!("{arg} needs a directory");
                    usage();
                    return ExitCode::from(2);
                };
                let mode = match arg.as_str() {
                    "--record" => Mode::Record,
                    "--chaos" => Mode::Chaos,
                    _ => Mode::Check,
                };
                corpus = Some((dir, mode));
            }
            "-h" | "--help" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown option `{other}`");
                usage();
                return ExitCode::from(2);
            }
        }
    }
    match corpus {
        None => serve_stdin(),
        Some((dir, mode)) => {
            let dir = Path::new(&dir);
            let outcome = match mode {
                Mode::Record => record_corpus(dir).map(|()| true),
                Mode::Check => check_corpus(dir),
                Mode::Chaos => chaos_corpus(dir),
            };
            match outcome {
                Ok(true) => ExitCode::SUCCESS,
                Ok(false) => ExitCode::from(1),
                Err(msg) => {
                    eprintln!("nanosim-serve: {msg}");
                    ExitCode::from(2)
                }
            }
        }
    }
}

/// Corpus-directory operating mode.
#[derive(Clone, Copy)]
enum Mode {
    Check,
    Record,
    Chaos,
}
