//! §5 headline reproduction: "The experimental results show a 20-30 times
//! speedup comparing with existing simulators" — FLOP and wall-clock ratios
//! of SWEC against the MLA baseline on DC and transient workloads.

use nanosim::prelude::*;
use nanosim_bench::{eng, mla_options, row, rule, swec_fixed_step_options, swec_options};

fn main() -> Result<(), SimError> {
    println!("Headline speedup: SWEC vs MLA (SPICE-like augmented NR)\n");
    let widths = [24, 12, 12, 9, 12];
    row(
        &[
            "analysis".into(),
            "swec flops".into(),
            "mla flops".into(),
            "flops x".into(),
            "wall x".into(),
        ],
        &widths,
    );
    rule(&widths);

    // DC sweeps.
    for (name, ckt) in [
        ("dc: rtd divider", nanosim::workloads::rtd_divider(50.0)),
        ("dc: rtd chain x4", nanosim::workloads::rtd_chain(4)),
    ] {
        let mut sim = Simulator::new(ckt)?;
        let swec = sim.run(Analysis::dc_sweep("V1", 0.0, 5.0, 0.05).options(swec_options()))?;
        let mla = sim.run(Analysis::mla_dc_sweep("V1", 0.0, 5.0, 0.05).options(mla_options()))?;
        row(
            &[
                name.into(),
                eng(swec.stats.flops.total() as f64),
                eng(mla.stats.flops.total() as f64),
                format!(
                    "{:.0}x",
                    mla.stats.flops.total() as f64 / swec.stats.flops.total() as f64
                ),
                format!(
                    "{:.1}x",
                    mla.stats.elapsed.as_secs_f64() / swec.stats.elapsed.as_secs_f64()
                ),
            ],
            &widths,
        );
    }

    // Transient: RTD divider ramped through the NDR region.
    let mut ckt = Circuit::new();
    let a = ckt.node("in");
    let b = ckt.node("mid");
    ckt.add_voltage_source(
        "V1",
        a,
        Circuit::GROUND,
        SourceWaveform::pwl(vec![(0.0, 0.0), (10e-9, 5.0), (20e-9, 5.0)]).expect("valid"),
    )
    .expect("fresh");
    ckt.add_resistor("R1", a, b, 50.0).expect("fresh");
    ckt.add_rtd("X1", b, Circuit::GROUND, Rtd::date2005())
        .expect("fresh");
    ckt.add_capacitor("C1", b, Circuit::GROUND, 1e-13)
        .expect("fresh");

    // Both engines at the SAME fixed step so the per-step cost is what is
    // compared (SWEC's error control is a separate feature the Newton
    // baseline does not have).
    let mut sim = Simulator::new(ckt)?;
    let swec_tr =
        sim.run(Analysis::transient(0.05e-9, 20e-9).options(swec_fixed_step_options()))?;
    let mla_tr = sim.run(Analysis::mla_transient(0.05e-9, 20e-9).options(mla_options()))?;
    row(
        &[
            "tran: rtd ramp".into(),
            eng(swec_tr.stats.flops.total() as f64),
            eng(mla_tr.stats.flops.total() as f64),
            format!(
                "{:.1}x",
                mla_tr.stats.flops.total() as f64 / swec_tr.stats.flops.total() as f64
            ),
            format!(
                "{:.1}x",
                mla_tr.stats.elapsed.as_secs_f64() / swec_tr.stats.elapsed.as_secs_f64()
            ),
        ],
        &widths,
    );
    rule(&widths);
    println!(
        "\ntransient step counts: SWEC {} vs MLA {} (same fixed print step);",
        swec_tr.stats.steps, mla_tr.stats.steps
    );
    println!(
        "per accepted step: SWEC {:.0} flops, MLA {:.0} flops",
        swec_tr.stats.flops.total() as f64 / swec_tr.stats.steps as f64,
        mla_tr.stats.flops.total() as f64 / mla_tr.stats.steps as f64
    );
    println!("\npaper: \"over 20-30 times speedup over the SPICE-like simulator\"");
    println!("(DC ratios are dominated by MLA's per-point current-stepping ramp;");
    println!("transient ratios by its Newton iterations per accepted step — SWEC");
    println!("does exactly one linear solve per accepted step.)");
    Ok(())
}
