//! Table I reproduction: "Comparison of DC simulations performance" —
//! floating point operations needed by SWEC versus the MLA
//! re-implementation for DC analyses of several nano-circuits. The paper
//! reports a 20–30x advantage for SWEC; FLOPs are counted with identical
//! rules in both engines (sparse LU + device-model evaluations).

use nanosim::prelude::*;
use nanosim_bench::{eng, mla_options, row, rule, swec_options};

struct Workload {
    name: &'static str,
    circuit: Circuit,
    source: &'static str,
    start: f64,
    stop: f64,
    step: f64,
}

fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "rtd divider",
            circuit: nanosim::workloads::rtd_divider(50.0),
            source: "V1",
            start: 0.0,
            stop: 5.0,
            step: 0.05,
        },
        Workload {
            name: "nanowire divider",
            circuit: nanosim::workloads::nanowire_divider(100.0),
            source: "V1",
            start: -2.5,
            stop: 2.5,
            step: 0.05,
        },
        Workload {
            name: "rtd chain x4",
            circuit: nanosim::workloads::rtd_chain(4),
            source: "V1",
            start: 0.0,
            stop: 5.0,
            step: 0.05,
        },
        Workload {
            name: "rtd mesh 3x3",
            circuit: nanosim::workloads::rtd_mesh(3),
            source: "V1",
            start: 0.0,
            stop: 5.0,
            step: 0.05,
        },
    ]
}

fn main() -> Result<(), SimError> {
    println!("Table I: Comparison of DC simulation performance (flops)\n");
    let widths = [18, 8, 12, 12, 12, 12, 9];
    row(
        &[
            "circuit".into(),
            "points".into(),
            "swec flops".into(),
            "mla flops".into(),
            "swec slv".into(),
            "mla slv".into(),
            "ratio".into(),
        ],
        &widths,
    );
    rule(&widths);
    let mut ratios = Vec::new();
    for w in workloads() {
        let mut sim = Simulator::new(w.circuit.clone())?;
        let swec =
            sim.run(Analysis::dc_sweep(w.source, w.start, w.stop, w.step).options(swec_options()))?;
        let mla = sim.run(
            Analysis::mla_dc_sweep(w.source, w.start, w.stop, w.step).options(mla_options()),
        )?;
        let ratio = mla.stats.flops.total() as f64 / swec.stats.flops.total() as f64;
        ratios.push(ratio);
        row(
            &[
                w.name.into(),
                format!("{}", swec.points()),
                eng(swec.stats.flops.total() as f64),
                eng(mla.stats.flops.total() as f64),
                format!("{}", swec.stats.linear_solves),
                format!("{}", mla.stats.linear_solves),
                format!("{ratio:.1}x"),
            ],
            &widths,
        );
    }
    rule(&widths);
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let (lo, hi) = ratios
        .iter()
        .fold((f64::INFINITY, 0.0f64), |(l, h), &r| (l.min(r), h.max(r)));
    println!("\nmeasured advantage: {lo:.0}x .. {hi:.0}x (mean {mean:.0}x)");
    println!("paper's Table I:    20x .. 30x");
    println!("\nnotes: SWEC is non-iterative (~1 solve/point); MLA pays a");
    println!("current-stepping ramp with Newton iterations at every point, each");
    println!("iteration one LU plus I(V) and dI/dV evaluations. With warm-start");
    println!("continuation (MlaOptions::warm_start) the gap narrows to ~3-5x —");
    println!("see the ablations bench.");
    Ok(())
}
