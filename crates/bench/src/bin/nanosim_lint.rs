//! `nanosim-lint` — preflight static analysis for netlist decks.
//!
//! Runs the `nanosim_circuit::lint` pass pipeline (connectivity,
//! voltage-source loops, current-source cutsets, structural rank via
//! bipartite matching, hygiene) over decks with **zero numeric solves**
//! and reports diagnostics with source positions.
//!
//! ```text
//! nanosim-lint [options] <deck.cir | dir>...
//!
//!   --json            machine-readable output (one JSON object per deck)
//!   --deny-warnings   exit nonzero on warnings, not just errors
//!   --corpus          verify `* @expect-lint <code> [line:col]` annotations:
//!                     each annotated deck must produce exactly the expected
//!                     error codes (at the expected positions when given),
//!                     and unannotated decks must produce no errors
//!   --codes           list every lint code with severity and description
//!   -h, --help        this text
//!
//! exit status: 0 clean, 1 findings (or corpus mismatch), 2 usage/io error
//! ```

use nanosim::prelude::{lint_deck, LintCode};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() {
    eprintln!(
        "usage: nanosim-lint [--json] [--deny-warnings] [--corpus] [--codes] <deck.cir | dir>..."
    );
}

fn list_codes() {
    println!("{:<22} {:<8} description", "code", "severity");
    for code in LintCode::ALL {
        println!(
            "{:<22} {:<8} {}",
            code.as_str(),
            code.default_severity().to_string(),
            code.description()
        );
    }
}

/// Expands directories into their sorted `.cir` members.
fn collect_decks(paths: &[PathBuf]) -> Result<Vec<PathBuf>, String> {
    let mut decks = Vec::new();
    for p in paths {
        if p.is_dir() {
            let mut members: Vec<PathBuf> = std::fs::read_dir(p)
                .map_err(|e| format!("{}: {e}", p.display()))?
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .filter(|f| f.extension().is_some_and(|ext| ext == "cir"))
                .collect();
            members.sort();
            decks.extend(members);
        } else {
            decks.push(p.clone());
        }
    }
    if decks.is_empty() {
        return Err("no decks to lint".into());
    }
    Ok(decks)
}

/// An `@expect-lint` annotation: a code that must appear as an Error, with
/// an optional required position.
struct Expectation {
    code: LintCode,
    at: Option<(usize, usize)>,
}

/// Parses `* @expect-lint <code> [line:col]` comment lines.
fn expectations(text: &str) -> Result<Vec<Expectation>, String> {
    let mut out = Vec::new();
    for line in text.lines() {
        let t = line.trim();
        let Some(rest) = t
            .strip_prefix('*')
            .map(str::trim)
            .and_then(|t| t.strip_prefix("@expect-lint"))
        else {
            continue;
        };
        let mut fields = rest.split_whitespace();
        let Some(code_str) = fields.next() else {
            return Err("@expect-lint needs a lint code".into());
        };
        let code = LintCode::parse(code_str)
            .ok_or_else(|| format!("@expect-lint names unknown code `{code_str}`"))?;
        let at = match fields.next() {
            None => None,
            Some(pos) => {
                let (l, c) = pos
                    .split_once(':')
                    .ok_or_else(|| format!("@expect-lint position `{pos}` is not line:col"))?;
                Some((
                    l.parse::<usize>().map_err(|e| e.to_string())?,
                    c.parse::<usize>().map_err(|e| e.to_string())?,
                ))
            }
        };
        out.push(Expectation { code, at });
    }
    Ok(out)
}

/// Lints one deck in `--corpus` mode. Returns human-readable mismatch
/// descriptions (empty = the deck meets its contract).
fn check_corpus_deck(path: &Path, text: &str) -> Vec<String> {
    let mut problems = Vec::new();
    let expected = match expectations(text) {
        Ok(e) => e,
        Err(msg) => return vec![format!("{}: {msg}", path.display())],
    };
    let report = lint_deck(text);
    let actual: Vec<_> = report.errors().collect();
    for exp in &expected {
        let hits: Vec<_> = actual.iter().filter(|d| d.code == exp.code).collect();
        if hits.is_empty() {
            problems.push(format!(
                "{}: expected error[{}] was not reported",
                path.display(),
                exp.code
            ));
            continue;
        }
        if let Some((line, col)) = exp.at {
            if !hits
                .iter()
                .any(|d| d.span.is_some_and(|s| (s.line, s.column) == (line, col)))
            {
                problems.push(format!(
                    "{}: error[{}] expected at {line}:{col}, reported at {}",
                    path.display(),
                    exp.code,
                    hits.iter()
                        .map(|d| d.span.map_or("<no span>".into(), |s| s.to_string()))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }
    }
    for d in &actual {
        if !expected.iter().any(|exp| exp.code == d.code) {
            problems.push(format!("{}: unexpected {d}", path.display()));
        }
    }
    problems
}

fn main() -> ExitCode {
    let mut json = false;
    let mut deny_warnings = false;
    let mut corpus = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--corpus" => corpus = true,
            "--codes" => {
                list_codes();
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option `{other}`");
                usage();
                return ExitCode::from(2);
            }
            file => paths.push(PathBuf::from(file)),
        }
    }
    if paths.is_empty() {
        usage();
        return ExitCode::from(2);
    }
    let decks = match collect_decks(&paths) {
        Ok(d) => d,
        Err(msg) => {
            eprintln!("nanosim-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    let mut failed = false;
    let mut total_errors = 0usize;
    let mut total_warnings = 0usize;
    for path in &decks {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("nanosim-lint: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        if corpus {
            let problems = check_corpus_deck(path, &text);
            if problems.is_empty() {
                println!("{}: ok", path.display());
            } else {
                failed = true;
                for p in &problems {
                    println!("{p}");
                }
            }
            continue;
        }
        let report = lint_deck(&text);
        total_errors += report.error_count();
        total_warnings += report.warning_count();
        if json {
            println!(
                "{{\"file\":\"{}\",\"report\":{}}}",
                path.display(),
                report.to_json()
            );
            continue;
        }
        for d in report.diagnostics() {
            match d.span {
                Some(span) => println!(
                    "{}:{}:{}: {}[{}]: {}",
                    path.display(),
                    span.line,
                    span.column,
                    d.severity,
                    d.code,
                    d.message
                ),
                None => println!(
                    "{}: {}[{}]: {}",
                    path.display(),
                    d.severity,
                    d.code,
                    d.message
                ),
            }
        }
        println!("{}: {}", path.display(), report.summary());
    }

    if corpus {
        if failed {
            return ExitCode::from(1);
        }
        println!(
            "corpus ok: {} decks match their lint expectations",
            decks.len()
        );
        return ExitCode::SUCCESS;
    }
    if total_errors > 0 || (deny_warnings && total_warnings > 0) {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
