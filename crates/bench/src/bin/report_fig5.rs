//! Figure 5 reproduction: RTD conductance as a function of applied bias —
//! the differential conductance (which plunges negative in the
//! resistance-decreasing region) against the step-wise equivalent
//! conductance (positive everywhere).

use nanosim::prelude::*;
use nanosim_bench::{row, rule};

fn main() {
    let rtd = Rtd::date2005();
    let mut flops = FlopCounter::new();
    println!("Figure 5: RTD conductance vs applied bias\n");
    let widths = [8, 18, 18];
    row(
        &[
            "V".into(),
            "gd = dJ/dV (mS)".into(),
            "Geq = J/V (mS)".into(),
        ],
        &widths,
    );
    rule(&widths);
    let mut min_gd = f64::INFINITY;
    let mut min_geq = f64::INFINITY;
    let mut v = 0.0;
    while v <= 6.0 + 1e-9 {
        let gd = rtd.differential_conductance(v, &mut flops);
        let geq = rtd.equivalent_conductance(v, &mut flops);
        min_gd = min_gd.min(gd);
        min_geq = min_geq.min(geq);
        row(
            &[
                format!("{v:.2}"),
                format!("{:+.4}", gd * 1e3),
                format!("{:+.4}", geq * 1e3),
            ],
            &widths,
        );
        v += 0.25;
    }
    println!(
        "\nmost negative differential conductance: {:.3} mS",
        min_gd * 1e3
    );
    println!(
        "smallest SWEC equivalent conductance:    {:+.3} mS (never <= 0)",
        min_geq * 1e3
    );
    assert!(min_gd < 0.0, "the NDR region exists");
    assert!(min_geq > 0.0, "SWEC stays positive (the paper's claim)");
}
