//! Figure 10 reproduction: results from the EM method and the analytical
//! solution on a noisy nanoscale node (0..1 ns), with the "possible
//! performance peak about 0.6 V" callout.

use nanosim::core::em::EmEngine;
use nanosim::prelude::*;
use nanosim::sde::ou::OrnsteinUhlenbeck;
use nanosim::sde::wiener::WienerPath;
use nanosim_bench::{row, rule};
use nanosim_numeric::rng::Pcg64;

fn main() -> Result<(), SimError> {
    let circuit = nanosim::workloads::noisy_rc_node_fig10();
    let (g, c, i_dc, i_noise) = (1e-3, 1e-12, 0.85e-3, 2.2e-9);
    let horizon = 1e-9;
    let steps = 500;

    // One realization: EM vs the exact OU solution of the same Wiener path.
    let engine = EmEngine::new(EmOptions {
        dt: horizon / steps as f64,
        paths: 500,
        seed: 2005,
        ..EmOptions::default()
    });
    let mut rng = Pcg64::seed_from_u64(777);
    let path = WienerPath::generate(horizon, steps, &mut rng);
    let em = engine.run_with_paths(&circuit, &[path.clone()])?;
    let em_v = em.waveform("v").expect("node exists");
    let ou = OrnsteinUhlenbeck::from_rc_node(g, c, i_dc, i_noise);
    let exact = ou.pathwise_reference(0.0, &path, 4, &mut rng);

    println!("Figure 10: EM method vs analytical solution (one Wiener path)\n");
    let widths = [9, 12, 12, 12];
    row(
        &[
            "t (ps)".into(),
            "EM (V)".into(),
            "exact (V)".into(),
            "mean (V)".into(),
        ],
        &widths,
    );
    rule(&widths);
    for k in (0..=steps).step_by(50) {
        let t = k as f64 * horizon / steps as f64;
        row(
            &[
                format!("{:.0}", t * 1e12),
                format!("{:.4}", em_v.value_at(t)),
                format!("{:.4}", exact[k]),
                format!("{:.4}", ou.mean(0.0, t)),
            ],
            &widths,
        );
    }
    let rms: f64 = {
        let n = exact.len() as f64;
        (em_v
            .values()
            .iter()
            .zip(exact.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / n)
            .sqrt()
    };
    println!("\npathwise rms (EM vs exact, same path): {rms:.4} V");

    // Ensemble peak prediction (the 0.6 V callout), via the session API.
    let ensemble =
        Simulator::new(circuit)?.run(Analysis::em_ensemble(horizon).options(EmOptions {
            dt: horizon / steps as f64,
            paths: 500,
            seed: 2005,
            ..EmOptions::default()
        }))?;
    let peak = ensemble.peak_summary("v").expect("node exists");
    println!(
        "\nensemble ({} paths): peak in 0..1 ns — mean {:.3} V, p95 {:.3} V, worst {:.3} V",
        ensemble.paths(),
        peak.mean_peak,
        peak.p95_peak,
        peak.worst_peak
    );
    println!(
        "P(peak >= 0.6 V) = {:.2}   (paper: \"we observe a possible performance peak about 0.6 V\")",
        ensemble.exceedance("v", 0.6).expect("node exists")
    );
    assert!(peak.mean_peak > 0.45 && peak.mean_peak < 0.75);
    Ok(())
}
