//! Pooled `Simulator` sessions keyed by circuit topology.
//!
//! A session's expensive state — the sparse-LU symbolic analysis, fill
//! ordering and supernode plan inside its assembly workspaces — depends
//! only on the MNA sparsity pattern, never on component values. The pool
//! therefore keys sessions by [`TopologyKey`] and serves a same-topology
//! request by [`nanosim_core::Simulator::rebind`]ing the pooled session to
//! the new circuit: the symbolic work is paid once per topology and
//! *refactored* forever after. Capacity is a session count with LRU
//! eviction (sessions are few and heavy; counting them is the honest
//! unit).

use crate::key::{DeckKey, TopologyKey};
use crate::store::CacheDisposition;
use nanosim_circuit::Circuit;
use nanosim_core::{SimError, SimOptions, Simulator};

/// One pooled session and the deck it is currently bound to.
#[derive(Debug)]
struct PooledSession {
    topology: TopologyKey,
    deck: DeckKey,
    sim: Simulator,
}

/// LRU pool of [`Simulator`] sessions keyed by topology.
#[derive(Debug)]
pub struct SessionPool {
    /// Most-recently-used last.
    sessions: Vec<PooledSession>,
    capacity: usize,
}

impl SessionPool {
    /// Creates a pool holding at most `capacity` sessions (minimum 1).
    pub fn new(capacity: usize) -> SessionPool {
        SessionPool {
            sessions: Vec::new(),
            capacity: capacity.max(1),
        }
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Checks out the session for `topology`, creating or rebinding as
    /// needed, and reports how much cached state the request reuses:
    ///
    /// * [`CacheDisposition::SameDeck`] — pooled session already bound to
    ///   this exact deck; nothing rebuilt.
    /// * [`CacheDisposition::WarmSession`] — pooled session rebound to a
    ///   same-pattern circuit; symbolic analyses survive.
    /// * [`CacheDisposition::Cold`] — new session (or a rebind that found
    ///   no warm workspace to preserve).
    ///
    /// # Errors
    /// Propagates preflight/validation failures from session construction
    /// or rebind; on a rebind failure the pooled session keeps its
    /// previous binding and stays usable.
    pub fn checkout(
        &mut self,
        topology: TopologyKey,
        deck: DeckKey,
        circuit: &Circuit,
        opts: &SimOptions,
    ) -> Result<(&mut Simulator, CacheDisposition), SimError> {
        let disposition = match self.sessions.iter().position(|s| s.topology == topology) {
            Some(pos) => {
                let mut entry = self.sessions.remove(pos);
                if entry.deck == deck {
                    self.sessions.push(entry);
                    CacheDisposition::SameDeck
                } else {
                    match entry.sim.rebind(circuit.clone()) {
                        Ok(warm) => {
                            entry.deck = deck;
                            self.sessions.push(entry);
                            if warm {
                                CacheDisposition::WarmSession
                            } else {
                                CacheDisposition::Cold
                            }
                        }
                        Err(e) => {
                            // Keep the session usable under its old deck.
                            self.sessions.push(entry);
                            return Err(e);
                        }
                    }
                }
            }
            None => {
                let sim = Simulator::with_options(circuit.clone(), *opts)?;
                self.sessions.push(PooledSession {
                    topology,
                    deck,
                    sim,
                });
                if self.sessions.len() > self.capacity {
                    // Least-recently-used session is at the front.
                    self.sessions.remove(0);
                }
                CacheDisposition::Cold
            }
        };
        let sim = &mut self.sessions.last_mut().expect("just pushed").sim;
        Ok((sim, disposition))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanosim_circuit::parse_netlist;

    fn keys(deck: &str) -> (TopologyKey, DeckKey, Circuit) {
        let parsed = parse_netlist(deck).unwrap();
        (
            TopologyKey::of(&parsed.circuit),
            DeckKey::of(&parsed.circuit),
            parsed.circuit,
        )
    }

    #[test]
    fn same_topology_reuses_one_session() {
        let (t1, d1, c1) = keys("V1 in 0 DC 1\nR1 in out 100\nR2 out 0 100\n.end\n");
        let (t2, d2, c2) = keys("V1 in 0 DC 1\nR1 in out 220\nR2 out 0 100\n.end\n");
        assert_eq!(t1, t2);
        assert_ne!(d1, d2);
        let opts = SimOptions::default();
        let mut pool = SessionPool::new(4);
        let (sim, disp) = pool.checkout(t1, d1, &c1, &opts).unwrap();
        assert_eq!(disp, CacheDisposition::Cold);
        sim.run(nanosim_core::Analysis::op()).unwrap();
        // Identical deck: no rebind.
        let (_, disp) = pool.checkout(t1, d1, &c1, &opts).unwrap();
        assert_eq!(disp, CacheDisposition::SameDeck);
        // Same topology, new values: warm rebind.
        let (sim, disp) = pool.checkout(t2, d2, &c2, &opts).unwrap();
        assert_eq!(disp, CacheDisposition::WarmSession);
        let ds = sim.run(nanosim_core::Analysis::op()).unwrap();
        assert_eq!(ds.stats.full_factors, 0, "warm session must only refactor");
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn capacity_evicts_least_recently_used_session() {
        let decks = [
            "V1 a 0 DC 1\nR1 a 0 10\n.end\n",
            "V1 a 0 DC 1\nR1 a b 10\nR2 b 0 10\n.end\n",
            "V1 a 0 DC 1\nR1 a b 10\nR2 b c 10\nR3 c 0 10\n.end\n",
        ];
        let opts = SimOptions::default();
        let mut pool = SessionPool::new(2);
        for deck in decks {
            let (t, d, c) = keys(deck);
            pool.checkout(t, d, &c, &opts).unwrap();
        }
        assert_eq!(pool.len(), 2);
        // The first topology was evicted: checking it out again is cold.
        let (t, d, c) = keys(decks[0]);
        let (_, disp) = pool.checkout(t, d, &c, &opts).unwrap();
        assert_eq!(disp, CacheDisposition::Cold);
    }
}
