//! Run registry: monotonically assigned [`RunId`]s, per-run lifecycle
//! status, and an LRU-by-bytes result store.
//!
//! Records are never forgotten — `status r` keeps answering for as long as
//! the service lives — but finished result *payloads* (the [`Dataset`],
//! which dominates memory) are evicted least-recently-used when the store
//! exceeds its byte capacity. An evicted run keeps its metadata and
//! reports a structured `evicted` error on `result` queries.

use crate::key::{AnalysisKey, DeckKey};
use nanosim_core::{Dataset, SimError};

/// Monotonically assigned run identifier (first run is `1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RunId(pub u64);

impl std::fmt::Display for RunId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Lifecycle state of one run.
#[derive(Debug, Clone)]
pub enum RunStatus {
    /// Accepted, not yet started (batch points and held submits wait here).
    Queued,
    /// Currently executing.
    Running,
    /// Finished successfully; the result may still be in the store.
    Done,
    /// Failed; carries the full [`SimError`] including forensics.
    Failed {
        /// The engine/preflight error that ended the run.
        error: Box<SimError>,
    },
    /// Cancelled before completion (explicit `cancel` or a tripped
    /// [`nanosim_core::CancelToken`]); produced no payload.
    Cancelled,
}

impl RunStatus {
    /// Protocol tag: `queued` / `running` / `done` / `failed` /
    /// `cancelled`.
    pub fn tag(&self) -> &'static str {
        match self {
            RunStatus::Queued => "queued",
            RunStatus::Running => "running",
            RunStatus::Done => "done",
            RunStatus::Failed { .. } => "failed",
            RunStatus::Cancelled => "cancelled",
        }
    }

    /// Whether the run is still pending (queued or running) — the states a
    /// cancel can take effect in and the ones admission control counts.
    pub fn is_pending(&self) -> bool {
        matches!(self, RunStatus::Queued | RunStatus::Running)
    }
}

/// How a finished run's answer was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheDisposition {
    /// Fresh session: the symbolic analysis was paid here.
    Cold,
    /// Pooled session reused via rebind: values-only refactor.
    WarmSession,
    /// Pooled session reused for the *identical* deck (no rebind needed).
    SameDeck,
    /// Answered from the result cache without touching an engine.
    ResultHit,
}

impl CacheDisposition {
    /// Protocol tag: `cold` / `warm` / `same-deck` / `result-hit`.
    pub fn tag(self) -> &'static str {
        match self {
            CacheDisposition::Cold => "cold",
            CacheDisposition::WarmSession => "warm",
            CacheDisposition::SameDeck => "same-deck",
            CacheDisposition::ResultHit => "result-hit",
        }
    }
}

/// A successful run's payload: the dataset (which carries its
/// [`nanosim_core::EngineStats`] in `dataset.stats`).
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The analysis result.
    pub dataset: Dataset,
}

impl RunResult {
    /// Approximate heap footprint, used for LRU-by-bytes accounting:
    /// axis + all columns at 8 bytes per point, plus fixed overhead.
    pub fn approx_bytes(&self) -> usize {
        let points = self.dataset.points();
        let cols = self.dataset.names().len() + 1;
        points * cols * std::mem::size_of::<f64>() + 512
    }
}

/// One run's registry entry.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// The run's id.
    pub id: RunId,
    /// Value-sensitive key of the deck the run executed.
    pub deck_key: DeckKey,
    /// Canonical key of the analysis.
    pub analysis_key: AnalysisKey,
    /// Analysis tag (`op` / `dc` / `tran` / ...).
    pub analysis: &'static str,
    /// Lifecycle state.
    pub status: RunStatus,
    /// How the answer was produced (meaningful once `Done`).
    pub cache: CacheDisposition,
    /// Symbolic analyses (full factorizations) this run paid. Zero on
    /// warm-session and result-hit paths — the acceptance telemetry.
    pub full_factors: u64,
    /// Values-only refactorizations this run performed.
    pub refactors: u64,
    /// The result payload; `None` while pending/failed or after eviction.
    pub result: Option<RunResult>,
    /// Whether a once-present payload was evicted.
    pub evicted: bool,
    /// Projected payload bytes reserved against the store capacity while
    /// the run executes. Always settled back to zero on every terminal
    /// transition (finish / fail / cancel), so a run that dies `Running`
    /// can never strand reservation in the eviction budget.
    pub reserved: usize,
}

/// The run registry with LRU-by-bytes payload eviction.
#[derive(Debug)]
pub struct ResultStore {
    next: u64,
    records: Vec<RunRecord>,
    /// Run ids with live payloads, least-recently-used first.
    lru: Vec<RunId>,
    capacity_bytes: usize,
    bytes: usize,
    /// Sum of in-flight reservations (see [`RunRecord::reserved`]).
    reserved: usize,
    evictions: u64,
}

impl ResultStore {
    /// Creates a store that evicts result payloads LRU once their summed
    /// approximate size exceeds `capacity_bytes`.
    pub fn new(capacity_bytes: usize) -> ResultStore {
        ResultStore {
            next: 1,
            records: Vec::new(),
            lru: Vec::new(),
            capacity_bytes,
            bytes: 0,
            reserved: 0,
            evictions: 0,
        }
    }

    /// Registers a new run in [`RunStatus::Queued`] state and returns its id.
    pub fn create(
        &mut self,
        deck_key: DeckKey,
        analysis_key: AnalysisKey,
        analysis: &'static str,
    ) -> RunId {
        let id = RunId(self.next);
        self.next += 1;
        self.records.push(RunRecord {
            id,
            deck_key,
            analysis_key,
            analysis,
            status: RunStatus::Queued,
            cache: CacheDisposition::Cold,
            full_factors: 0,
            refactors: 0,
            result: None,
            evicted: false,
            reserved: 0,
        });
        id
    }

    fn index(&self, id: RunId) -> Option<usize> {
        // Ids are dense and monotonic from 1; direct index with a guard.
        let i = (id.0 as usize).checked_sub(1)?;
        (i < self.records.len()).then_some(i)
    }

    /// Immutable record lookup.
    pub fn get(&self, id: RunId) -> Option<&RunRecord> {
        self.index(id).map(|i| &self.records[i])
    }

    /// Marks a run as running, reserving `reserve_bytes` of projected
    /// payload against the store capacity until the run settles. The
    /// reservation participates in the LRU budget (old payloads are
    /// evicted to make room for in-flight work) and is released on every
    /// terminal transition.
    pub fn start(&mut self, id: RunId, reserve_bytes: usize) {
        if let Some(i) = self.index(id) {
            self.records[i].status = RunStatus::Running;
            self.records[i].reserved = reserve_bytes;
            self.reserved += reserve_bytes;
            self.enforce_capacity();
        }
    }

    /// Releases a run's in-flight reservation (idempotent).
    fn release_reservation(&mut self, i: usize) {
        self.reserved -= self.records[i].reserved;
        self.records[i].reserved = 0;
    }

    /// Completes a run with its payload and cache provenance, then evicts
    /// LRU payloads until the store fits its capacity again. The run's
    /// reservation is settled against the actual payload size.
    pub fn finish(
        &mut self,
        id: RunId,
        result: RunResult,
        cache: CacheDisposition,
        full_factors: u64,
        refactors: u64,
    ) {
        let Some(i) = self.index(id) else { return };
        self.release_reservation(i);
        self.bytes += result.approx_bytes();
        let rec = &mut self.records[i];
        rec.status = RunStatus::Done;
        rec.cache = cache;
        rec.full_factors = full_factors;
        rec.refactors = refactors;
        rec.result = Some(result);
        self.lru.push(id);
        self.enforce_capacity();
    }

    /// Fails a run with the structured engine error, releasing its
    /// reservation.
    pub fn fail(&mut self, id: RunId, error: SimError) {
        if let Some(i) = self.index(id) {
            self.release_reservation(i);
            self.records[i].status = RunStatus::Failed {
                error: Box::new(error),
            };
        }
    }

    /// Cancels a pending (queued or running) run, releasing its
    /// reservation. Returns whether the run transitioned; terminal runs
    /// (done / failed / already cancelled) and unknown ids return `false`.
    pub fn cancel(&mut self, id: RunId) -> bool {
        let Some(i) = self.index(id) else {
            return false;
        };
        if !self.records[i].status.is_pending() {
            return false;
        }
        self.release_reservation(i);
        self.records[i].status = RunStatus::Cancelled;
        true
    }

    /// Pending (queued or running) runs — the admission-control gauge.
    pub fn pending(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.status.is_pending())
            .count()
    }

    /// Fetches a finished run's record, refreshing its LRU position.
    pub fn touch(&mut self, id: RunId) -> Option<&RunRecord> {
        let i = self.index(id)?;
        if self.records[i].result.is_some() {
            if let Some(pos) = self.lru.iter().position(|&r| r == id) {
                let id = self.lru.remove(pos);
                self.lru.push(id);
            }
        }
        Some(&self.records[i])
    }

    /// Explicitly drops a run's result payload. Returns whether a payload
    /// was present. Explicit eviction does not count toward the LRU
    /// eviction telemetry.
    pub fn evict(&mut self, id: RunId) -> bool {
        let Some(i) = self.index(id) else {
            return false;
        };
        match self.records[i].result.take() {
            Some(payload) => {
                self.bytes -= payload.approx_bytes();
                self.records[i].evicted = true;
                self.lru.retain(|&r| r != id);
                true
            }
            None => false,
        }
    }

    fn enforce_capacity(&mut self) {
        while self.bytes + self.reserved > self.capacity_bytes && self.lru.len() > 1 {
            let victim = self.lru.remove(0);
            if let Some(i) = self.index(victim) {
                if let Some(payload) = self.records[i].result.take() {
                    self.bytes -= payload.approx_bytes();
                    self.records[i].evicted = true;
                    self.evictions += 1;
                }
            }
        }
    }

    /// Number of runs ever registered.
    pub fn runs(&self) -> usize {
        self.records.len()
    }

    /// Approximate bytes of live result payloads.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Bytes reserved by in-flight (running) runs.
    pub fn reserved(&self) -> usize {
        self.reserved
    }

    /// Store payload capacity in approximate bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Payloads evicted by the capacity policy (not explicit `evict`s).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Iterates all records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &RunRecord> {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> (DeckKey, AnalysisKey) {
        (DeckKey(1), AnalysisKey(2))
    }

    fn dataset() -> Dataset {
        // A small synthetic op-point dataset.
        Dataset::from_op(
            "test",
            vec!["a".into(), "b".into()],
            vec![1.0, 2.0],
            nanosim_core::EngineStats::default(),
        )
    }

    #[test]
    fn ids_are_monotonic_from_one() {
        let (dk, ak) = key();
        let mut store = ResultStore::new(usize::MAX);
        assert_eq!(store.create(dk, ak, "op"), RunId(1));
        assert_eq!(store.create(dk, ak, "op"), RunId(2));
        assert!(matches!(
            store.get(RunId(1)).unwrap().status,
            RunStatus::Queued
        ));
        assert!(store.get(RunId(3)).is_none());
    }

    #[test]
    fn lifecycle_and_explicit_evict() {
        let (dk, ak) = key();
        let mut store = ResultStore::new(usize::MAX);
        let id = store.create(dk, ak, "op");
        store.start(id, 0);
        assert_eq!(store.get(id).unwrap().status.tag(), "running");
        store.finish(
            id,
            RunResult { dataset: dataset() },
            CacheDisposition::Cold,
            1,
            0,
        );
        assert_eq!(store.get(id).unwrap().status.tag(), "done");
        assert!(store.get(id).unwrap().result.is_some());
        assert!(store.evict(id));
        assert!(!store.evict(id));
        let rec = store.get(id).unwrap();
        assert!(rec.evicted && rec.result.is_none());
        assert_eq!(rec.status.tag(), "done");
        assert_eq!(
            store.evictions(),
            0,
            "explicit evicts are not LRU telemetry"
        );
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let (dk, ak) = key();
        // Each op payload is ~512 + 3*8 bytes; capacity fits about two.
        let mut store = ResultStore::new(1200);
        let a = store.create(dk, ak, "op");
        let b = store.create(dk, ak, "op");
        let c = store.create(dk, ak, "op");
        for id in [a, b, c] {
            store.finish(
                id,
                RunResult { dataset: dataset() },
                CacheDisposition::Cold,
                1,
                0,
            );
        }
        assert_eq!(store.evictions(), 1);
        assert!(
            store.get(a).unwrap().evicted,
            "oldest payload evicted first"
        );
        assert!(store.get(c).unwrap().result.is_some());
        // Touching b makes the *next* eviction pick c.
        store.touch(b);
        let d = store.create(dk, ak, "op");
        store.finish(
            d,
            RunResult { dataset: dataset() },
            CacheDisposition::Cold,
            1,
            0,
        );
        assert!(store.get(c).unwrap().evicted);
        assert!(store.get(b).unwrap().result.is_some());
    }

    #[test]
    fn failed_and_cancelled_runs_release_their_reservation() {
        let (dk, ak) = key();
        let mut store = ResultStore::new(usize::MAX);
        let a = store.create(dk, ak, "op");
        let b = store.create(dk, ak, "op");
        let c = store.create(dk, ak, "op");
        store.start(a, 1000);
        store.start(b, 2000);
        store.start(c, 4000);
        assert_eq!(store.reserved(), 7000);
        store.fail(
            a,
            nanosim_core::SimError::InvalidConfig {
                context: "x".into(),
            },
        );
        assert_eq!(store.reserved(), 6000, "fail releases the reservation");
        assert!(store.cancel(b));
        assert_eq!(store.reserved(), 4000, "cancel releases the reservation");
        assert_eq!(store.get(b).unwrap().status.tag(), "cancelled");
        assert!(!store.cancel(b), "cancel is terminal");
        store.finish(
            c,
            RunResult { dataset: dataset() },
            CacheDisposition::Cold,
            1,
            0,
        );
        assert_eq!(store.reserved(), 0, "finish settles the reservation");
        assert!(store.bytes() > 0);
        assert!(!store.cancel(c), "done runs cannot be cancelled");
    }

    #[test]
    fn reservations_pressure_the_lru_budget() {
        let (dk, ak) = key();
        // Capacity fits about two finished op payloads (~536 bytes each).
        let mut store = ResultStore::new(1200);
        let a = store.create(dk, ak, "op");
        let b = store.create(dk, ak, "op");
        for id in [a, b] {
            store.start(id, 0);
            store.finish(
                id,
                RunResult { dataset: dataset() },
                CacheDisposition::Cold,
                1,
                0,
            );
        }
        assert_eq!(store.evictions(), 0);
        // A large in-flight reservation evicts the oldest payload to make
        // room for the run in progress.
        let c = store.create(dk, ak, "op");
        store.start(c, 600);
        assert!(store.get(a).unwrap().evicted, "reservation evicts LRU");
        assert_eq!(store.pending(), 1);
    }
}
