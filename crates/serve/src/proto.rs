//! JSON-lines protocol over the [`SimService`].
//!
//! One request object per line in, one response object per line out.
//! Commands (the `cmd` member selects one):
//!
//! | cmd      | fields                                         | response |
//! |----------|------------------------------------------------|----------|
//! | `submit` | `deck`, opt. `params` (obj), `workers`, `timeout_ms`, `budget` (obj), `allow_partial`, `hold` | `runs`: per-directive `{run, analysis, status, cache, full_factors}` |
//! | `batch`  | `deck`, `grid` (array of objs) or `sweep` (obj of arrays), opt. `workers` | `runs` as above |
//! | `status` | `run`                                          | `{run, analysis, status[, error]}` |
//! | `result` | `run`, opt. `data` (bool, default true)        | status + dataset columns + engine stats |
//! | `cancel` | `run`                                          | `{run, cancelled}` |
//! | `run`    | `run`                                          | starts a held run; run summary |
//! | `stats`  | —                                              | [`crate::stats::ServeStats`] rendering + gauges |
//! | `evict`  | `run`                                          | `{run, evicted}` |
//!
//! The optional `budget` object takes `deadline_ms`, `max_newton_iterations`,
//! `max_transient_steps`, and `max_result_bytes`; `timeout_ms` is shorthand
//! for a deadline and intersects (minimum wins) with whichever budget
//! applies. Requests past the service's admission limits answer
//! `{"ok":false,"code":"overloaded",...}` without registering anything.
//!
//! Every response carries `"ok"`; failures are `{"ok":false,"error":{...}}`
//! with a structured [`ServeError`] body — junk input can never panic this
//! layer (property-tested).

use crate::error::ServeError;
use crate::json::{self, Json};
use crate::service::{BatchRequest, SimService, SubmitOptions};
use crate::store::{RunId, RunRecord, RunStatus};
use nanosim_core::Budget;
use std::time::Duration;

/// Handles one request line, returning exactly one JSON response line
/// (without trailing newline). Never panics; malformed input yields a
/// structured error response.
pub fn handle_line(svc: &mut SimService, line: &str) -> String {
    svc.stats_mut().requests += 1;
    let response = match dispatch(svc, line) {
        Ok(v) => v,
        Err(e) => {
            svc.stats_mut().errors += 1;
            e.to_response()
        }
    };
    response.render()
}

fn dispatch(svc: &mut SimService, line: &str) -> Result<Json, ServeError> {
    let req =
        json::parse(line.trim()).map_err(|m| ServeError::protocol(format!("bad JSON: {m}")))?;
    let cmd = req
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::protocol("request needs a string `cmd` member"))?;
    match cmd {
        "submit" => submit(svc, &req),
        "batch" => batch(svc, &req),
        "status" => status(svc, &req),
        "result" => result(svc, &req),
        "cancel" => cancel(svc, &req),
        "run" => run_held(svc, &req),
        "stats" => Ok(stats(svc)),
        "evict" => evict(svc, &req),
        other => Err(ServeError::protocol(format!("unknown cmd `{other}`"))),
    }
}

fn deck_of(req: &Json) -> Result<&str, ServeError> {
    req.get("deck")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::protocol("request needs a string `deck` member"))
}

fn workers_of(req: &Json) -> Result<Option<usize>, ServeError> {
    match req.get("workers") {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(|n| Some(n as usize))
            .ok_or_else(|| ServeError::protocol("`workers` must be a non-negative integer")),
    }
}

fn run_of(req: &Json) -> Result<RunId, ServeError> {
    req.get("run")
        .and_then(Json::as_u64)
        .map(RunId)
        .ok_or_else(|| ServeError::protocol("request needs an integer `run` member"))
}

fn overrides_of(v: &Json) -> Result<Vec<(String, f64)>, ServeError> {
    let members = v
        .as_object()
        .ok_or_else(|| ServeError::protocol("parameter overrides must be an object"))?;
    members
        .iter()
        .map(|(k, v)| {
            v.as_f64()
                .map(|v| (k.clone(), v))
                .ok_or_else(|| ServeError::protocol(format!("override `{k}` must be a number")))
        })
        .collect()
}

fn bool_of(req: &Json, key: &str) -> Result<bool, ServeError> {
    match req.get(key) {
        None => Ok(false),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| ServeError::protocol(format!("`{key}` must be a boolean"))),
    }
}

fn budget_limit(obj: &Json, key: &str) -> Result<Option<u64>, ServeError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| ServeError::protocol(format!("budget `{key}` must be an integer"))),
    }
}

/// Parses the optional `budget` object and `timeout_ms` member of a submit
/// request into [`SubmitOptions`] fields.
fn budget_of(req: &Json) -> Result<(Option<Budget>, Option<Duration>), ServeError> {
    let timeout = match req.get("timeout_ms") {
        None => None,
        Some(v) => Some(Duration::from_millis(v.as_u64().ok_or_else(|| {
            ServeError::protocol("`timeout_ms` must be a non-negative integer")
        })?)),
    };
    let budget = match req.get("budget") {
        None => None,
        Some(obj) => {
            if obj.as_object().is_none() {
                return Err(ServeError::protocol("`budget` must be an object"));
            }
            let mut b = Budget::unlimited();
            b.max_newton_iterations = budget_limit(obj, "max_newton_iterations")?;
            b.max_transient_steps = budget_limit(obj, "max_transient_steps")?;
            b.max_result_bytes = budget_limit(obj, "max_result_bytes")?;
            b.deadline = budget_limit(obj, "deadline_ms")?.map(Duration::from_millis);
            Some(b)
        }
    };
    Ok((budget, timeout))
}

fn submit(svc: &mut SimService, req: &Json) -> Result<Json, ServeError> {
    let deck = deck_of(req)?;
    let overrides = match req.get("params") {
        None => Vec::new(),
        Some(v) => overrides_of(v)?,
    };
    let workers = workers_of(req)?;
    let (budget, timeout) = budget_of(req)?;
    let opts = SubmitOptions {
        overrides,
        workers,
        timeout,
        budget,
        allow_partial: bool_of(req, "allow_partial")?,
        hold: bool_of(req, "hold")?,
    };
    let ids = svc.submit_with(deck, &opts)?;
    Ok(runs_response(svc, &ids))
}

fn cancel(svc: &mut SimService, req: &Json) -> Result<Json, ServeError> {
    let id = run_of(req)?;
    let cancelled = svc.cancel(id)?;
    Ok(Json::Obj(vec![
        ("ok".to_string(), Json::Bool(true)),
        ("run".to_string(), Json::from(id.0)),
        ("cancelled".to_string(), Json::Bool(cancelled)),
    ]))
}

fn run_held(svc: &mut SimService, req: &Json) -> Result<Json, ServeError> {
    let id = run_of(req)?;
    svc.run_queued(id)?;
    let rec = svc.status(id)?;
    let mut members = vec![("ok".to_string(), Json::Bool(true))];
    if let Json::Obj(rest) = run_summary(rec) {
        members.extend(rest);
    }
    Ok(Json::Obj(members))
}

fn batch(svc: &mut SimService, req: &Json) -> Result<Json, ServeError> {
    let deck = deck_of(req)?.to_string();
    let workers = workers_of(req)?;
    let grid = match (req.get("grid"), req.get("sweep")) {
        (Some(_), Some(_)) => {
            return Err(ServeError::protocol(
                "give either `grid` or `sweep`, not both",
            ));
        }
        (Some(g), None) => g
            .as_array()
            .ok_or_else(|| ServeError::protocol("`grid` must be an array of objects"))?
            .iter()
            .map(overrides_of)
            .collect::<Result<Vec<_>, _>>()?,
        (None, Some(s)) => {
            let axes = s
                .as_object()
                .ok_or_else(|| ServeError::protocol("`sweep` must be an object of arrays"))?
                .iter()
                .map(|(name, values)| {
                    let values = values
                        .as_array()
                        .ok_or_else(|| {
                            ServeError::protocol(format!("sweep axis `{name}` must be an array"))
                        })?
                        .iter()
                        .map(|v| {
                            v.as_f64().ok_or_else(|| {
                                ServeError::protocol(format!(
                                    "sweep axis `{name}` must contain numbers"
                                ))
                            })
                        })
                        .collect::<Result<Vec<f64>, _>>()?;
                    Ok((name.clone(), values))
                })
                .collect::<Result<Vec<_>, ServeError>>()?;
            crate::service::expand_axes(&axes)
        }
        (None, None) => {
            return Err(ServeError::protocol(
                "batch needs a `grid` or `sweep` member",
            ));
        }
    };
    let ids = svc.batch(&BatchRequest {
        deck,
        grid,
        workers,
    })?;
    Ok(runs_response(svc, &ids))
}

fn runs_response(svc: &SimService, ids: &[RunId]) -> Json {
    let runs = ids
        .iter()
        .map(|&id| {
            // Submitting registered the id; the record must exist.
            let rec = svc.status(id).expect("submitted run is registered");
            run_summary(rec)
        })
        .collect();
    Json::Obj(vec![
        ("ok".to_string(), Json::Bool(true)),
        ("runs".to_string(), Json::Arr(runs)),
    ])
}

fn run_summary(rec: &RunRecord) -> Json {
    let mut members = vec![
        ("run".to_string(), Json::from(rec.id.0)),
        ("analysis".to_string(), Json::str(rec.analysis)),
        ("status".to_string(), Json::str(rec.status.tag())),
    ];
    match &rec.status {
        RunStatus::Done => {
            members.push(("cache".to_string(), Json::str(rec.cache.tag())));
            members.push(("full_factors".to_string(), Json::from(rec.full_factors)));
            members.push(("refactors".to_string(), Json::from(rec.refactors)));
        }
        RunStatus::Failed { error } => {
            let serve_err = ServeError::Sim {
                error: (**error).clone(),
            };
            members.push(("error".to_string(), serve_err.to_json()));
        }
        RunStatus::Queued | RunStatus::Running | RunStatus::Cancelled => {}
    }
    members.push(("evicted".to_string(), Json::Bool(rec.evicted)));
    Json::Obj(members)
}

fn status(svc: &mut SimService, req: &Json) -> Result<Json, ServeError> {
    let id = run_of(req)?;
    let rec = svc.status(id)?;
    let mut members = vec![("ok".to_string(), Json::Bool(true))];
    if let Json::Obj(rest) = run_summary(rec) {
        members.extend(rest);
    }
    Ok(Json::Obj(members))
}

fn result(svc: &mut SimService, req: &Json) -> Result<Json, ServeError> {
    let id = run_of(req)?;
    let with_data = req.get("data").and_then(Json::as_bool).unwrap_or(true);
    let rec = svc.result(id)?;
    let mut members = vec![("ok".to_string(), Json::Bool(true))];
    if let Json::Obj(rest) = run_summary(rec) {
        members.extend(rest);
    }
    if let Some(payload) = &rec.result {
        members.push((
            "dataset".to_string(),
            dataset_json(&payload.dataset, with_data),
        ));
        members.push((
            "stats".to_string(),
            engine_stats_json(&payload.dataset.stats),
        ));
    }
    Ok(Json::Obj(members))
}

fn dataset_json(ds: &nanosim_core::Dataset, with_data: bool) -> Json {
    let mut members = vec![
        ("kind".to_string(), Json::str(ds.kind().as_str())),
        ("engine".to_string(), Json::str(ds.engine())),
        ("axis".to_string(), Json::str(ds.axis().label())),
        ("points".to_string(), Json::from(ds.points())),
        (
            "names".to_string(),
            Json::Arr(ds.names().iter().map(|n| Json::str(n.clone())).collect()),
        ),
    ];
    if with_data {
        members.push((
            "axis_values".to_string(),
            Json::Arr(ds.axis_values().iter().map(|&v| Json::Num(v)).collect()),
        ));
        let columns = ds
            .names()
            .iter()
            .map(|n| {
                let col = ds.column(n).unwrap_or(&[]);
                Json::Arr(col.iter().map(|&v| Json::Num(v)).collect())
            })
            .collect();
        members.push(("columns".to_string(), Json::Arr(columns)));
    }
    Json::Obj(members)
}

fn engine_stats_json(s: &nanosim_core::EngineStats) -> Json {
    Json::Obj(vec![
        ("steps".to_string(), Json::from(s.steps)),
        ("iterations".to_string(), Json::from(s.iterations)),
        ("linear_solves".to_string(), Json::from(s.linear_solves)),
        ("full_factors".to_string(), Json::from(s.full_factors)),
        ("refactors".to_string(), Json::from(s.refactors)),
        ("nnz_lu".to_string(), Json::from(s.nnz_lu)),
        ("fill_ratio".to_string(), Json::Num(s.fill_ratio)),
        ("supernodes".to_string(), Json::from(s.supernodes)),
        (
            "f32_panel_solves".to_string(),
            Json::from(s.f32_panel_solves),
        ),
        (
            "precision_fallbacks".to_string(),
            Json::from(s.precision_fallbacks),
        ),
        ("batched_factors".to_string(), Json::from(s.batched_factors)),
        ("device_evals".to_string(), Json::from(s.device_evals)),
        ("rescues".to_string(), Json::from(s.rescues)),
        (
            "preflight_warnings".to_string(),
            Json::from(s.preflight_warnings),
        ),
        (
            "elapsed_ms".to_string(),
            Json::Num(s.elapsed.as_secs_f64() * 1e3),
        ),
    ])
}

fn stats(svc: &SimService) -> Json {
    Json::Obj(vec![
        ("ok".to_string(), Json::Bool(true)),
        ("stats".to_string(), svc.stats().to_json()),
        ("sessions".to_string(), Json::from(svc.sessions())),
        (
            "cached_results".to_string(),
            Json::from(svc.cached_results()),
        ),
        ("store_bytes".to_string(), Json::from(svc.store_bytes())),
    ])
}

fn evict(svc: &mut SimService, req: &Json) -> Result<Json, ServeError> {
    let id = run_of(req)?;
    let evicted = svc.evict(id)?;
    Ok(Json::Obj(vec![
        ("ok".to_string(), Json::Bool(true)),
        ("run".to_string(), Json::from(id.0)),
        ("evicted".to_string(), Json::Bool(evicted)),
    ]))
}

/// Volatile response fields that differ run-to-run (timings) or carry
/// deep diagnostic payloads (forensics): masked before golden-corpus
/// comparison.
pub const VOLATILE_KEYS: [&str; 3] = ["elapsed_ms", "forensics", "wall_clock"];

/// Replaces the values of [`VOLATILE_KEYS`] members (recursively) with
/// `"<masked>"`, so responses compare stably against a golden corpus.
/// Lines that are not valid JSON pass through unchanged.
pub fn mask_volatile(line: &str) -> String {
    match json::parse(line) {
        Ok(mut v) => {
            mask(&mut v);
            v.render()
        }
        Err(_) => line.to_string(),
    }
}

fn mask(v: &mut Json) {
    match v {
        Json::Obj(members) => {
            for (k, v) in members.iter_mut() {
                if VOLATILE_KEYS.contains(&k.as_str()) {
                    *v = Json::str("<masked>");
                } else {
                    mask(v);
                }
            }
        }
        Json::Arr(items) => items.iter_mut().for_each(mask),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_round_trip() {
        let mut svc = SimService::default();
        let r = handle_line(
            &mut svc,
            r#"{"cmd":"submit","deck":"V1 in 0 DC 1\nR1 in out 100\nR2 out 0 100\n.op\n.end\n"}"#,
        );
        assert!(r.contains("\"ok\":true") && r.contains("\"run\":1"), "{r}");
        let r = handle_line(&mut svc, r#"{"cmd":"result","run":1}"#);
        assert!(r.contains("\"columns\":[[0.5]") || r.contains("0.5"), "{r}");
        let r = handle_line(&mut svc, r#"{"cmd":"status","run":99}"#);
        assert!(
            r.contains("\"ok\":false") && r.contains("unknown-run"),
            "{r}"
        );
        let r = handle_line(&mut svc, "not json at all");
        assert!(r.contains("\"ok\":false") && r.contains("protocol"), "{r}");
        let r = handle_line(&mut svc, r#"{"cmd":"stats"}"#);
        assert!(r.contains("\"requests\":5"), "{r}");
    }

    #[test]
    fn masking_hides_volatile_fields_only() {
        let masked = mask_volatile(r#"{"ok":true,"stats":{"elapsed_ms":12.5,"steps":3}}"#);
        assert!(masked.contains("\"elapsed_ms\":\"<masked>\""), "{masked}");
        assert!(masked.contains("\"steps\":3"), "{masked}");
        assert_eq!(mask_volatile("junk"), "junk");
    }
}
