//! In-process simulation service layer for Nano-Sim.
//!
//! `nanosim-serve` turns the one-shot [`nanosim_core::Simulator`] session
//! API into a long-lived, cache-backed service — with **no network stack
//! and no dependencies** (the vendored-offline build keeps working). Three
//! cooperating subsystems:
//!
//! * **Run registry** ([`store`]) — every accepted analysis gets a
//!   monotonically assigned [`RunId`] and a [`RunRecord`] tracking
//!   `queued → running → done | failed` (failures carry the full
//!   [`nanosim_core::SimError`] forensics). Finished payloads live in a
//!   [`ResultStore`] with LRU-by-bytes eviction.
//! * **Cross-request caching** ([`key`], [`pool`], [`service`]) — parsed
//!   decks are fingerprinted twice: a value-sensitive [`DeckKey`] guards
//!   the full result cache (hits are **bit-identical** to cold runs,
//!   because the engines are deterministic), and a pattern-only
//!   [`TopologyKey`] keys the [`SessionPool`], which rebinds pooled
//!   sessions to same-topology circuits so sparse-LU symbolic analyses
//!   and supernode plans are paid once and refactored forever.
//! * **Batch front-end** ([`service::BatchRequest`], [`proto`]) — a
//!   parameter grid (`.param` overrides × the deck's analysis directives)
//!   fans out into one run per grid point, sharing pooled sessions; the
//!   JSON-lines protocol in [`proto`] makes the whole service scriptable
//!   from any stdin/stdout transport (see the `nanosim-serve` binary in
//!   the bench crate).
//! * **Run budgets & admission control** ([`SubmitOptions`],
//!   [`ServiceOptions`]) — per-request `timeout_ms`/`budget` limits are
//!   enforced cooperatively inside the engines at deterministic
//!   checkpoints (see [`nanosim_core::Budget`]), runs can be cancelled
//!   mid-flight or held queued, budget-killed runs salvage their accepted
//!   prefix under `allow_partial`, and configurable load limits (pending
//!   runs, deck bytes, element count) shed excess work with structured
//!   `overloaded` responses instead of queueing unboundedly.
//!
//! # Example
//!
//! ```
//! use nanosim_serve::{ServiceOptions, SimService};
//!
//! let mut svc = SimService::new(ServiceOptions::default());
//! let deck = "V1 in 0 DC 1\nR1 in out 100\nR2 out 0 100\n.op\n.end\n";
//! let runs = svc.submit(deck)?;
//! let rec = svc.result(runs[0])?;
//! let out = rec.result.as_ref().unwrap().dataset.value("out").unwrap();
//! assert!((out - 0.5).abs() < 1e-12);
//! // Submitting the same deck again answers from the result cache,
//! // bit-identically.
//! let again = svc.submit(deck)?;
//! assert_eq!(svc.stats().result_hits, 1);
//! # let _ = again;
//! # Ok::<(), nanosim_serve::ServeError>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod error;
pub mod json;
pub mod key;
pub mod pool;
pub mod proto;
pub mod service;
pub mod stats;
pub mod store;

pub use error::ServeError;
pub use json::Json;
pub use key::{AnalysisKey, DeckKey, TopologyKey};
pub use pool::SessionPool;
pub use proto::{handle_line, mask_volatile};
pub use service::{expand_axes, BatchRequest, ServiceOptions, SimService, SubmitOptions};
pub use stats::{Histogram, ServeStats};
pub use store::{CacheDisposition, ResultStore, RunId, RunRecord, RunResult, RunStatus};
