//! Structured service errors.
//!
//! Every failure the service can produce — junk protocol input, a deck the
//! parser or preflight linter rejects, an engine that fails to converge, a
//! query for an unknown or evicted run — maps to a [`ServeError`] that
//! renders as a structured JSON object (`kind` + `message` + optional
//! detail). Nothing in the service path panics or exits the process; this
//! type is the contract the junk-input property test locks.

use crate::json::{self, Json};
use nanosim_circuit::CircuitError;
use nanosim_core::SimError;

/// A structured, renderable service failure.
#[derive(Debug, Clone)]
pub enum ServeError {
    /// Malformed request line: invalid JSON or a request-shape violation.
    Protocol {
        /// What was wrong with the request.
        message: String,
    },
    /// The deck text failed netlist parsing or circuit validation.
    Deck {
        /// The underlying circuit error (with line/column when parsing).
        error: CircuitError,
    },
    /// A simulation failure: preflight rejection (carries the full
    /// [`nanosim_circuit::LintReport`]) or an engine error (carries
    /// forensics when available).
    Sim {
        /// The underlying simulation error.
        error: SimError,
    },
    /// The queried run id was never assigned.
    UnknownRun {
        /// The requested id.
        run: u64,
    },
    /// The run finished, but its result payload was evicted from the store.
    Evicted {
        /// The requested id.
        run: u64,
    },
    /// Admission control shed the request: accepting it would exceed a
    /// configured load limit (queued runs, deck size, element count, or
    /// store pressure). The client should back off and retry.
    Overloaded {
        /// Which limit tripped and the observed vs configured values.
        message: String,
    },
}

impl ServeError {
    /// Shorthand for a protocol violation.
    pub fn protocol(message: impl Into<String>) -> ServeError {
        ServeError::Protocol {
            message: message.into(),
        }
    }

    /// Shorthand for an admission-control shed.
    pub fn overloaded(message: impl Into<String>) -> ServeError {
        ServeError::Overloaded {
            message: message.into(),
        }
    }

    /// Machine-readable error class.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Protocol { .. } => "protocol",
            ServeError::Deck { .. } => "deck",
            ServeError::Sim { error } => match error {
                SimError::Preflight(_) => "preflight",
                _ => "sim",
            },
            ServeError::UnknownRun { .. } => "unknown-run",
            ServeError::Evicted { .. } => "evicted",
            ServeError::Overloaded { .. } => "overloaded",
        }
    }

    /// Renders the error as the JSON object embedded in `"error"` fields:
    /// `kind`, `message`, and — when available — a `preflight` lint report
    /// or a `forensics` object.
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("kind".to_string(), Json::str(self.kind())),
            ("message".to_string(), Json::str(self.to_string())),
        ];
        if let ServeError::Sim { error } = self {
            if let Some(report) = error.preflight_report() {
                // The lint report renders itself; its JSON is re-parsed
                // into the value tree so the response stays one document.
                if let Ok(v) = json::parse(&report.to_json()) {
                    members.push(("preflight".to_string(), v));
                }
            }
            if let Some(f) = error.forensics() {
                let worst = f
                    .worst_nodes
                    .iter()
                    .map(|(name, r)| {
                        Json::Obj(vec![
                            ("node".to_string(), Json::str(name.clone())),
                            ("residual".to_string(), Json::Num(*r)),
                        ])
                    })
                    .collect();
                let mut fx = vec![
                    ("worst_nodes".to_string(), Json::Arr(worst)),
                    (
                        "residual_history".to_string(),
                        Json::Arr(f.residual_history.iter().map(|&r| Json::Num(r)).collect()),
                    ),
                    (
                        "rescue_trace".to_string(),
                        Json::str(format!("{:?}", f.rescue_trace)),
                    ),
                ];
                if let Some(i) = f.point_index {
                    fx.push(("point_index".to_string(), Json::from(i)));
                }
                if let Some(v) = f.sweep_value {
                    fx.push(("sweep_value".to_string(), Json::Num(v)));
                }
                members.push(("forensics".to_string(), Json::Obj(fx)));
            }
        }
        Json::Obj(members)
    }

    /// Wraps the error JSON into a complete failed-response line. Load
    /// sheds additionally carry a top-level `"code":"overloaded"` member so
    /// clients can back off without parsing the error body.
    pub fn to_response(&self) -> Json {
        let mut members = vec![("ok".to_string(), Json::Bool(false))];
        if let ServeError::Overloaded { .. } = self {
            members.push(("code".to_string(), Json::str("overloaded")));
        }
        members.push(("error".to_string(), self.to_json()));
        Json::Obj(members)
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Protocol { message } => write!(f, "{message}"),
            ServeError::Deck { error } => write!(f, "{error}"),
            ServeError::Sim { error } => write!(f, "{error}"),
            ServeError::UnknownRun { run } => write!(f, "run {run} does not exist"),
            ServeError::Evicted { run } => {
                write!(f, "run {run} finished but its result was evicted")
            }
            ServeError::Overloaded { message } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CircuitError> for ServeError {
    fn from(error: CircuitError) -> ServeError {
        ServeError::Deck { error }
    }
}

impl From<SimError> for ServeError {
    fn from(error: SimError) -> ServeError {
        ServeError::Sim { error }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_rendering() {
        let e = ServeError::protocol("bad line");
        assert_eq!(e.kind(), "protocol");
        let r = e.to_response().render();
        assert!(r.contains("\"ok\":false") && r.contains("bad line"), "{r}");

        let e = ServeError::UnknownRun { run: 7 };
        assert_eq!(e.kind(), "unknown-run");
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn preflight_errors_carry_the_report() {
        // A deck with a floating island fails preflight under Enforce.
        let deck = nanosim_circuit::parse_netlist(
            "V1 in 0 DC 1\nR1 in 0 50\nR2 a b 10\nR3 b a 10\n.end\n",
        )
        .unwrap();
        let err = nanosim_core::Simulator::new(deck.circuit).unwrap_err();
        let serve: ServeError = err.into();
        assert_eq!(serve.kind(), "preflight");
        let rendered = serve.to_json().render();
        assert!(rendered.contains("\"preflight\""), "{rendered}");
    }
}
