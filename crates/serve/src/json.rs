//! Minimal, dependency-free JSON value type with a strict parser and a
//! deterministic renderer.
//!
//! The workspace has no serde; this module is the service layer's wire
//! format. Design points:
//!
//! * Objects preserve insertion order (`Vec<(String, Json)>`), so rendering
//!   is deterministic — a requirement for the golden request corpus.
//! * Numbers render via Rust's shortest-round-trip `f64` formatting, so a
//!   dataset column survives a JSON round trip bit for bit.
//! * The parser is recursion-depth-limited and returns positioned errors;
//!   arbitrary junk input can never panic it (property-tested from the
//!   service integration suite).

use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts (arrays/objects combined).
const MAX_DEPTH: usize = 64;

/// A JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Member lookup on an object (`None` for other variants or a missing
    /// key; first match wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer (rejects fractions,
    /// negatives and values beyond exact `f64` integer range).
    pub fn as_u64(&self) -> Option<u64> {
        let v = self.as_f64()?;
        if v.fract() == 0.0 && (0.0..9.0e15).contains(&v) {
            Some(v as u64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The member list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Renders the value as compact JSON (no whitespace), deterministically.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => write_number(*v, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

/// JSON has no NaN/Infinity; non-finite values render as `null` (they only
/// appear in health telemetry, never in dataset columns).
fn write_number(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    // Integral values in exact-i64 range print without a fraction (counters
    // read as integers); everything else uses Rust's shortest
    // round-trip formatting, so `parse(render(v))` reproduces the exact
    // f64 — cached-result responses stay bit-identical to cold ones.
    // `-0.0` keeps its sign via the `{:?}` path.
    if v.fract() == 0.0 && v.abs() < 9.0e15 && !(v == 0.0 && v.is_sign_negative()) {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v:?}");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document. Trailing non-whitespace is an error.
///
/// # Errors
/// Returns a human-readable message with the byte offset of the problem.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        match self.peek() {
            None => Err("unexpected end of input".into()),
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected `{}` at byte {}", b as char, self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        let v: f64 = text
            .parse()
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))?;
        if !v.is_finite() {
            return Err(format!("number out of range at byte {start}"));
        }
        Ok(Json::Num(v))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ascii \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("invalid \\u escape `{hex}`"))?;
                            // Lone surrogates map to the replacement char
                            // (never panic on junk input).
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance by one full UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = match std::str::from_utf8(rest) {
                        Ok(s) => s,
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&rest[..e.valid_up_to()]).expect("validated")
                        }
                        Err(_) => return Err(format!("invalid utf-8 at byte {}", self.pos)),
                    };
                    let c = s.chars().next().expect("nonempty");
                    if (c as u32) < 0x20 {
                        return Err(format!("raw control character at byte {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let src =
            r#"{"cmd":"submit","deck":"V1 in 0 DC 1\n","n":3,"ok":true,"xs":[1.5,-2e-3,null]}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("cmd").unwrap().as_str(), Some("submit"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for v in [0.1, 1.0 / 3.0, 6.02214076e23, -1e-300, f64::MIN_POSITIVE] {
            let rendered = Json::Num(v).render();
            let back = parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{rendered}");
        }
    }

    #[test]
    fn rejects_garbage_without_panicking() {
        for junk in [
            "",
            "{",
            "}",
            "nul",
            "\"",
            "{\"a\"}",
            "[1,]",
            "[1 2]",
            "1e999",
            "{\"a\":}",
            "\u{7f}zz",
            "\"\\u12\"",
            "--3",
        ] {
            assert!(parse(junk).is_err(), "should reject {junk:?}");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn escapes_render_safely() {
        let v = Json::str("a\"b\\c\nd\u{1}");
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(parse(&v.render()).unwrap(), v);
    }
}
