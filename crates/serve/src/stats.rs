//! Service-level telemetry: request counters, cache hit/miss accounting at
//! both cache levels (symbolic/session and full-result), eviction counts,
//! and per-analysis wall-clock histograms.

use crate::json::Json;
use std::collections::BTreeMap;
use std::time::Duration;

/// Log-scale wall-clock histogram: bucket `i` counts runs with latency
/// below `10^i × 100 µs` (last bucket is open-ended).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; Histogram::BUCKETS],
}

impl Histogram {
    /// Number of buckets.
    pub const BUCKETS: usize = 6;

    /// Upper bounds (exclusive) in microseconds; the last bucket catches
    /// everything slower.
    pub const BOUNDS_US: [u64; Histogram::BUCKETS - 1] = [100, 1_000, 10_000, 100_000, 1_000_000];

    /// Human-readable bucket labels, aligned with the JSON rendering.
    pub const LABELS: [&'static str; Histogram::BUCKETS] =
        ["<100us", "<1ms", "<10ms", "<100ms", "<1s", ">=1s"];

    /// Records one observation.
    pub fn record(&mut self, elapsed: Duration) {
        let us = elapsed.as_micros();
        let bucket = Histogram::BOUNDS_US
            .iter()
            .position(|&bound| us < u128::from(bound))
            .unwrap_or(Histogram::BUCKETS - 1);
        self.counts[bucket] += 1;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Per-bucket counts, fastest bucket first.
    pub fn counts(&self) -> &[u64; Histogram::BUCKETS] {
        &self.counts
    }

    /// Renders as `{"<100us":n, ..., ">=1s":n}` (insertion-ordered).
    pub fn to_json(&self) -> Json {
        Json::Obj(
            Histogram::LABELS
                .iter()
                .zip(self.counts.iter())
                .map(|(label, &n)| ((*label).to_string(), Json::from(n)))
                .collect(),
        )
    }
}

/// Cumulative service telemetry.
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Protocol requests handled (every JSON line, including invalid ones).
    pub requests: u64,
    /// Runs registered (submits and batch grid points, including failures).
    pub runs: u64,
    /// Batch requests accepted.
    pub batches: u64,
    /// Structured error responses produced.
    pub errors: u64,
    /// Result-cache hits: answered bit-identically with no engine run.
    pub result_hits: u64,
    /// Result-cache misses: an engine actually ran.
    pub result_misses: u64,
    /// Session-pool hits on the identical deck (no rebind needed).
    pub session_same_deck: u64,
    /// Session-pool warm rebinds: symbolic analysis reused across decks.
    pub session_warm: u64,
    /// Sessions built cold (symbolic analysis paid).
    pub session_cold: u64,
    /// Result payloads evicted by the store's LRU capacity policy.
    pub store_evictions: u64,
    /// Full (symbolic + numeric) factorizations paid by engine runs.
    pub full_factors: u64,
    /// Values-only refactorizations performed by engine runs.
    pub refactors: u64,
    /// Triangular solves served by the f32 panel kernels (mixed precision).
    pub f32_panel_solves: u64,
    /// Mixed-precision solves that fell back to the full f64 path because
    /// iterative refinement stopped contracting.
    pub precision_fallbacks: u64,
    /// Ensemble chunks factored as one interleaved multi-matrix batch.
    pub batched_factors: u64,
    /// Requests shed by admission control (`overloaded` responses).
    pub shed: u64,
    /// Runs that failed with [`nanosim_core::SimError::BudgetExceeded`].
    pub budget_exceeded: u64,
    /// Budget-exceeded runs whose stop was specifically the wall-clock
    /// deadline (a subset of `budget_exceeded`).
    pub deadline_timeouts: u64,
    /// Runs cancelled before completion (explicit `cancel` command or a
    /// tripped cancel token).
    pub cancelled: u64,
    /// Per-analysis wall-clock histograms (key: analysis tag).
    pub wall_clock: BTreeMap<&'static str, Histogram>,
}

impl ServeStats {
    /// Records one finished engine run.
    pub fn record_run(&mut self, analysis: &'static str, elapsed: Duration) {
        self.wall_clock.entry(analysis).or_default().record(elapsed);
    }

    /// Renders the full telemetry object (stable field order).
    pub fn to_json(&self) -> Json {
        let histograms = Json::Obj(
            self.wall_clock
                .iter()
                .map(|(tag, h)| ((*tag).to_string(), h.to_json()))
                .collect(),
        );
        Json::Obj(vec![
            ("requests".to_string(), Json::from(self.requests)),
            ("runs".to_string(), Json::from(self.runs)),
            ("batches".to_string(), Json::from(self.batches)),
            ("errors".to_string(), Json::from(self.errors)),
            ("result_hits".to_string(), Json::from(self.result_hits)),
            ("result_misses".to_string(), Json::from(self.result_misses)),
            (
                "session_same_deck".to_string(),
                Json::from(self.session_same_deck),
            ),
            ("session_warm".to_string(), Json::from(self.session_warm)),
            ("session_cold".to_string(), Json::from(self.session_cold)),
            (
                "store_evictions".to_string(),
                Json::from(self.store_evictions),
            ),
            ("full_factors".to_string(), Json::from(self.full_factors)),
            ("refactors".to_string(), Json::from(self.refactors)),
            (
                "f32_panel_solves".to_string(),
                Json::from(self.f32_panel_solves),
            ),
            (
                "precision_fallbacks".to_string(),
                Json::from(self.precision_fallbacks),
            ),
            (
                "batched_factors".to_string(),
                Json::from(self.batched_factors),
            ),
            ("shed".to_string(), Json::from(self.shed)),
            (
                "budget_exceeded".to_string(),
                Json::from(self.budget_exceeded),
            ),
            (
                "deadline_timeouts".to_string(),
                Json::from(self.deadline_timeouts),
            ),
            ("cancelled".to_string(), Json::from(self.cancelled)),
            ("wall_clock".to_string(), histograms),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_latency() {
        let mut h = Histogram::default();
        h.record(Duration::from_micros(5)); // <100us
        h.record(Duration::from_micros(99)); // <100us
        h.record(Duration::from_micros(100)); // <1ms (bound is exclusive)
        h.record(Duration::from_millis(5)); // <10ms
        h.record(Duration::from_secs(2)); // >=1s
        assert_eq!(h.counts(), &[2, 1, 1, 0, 0, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn stats_render_all_counters_and_histograms() {
        let mut s = ServeStats {
            requests: 3,
            result_hits: 1,
            ..ServeStats::default()
        };
        s.record_run("dc", Duration::from_millis(2));
        s.record_run("dc", Duration::from_micros(50));
        s.record_run("op", Duration::from_micros(50));
        let j = s.to_json().render();
        assert!(j.contains("\"requests\":3"), "{j}");
        assert!(j.contains("\"result_hits\":1"), "{j}");
        assert!(
            j.contains("\"dc\":{\"<100us\":1,\"<1ms\":0,\"<10ms\":1"),
            "{j}"
        );
        assert!(j.contains("\"op\":"), "{j}");
    }
}
