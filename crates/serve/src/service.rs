//! The in-process simulation service: accepts deck text, runs analyses
//! through pooled sessions, answers repeats from the result cache, and
//! registers every run in the [`ResultStore`].

use crate::error::ServeError;
use crate::key::{AnalysisKey, DeckKey, TopologyKey};
use crate::pool::SessionPool;
use crate::stats::ServeStats;
use crate::store::{CacheDisposition, ResultStore, RunId, RunRecord, RunResult, RunStatus};
use nanosim_circuit::{parse_netlist_with_params, AnalysisDirective, ParsedDeck};
use nanosim_core::swec::SwecOptions;
use nanosim_core::{Analysis, Budget, BudgetStop, CancelToken, Dataset, ExecPlan, SimOptions};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceOptions {
    /// Options for every pooled [`nanosim_core::Simulator`] session.
    pub sim: SimOptions,
    /// Maximum pooled sessions (LRU-evicted beyond this).
    pub session_capacity: usize,
    /// Result-store payload capacity in approximate bytes.
    pub store_capacity_bytes: usize,
    /// Maximum entries in the full-result cache.
    pub result_cache_capacity: usize,
    /// Default execution plan for sweep analyses ([`ExecPlan::Serial`]
    /// unless configured; per-request `workers` overrides it).
    pub plan: ExecPlan,
    /// Default run budget applied to every engine run; unlimited unless
    /// configured. Per-request `timeout_ms` / `budget` members tighten it.
    pub budget: Budget,
    /// Admission control: maximum pending (queued + running) runs,
    /// counting the runs the incoming request would register. Requests
    /// past the limit are shed with an `overloaded` response.
    pub max_pending_runs: usize,
    /// Admission control: maximum deck text size in bytes.
    pub max_deck_bytes: usize,
    /// Admission control: maximum circuit elements per deck.
    pub max_deck_elements: usize,
    /// Chaos-testing seed: when set, every engine run is armed with a
    /// seeded [`nanosim_core::FaultPlan`] (stalls on even run ids, pivot/
    /// matrix faults on odd ones) derived from this seed and the run id.
    /// Results are never cached under chaos. CI uses this to prove the
    /// service degrades structurally — never panics — under fault storms
    /// combined with tight budgets.
    pub chaos_seed: Option<u64>,
}

impl Default for ServiceOptions {
    fn default() -> ServiceOptions {
        ServiceOptions {
            sim: SimOptions::default(),
            session_capacity: 8,
            store_capacity_bytes: 64 << 20,
            result_cache_capacity: 256,
            plan: ExecPlan::Serial,
            budget: Budget::unlimited(),
            max_pending_runs: 256,
            max_deck_bytes: 1 << 20,
            max_deck_elements: 100_000,
            chaos_seed: None,
        }
    }
}

/// Per-request submit options: `.param` overrides, worker counts, run
/// budgets, and queue-only registration.
#[derive(Debug, Clone, Default)]
pub struct SubmitOptions {
    /// `.param` overrides applied during parsing.
    pub overrides: Vec<(String, f64)>,
    /// Worker-count override for sweep analyses (`Some(0)` = auto).
    pub workers: Option<usize>,
    /// Per-request deadline, intersected with the service budget's.
    pub timeout: Option<Duration>,
    /// Per-request budget (replaces the service default; `timeout` still
    /// applies on top).
    pub budget: Option<Budget>,
    /// Opt into partial results: a budget-killed run salvages its accepted
    /// prefix as a truncated dataset instead of failing.
    pub allow_partial: bool,
    /// Register the runs [`crate::store::RunStatus::Queued`] without
    /// executing them; start each later with [`SimService::run_queued`]
    /// (or drop it with [`SimService::cancel`]).
    pub hold: bool,
}

/// A held (queued, not yet executed) run's replay context.
#[derive(Debug, Clone)]
struct HeldRun {
    deck: String,
    overrides: Vec<(String, f64)>,
    directive: usize,
    plan: ExecPlan,
    budget: Budget,
    allow_partial: bool,
}

/// A batch request: one deck fanned out over a parameter grid. Every grid
/// point is parsed with its `.param` overrides and produces one run per
/// analysis directive in the deck, all sharing pooled sessions (the first
/// point pays the symbolic analysis; the rest rebind warm).
#[derive(Debug, Clone)]
pub struct BatchRequest {
    /// Deck text (with `.param` globals referenced via `{name}`).
    pub deck: String,
    /// Override sets, one per grid point. An empty grid means a single
    /// point with no overrides.
    pub grid: Vec<Vec<(String, f64)>>,
    /// Optional worker-count override for sweep analyses
    /// (`Some(0)` = auto).
    pub workers: Option<usize>,
}

/// Expands named parameter axes into their cartesian product, first axis
/// slowest. `[("r", [1,2]), ("c", [5,6])]` yields `r=1,c=5`, `r=1,c=6`,
/// `r=2,c=5`, `r=2,c=6`.
pub fn expand_axes(axes: &[(String, Vec<f64>)]) -> Vec<Vec<(String, f64)>> {
    let mut grid: Vec<Vec<(String, f64)>> = vec![Vec::new()];
    for (name, values) in axes {
        let mut next = Vec::with_capacity(grid.len() * values.len().max(1));
        for point in &grid {
            for &v in values {
                let mut p = point.clone();
                p.push((name.clone(), v));
                next.push(p);
            }
        }
        grid = next;
    }
    grid
}

/// The in-process simulation service. See the crate docs for the
/// subsystem layout; [`crate::proto`] exposes it as a JSON-lines protocol.
#[derive(Debug)]
pub struct SimService {
    opts: ServiceOptions,
    pool: SessionPool,
    store: ResultStore,
    result_cache: HashMap<(DeckKey, AnalysisKey), Dataset>,
    /// Result-cache keys, least-recently-used first.
    cache_lru: Vec<(DeckKey, AnalysisKey)>,
    /// Replay context of held (queued-only) runs.
    held: HashMap<RunId, HeldRun>,
    stats: ServeStats,
}

impl Default for SimService {
    fn default() -> SimService {
        SimService::new(ServiceOptions::default())
    }
}

impl SimService {
    /// Creates a service with the given configuration.
    pub fn new(opts: ServiceOptions) -> SimService {
        SimService {
            pool: SessionPool::new(opts.session_capacity),
            store: ResultStore::new(opts.store_capacity_bytes),
            result_cache: HashMap::new(),
            cache_lru: Vec::new(),
            held: HashMap::new(),
            stats: ServeStats::default(),
            opts,
        }
    }

    /// Submits a deck: parses it and runs every analysis directive it
    /// declares, returning one [`RunId`] per directive (engine failures
    /// are recorded per run, not returned here).
    ///
    /// # Errors
    /// Returns a structured [`ServeError`] when the deck fails to parse or
    /// declares no analyses — no runs are registered in that case.
    pub fn submit(&mut self, deck: &str) -> Result<Vec<RunId>, ServeError> {
        self.submit_opts(deck, &[], None)
    }

    /// [`SimService::submit`] with `.param` overrides and an optional
    /// worker-count override for sweep analyses (`Some(0)` = auto-size).
    ///
    /// # Errors
    /// Same contract as [`SimService::submit`].
    pub fn submit_opts(
        &mut self,
        deck: &str,
        overrides: &[(String, f64)],
        workers: Option<usize>,
    ) -> Result<Vec<RunId>, ServeError> {
        self.submit_with(
            deck,
            &SubmitOptions {
                overrides: overrides.to_vec(),
                workers,
                ..SubmitOptions::default()
            },
        )
    }

    /// Sheds the request and counts it in the telemetry.
    fn shed(&mut self, message: String) -> ServeError {
        self.stats.shed += 1;
        ServeError::overloaded(message)
    }

    /// The effective budget of one request: the per-request budget (or the
    /// service default) intersected with the per-request deadline.
    fn effective_budget(&self, opts: &SubmitOptions) -> Budget {
        let mut b = opts.budget.unwrap_or(self.opts.budget);
        if let Some(t) = opts.timeout {
            b.deadline = Some(b.deadline.map_or(t, |d| d.min(t)));
        }
        b
    }

    /// Full submit entry point: admission control, registration, and —
    /// unless `opts.hold` is set — execution of every directive.
    ///
    /// # Errors
    /// [`ServeError::Overloaded`] when an admission limit trips (nothing
    /// is registered), plus the [`SimService::submit`] contract.
    pub fn submit_with(
        &mut self,
        deck: &str,
        opts: &SubmitOptions,
    ) -> Result<Vec<RunId>, ServeError> {
        // Admission control, cheapest gate first: everything is checked
        // before any run is registered, so a shed request leaves no trace
        // beyond the counter.
        if deck.len() > self.opts.max_deck_bytes {
            let (got, max) = (deck.len(), self.opts.max_deck_bytes);
            return Err(self.shed(format!("deck is {got} bytes (limit {max})")));
        }
        let parsed = parse_netlist_with_params(deck, &opts.overrides)?;
        if parsed.analyses.is_empty() {
            return Err(ServeError::protocol(
                "deck declares no analyses (.op/.dc/.tran)",
            ));
        }
        let elements = parsed.circuit.elements().len();
        if elements > self.opts.max_deck_elements {
            let max = self.opts.max_deck_elements;
            return Err(self.shed(format!("deck has {elements} elements (limit {max})")));
        }
        let pending = self.store.pending() + parsed.analyses.len();
        if pending > self.opts.max_pending_runs {
            let max = self.opts.max_pending_runs;
            return Err(self.shed(format!("{pending} runs pending (limit {max})")));
        }

        let plan = match opts.workers {
            Some(n) => ExecPlan::sharded(n),
            None => self.opts.plan,
        };
        let budget = self.effective_budget(opts);
        let deck_key = DeckKey::of(&parsed.circuit);
        let topology = TopologyKey::of(&parsed.circuit);

        // Register every directive before running, so a multi-analysis
        // deck's later runs are observable as queued while earlier ones
        // execute.
        let ids: Vec<RunId> = parsed
            .analyses
            .iter()
            .map(|d| {
                self.stats.runs += 1;
                self.store
                    .create(deck_key, AnalysisKey::of(d), directive_tag(d))
            })
            .collect();
        if opts.hold {
            for (di, id) in ids.iter().enumerate() {
                self.held.insert(
                    *id,
                    HeldRun {
                        deck: deck.to_string(),
                        overrides: opts.overrides.clone(),
                        directive: di,
                        plan,
                        budget,
                        allow_partial: opts.allow_partial,
                    },
                );
            }
            return Ok(ids);
        }
        for (id, directive) in ids.iter().zip(parsed.analyses.iter()) {
            self.run_one(
                *id,
                &parsed,
                directive,
                deck_key,
                topology,
                plan,
                budget,
                opts.allow_partial,
            );
        }
        Ok(ids)
    }

    /// Starts a held (queued) run registered via [`SubmitOptions::hold`].
    ///
    /// # Errors
    /// [`ServeError::UnknownRun`] for never-assigned ids; a protocol error
    /// when the run is not a held queued run (already started, finished,
    /// or cancelled).
    pub fn run_queued(&mut self, id: RunId) -> Result<(), ServeError> {
        let rec = self
            .store
            .get(id)
            .ok_or(ServeError::UnknownRun { run: id.0 })?;
        if !matches!(rec.status, RunStatus::Queued) {
            return Err(ServeError::protocol(format!(
                "run {id} is not queued (status: {})",
                rec.status.tag()
            )));
        }
        let held = self
            .held
            .remove(&id)
            .ok_or_else(|| ServeError::protocol(format!("run {id} was not submitted with hold")))?;
        // Replay the parse; the deck was accepted at submit time, so this
        // can only fail if the service is misused across incompatible
        // versions — surface that as a failed run, not a panic.
        let parsed = match parse_netlist_with_params(&held.deck, &held.overrides) {
            Ok(p) => p,
            Err(e) => {
                self.store.fail(id, nanosim_core::SimError::from(e));
                return Ok(());
            }
        };
        let Some(directive) = parsed.analyses.get(held.directive).cloned() else {
            self.store.fail(
                id,
                nanosim_core::SimError::InvalidConfig {
                    context: format!("held directive {} vanished on replay", held.directive),
                },
            );
            return Ok(());
        };
        let deck_key = DeckKey::of(&parsed.circuit);
        let topology = TopologyKey::of(&parsed.circuit);
        self.run_one(
            id,
            &parsed,
            &directive,
            deck_key,
            topology,
            held.plan,
            held.budget,
            held.allow_partial,
        );
        Ok(())
    }

    /// Cancels a pending (queued or running) run: held runs are dropped
    /// from the queue and marked [`RunStatus::Cancelled`]. Returns whether
    /// the run transitioned (terminal runs return `false`).
    ///
    /// # Errors
    /// [`ServeError::UnknownRun`] when the id was never assigned.
    pub fn cancel(&mut self, id: RunId) -> Result<bool, ServeError> {
        self.store
            .get(id)
            .ok_or(ServeError::UnknownRun { run: id.0 })?;
        let cancelled = self.store.cancel(id);
        if cancelled {
            self.held.remove(&id);
            self.stats.cancelled += 1;
        }
        Ok(cancelled)
    }

    /// Fans a batch request's parameter grid into individual runs: one
    /// submit per grid point, all sharing pooled sessions.
    ///
    /// # Errors
    /// Returns a structured [`ServeError`] when the deck fails to parse
    /// (uniform across grid points, so the whole batch is rejected).
    pub fn batch(&mut self, req: &BatchRequest) -> Result<Vec<RunId>, ServeError> {
        self.stats.batches += 1;
        let empty = vec![Vec::new()];
        let grid: &[Vec<(String, f64)>] = if req.grid.is_empty() {
            &empty
        } else {
            &req.grid
        };
        let mut ids = Vec::new();
        for point in grid {
            ids.extend(self.submit_opts(&req.deck, point, req.workers)?);
        }
        Ok(ids)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_one(
        &mut self,
        id: RunId,
        parsed: &ParsedDeck,
        directive: &AnalysisDirective,
        deck_key: DeckKey,
        topology: TopologyKey,
        plan: ExecPlan,
        budget: Budget,
        allow_partial: bool,
    ) {
        let analysis_key = AnalysisKey::of(directive);
        let tag = directive_tag(directive);
        let reserve = projected_bytes(directive, parsed.circuit.elements().len());
        self.store.start(id, reserve);
        let t0 = Instant::now();

        // Level 1: the full-result cache. Hits are bit-identical to cold
        // runs because every engine is deterministic for a given deck.
        if let Some(ds) = self.result_cache.get(&(deck_key, analysis_key)) {
            let dataset = ds.clone();
            self.touch_cache_key((deck_key, analysis_key));
            self.stats.result_hits += 1;
            self.stats.record_run(tag, t0.elapsed());
            self.store
                .finish(id, RunResult { dataset }, CacheDisposition::ResultHit, 0, 0);
            self.stats.store_evictions = self.store.evictions();
            return;
        }
        self.stats.result_misses += 1;

        // Level 2: the session pool (symbolic/topology cache).
        let checkout = self
            .pool
            .checkout(topology, deck_key, &parsed.circuit, &self.opts.sim);
        let (sim, disposition) = match checkout {
            Ok(pair) => pair,
            Err(e) => {
                self.store.fail(id, e);
                return;
            }
        };
        match disposition {
            CacheDisposition::Cold => self.stats.session_cold += 1,
            CacheDisposition::WarmSession => self.stats.session_warm += 1,
            CacheDisposition::SameDeck => self.stats.session_same_deck += 1,
            CacheDisposition::ResultHit => unreachable!("pool never reports result hits"),
        }

        let swec = SwecOptions {
            allow_partial,
            ..SwecOptions::default()
        };
        let mut analysis = Analysis::from_directive(directive, &swec);
        if let Analysis::DcSweep(ref mut sweep) = analysis {
            sweep.plan = plan;
        }
        if let Some(seed) = self.opts.chaos_seed {
            let n = parsed.circuit.elements().len().max(1);
            let plan = if id.0 % 2 == 0 {
                nanosim_core::FaultPlan::seeded_stalls(seed ^ id.0, 8, 2, 200_000)
            } else {
                nanosim_core::FaultPlan::seeded(seed ^ id.0, n, 8, 2)
            };
            sim.arm_faults(plan);
        }
        sim.set_budget(budget);
        sim.set_cancel_token(CancelToken::new());
        let outcome = sim.run(analysis);
        // Pooled sessions outlive the request; never let one run's budget
        // leak into the next checkout.
        sim.set_budget(Budget::unlimited());
        match outcome {
            Ok(dataset) => {
                let elapsed = t0.elapsed();
                self.stats.full_factors += dataset.stats.full_factors;
                self.stats.refactors += dataset.stats.refactors;
                self.stats.f32_panel_solves += dataset.stats.f32_panel_solves;
                self.stats.precision_fallbacks += dataset.stats.precision_fallbacks;
                self.stats.batched_factors += dataset.stats.batched_factors;
                self.stats.record_run(tag, elapsed);
                let (ff, rf) = (dataset.stats.full_factors, dataset.stats.refactors);
                // Only complete, unbudgeted runs may seed the result cache:
                // a truncated prefix or a budget-limited dataset answering a
                // later unlimited submit would poison bit-identity.
                if budget.is_unlimited()
                    && !dataset.is_truncated()
                    && self.opts.chaos_seed.is_none()
                {
                    self.insert_cached((deck_key, analysis_key), dataset.clone());
                }
                self.store
                    .finish(id, RunResult { dataset }, disposition, ff, rf);
                self.stats.store_evictions = self.store.evictions();
            }
            Err(e) => {
                match e.budget_stop() {
                    Some(BudgetStop::Cancelled) => {
                        self.stats.cancelled += 1;
                        self.store.cancel(id);
                        return;
                    }
                    Some(stop) => {
                        self.stats.budget_exceeded += 1;
                        if matches!(stop, BudgetStop::DeadlineExceeded) {
                            self.stats.deadline_timeouts += 1;
                        }
                    }
                    None => {}
                }
                self.store.fail(id, e);
            }
        }
    }

    fn touch_cache_key(&mut self, key: (DeckKey, AnalysisKey)) {
        if let Some(pos) = self.cache_lru.iter().position(|&k| k == key) {
            let key = self.cache_lru.remove(pos);
            self.cache_lru.push(key);
        }
    }

    fn insert_cached(&mut self, key: (DeckKey, AnalysisKey), dataset: Dataset) {
        if self.result_cache.insert(key, dataset).is_none() {
            self.cache_lru.push(key);
        } else {
            self.touch_cache_key(key);
        }
        while self.cache_lru.len() > self.opts.result_cache_capacity.max(1) {
            let victim = self.cache_lru.remove(0);
            self.result_cache.remove(&victim);
        }
    }

    /// Looks up a run's registry record (any lifecycle state).
    ///
    /// # Errors
    /// [`ServeError::UnknownRun`] when the id was never assigned.
    pub fn status(&self, id: RunId) -> Result<&RunRecord, ServeError> {
        self.store
            .get(id)
            .ok_or(ServeError::UnknownRun { run: id.0 })
    }

    /// Fetches a run's record for result delivery, refreshing its LRU
    /// position. Pending and failed runs return their record (the caller
    /// renders status/error); a finished run whose payload was evicted is
    /// a structured error.
    ///
    /// # Errors
    /// [`ServeError::UnknownRun`] / [`ServeError::Evicted`].
    pub fn result(&mut self, id: RunId) -> Result<&RunRecord, ServeError> {
        let rec = self
            .store
            .touch(id)
            .ok_or(ServeError::UnknownRun { run: id.0 })?;
        if rec.evicted && rec.result.is_none() {
            return Err(ServeError::Evicted { run: id.0 });
        }
        Ok(rec)
    }

    /// Drops a run's result payload (also removing it from the result
    /// cache, so a later identical submit re-runs the engine). Returns
    /// whether a payload was present.
    ///
    /// # Errors
    /// [`ServeError::UnknownRun`] when the id was never assigned.
    pub fn evict(&mut self, id: RunId) -> Result<bool, ServeError> {
        let rec = self
            .store
            .get(id)
            .ok_or(ServeError::UnknownRun { run: id.0 })?;
        let key = (rec.deck_key, rec.analysis_key);
        if self.result_cache.remove(&key).is_some() {
            self.cache_lru.retain(|&k| k != key);
        }
        Ok(self.store.evict(id))
    }

    /// Cumulative service telemetry.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Mutable telemetry access for the protocol layer (request/error
    /// counting lives there).
    pub fn stats_mut(&mut self) -> &mut ServeStats {
        &mut self.stats
    }

    /// Live pooled sessions.
    pub fn sessions(&self) -> usize {
        self.pool.len()
    }

    /// Approximate bytes of stored result payloads.
    pub fn store_bytes(&self) -> usize {
        self.store.bytes()
    }

    /// Runs ever registered.
    pub fn runs(&self) -> usize {
        self.store.runs()
    }

    /// Entries currently in the full-result cache.
    pub fn cached_results(&self) -> usize {
        self.result_cache.len()
    }
}

/// Projected result-payload size of a directive, reserved in the store
/// while the run executes so concurrent submissions see the pressure. An
/// estimate (the adaptive transient controller picks its own step count),
/// so it only has to be the right order of magnitude: points × columns ×
/// 8 bytes, plus a fixed overhead for names and stats.
fn projected_bytes(d: &AnalysisDirective, elements: usize) -> usize {
    let points = match d {
        AnalysisDirective::Op => 1.0,
        AnalysisDirective::Tran { tstep, tstop } => {
            if *tstep > 0.0 {
                (tstop / tstep).round().max(1.0)
            } else {
                1.0
            }
        }
        AnalysisDirective::Dc {
            start, stop, step, ..
        } => {
            if *step != 0.0 {
                ((stop - start) / step).abs().round() + 1.0
            } else {
                1.0
            }
        }
    };
    let cols = elements + 2;
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let points = points.min(1e9) as usize;
    points.saturating_mul(cols).saturating_mul(8) + 512
}

/// Analysis tag of a parsed directive, aligned with
/// [`nanosim_core::Analysis::tag`].
fn directive_tag(d: &AnalysisDirective) -> &'static str {
    match d {
        AnalysisDirective::Op => "op",
        AnalysisDirective::Tran { .. } => "tran",
        AnalysisDirective::Dc { .. } => "dc",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIVIDER: &str = "V1 in 0 DC 1\nR1 in out 100\nR2 out 0 100\n.op\n.end\n";

    #[test]
    fn submit_runs_and_caches() {
        let mut svc = SimService::default();
        let ids = svc.submit(DIVIDER).unwrap();
        assert_eq!(ids, vec![RunId(1)]);
        let rec = svc.result(RunId(1)).unwrap();
        assert_eq!(rec.status.tag(), "done");
        assert_eq!(rec.cache, CacheDisposition::Cold);
        let v = rec.result.as_ref().unwrap().dataset.value("out").unwrap();
        assert!((v - 0.5).abs() < 1e-12);

        // Second submit: result-cache hit, bit-identical.
        let ids2 = svc.submit(DIVIDER).unwrap();
        assert_eq!(ids2, vec![RunId(2)]);
        let rec2 = svc.result(RunId(2)).unwrap();
        assert_eq!(rec2.cache, CacheDisposition::ResultHit);
        assert_eq!(svc.stats().result_hits, 1);
        assert_eq!(svc.stats().result_misses, 1);
    }

    #[test]
    fn expand_axes_is_cartesian_first_axis_slowest() {
        let grid = expand_axes(&[
            ("r".to_string(), vec![1.0, 2.0]),
            ("c".to_string(), vec![5.0]),
        ]);
        assert_eq!(grid.len(), 2);
        assert_eq!(
            grid[0],
            vec![("r".to_string(), 1.0), ("c".to_string(), 5.0)]
        );
        assert_eq!(
            grid[1],
            vec![("r".to_string(), 2.0), ("c".to_string(), 5.0)]
        );
        assert_eq!(expand_axes(&[]), vec![Vec::new()]);
    }

    #[test]
    fn deck_without_analyses_is_rejected() {
        let mut svc = SimService::default();
        let err = svc.submit("V1 in 0 DC 1\nR1 in 0 100\n.end\n").unwrap_err();
        assert_eq!(err.kind(), "protocol");
        assert_eq!(svc.runs(), 0);
    }
}
