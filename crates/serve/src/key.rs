//! Cache keys: value-sensitive deck keys, pattern-only topology keys, and
//! canonical analysis keys.
//!
//! The service maintains two cache levels with different invalidation
//! granularity, so the keys are deliberately different hashes of the same
//! parsed deck:
//!
//! * [`DeckKey`] (from [`nanosim_circuit::deck_fingerprint`]) changes when
//!   *any* value changes — it guards the full result cache, where a hit
//!   must be bit-identical to a cold run.
//! * [`TopologyKey`] (from [`nanosim_circuit::topology_fingerprint`])
//!   ignores values — it guards the session pool, where circuits that
//!   share an MNA sparsity pattern share symbolic LU analyses and
//!   supernode plans via [`nanosim_core::Simulator::rebind`].
//! * [`AnalysisKey`] canonically encodes an [`AnalysisDirective`]. The
//!   execution plan is deliberately *not* part of the key: results are
//!   bit-identical across worker counts, so a sweep sharded 4 ways may
//!   answer a serial request from cache.

use nanosim_circuit::{deck_fingerprint, fnv1a, fnv1a_extend, topology_fingerprint};
use nanosim_circuit::{AnalysisDirective, Circuit};

/// Value-sensitive fingerprint of a flattened circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeckKey(pub u64);

/// Sparsity-pattern-only fingerprint of a flattened circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TopologyKey(pub u64);

/// Canonical fingerprint of one analysis directive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AnalysisKey(pub u64);

impl DeckKey {
    /// Fingerprints a flattened circuit (value-sensitive).
    #[must_use]
    pub fn of(circuit: &Circuit) -> DeckKey {
        DeckKey(deck_fingerprint(circuit))
    }
}

impl TopologyKey {
    /// Fingerprints a flattened circuit's sparsity pattern.
    #[must_use]
    pub fn of(circuit: &Circuit) -> TopologyKey {
        TopologyKey(topology_fingerprint(circuit))
    }
}

impl AnalysisKey {
    /// Fingerprints an analysis directive (kind + numeric parameters +
    /// swept source name; no execution plan).
    #[must_use]
    pub fn of(directive: &AnalysisDirective) -> AnalysisKey {
        let mut h = fnv1a(b"nanosim-analysis-v1");
        match directive {
            AnalysisDirective::Op => {
                h = fnv1a_extend(h, b"op");
            }
            AnalysisDirective::Tran { tstep, tstop } => {
                h = fnv1a_extend(h, b"tran");
                h = fnv1a_extend(h, &tstep.to_bits().to_le_bytes());
                h = fnv1a_extend(h, &tstop.to_bits().to_le_bytes());
            }
            AnalysisDirective::Dc {
                source,
                start,
                stop,
                step,
            } => {
                h = fnv1a_extend(h, b"dc");
                h = fnv1a_extend(h, source.to_ascii_lowercase().as_bytes());
                h = fnv1a_extend(h, &start.to_bits().to_le_bytes());
                h = fnv1a_extend(h, &stop.to_bits().to_le_bytes());
                h = fnv1a_extend(h, &step.to_bits().to_le_bytes());
            }
        }
        AnalysisKey(h)
    }
}

impl std::fmt::Display for DeckKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl std::fmt::Display for TopologyKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl std::fmt::Display for AnalysisKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analysis_keys_separate_kinds_and_params() {
        let op = AnalysisKey::of(&AnalysisDirective::Op);
        let dc = AnalysisKey::of(&AnalysisDirective::Dc {
            source: "V1".into(),
            start: 0.0,
            stop: 1.0,
            step: 0.1,
        });
        let dc2 = AnalysisKey::of(&AnalysisDirective::Dc {
            source: "V1".into(),
            start: 0.0,
            stop: 1.0,
            step: 0.05,
        });
        let tran = AnalysisKey::of(&AnalysisDirective::Tran {
            tstep: 1e-12,
            tstop: 1e-9,
        });
        assert_ne!(op, dc);
        assert_ne!(dc, dc2);
        assert_ne!(dc, tran);
    }

    #[test]
    fn analysis_key_is_case_insensitive_on_source() {
        let a = AnalysisKey::of(&AnalysisDirective::Dc {
            source: "V1".into(),
            start: 0.0,
            stop: 1.0,
            step: 0.1,
        });
        let b = AnalysisKey::of(&AnalysisDirective::Dc {
            source: "v1".into(),
            start: 0.0,
            stop: 1.0,
            step: 0.1,
        });
        assert_eq!(a, b);
    }
}
