//! Canonical circuit fingerprints for cross-request caching.
//!
//! Two 64-bit FNV-1a fingerprints over a flattened [`Circuit`]:
//!
//! * [`deck_fingerprint`] — hashes the canonical netlist serialization
//!   ([`crate::writer::write_netlist`]), so *any* value change (a resistor,
//!   a waveform parameter, a model card) changes the fingerprint. This is
//!   the full-result cache key: equal fingerprints mean equal circuits.
//! * [`topology_fingerprint`] — hashes only the structure that determines
//!   the MNA sparsity pattern: element type tags, terminal node ids,
//!   branch-current bookkeeping and controlled-source references — never
//!   component values. Circuits that differ only in values share a
//!   topology fingerprint, and therefore share symbolic LU analyses and
//!   supernode plans when sessions are pooled per topology.
//!
//! Both are deterministic across processes and platforms (no
//! `DefaultHasher` seeds, no pointer identity), which keeps service-level
//! caches and golden corpus tests stable.

use crate::netlist::Circuit;
use crate::writer::write_netlist;

/// 64-bit FNV-1a over a byte slice — the same portable, dependency-free
/// hash used across the workspace for deterministic fingerprints.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_extend(0xcbf2_9ce4_8422_2325, bytes)
}

/// Folds more bytes into an existing FNV-1a state (chain with the result
/// of a previous [`fnv1a`] / [`fnv1a_extend`] call to hash composites).
#[must_use]
pub fn fnv1a_extend(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(0x100_0000_01b3);
    }
    state
}

/// Value-sensitive fingerprint of a flattened circuit: FNV-1a over its
/// canonical netlist serialization. Any change to values, waveforms,
/// models, names or connectivity changes the fingerprint.
///
/// # Example
/// ```
/// use nanosim_circuit::{deck_fingerprint, parse_netlist};
/// let a = parse_netlist("V1 in 0 DC 1\nR1 in 0 100\n.end\n")?;
/// let b = parse_netlist("V1 in 0 DC 1\nR1 in 0 220\n.end\n")?;
/// assert_ne!(deck_fingerprint(&a.circuit), deck_fingerprint(&b.circuit));
/// # Ok::<(), nanosim_circuit::CircuitError>(())
/// ```
#[must_use]
pub fn deck_fingerprint(circuit: &Circuit) -> u64 {
    fnv1a(write_netlist(circuit).as_bytes())
}

/// Structure-only fingerprint: hashes exactly the inputs that determine
/// the MNA variable layout and matrix sparsity pattern — node count,
/// element type tags, terminal node ids, and controlled-source branch
/// references — and none of the component values.
///
/// # Example
/// ```
/// use nanosim_circuit::{parse_netlist, topology_fingerprint};
/// let a = parse_netlist("V1 in 0 DC 1\nR1 in 0 100\n.end\n")?;
/// let b = parse_netlist("V1 in 0 DC 2\nR1 in 0 220\n.end\n")?;
/// assert_eq!(topology_fingerprint(&a.circuit), topology_fingerprint(&b.circuit));
/// # Ok::<(), nanosim_circuit::CircuitError>(())
/// ```
#[must_use]
pub fn topology_fingerprint(circuit: &Circuit) -> u64 {
    let mut h = fnv1a(b"nanosim-topology-v1");
    h = fnv1a_extend(h, &(circuit.node_count() as u64).to_le_bytes());
    for e in circuit.elements() {
        h = fnv1a_extend(h, e.kind().type_tag().as_bytes());
        h = fnv1a_extend(h, &[u8::from(e.kind().needs_branch_current())]);
        for &n in e.nodes() {
            h = fnv1a_extend(h, &(n.index() as u64).to_le_bytes());
        }
        if let Some(ctrl) = e.kind().control_name() {
            // Controlled sources stamp the controlling element's branch
            // column; which element that is, is structural.
            h = fnv1a_extend(h, ctrl.as_bytes());
        }
        // Separator so adjacent elements cannot alias across boundaries.
        h = fnv1a_extend(h, &[0xff]);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_netlist;

    #[test]
    fn value_change_moves_deck_but_not_topology() {
        let a = parse_netlist("V1 in 0 DC 1\nR1 in mid 100\nR2 mid 0 50\n.end\n").unwrap();
        let b = parse_netlist("V1 in 0 DC 1\nR1 in mid 101\nR2 mid 0 50\n.end\n").unwrap();
        assert_ne!(deck_fingerprint(&a.circuit), deck_fingerprint(&b.circuit));
        assert_eq!(
            topology_fingerprint(&a.circuit),
            topology_fingerprint(&b.circuit)
        );
    }

    #[test]
    fn connectivity_change_moves_topology() {
        let a = parse_netlist("V1 in 0 DC 1\nR1 in mid 100\nR2 mid 0 50\n.end\n").unwrap();
        let b = parse_netlist("V1 in 0 DC 1\nR1 in 0 100\nR2 in 0 50\n.end\n").unwrap();
        assert_ne!(
            topology_fingerprint(&a.circuit),
            topology_fingerprint(&b.circuit)
        );
    }

    #[test]
    fn fingerprints_are_deterministic() {
        let a = parse_netlist("V1 in 0 DC 1\nR1 in 0 100\n.end\n").unwrap();
        let b = parse_netlist("V1 in 0 DC 1\nR1 in 0 100\n.end\n").unwrap();
        assert_eq!(deck_fingerprint(&a.circuit), deck_fingerprint(&b.circuit));
        assert_eq!(
            topology_fingerprint(&a.circuit),
            topology_fingerprint(&b.circuit)
        );
    }

    #[test]
    fn fnv1a_matches_reference_vector() {
        // FNV-1a 64 reference: empty input hashes to the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }
}
