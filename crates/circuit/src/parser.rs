//! SPICE-like netlist parser.
//!
//! Supports the subset of the SPICE language the Nano-Sim experiments need,
//! plus `Y`-prefixed nano-devices and hierarchical subcircuits:
//!
//! ```text
//! * comment lines and trailing ; comments
//! R<name> n+ n- value            resistor
//! C<name> n+ n- value [IC=v0]    capacitor
//! L<name> n+ n- value            inductor
//! V<name> n+ n- <source>         voltage source
//! I<name> n+ n- <source>         current source
//! E<name> n+ n- nc+ nc- gain     voltage-controlled voltage source
//! G<name> n+ n- nc+ nc- gm       voltage-controlled current source
//! F<name> n+ n- vname gain       current-controlled current source
//! H<name> n+ n- vname r          current-controlled voltage source
//! D<name> n+ n- [model]          diode
//! M<name> nd ng ns <model>       level-1 MOSFET
//! YRTD<name> n+ n- [model]       resonant tunneling diode
//! YNW<name>  n+ n- [model]       quantum wire / CNT
//! YRTT<name> nc ne [model]       resonant tunneling transistor
//! X<name> n1 n2 ... subckt [p=v ...]   subcircuit instance
//!
//! <source> ::= [DC] value
//!            | PULSE(v1 v2 td tr tf pw per)
//!            | SIN(vo va freq [td [theta]])
//!            | PWL(t1 v1 t2 v2 ...)
//!            | NOISE(mean intensity)
//!
//! .model <name> RTD  (a=.. b=.. c=.. d=.. h=.. n1=.. n2=.. [temp=..])
//! .model <name> NMOS (kp=.. w=.. l=.. vto=.. [lambda=..])
//! .model <name> PMOS (kp=.. w=.. l=.. vto=.. [lambda=..])
//! .model <name> D    (is=.. [n=..] [temp=..])
//! .model <name> NW   ([g0=..] [base=..] [step=..] [steps=..] [smear=..])
//! .model <name> RTT  ([vbe=..])
//!
//! .subckt <name> port1 port2 ... [param=default ...]
//!   <element lines, including nested X instances>
//! .ends [<name>]
//! .param name=value [name=value ...]
//!
//! .tran tstep tstop
//! .dc <source> start stop step
//! .op
//! .end
//! ```
//!
//! Values accept SPICE magnitude suffixes (`t g meg k m u n p f`) and
//! trailing unit letters (`10pF`, `5V`, `1k`). Inside subcircuit bodies
//! (and, against `.param` globals, anywhere) an element value may be a
//! `{name}` parameter reference; instances override declared parameters
//! with `Xcell a b inv R=5k`. Waveform parameters (`PULSE(..)`, `SIN(..)`,
//! ...) are always literal numbers — sources are cloned, not
//! re-parameterized, when a subcircuit is instantiated.
//!
//! Parse errors report the 1-based **line and column** of the offending
//! token, so a bad value in a generated 500-line deck is locatable.

use crate::error::CircuitError;
use crate::lint::{SourceMap, Span};
use crate::netlist::Circuit;
use crate::subckt::{
    BodyElement, BodyKind, CircuitBuilder, ParamValue, SubcktDef, SubcktLib, WaveformTemplate,
};
use crate::Result;
use nanosim_devices::diode::{Diode, DiodeParams};
use nanosim_devices::mosfet::{MosType, Mosfet, MosfetParams};
use nanosim_devices::nanowire::{Nanowire, NanowireParams};
use nanosim_devices::rtd::{Rtd, RtdParams};
use nanosim_devices::rtt::Rtt;
use nanosim_devices::sources::{PulseParams, SinParams, SourceWaveform};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// An analysis request found in the netlist.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisDirective {
    /// `.op` — DC operating point.
    Op,
    /// `.tran tstep tstop` — transient analysis.
    Tran {
        /// Suggested (maximum) time step in seconds.
        tstep: f64,
        /// Stop time in seconds.
        tstop: f64,
    },
    /// `.dc source start stop step` — DC sweep of a named source.
    Dc {
        /// Name of the swept V/I source.
        source: String,
        /// Sweep start value.
        start: f64,
        /// Sweep end value.
        stop: f64,
        /// Sweep increment.
        step: f64,
    },
}

/// Result of parsing a netlist: the flattened circuit, its analysis
/// directives, and the hierarchy the deck declared (for tooling).
#[derive(Debug, Clone)]
pub struct ParsedDeck {
    /// The parsed, fully flattened circuit.
    pub circuit: Circuit,
    /// Analyses in file order.
    pub analyses: Vec<AnalysisDirective>,
    /// Subcircuit definitions the deck declared.
    pub subckts: SubcktLib,
    /// Global `.param` values (keys lowercased).
    pub params: HashMap<String, f64>,
    /// Source position of every flattened element (elements produced by
    /// instance flattening map to their `X` line), for lint diagnostics.
    pub spans: SourceMap,
}

#[derive(Debug, Clone)]
struct ModelCard {
    type_name: String,
    params: HashMap<String, f64>,
    /// Definition line, kept for duplicate-model diagnostics.
    #[allow(dead_code)]
    line: usize,
}

/// One source token with its physical location (continuation lines keep
/// their own line numbers, so errors land on the exact `+` line).
#[derive(Debug, Clone)]
struct Tok {
    text: String,
    line: usize,
    /// 1-based column of the token's first character.
    col: usize,
    /// Whether the token was immediately followed by `=` (marks the start
    /// of `name=value` override/parameter pairs).
    eq: bool,
}

impl Tok {
    fn upper(&self) -> String {
        self.text.to_ascii_uppercase()
    }
}

/// A logical netlist line: tokens (continuations folded in) plus the raw
/// first-line text for title handling.
#[derive(Debug, Clone)]
struct Line {
    line_no: usize,
    toks: Vec<Tok>,
    raw: String,
}

/// Parses SPICE-like netlist text into a flattened circuit.
///
/// # Errors
/// Returns [`CircuitError::Parse`] with 1-based line *and column* numbers
/// for syntax errors, and propagates element/model/hierarchy validation
/// failures ([`CircuitError::UnknownSubckt`], [`CircuitError::UnknownParam`],
/// ...).
///
/// # Example
/// ```
/// let deck = nanosim_circuit::parse_netlist(
///     "* rtd divider as a subckt\n\
///      .subckt cell in r=50\n\
///      R1 in mid {r}\n\
///      YRTD1 mid 0\n\
///      .ends\n\
///      V1 in 0 DC 1.0\n\
///      X1 in cell r=75\n\
///      .dc V1 0 2.5 0.01\n\
///      .end\n",
/// )?;
/// assert_eq!(deck.circuit.elements().len(), 3);
/// assert!(deck.circuit.element("R1.X1").is_some());
/// assert!(deck.circuit.find_node("X1.mid").is_some());
/// # Ok::<(), nanosim_circuit::CircuitError>(())
/// ```
pub fn parse_netlist(text: &str) -> Result<ParsedDeck> {
    parse_netlist_with_params(text, &[])
}

/// Parses netlist text with global `.param` overrides applied.
///
/// Each `(name, value)` pair (names are case-insensitive) is installed as a
/// global parameter *before* the deck body is read, and any `.param`
/// assignment of the same name inside the deck is ignored (its value
/// expression is still validated). Elements referencing `{name}` therefore
/// see the override. This is the entry point for parameter-grid studies:
/// the same deck text fans out into one parse per grid point.
///
/// # Errors
/// Same contract as [`parse_netlist`].
///
/// # Example
/// ```
/// let deck = "\
///     .param rload=100\n\
///     V1 in 0 DC 1.0\n\
///     R1 in out {rload}\n\
///     R2 out 0 50\n\
///     .op\n\
///     .end\n";
/// let parsed =
///     nanosim_circuit::parse_netlist_with_params(deck, &[("rload".into(), 220.0)])?;
/// assert_eq!(parsed.params["rload"], 220.0);
/// # Ok::<(), nanosim_circuit::CircuitError>(())
/// ```
pub fn parse_netlist_with_params(text: &str, overrides: &[(String, f64)]) -> Result<ParsedDeck> {
    let lines = preprocess(text);

    // Pass 1: collect .model cards (they may be referenced before defined;
    // models are global, even when written inside a .subckt block).
    let mut models: HashMap<String, ModelCard> = HashMap::new();
    for line in &lines {
        let toks = &line.toks;
        if toks.is_empty() || !toks[0].text.eq_ignore_ascii_case(".model") {
            continue;
        }
        if toks.len() < 3 {
            return Err(parse_err(
                line.line_no,
                0,
                "`.model` needs a name and a type",
            ));
        }
        let name = toks[1].text.to_ascii_lowercase();
        let type_name = toks[2].text.to_ascii_lowercase();
        let mut params = HashMap::new();
        let rest = &toks[3..];
        if rest.len() % 2 != 0 {
            return Err(parse_err(
                line.line_no,
                0,
                "`.model` parameters must be key=value pairs",
            ));
        }
        for pair in rest.chunks(2) {
            let key = pair[0].text.to_ascii_lowercase();
            let value = parse_value(&pair[1].text).ok_or_else(|| bad_value(&pair[1]))?;
            params.insert(key, value);
        }
        models.insert(
            name,
            ModelCard {
                type_name,
                params,
                line: line.line_no,
            },
        );
    }

    // Pass 1.5: collect `.subckt` definitions (bodies become templates) so
    // instances may appear before their definition. Consumed lines are
    // skipped by pass 2.
    let mut builder = CircuitBuilder::new();
    let mut overridden: HashSet<String> = HashSet::new();
    for (name, value) in overrides {
        builder.set_param(name.clone(), *value);
        overridden.insert(name.to_ascii_lowercase());
    }
    let mut consumed = vec![false; lines.len()];
    let mut open_def: Option<SubcktDef> = None;
    let mut open_line = (0usize, 0usize);
    let mut open_names: HashSet<String> = HashSet::new();
    for (idx, line) in lines.iter().enumerate() {
        let toks = &line.toks;
        if toks.is_empty() {
            continue;
        }
        let head = toks[0].upper();
        if let Some(def) = open_def.as_mut() {
            consumed[idx] = true;
            match head.as_str() {
                ".ENDS" => {
                    if let Some(tok) = toks.get(1) {
                        if !tok.text.eq_ignore_ascii_case(def.name()) {
                            return Err(parse_err(
                                tok.line,
                                tok.col,
                                &format!(
                                    "`.ends {}` does not close `.subckt {}`",
                                    tok.text,
                                    def.name()
                                ),
                            ));
                        }
                    }
                    let def = open_def.take().expect("checked above");
                    builder.define(def).map_err(|e| match e {
                        // A redefinition is located at its `.subckt` line.
                        CircuitError::DuplicateElement { name } => {
                            CircuitError::DuplicateElementAt {
                                name,
                                line: open_line.0,
                                column: open_line.1,
                            }
                        }
                        other => other,
                    })?;
                }
                ".MODEL" => {} // collected in pass 1; models are global
                _ if head.starts_with('.') => {
                    return Err(parse_err(
                        toks[0].line,
                        toks[0].col,
                        &format!("directive `{}` is not allowed inside .subckt", toks[0].text),
                    ));
                }
                _ => {
                    let be = parse_body_element(toks, &models)?;
                    if !open_names.insert(be.name.clone()) {
                        return Err(CircuitError::DuplicateElementAt {
                            name: be.name,
                            line: toks[0].line,
                            column: toks[0].col,
                        });
                    }
                    def.push_body(be);
                }
            }
        } else if head == ".SUBCKT" {
            consumed[idx] = true;
            if toks.len() < 2 {
                return Err(parse_err(
                    toks[0].line,
                    toks[0].col,
                    "`.subckt` needs a name",
                ));
            }
            // Ports run until the first `name=value` pair.
            let first_eq = toks.iter().position(|t| t.eq).unwrap_or(toks.len());
            if first_eq < 2 {
                return Err(parse_err(
                    toks[first_eq].line,
                    toks[first_eq].col,
                    "`.subckt` needs a name before any name=value parameters",
                ));
            }
            let ports: Vec<&str> = toks[2..first_eq].iter().map(|t| t.text.as_str()).collect();
            let mut def = SubcktDef::new(toks[1].text.clone(), ports);
            let rest = &toks[first_eq..];
            if rest.len() % 2 != 0 {
                return Err(parse_err(
                    toks[0].line,
                    toks[0].col,
                    "`.subckt` parameters must be name=value pairs",
                ));
            }
            for pair in rest.chunks(2) {
                if !pair[0].eq {
                    return Err(parse_err(
                        pair[0].line,
                        pair[0].col,
                        "`.subckt` parameters must be name=value pairs",
                    ));
                }
                let v = parse_value(&pair[1].text).ok_or_else(|| bad_value(&pair[1]))?;
                def.param(pair[0].text.clone(), v);
            }
            open_def = Some(def);
            open_line = (toks[0].line, toks[0].col);
            open_names.clear();
        } else if head == ".END" {
            break;
        }
    }
    if let Some(def) = open_def {
        return Err(parse_err(
            open_line.0,
            open_line.1,
            &format!("`.subckt {}` is never closed by `.ends`", def.name()),
        ));
    }

    // Pass 2: top-level elements, instances and directives.
    let mut analyses = Vec::new();
    let mut spans = SourceMap::new();
    let mut first_content_line = true;
    for (idx, line) in lines.iter().enumerate() {
        let toks = &line.toks;
        if toks.is_empty() {
            continue;
        }
        if consumed[idx] {
            first_content_line = false;
            continue;
        }
        let head = toks[0].upper();

        // SPICE-style title line: the first line that is neither a directive
        // nor an element becomes the title. E/G/F/H/X joined the element
        // alphabet in this release, so for *those* head letters an
        // unparseable first line (e.g. "Example rtd deck", "Xor latch")
        // still falls back to the title — decks that titled themselves this
        // way keep parsing. The pre-existing R/C/L/V/I/D/M/Y letters keep
        // their strict behavior: a malformed first element line is an error.
        if first_content_line && !head.starts_with('.') {
            first_content_line = false;
            if !is_element_head(&head) {
                builder.set_title(line.raw.trim());
                continue;
            }
            let new_letter = matches!(head.chars().next(), Some('E' | 'G' | 'F' | 'H' | 'X'));
            if new_letter {
                // Only lines that *cannot* be the new element kinds fall
                // back to the title: too few fields for E/G/F/H, or an X
                // "instance" of a subckt nobody defined. A first line with
                // element-like arity that fails on a bad token (e.g.
                // `X1 a cell r=bogus` with `cell` defined) is a user error
                // and must be reported, not silently titled away.
                let plausible = match head.chars().next() {
                    Some('E' | 'G') => toks.len() >= 6,
                    Some('F' | 'H') => toks.len() >= 5,
                    _ => {
                        // X line: plausible iff its subckt-name position
                        // names a defined subcircuit.
                        let first_eq = toks.iter().position(|t| t.eq).unwrap_or(toks.len());
                        first_eq >= 2 && builder.subckts().get(&toks[first_eq - 1].text).is_some()
                    }
                };
                if !plausible {
                    builder.set_title(line.raw.trim());
                    continue;
                }
                let be = parse_body_element(toks, &models)?;
                emit_top_level(&mut builder, be, &toks[0], &mut spans)?;
                continue;
            }
            let be = parse_body_element(toks, &models)?;
            emit_top_level(&mut builder, be, &toks[0], &mut spans)?;
            continue;
        }
        first_content_line = false;

        if head.starts_with('.') {
            match head.as_str() {
                ".MODEL" => {} // handled in pass 1
                ".END" => break,
                ".TITLE" => {
                    let title = line
                        .raw
                        .trim_start()
                        .get(6..)
                        .map(str::trim)
                        .unwrap_or_default();
                    builder.set_title(title);
                }
                ".ENDS" => {
                    return Err(parse_err(
                        toks[0].line,
                        toks[0].col,
                        "`.ends` without an open `.subckt`",
                    ));
                }
                ".PARAM" => {
                    let rest = &toks[1..];
                    if rest.is_empty() || rest.len() % 2 != 0 {
                        return Err(parse_err(
                            toks[0].line,
                            toks[0].col,
                            "`.param` needs name=value pairs",
                        ));
                    }
                    for pair in rest.chunks(2) {
                        if !pair[0].eq {
                            return Err(parse_err(
                                pair[0].line,
                                pair[0].col,
                                "`.param` needs name=value pairs",
                            ));
                        }
                        // Values may reference previously defined globals.
                        let pv = parse_pvalue(&pair[1])?;
                        let v = builder.resolve_value(&pv, &format!(".param {}", pair[0].text))?;
                        // A caller-supplied override wins over the deck's
                        // own assignment (the expression is still checked).
                        if !overridden.contains(&pair[0].text.to_ascii_lowercase()) {
                            builder.set_param(pair[0].text.clone(), v);
                        }
                    }
                }
                ".OP" => analyses.push(AnalysisDirective::Op),
                ".TRAN" => {
                    if toks.len() < 3 {
                        return Err(parse_err(
                            toks[0].line,
                            toks[0].col,
                            "`.tran` needs tstep and tstop",
                        ));
                    }
                    let tstep = parse_value(&toks[1].text).ok_or_else(|| bad_value(&toks[1]))?;
                    let tstop = parse_value(&toks[2].text).ok_or_else(|| bad_value(&toks[2]))?;
                    if !(tstep > 0.0 && tstop > tstep) {
                        return Err(parse_err(
                            toks[0].line,
                            toks[0].col,
                            "`.tran` needs 0 < tstep < tstop",
                        ));
                    }
                    analyses.push(AnalysisDirective::Tran { tstep, tstop });
                }
                ".DC" => {
                    if toks.len() < 5 {
                        return Err(parse_err(
                            toks[0].line,
                            toks[0].col,
                            "`.dc` needs source, start, stop, step",
                        ));
                    }
                    let start = parse_value(&toks[2].text).ok_or_else(|| bad_value(&toks[2]))?;
                    let stop = parse_value(&toks[3].text).ok_or_else(|| bad_value(&toks[3]))?;
                    let step = parse_value(&toks[4].text).ok_or_else(|| bad_value(&toks[4]))?;
                    if step == 0.0 {
                        return Err(parse_err(
                            toks[4].line,
                            toks[4].col,
                            "`.dc` step must be nonzero",
                        ));
                    }
                    analyses.push(AnalysisDirective::Dc {
                        source: toks[1].text.clone(),
                        start,
                        stop,
                        step,
                    });
                }
                other => {
                    return Err(parse_err(
                        toks[0].line,
                        toks[0].col,
                        &format!("unknown directive `{other}`"),
                    ));
                }
            }
            continue;
        }

        let be = parse_body_element(toks, &models)?;
        emit_top_level(&mut builder, be, &toks[0], &mut spans)?;
    }

    let (circuit, subckts, params) = builder.into_parts();
    Ok(ParsedDeck {
        circuit,
        analyses,
        subckts,
        params,
        spans,
    })
}

fn is_element_head(head: &str) -> bool {
    matches!(
        head.chars().next(),
        Some('R' | 'C' | 'L' | 'V' | 'I' | 'D' | 'M' | 'Y' | 'X' | 'E' | 'G' | 'F' | 'H')
    )
}

/// Strips comments, folds `+` continuations, tokenizes with locations.
fn preprocess(text: &str) -> Vec<Line> {
    let mut out: Vec<Line> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let trimmed = raw.trim_start();
        if trimmed.is_empty() || trimmed.starts_with('*') {
            continue;
        }
        // Cut trailing comments; columns are computed on the *raw* line so
        // they match what the user sees in an editor.
        let mut cut = raw.len();
        for sep in [';', '$'] {
            if let Some(pos) = raw.find(sep) {
                cut = cut.min(pos);
            }
        }
        let content = &raw[..cut];
        if content.trim().is_empty() {
            continue;
        }
        if let Some(plus) = content.trim_start().strip_prefix('+') {
            if let Some(last) = out.last_mut() {
                let offset = content.len() - plus.len();
                last.toks.extend(tokenize(plus, line_no, offset + 1));
                last.raw.push(' ');
                last.raw.push_str(plus.trim());
                continue;
            }
        }
        let leading = content.len() - content.trim_start().len();
        let toks = tokenize(content.trim_start(), line_no, leading + 1);
        out.push(Line {
            line_no,
            toks,
            raw: content.trim().to_string(),
        });
    }
    out
}

/// Splits text into located tokens. `(`, `)` and `,` separate tokens; `=`
/// separates too and flags the preceding token as a `name=` key.
fn tokenize(text: &str, line: usize, col0: usize) -> Vec<Tok> {
    let mut toks: Vec<Tok> = Vec::new();
    let mut cur = String::new();
    let mut cur_col = 0usize;
    let flush = |toks: &mut Vec<Tok>, cur: &mut String, cur_col: usize| {
        if !cur.is_empty() {
            toks.push(Tok {
                text: std::mem::take(cur),
                line,
                col: col0 + cur_col,
                eq: false,
            });
        }
    };
    for (i, ch) in text.char_indices() {
        match ch {
            c if c.is_whitespace() => flush(&mut toks, &mut cur, cur_col),
            '(' | ')' | ',' => flush(&mut toks, &mut cur, cur_col),
            '=' => {
                flush(&mut toks, &mut cur, cur_col);
                if let Some(last) = toks.last_mut() {
                    last.eq = true;
                }
            }
            _ => {
                if cur.is_empty() {
                    cur_col = i;
                }
                cur.push(ch);
            }
        }
    }
    flush(&mut toks, &mut cur, cur_col);
    toks
}

/// Parses a SPICE value with magnitude suffix and optional trailing units.
fn parse_value(token: &str) -> Option<f64> {
    let t = token.trim().to_ascii_lowercase();
    if t.is_empty() {
        return None;
    }
    // Split numeric prefix from alphabetic suffix.
    let mut split = t.len();
    for (i, ch) in t.char_indices() {
        if ch.is_ascii_alphabetic() && !(i > 0 && (ch == 'e') && has_digit_after(&t, i)) {
            split = i;
            break;
        }
    }
    let (num, suffix) = t.split_at(split);
    let base: f64 = num.parse().ok()?;
    let mult = if suffix.starts_with("meg") {
        1e6
    } else {
        match suffix.chars().next() {
            None => 1.0,
            Some('t') => 1e12,
            Some('g') => 1e9,
            Some('k') => 1e3,
            Some('m') => 1e-3,
            Some('u') => 1e-6,
            Some('n') => 1e-9,
            Some('p') => 1e-12,
            Some('f') => 1e-15,
            // Bare unit letters like "5v" or "2a".
            Some(_) => 1.0,
        }
    };
    // Literals like `1e999` overflow to infinity and would poison every
    // downstream solve; reject them here so the caller reports line+column.
    Some(base * mult).filter(|v| v.is_finite())
}

fn has_digit_after(s: &str, i: usize) -> bool {
    s[i + 1..]
        .chars()
        .next()
        .map(|c| c.is_ascii_digit() || c == '-' || c == '+')
        .unwrap_or(false)
}

/// A value position: a literal or a `{param}` reference.
fn parse_pvalue(tok: &Tok) -> Result<ParamValue> {
    let t = tok.text.trim();
    if let Some(inner) = t.strip_prefix('{') {
        let name = inner.strip_suffix('}').ok_or_else(|| {
            parse_err(
                tok.line,
                tok.col,
                &format!("unterminated parameter reference `{t}`"),
            )
        })?;
        if name.trim().is_empty() {
            return Err(parse_err(
                tok.line,
                tok.col,
                "empty parameter reference `{}`",
            ));
        }
        return Ok(ParamValue::Ref(name.trim().to_string()));
    }
    parse_value(t)
        .map(ParamValue::Lit)
        .ok_or_else(|| bad_value(tok))
}

fn parse_err(line: usize, column: usize, message: &str) -> CircuitError {
    CircuitError::Parse {
        line,
        column,
        message: message.to_string(),
    }
}

fn bad_value(tok: &Tok) -> CircuitError {
    parse_err(tok.line, tok.col, &format!("bad value `{}`", tok.text))
}

/// A value position where a literal zero is physically invalid (R, C, L):
/// it would stamp a singular or infinite conductance. `{param}` references
/// are checked later, at elaboration, when their value is known.
fn parse_nonzero_pvalue(tok: &Tok, what: &str) -> Result<ParamValue> {
    let pv = parse_pvalue(tok)?;
    if matches!(pv, ParamValue::Lit(v) if v == 0.0) {
        return Err(parse_err(
            tok.line,
            tok.col,
            &format!("{what} must be nonzero (got `{}`)", tok.text),
        ));
    }
    Ok(pv)
}

/// Parses one element line (top level or subcircuit body) into a template.
fn parse_body_element(toks: &[Tok], models: &HashMap<String, ModelCard>) -> Result<BodyElement> {
    let head = &toks[0];
    let name = head.text.clone();
    let upper = head.upper();
    let kind_char = upper.chars().next().expect("nonempty token");
    let need = |n: usize| -> Result<()> {
        if toks.len() < n {
            Err(parse_err(
                head.line,
                head.col,
                &format!("element {name} needs at least {} fields", n - 1),
            ))
        } else {
            Ok(())
        }
    };
    let node = |i: usize| toks[i].text.clone();
    let (nodes, kind) = match kind_char {
        'R' => {
            need(4)?;
            (
                vec![node(1), node(2)],
                BodyKind::Resistor {
                    ohms: parse_nonzero_pvalue(&toks[3], "resistance")?,
                },
            )
        }
        'C' => {
            need(4)?;
            let mut ic = None;
            if toks.len() >= 6 && toks[4].text.eq_ignore_ascii_case("ic") {
                ic = Some(parse_pvalue(&toks[5])?);
            }
            (
                vec![node(1), node(2)],
                BodyKind::Capacitor {
                    farads: parse_nonzero_pvalue(&toks[3], "capacitance")?,
                    ic,
                },
            )
        }
        'L' => {
            need(4)?;
            (
                vec![node(1), node(2)],
                BodyKind::Inductor {
                    henries: parse_nonzero_pvalue(&toks[3], "inductance")?,
                },
            )
        }
        'V' | 'I' => {
            need(4)?;
            let wf = parse_source(&toks[3..], head)?;
            let kind = if kind_char == 'V' {
                BodyKind::VoltageSource { waveform: wf }
            } else {
                BodyKind::CurrentSource { waveform: wf }
            };
            (vec![node(1), node(2)], kind)
        }
        'E' => {
            need(6)?;
            (
                vec![node(1), node(2), node(3), node(4)],
                BodyKind::Vcvs {
                    gain: parse_pvalue(&toks[5])?,
                },
            )
        }
        'G' => {
            need(6)?;
            (
                vec![node(1), node(2), node(3), node(4)],
                BodyKind::Vccs {
                    gm: parse_pvalue(&toks[5])?,
                },
            )
        }
        'F' => {
            need(5)?;
            (
                vec![node(1), node(2)],
                BodyKind::Cccs {
                    gain: parse_pvalue(&toks[4])?,
                    control: toks[3].text.clone(),
                },
            )
        }
        'H' => {
            need(5)?;
            (
                vec![node(1), node(2)],
                BodyKind::Ccvs {
                    r: parse_pvalue(&toks[4])?,
                    control: toks[3].text.clone(),
                },
            )
        }
        'D' => {
            need(3)?;
            let diode = match toks.get(3) {
                Some(m) => diode_from_model(lookup(models, m)?, m.line)?,
                None => Diode::silicon(),
            };
            (
                vec![node(1), node(2)],
                BodyKind::Nonlinear {
                    device: Arc::new(diode),
                },
            )
        }
        'M' => {
            need(5)?;
            let model = lookup(models, &toks[4])?;
            let fet = mosfet_from_model(model, toks[4].line)?;
            (
                vec![node(1), node(2), node(3)],
                BodyKind::Mosfet { model: fet },
            )
        }
        'Y' => {
            // YRTD / YNW / YCNT / YRTT prefix selects the device family.
            need(3)?;
            let model = match toks.get(3) {
                Some(m) => Some(lookup(models, m)?),
                None => None,
            };
            let device: crate::element::SharedDevice = if upper.starts_with("YRTD") {
                match model {
                    Some(card) => Arc::new(rtd_from_model(card, head.line)?),
                    None => Arc::new(Rtd::date2005()),
                }
            } else if upper.starts_with("YNW") || upper.starts_with("YCNT") {
                match model {
                    Some(card) => Arc::new(nanowire_from_model(card, head.line)?),
                    None => Arc::new(Nanowire::metallic_cnt()),
                }
            } else if upper.starts_with("YRTT") {
                let mut rtt = Rtt::three_peak();
                if let Some(card) = model {
                    if let Some(&vbe) = card.params.get("vbe") {
                        rtt.set_vbe(vbe);
                    }
                }
                Arc::new(rtt)
            } else {
                return Err(parse_err(
                    head.line,
                    head.col,
                    &format!("unknown nano-device `{name}` (expected YRTD/YNW/YRTT prefix)"),
                ));
            };
            (vec![node(1), node(2)], BodyKind::Nonlinear { device })
        }
        'X' => {
            need(3)?;
            // Connections run until the subckt name; the first `p=v` pair
            // (if any) marks where the overrides start.
            let first_eq = toks.iter().position(|t| t.eq).unwrap_or(toks.len());
            if first_eq < 3 {
                return Err(parse_err(
                    toks[first_eq].line,
                    toks[first_eq].col,
                    &format!("instance {name} needs nodes and a subckt name before overrides"),
                ));
            }
            let subckt = toks[first_eq - 1].text.clone();
            let nodes: Vec<String> = toks[1..first_eq - 1]
                .iter()
                .map(|t| t.text.clone())
                .collect();
            if nodes.is_empty() {
                return Err(parse_err(
                    head.line,
                    head.col,
                    &format!("instance {name} connects no nodes"),
                ));
            }
            let rest = &toks[first_eq..];
            if rest.len() % 2 != 0 {
                return Err(parse_err(
                    head.line,
                    head.col,
                    &format!("instance {name} overrides must be name=value pairs"),
                ));
            }
            let mut overrides = Vec::with_capacity(rest.len() / 2);
            for pair in rest.chunks(2) {
                if !pair[0].eq {
                    return Err(parse_err(
                        pair[0].line,
                        pair[0].col,
                        "instance overrides must be name=value pairs",
                    ));
                }
                overrides.push((pair[0].text.clone(), parse_pvalue(&pair[1])?));
            }
            (nodes, BodyKind::Instance { subckt, overrides })
        }
        other => {
            return Err(parse_err(
                head.line,
                head.col,
                &format!("unknown element type `{other}` in `{name}`"),
            ));
        }
    };
    Ok(BodyElement { name, nodes, kind })
}

/// Adds a parsed top-level template to the builder: elements directly (with
/// `{param}` references resolved against `.param` globals), instances via
/// flattening. Records the source position of every element the line
/// produced (an `X` line owns all of its flattened elements) and upgrades
/// duplicate-name errors with that position.
fn emit_top_level(
    builder: &mut CircuitBuilder,
    be: BodyElement,
    head: &Tok,
    spans: &mut SourceMap,
) -> Result<()> {
    let n_before = builder.circuit().elements().len();
    emit_top_level_inner(builder, be, head).map_err(|e| match e {
        CircuitError::DuplicateElement { name } => CircuitError::DuplicateElementAt {
            name,
            line: head.line,
            column: head.col,
        },
        other => other,
    })?;
    let span = Span::new(head.line, head.col);
    for e in &builder.circuit().elements()[n_before..] {
        spans.insert(e.name(), span);
    }
    Ok(())
}

fn emit_top_level_inner(builder: &mut CircuitBuilder, be: BodyElement, head: &Tok) -> Result<()> {
    let BodyElement {
        name,
        nodes: node_names,
        kind,
    } = be;
    let nodes: Vec<crate::node::NodeId> = node_names.iter().map(|n| builder.node(n)).collect();
    let resolve = |builder: &CircuitBuilder, pv: &ParamValue| builder.resolve_value(pv, &name);
    match kind {
        BodyKind::Resistor { ohms } => {
            let v = resolve(builder, &ohms)?;
            builder
                .circuit_mut()
                .add_resistor(&name, nodes[0], nodes[1], v)?;
        }
        BodyKind::Capacitor { farads, ic } => {
            let v = resolve(builder, &farads)?;
            let ic = match ic {
                Some(pv) => Some(resolve(builder, &pv)?),
                None => None,
            };
            builder
                .circuit_mut()
                .add_capacitor_ic(&name, nodes[0], nodes[1], v, ic)?;
        }
        BodyKind::Inductor { henries } => {
            let v = resolve(builder, &henries)?;
            builder
                .circuit_mut()
                .add_inductor(&name, nodes[0], nodes[1], v)?;
        }
        BodyKind::VoltageSource { waveform } => {
            let wf = builder.resolve_waveform(&waveform, &name)?;
            builder
                .circuit_mut()
                .add_voltage_source(&name, nodes[0], nodes[1], wf)?;
        }
        BodyKind::CurrentSource { waveform } => {
            let wf = builder.resolve_waveform(&waveform, &name)?;
            builder
                .circuit_mut()
                .add_current_source(&name, nodes[0], nodes[1], wf)?;
        }
        BodyKind::Vcvs { gain } => {
            let v = resolve(builder, &gain)?;
            builder
                .circuit_mut()
                .add_vcvs(&name, nodes[0], nodes[1], nodes[2], nodes[3], v)?;
        }
        BodyKind::Vccs { gm } => {
            let v = resolve(builder, &gm)?;
            builder
                .circuit_mut()
                .add_vccs(&name, nodes[0], nodes[1], nodes[2], nodes[3], v)?;
        }
        BodyKind::Cccs { gain, control } => {
            let v = resolve(builder, &gain)?;
            builder
                .circuit_mut()
                .add_cccs(&name, nodes[0], nodes[1], &control, v)?;
        }
        BodyKind::Ccvs { r, control } => {
            let v = resolve(builder, &r)?;
            builder
                .circuit_mut()
                .add_ccvs(&name, nodes[0], nodes[1], &control, v)?;
        }
        BodyKind::Nonlinear { device } => {
            builder
                .circuit_mut()
                .add_nonlinear(&name, nodes[0], nodes[1], device)?;
        }
        BodyKind::Mosfet { model } => {
            builder
                .circuit_mut()
                .add_mosfet(&name, nodes[0], nodes[1], nodes[2], model)?;
        }
        BodyKind::Instance { subckt, overrides } => {
            let ov: Vec<(&str, ParamValue)> = overrides
                .iter()
                .map(|(k, v)| (k.as_str(), v.clone()))
                .collect();
            builder
                .instantiate(&name, &subckt, &nodes, &ov)
                .map_err(|e| match e {
                    // Attach the instance line to pure lookup failures.
                    CircuitError::UnknownSubckt { name, instance } => parse_err(
                        head.line,
                        head.col,
                        &format!("instance {instance} references unknown subcircuit {name}"),
                    ),
                    other => other,
                })?;
        }
    }
    Ok(())
}

fn lookup<'m>(models: &'m HashMap<String, ModelCard>, tok: &Tok) -> Result<&'m ModelCard> {
    models
        .get(&tok.text.to_ascii_lowercase())
        .ok_or_else(|| parse_err(tok.line, tok.col, &format!("unknown model `{}`", tok.text)))
}

/// Parses a source spec into a [`WaveformTemplate`]: `DC`, `PULSE` and
/// `SIN` value positions accept `{param}` references (resolved at
/// instantiation / top-level emission); `PWL` and `NOISE` stay literal.
/// All-literal templates collapse to a validated [`SourceWaveform`]
/// immediately, so malformed literal waveforms still fail at parse time
/// with line/column information.
fn parse_source(toks: &[Tok], head: &Tok) -> Result<WaveformTemplate> {
    if toks.is_empty() {
        return Err(parse_err(
            head.line,
            head.col,
            "source needs a value or a waveform",
        ));
    }
    let spec = toks[0].upper();
    let pvalues = |from: usize, n: usize| -> Result<Vec<ParamValue>> {
        if toks.len() < from + n {
            return Err(parse_err(
                toks[0].line,
                toks[0].col,
                &format!("waveform {spec} needs {n} parameters"),
            ));
        }
        toks[from..from + n].iter().map(parse_pvalue).collect()
    };
    let all_literal = |vs: &[ParamValue]| vs.iter().all(|v| matches!(v, ParamValue::Lit(_)));
    let lit = |v: &ParamValue| match v {
        ParamValue::Lit(x) => *x,
        ParamValue::Ref(_) => unreachable!("checked all_literal"),
    };
    let wf = match spec.as_str() {
        "DC" => {
            let v = pvalues(1, 1)?.remove(0);
            match v {
                ParamValue::Lit(x) => WaveformTemplate::Literal(SourceWaveform::dc(x)),
                r => WaveformTemplate::Dc { value: r },
            }
        }
        "PULSE" => {
            let v = pvalues(1, 7)?;
            if all_literal(&v) {
                WaveformTemplate::Literal(SourceWaveform::pulse(PulseParams {
                    v1: lit(&v[0]),
                    v2: lit(&v[1]),
                    delay: lit(&v[2]),
                    rise: lit(&v[3]),
                    fall: lit(&v[4]),
                    width: lit(&v[5]),
                    period: lit(&v[6]),
                })?)
            } else {
                let mut it = v.into_iter();
                let mut next = || it.next().expect("seven parsed");
                WaveformTemplate::Pulse {
                    v1: next(),
                    v2: next(),
                    delay: next(),
                    rise: next(),
                    fall: next(),
                    width: next(),
                    period: next(),
                }
            }
        }
        "SIN" => {
            let n = (toks.len() - 1).min(5);
            if n < 3 {
                return Err(parse_err(
                    toks[0].line,
                    toks[0].col,
                    "SIN needs at least vo, va, freq",
                ));
            }
            let mut v = pvalues(1, n)?;
            while v.len() < 5 {
                v.push(ParamValue::Lit(0.0));
            }
            if all_literal(&v) {
                WaveformTemplate::Literal(SourceWaveform::sin(SinParams {
                    offset: lit(&v[0]),
                    amplitude: lit(&v[1]),
                    frequency: lit(&v[2]),
                    delay: lit(&v[3]),
                    theta: lit(&v[4]),
                })?)
            } else {
                let mut it = v.into_iter();
                let mut next = || it.next().expect("five parsed");
                WaveformTemplate::Sin {
                    offset: next(),
                    amplitude: next(),
                    frequency: next(),
                    delay: next(),
                    theta: next(),
                }
            }
        }
        "PWL" => {
            let rest = &toks[1..];
            if rest.len() < 4 || rest.len() % 2 != 0 {
                return Err(parse_err(
                    toks[0].line,
                    toks[0].col,
                    "PWL needs pairs: t1 v1 t2 v2 ...",
                ));
            }
            let mut pts = Vec::with_capacity(rest.len() / 2);
            for pair in rest.chunks(2) {
                let t = parse_value(&pair[0].text).ok_or_else(|| bad_value(&pair[0]))?;
                let v = parse_value(&pair[1].text).ok_or_else(|| bad_value(&pair[1]))?;
                pts.push((t, v));
            }
            WaveformTemplate::Literal(SourceWaveform::pwl(pts)?)
        }
        "NOISE" => {
            if toks.len() < 3 {
                return Err(parse_err(
                    toks[0].line,
                    toks[0].col,
                    "waveform NOISE needs 2 parameters",
                ));
            }
            let mean = parse_value(&toks[1].text).ok_or_else(|| bad_value(&toks[1]))?;
            let sigma = parse_value(&toks[2].text).ok_or_else(|| bad_value(&toks[2]))?;
            WaveformTemplate::Literal(SourceWaveform::white_noise(mean, sigma)?)
        }
        _ => {
            // Bare value = DC; a bare `{param}` reference works too.
            match parse_pvalue(&toks[0]) {
                Ok(ParamValue::Lit(v)) => WaveformTemplate::Literal(SourceWaveform::dc(v)),
                Ok(r @ ParamValue::Ref(_)) => WaveformTemplate::Dc { value: r },
                Err(_) => {
                    return Err(parse_err(
                        toks[0].line,
                        toks[0].col,
                        &format!("bad source spec `{}`", toks[0].text),
                    ))
                }
            }
        }
    };
    Ok(wf)
}

fn rtd_from_model(card: &ModelCard, line_no: usize) -> Result<Rtd> {
    if card.type_name != "rtd" {
        return Err(parse_err(
            line_no,
            0,
            &format!("model is `{}`, expected `rtd`", card.type_name),
        ));
    }
    let d = RtdParams::date2005();
    let p = &card.params;
    let params = RtdParams {
        a: *p.get("a").unwrap_or(&d.a),
        b: *p.get("b").unwrap_or(&d.b),
        c: *p.get("c").unwrap_or(&d.c),
        d: *p.get("d").unwrap_or(&d.d),
        h: *p.get("h").unwrap_or(&d.h),
        n1: *p.get("n1").unwrap_or(&d.n1),
        n2: *p.get("n2").unwrap_or(&d.n2),
        temperature: *p.get("temp").unwrap_or(&d.temperature),
    };
    Ok(Rtd::new(params)?)
}

fn nanowire_from_model(card: &ModelCard, line_no: usize) -> Result<Nanowire> {
    if card.type_name != "nw" && card.type_name != "cnt" {
        return Err(parse_err(
            line_no,
            0,
            &format!("model is `{}`, expected `nw`", card.type_name),
        ));
    }
    let d = NanowireParams::metallic_cnt();
    let p = &card.params;
    let params = NanowireParams {
        g_quantum: *p.get("g0").unwrap_or(&d.g_quantum),
        base_channels: p.get("base").map(|&v| v as u32).unwrap_or(d.base_channels),
        step_voltage: *p.get("step").unwrap_or(&d.step_voltage),
        num_steps: p.get("steps").map(|&v| v as u32).unwrap_or(d.num_steps),
        smearing: *p.get("smear").unwrap_or(&d.smearing),
    };
    Ok(Nanowire::new(params)?)
}

fn diode_from_model(card: &ModelCard, line_no: usize) -> Result<Diode> {
    if card.type_name != "d" {
        return Err(parse_err(
            line_no,
            0,
            &format!("model is `{}`, expected `d`", card.type_name),
        ));
    }
    let dflt = DiodeParams::silicon();
    let p = &card.params;
    let params = DiodeParams {
        saturation_current: *p.get("is").unwrap_or(&dflt.saturation_current),
        ideality: *p.get("n").unwrap_or(&dflt.ideality),
        temperature: *p.get("temp").unwrap_or(&dflt.temperature),
    };
    Ok(Diode::new(params)?)
}

fn mosfet_from_model(card: &ModelCard, line_no: usize) -> Result<Mosfet> {
    let mos_type = match card.type_name.as_str() {
        "nmos" => MosType::Nmos,
        "pmos" => MosType::Pmos,
        other => {
            return Err(parse_err(
                line_no,
                0,
                &format!("model is `{other}`, expected `nmos` or `pmos`"),
            ));
        }
    };
    let d = match mos_type {
        MosType::Nmos => MosfetParams::nmos_default(),
        MosType::Pmos => MosfetParams::pmos_default(),
    };
    let p = &card.params;
    let params = MosfetParams {
        mos_type,
        k: *p.get("kp").or(p.get("k")).unwrap_or(&d.k),
        w: *p.get("w").unwrap_or(&d.w),
        l: *p.get("l").unwrap_or(&d.l),
        vth: *p.get("vto").or(p.get("vth")).unwrap_or(&d.vth),
        lambda: *p.get("lambda").unwrap_or(&d.lambda),
    };
    Ok(Mosfet::new(params)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::ElementKind;

    #[test]
    fn value_suffixes() {
        assert_eq!(parse_value("1k"), Some(1e3));
        assert_eq!(parse_value("1K"), Some(1e3));
        assert_eq!(parse_value("2.5meg"), Some(2.5e6));
        assert_eq!(parse_value("10p"), Some(10.0 * 1e-12));
        assert_eq!(parse_value("10pF"), Some(10.0 * 1e-12));
        assert_eq!(parse_value("100n"), Some(100.0 * 1e-9));
        assert_eq!(parse_value("3m"), Some(3.0 * 1e-3));
        assert_eq!(parse_value("5u"), Some(5.0 * 1e-6));
        assert_eq!(parse_value("2f"), Some(2.0 * 1e-15));
        assert_eq!(parse_value("1t"), Some(1e12));
        assert_eq!(parse_value("4g"), Some(4e9));
        assert_eq!(parse_value("5"), Some(5.0));
        assert_eq!(parse_value("5V"), Some(5.0));
        assert_eq!(parse_value("-1.5e-3"), Some(-1.5e-3));
        assert_eq!(parse_value("1e3k"), Some(1e6));
        assert_eq!(parse_value("abc"), None);
        assert_eq!(parse_value(""), None);
        // Non-finite literals are rejected, not propagated into stamps.
        assert_eq!(parse_value("1e999"), None);
        assert_eq!(parse_value("-1e999"), None);
        assert_eq!(parse_value("1e999k"), None);
    }

    #[test]
    fn nonfinite_literal_rejected_with_position() {
        let err = parse_netlist(
            "overflow deck\n\
             V1 in 0 DC 5\n\
             R1 in 0 1e999\n\
             .op\n\
             .end\n",
        )
        .unwrap_err();
        match err {
            CircuitError::Parse { line, column, .. } => {
                assert_eq!(line, 3);
                assert!(column > 0, "column should point at the value");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn zero_rcl_rejected_at_parse_time() {
        for (deck, what) in [
            ("t\nR1 a 0 0\n.op\n.end\n", "resistance"),
            ("t\nC1 a 0 0\n.op\n.end\n", "capacitance"),
            ("t\nL1 a 0 0.0\n.op\n.end\n", "inductance"),
        ] {
            let err = parse_netlist(deck).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains(what), "{what}: {msg}");
            assert!(msg.contains("line 2"), "{msg}");
        }
        // A `{param}` reference in the same slot still parses; its value is
        // validated later at elaboration.
        assert!(parse_netlist("t\n.param rr=1k\nR1 a 0 {rr}\n.op\n.end\n").is_ok());
    }

    #[test]
    fn minimal_divider_parses() {
        let deck = parse_netlist(
            "test divider\n\
             V1 in 0 DC 5\n\
             R1 in out 1k\n\
             R2 out 0 1k\n\
             .op\n\
             .end\n",
        )
        .unwrap();
        assert_eq!(deck.circuit.title(), Some("test divider"));
        assert_eq!(deck.circuit.elements().len(), 3);
        assert_eq!(deck.analyses, vec![AnalysisDirective::Op]);
        assert!(deck.circuit.validate().is_ok());
        assert!(deck.subckts.is_empty());
        assert!(deck.params.is_empty());
    }

    #[test]
    fn comments_and_continuations() {
        let deck = parse_netlist(
            "* full-line comment\n\
             V1 a 0 PULSE(0 5 0\n\
             + 1n 1n 99n\n\
             + 200n) ; inline comment\n\
             R1 a 0 50 $ another comment\n",
        )
        .unwrap();
        assert_eq!(deck.circuit.elements().len(), 2);
        match deck.circuit.element("V1").unwrap().kind() {
            ElementKind::VoltageSource { waveform } => {
                assert_eq!(waveform.value(50e-9), 5.0);
            }
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn all_source_kinds() {
        let deck = parse_netlist(
            "V1 a 0 3.3\n\
             V2 b 0 DC 1\n\
             V3 c 0 SIN(0 1 1meg)\n\
             V4 d 0 PWL(0 0 1n 5 2n 5)\n\
             I1 e 0 NOISE(0 1m)\n\
             R1 a b 1\nR2 b c 1\nR3 c d 1\nR4 d e 1\nR5 e 0 1\n",
        )
        .unwrap();
        assert_eq!(deck.circuit.elements().len(), 10);
        match deck.circuit.element("I1").unwrap().kind() {
            ElementKind::CurrentSource { waveform } => {
                assert!(waveform.is_stochastic());
                assert_eq!(waveform.noise_intensity(), 1e-3);
            }
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn rtd_with_model_card() {
        let deck = parse_netlist(
            "* paper parameters\n\
             .model mrtd RTD (a=1e-4 b=2 c=1.5 d=0.3 n1=0.35 n2=0.0172 h=1.43e-8)\n\
             V1 in 0 DC 1\n\
             R1 in x 50\n\
             YRTD1 x 0 mrtd\n",
        )
        .unwrap();
        let e = deck.circuit.element("YRTD1").unwrap();
        match e.kind() {
            ElementKind::Nonlinear { device } => assert_eq!(device.device_kind(), "rtd"),
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn model_referenced_before_definition() {
        let deck = parse_netlist(
            "YRTD1 x 0 late\n\
             R1 x 0 50\n\
             .model late RTD (a=2e-4)\n",
        )
        .unwrap();
        assert_eq!(deck.circuit.elements().len(), 2);
    }

    #[test]
    fn nanowire_and_rtt_and_diode() {
        let deck = parse_netlist(
            ".model wire NW (steps=3 step=0.4 smear=0.02)\n\
             .model dd D (is=1e-12 n=1.5)\n\
             YNW1 a 0 wire\n\
             YCNT2 a 0\n\
             YRTT1 b 0\n\
             D1 c 0 dd\n\
             D2 c 0\n\
             R1 a b 1\nR2 b c 1\n",
        )
        .unwrap();
        assert_eq!(deck.circuit.elements().len(), 7);
    }

    #[test]
    fn mosfet_with_model() {
        let deck = parse_netlist(
            ".model mn NMOS (kp=2e-4 w=20 l=2 vto=0.7)\n\
             M1 d g 0 mn\n\
             V1 d 0 5\nV2 g 0 5\n",
        )
        .unwrap();
        match deck.circuit.element("M1").unwrap().kind() {
            ElementKind::Mosfet { model } => {
                assert_eq!(model.params().vth, 0.7);
                assert_eq!(model.params().w, 20.0);
            }
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn tran_and_dc_directives() {
        let deck = parse_netlist(
            "V1 a 0 1\nR1 a 0 1\n\
             .tran 1n 500n\n\
             .dc V1 0 2.5 0.01\n",
        )
        .unwrap();
        assert_eq!(
            deck.analyses,
            vec![
                AnalysisDirective::Tran {
                    tstep: 1e-9,
                    tstop: 500.0 * 1e-9
                },
                AnalysisDirective::Dc {
                    source: "V1".into(),
                    start: 0.0,
                    stop: 2.5,
                    step: 0.01
                },
            ]
        );
    }

    #[test]
    fn end_stops_parsing() {
        let deck = parse_netlist("V1 a 0 1\nR1 a 0 1\n.end\nR2 a 0 broken").unwrap();
        assert_eq!(deck.circuit.elements().len(), 2);
    }

    #[test]
    fn capacitor_initial_condition() {
        let deck = parse_netlist("C1 a 0 10p IC=2.5\nR1 a 0 1k\n").unwrap();
        match deck.circuit.element("C1").unwrap().kind() {
            ElementKind::Capacitor {
                capacitance,
                initial_voltage,
            } => {
                assert_eq!(*capacitance, 1e-11);
                assert_eq!(*initial_voltage, Some(2.5));
            }
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn error_line_and_column() {
        let err = parse_netlist("V1 a 0 1\nR1 a 0 bogus\n").unwrap_err();
        match err {
            CircuitError::Parse { line, column, .. } => {
                assert_eq!(line, 2);
                // `bogus` starts at column 8 of `R1 a 0 bogus`.
                assert_eq!(column, 8);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_column_on_continuation_line() {
        // The bad token lives on the physical `+` line; the error must
        // point there, not at the logical line start.
        let err = parse_netlist("V1 a 0 PULSE(0 5 0 1n 1n\n+ 99n bogus)\nR1 a 0 1\n").unwrap_err();
        match err {
            CircuitError::Parse { line, column, .. } => {
                assert_eq!(line, 2);
                assert_eq!(column, 7);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_model_is_error() {
        let err = parse_netlist("YRTD1 a 0 nosuch\nR1 a 0 1\n").unwrap_err();
        assert!(matches!(err, CircuitError::Parse { .. }));
        assert!(err.to_string().contains("nosuch"));
    }

    #[test]
    fn wrong_model_type_is_error() {
        let err = parse_netlist(
            ".model mn NMOS (kp=1e-4)\n\
             YRTD1 a 0 mn\nR1 a 0 1\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("expected `rtd`"));
    }

    #[test]
    fn bad_directives_are_errors() {
        assert!(parse_netlist("V1 a 0 1\n.tran 1n\n").is_err());
        assert!(parse_netlist("V1 a 0 1\n.tran 2n 1n\n").is_err());
        assert!(parse_netlist("V1 a 0 1\n.dc V1 0 1 0\n").is_err());
        assert!(parse_netlist("V1 a 0 1\n.bogus\n").is_err());
        // An unknown element letter after the first content line is an
        // error (the first line would have been taken as the title).
        assert!(parse_netlist("V1 a 0 1\nQ1 a 0 1\n").is_err());
    }

    #[test]
    fn model_with_odd_params_is_error() {
        assert!(parse_netlist(".model m RTD (a)\n").is_err());
        assert!(parse_netlist(".model m\n").is_err());
    }

    #[test]
    fn pulse_needs_seven_params() {
        assert!(parse_netlist("V1 a 0 PULSE(0 5 0 1n 1n 99n)\nR1 a 0 1\n").is_err());
    }

    #[test]
    fn pwl_needs_pairs() {
        assert!(parse_netlist("V1 a 0 PWL(0 0 1n)\nR1 a 0 1\n").is_err());
    }

    #[test]
    fn pulse_params_resolve_per_instance() {
        // One clock-driver subckt serves two timing corners: {per} and
        // {vhi} inside PULSE(..) resolve against each instance's scope.
        let deck = "\
            .subckt clkdrv out per=100n vhi=5\n\
            Vck out 0 PULSE(0 {vhi} 0 1n 1n 4n {per})\n\
            .ends\n\
            X1 a clkdrv\n\
            X2 b clkdrv per=10n vhi=2\n\
            R1 a 0 1k\n\
            R2 b 0 1k\n\
            .end\n";
        let parsed = parse_netlist(deck).unwrap();
        let wf = |name: &str| match parsed.circuit.element(name).unwrap().kind() {
            ElementKind::VoltageSource { waveform } => waveform.clone(),
            other => panic!("wrong kind {other:?}"),
        };
        let w1 = wf("Vck.X1");
        let w2 = wf("Vck.X2");
        // Default corner: 5 V plateau inside the first 100 ns period.
        assert_eq!(w1.value(3e-9), 5.0);
        assert_eq!(w1.value(50e-9), 0.0);
        // Overridden corner: 2 V plateau, 10 ns period (high again at 13 ns).
        assert_eq!(w2.value(3e-9), 2.0);
        assert_eq!(w2.value(13e-9), 2.0);
    }

    #[test]
    fn sin_params_resolve_against_globals() {
        // {f} in a SIN position of a *top-level* source resolves against
        // `.param` globals.
        let deck = "\
            .param f=1meg amp=2\n\
            V1 a 0 SIN(0 {amp} {f})\n\
            R1 a 0 1k\n\
            .end\n";
        let parsed = parse_netlist(deck).unwrap();
        match parsed.circuit.element("V1").unwrap().kind() {
            ElementKind::VoltageSource { waveform } => {
                // Quarter period of 1 MHz = 250 ns: sin peaks at `amp`.
                assert!((waveform.value(250e-9) - 2.0).abs() < 1e-9);
            }
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn unknown_waveform_param_rejected() {
        let deck = "\
            .subckt d out\n\
            Vck out 0 PULSE(0 {ghost} 0 1n 1n 4n 10n)\n\
            .ends\n\
            X1 a d\n\
            R1 a 0 1k\n\
            .end\n";
        assert!(matches!(
            parse_netlist(deck),
            Err(CircuitError::UnknownParam { .. })
        ));
    }

    #[test]
    fn resolved_waveform_still_validated() {
        // Parameterized PULSE whose resolved values are inconsistent
        // (period shorter than rise+width+fall) fails at instantiation.
        let deck = "\
            .subckt d out per=100n\n\
            Vck out 0 PULSE(0 5 0 1n 1n 40n {per})\n\
            .ends\n\
            X1 a d per=10n\n\
            R1 a 0 1k\n\
            .end\n";
        assert!(matches!(parse_netlist(deck), Err(CircuitError::Device(_))));
    }

    #[test]
    fn literal_waveforms_still_fail_at_parse_time() {
        // All-literal PULSE specs collapse (and validate) during parsing.
        let err = parse_netlist("V1 a 0 PULSE(0 5 0 1n 1n 40n 10n)\nR1 a 0 1\n").unwrap_err();
        assert!(matches!(err, CircuitError::Device(_)), "{err}");
    }

    #[test]
    fn sin_defaults_optional_params() {
        let deck = parse_netlist("V1 a 0 SIN(1 2 1meg)\nR1 a 0 1\n").unwrap();
        match deck.circuit.element("V1").unwrap().kind() {
            ElementKind::VoltageSource { waveform } => {
                assert!((waveform.value(0.0) - 1.0).abs() < 1e-12);
            }
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn case_insensitive_elements_and_nodes() {
        let deck = parse_netlist("v1 VDD 0 5\nr1 vdd 0 1K\n").unwrap();
        assert_eq!(deck.circuit.elements().len(), 2);
        assert_eq!(deck.circuit.node_count(), 2); // VDD == vdd
    }

    #[test]
    fn controlled_sources_parse() {
        let deck = parse_netlist(
            "V1 in 0 DC 1\n\
             R1 in 0 1k\n\
             E1 e 0 in 0 2.0\n\
             RE e 0 1k\n\
             G1 g 0 in 0 1m\n\
             RG g 0 1k\n\
             F1 f 0 V1 2\n\
             RF f 0 1k\n\
             H1 h 0 V1 500\n\
             RH h 0 1k\n",
        )
        .unwrap();
        assert_eq!(deck.circuit.elements().len(), 10);
        match deck.circuit.element("E1").unwrap().kind() {
            ElementKind::Vcvs { gain } => assert_eq!(*gain, 2.0),
            _ => panic!("wrong kind"),
        }
        match deck.circuit.element("G1").unwrap().kind() {
            ElementKind::Vccs { gm } => assert_eq!(*gm, 1e-3),
            _ => panic!("wrong kind"),
        }
        match deck.circuit.element("F1").unwrap().kind() {
            ElementKind::Cccs { gain, control } => {
                assert_eq!(*gain, 2.0);
                assert_eq!(control, "V1");
            }
            _ => panic!("wrong kind"),
        }
        match deck.circuit.element("H1").unwrap().kind() {
            ElementKind::Ccvs { r, control } => {
                assert_eq!(*r, 500.0);
                assert_eq!(control, "V1");
            }
            _ => panic!("wrong kind"),
        }
        assert!(deck.circuit.validate().is_ok());
        assert!(crate::mna::MnaSystem::new(&deck.circuit).is_ok());
    }

    #[test]
    fn subckt_instance_flattens() {
        let deck = parse_netlist(
            ".subckt div top out r1=1k r2=1k\n\
             Ra top out {r1}\n\
             Rb out 0 {r2}\n\
             .ends div\n\
             V1 a 0 DC 5\n\
             X1 a mid div\n\
             X2 mid end div r2=2k\n",
        )
        .unwrap();
        assert_eq!(deck.subckts.len(), 1);
        assert_eq!(deck.circuit.elements().len(), 5);
        assert!(deck.circuit.element("Ra.X1").is_some());
        match deck.circuit.element("Rb.X2").unwrap().kind() {
            ElementKind::Resistor { resistance } => assert_eq!(*resistance, 2e3),
            _ => panic!("wrong kind"),
        }
        assert!(deck.circuit.validate().is_ok());
    }

    #[test]
    fn instance_may_precede_definition() {
        let deck = parse_netlist(
            "V1 a 0 DC 1\n\
             X1 a cell\n\
             .subckt cell p\n\
             R1 p 0 50\n\
             .ends\n",
        )
        .unwrap();
        assert!(deck.circuit.element("R1.X1").is_some());
    }

    #[test]
    fn global_params_substitute_anywhere() {
        let deck = parse_netlist(
            ".param rload=2k cpar=10p\n\
             V1 a 0 DC 1\n\
             R1 a out {rload}\n\
             C1 out 0 {cpar}\n",
        )
        .unwrap();
        assert_eq!(deck.params.get("rload"), Some(&2e3));
        match deck.circuit.element("R1").unwrap().kind() {
            ElementKind::Resistor { resistance } => assert_eq!(*resistance, 2e3),
            _ => panic!("wrong kind"),
        }
        match deck.circuit.element("C1").unwrap().kind() {
            ElementKind::Capacitor { capacitance, .. } => assert_eq!(*capacitance, 1e-11),
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn param_can_reference_earlier_param() {
        let deck = parse_netlist(
            ".param base=1k\n\
             .param rload={base}\n\
             V1 a 0 1\nR1 a 0 {rload}\n",
        )
        .unwrap();
        assert_eq!(deck.params.get("rload"), Some(&1e3));
    }

    #[test]
    fn nested_subckt_instances() {
        let deck = parse_netlist(
            ".subckt leaf p r=1k\n\
             R1 p 0 {r}\n\
             .ends\n\
             .subckt branch p r=3k\n\
             X1 p leaf r={r}\n\
             X2 p leaf\n\
             .ends\n\
             V1 a 0 1\n\
             Xb a branch r=7k\n",
        )
        .unwrap();
        match deck.circuit.element("R1.Xb.X1").unwrap().kind() {
            ElementKind::Resistor { resistance } => assert_eq!(*resistance, 7e3),
            _ => panic!("wrong kind"),
        }
        match deck.circuit.element("R1.Xb.X2").unwrap().kind() {
            ElementKind::Resistor { resistance } => assert_eq!(*resistance, 1e3),
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn subckt_with_devices_and_controlled_sources() {
        let deck = parse_netlist(
            ".model mn NMOS (kp=2e-4 w=20 l=2 vto=0.7)\n\
             .subckt stage in out\n\
             YRTD1 out 0\n\
             M1 out in 0 mn\n\
             Vsense in mid DC 0\n\
             Rm mid 0 1k\n\
             F1 out 0 Vsense 0.5\n\
             .ends\n\
             V1 a 0 DC 2\n\
             X1 a b stage\n\
             RL b 0 1k\n",
        )
        .unwrap();
        assert!(deck.circuit.element("YRTD1.X1").is_some());
        assert!(deck.circuit.element("M1.X1").is_some());
        match deck.circuit.element("F1.X1").unwrap().kind() {
            ElementKind::Cccs { control, .. } => assert_eq!(control, "Vsense.X1"),
            _ => panic!("wrong kind"),
        }
        assert!(crate::mna::MnaSystem::new(&deck.circuit).is_ok());
    }

    #[test]
    fn hierarchy_errors() {
        // Unknown subckt.
        let err = parse_netlist("V1 a 0 1\nX1 a ghost\n").unwrap_err();
        assert!(err.to_string().contains("ghost"));
        // Unclosed subckt.
        let err = parse_netlist(".subckt cell p\nR1 p 0 1\n").unwrap_err();
        assert!(err.to_string().contains("never closed"));
        // Mismatched .ends name.
        let err = parse_netlist(".subckt cell p\nR1 p 0 1\n.ends other\n").unwrap_err();
        assert!(err.to_string().contains("does not close"));
        // .ends without .subckt.
        assert!(parse_netlist("V1 a 0 1\n.ends\n").is_err());
        // Directives inside a subckt body.
        let err = parse_netlist(".subckt c p\n.tran 1n 2n\n.ends\nV1 a 0 1\n").unwrap_err();
        assert!(err.to_string().contains("not allowed inside"));
        // Port-count mismatch.
        let err = parse_netlist(".subckt c p q\nR1 p q 1\n.ends\nV1 a 0 1\nX1 a c\n").unwrap_err();
        assert!(matches!(err, CircuitError::PortMismatch { .. }));
        // Unknown override.
        let err =
            parse_netlist(".subckt c p\nR1 p 0 1\n.ends\nV1 a 0 1\nX1 a c zz=4\n").unwrap_err();
        assert!(matches!(err, CircuitError::UnknownParam { .. }));
        // Unknown {param} reference.
        let err = parse_netlist("V1 a 0 1\nR1 a 0 {nope}\n").unwrap_err();
        assert!(matches!(err, CircuitError::UnknownParam { .. }));
        // Unterminated reference.
        let err = parse_netlist("V1 a 0 1\nR1 a 0 {nope\n").unwrap_err();
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn title_lines_starting_with_new_element_letters_still_parse() {
        // E/G/F/H/X joined the element alphabet; decks titled with those
        // letters must keep parsing as they did before this release.
        for title in [
            "Example rtd deck",
            "Gain stage test",
            "Full mesh workload",
            "High speed latch",
            "Xor gate array",
        ] {
            let deck = parse_netlist(&format!("{title}\nV1 a 0 1\nR1 a 0 1k\n.op\n"))
                .unwrap_or_else(|e| panic!("title `{title}` broke parsing: {e}"));
            assert_eq!(deck.circuit.title(), Some(title));
            assert_eq!(deck.circuit.elements().len(), 2);
        }
        // A *valid* controlled-source line first is an element, not a title.
        let deck = parse_netlist("E1 e 0 a 0 2\nV1 a 0 1\nR1 a 0 1k\nRE e 0 1k\n").unwrap();
        assert_eq!(deck.circuit.title(), None);
        assert_eq!(deck.circuit.elements().len(), 4);
        // Old element letters keep their strict first-line behavior.
        assert!(parse_netlist("R1 a 0 bogus\nV1 a 0 1\n").is_err());
    }

    #[test]
    fn malformed_first_line_instance_of_defined_subckt_is_an_error() {
        // `cell` IS defined, so a first-line X with a bad override must
        // report the bad token, not vanish into the title.
        let err = parse_netlist(
            "X1 a cell r=bogus\n\
             .subckt cell p r=1k\nR1 p 0 {r}\n.ends\n\
             V1 a 0 1\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("bogus"), "{err}");
    }

    #[test]
    fn duplicate_instance_names_rejected_in_decks() {
        let err = parse_netlist(
            ".subckt cell p\nR1 p mid 50\nC1 mid 0 1p\n.ends\n\
             V1 a 0 1\nV2 b 0 1\n\
             X1 a cell\nX1 b cell\n",
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                CircuitError::DuplicateElementAt {
                    line: 8,
                    column: 1,
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn duplicate_top_level_elements_locate_the_second_line() {
        let err = parse_netlist("V1 a 0 DC 1\nR1 a 0 1k\n  R1 a 0 2k\n.op\n").unwrap_err();
        match err {
            CircuitError::DuplicateElementAt { name, line, column } => {
                assert_eq!(name, "R1");
                assert_eq!((line, column), (3, 3));
            }
            other => panic!("expected DuplicateElementAt, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_names_inside_a_subckt_body_are_located() {
        let err = parse_netlist(
            ".subckt cell p\nR1 p mid 50\nR1 mid 0 50\n.ends\nV1 a 0 1\nX1 a cell\n.op\n",
        )
        .unwrap_err();
        match err {
            CircuitError::DuplicateElementAt { name, line, column } => {
                assert_eq!(name, "R1");
                assert_eq!((line, column), (3, 1));
            }
            other => panic!("expected DuplicateElementAt, got {other:?}"),
        }
    }

    #[test]
    fn parsed_deck_records_element_spans() {
        let deck = parse_netlist(
            ".subckt cell p\nR1 p mid 50\nC1 mid 0 1p\n.ends\n\
             V1 a 0 1\nR2 a 0 1k\nX1 a cell\n.op\n",
        )
        .unwrap();
        assert_eq!(deck.spans.get("V1"), Some(crate::lint::Span::new(5, 1)));
        assert_eq!(deck.spans.get("R2"), Some(crate::lint::Span::new(6, 1)));
        // Flattened instance elements map to the X line.
        assert_eq!(deck.spans.get("R1.X1"), Some(crate::lint::Span::new(7, 1)));
        assert_eq!(deck.spans.get("C1.X1"), Some(crate::lint::Span::new(7, 1)));
    }

    #[test]
    fn malformed_subckt_header_is_an_error_not_a_panic() {
        let err = parse_netlist(".subckt cell=1\nR1 a 0 1\n.ends\n").unwrap_err();
        assert!(err.to_string().contains("needs a name"), "{err}");
        let err = parse_netlist(".subckt= cell p\nR1 p 0 1\n.ends\n").unwrap_err();
        assert!(err.to_string().contains("needs a name"), "{err}");
    }

    #[test]
    fn unclosed_subckt_error_names_its_line() {
        let err = parse_netlist("V1 a 0 1\n.subckt cell p\nR1 p 0 1\n").unwrap_err();
        match err {
            CircuitError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn recursive_subckt_rejected() {
        let err = parse_netlist(
            ".subckt a p\nX1 p b\n.ends\n\
             .subckt b p\nX1 p a\n.ends\n\
             V1 n 0 1\nXt n a\n",
        )
        .unwrap_err();
        assert!(matches!(err, CircuitError::RecursiveSubckt { .. }));
    }
}
