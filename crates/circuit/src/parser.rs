//! SPICE-like netlist parser.
//!
//! Supports the subset of the SPICE language the Nano-Sim experiments need,
//! plus `Y`-prefixed nano-devices:
//!
//! ```text
//! * comment lines and trailing ; comments
//! R<name> n+ n- value            resistor
//! C<name> n+ n- value [IC=v0]    capacitor
//! L<name> n+ n- value            inductor
//! V<name> n+ n- <source>         voltage source
//! I<name> n+ n- <source>         current source
//! D<name> n+ n- [model]          diode
//! M<name> nd ng ns <model>       level-1 MOSFET
//! YRTD<name> n+ n- [model]       resonant tunneling diode
//! YNW<name>  n+ n- [model]       quantum wire / CNT
//! YRTT<name> nc ne [model]       resonant tunneling transistor
//!
//! <source> ::= [DC] value
//!            | PULSE(v1 v2 td tr tf pw per)
//!            | SIN(vo va freq [td [theta]])
//!            | PWL(t1 v1 t2 v2 ...)
//!            | NOISE(mean intensity)
//!
//! .model <name> RTD  (a=.. b=.. c=.. d=.. h=.. n1=.. n2=.. [temp=..])
//! .model <name> NMOS (kp=.. w=.. l=.. vto=.. [lambda=..])
//! .model <name> PMOS (kp=.. w=.. l=.. vto=.. [lambda=..])
//! .model <name> D    (is=.. [n=..] [temp=..])
//! .model <name> NW   ([g0=..] [base=..] [step=..] [steps=..] [smear=..])
//! .model <name> RTT  ([vbe=..])
//!
//! .tran tstep tstop
//! .dc <source> start stop step
//! .op
//! .end
//! ```
//!
//! Values accept SPICE magnitude suffixes (`t g meg k m u n p f`) and
//! trailing unit letters (`10pF`, `5V`, `1k`).

use crate::error::CircuitError;
use crate::netlist::Circuit;
use crate::Result;
use nanosim_devices::diode::{Diode, DiodeParams};
use nanosim_devices::mosfet::{MosType, Mosfet, MosfetParams};
use nanosim_devices::nanowire::{Nanowire, NanowireParams};
use nanosim_devices::rtd::{Rtd, RtdParams};
use nanosim_devices::rtt::Rtt;
use nanosim_devices::sources::{PulseParams, SinParams, SourceWaveform};
use std::collections::HashMap;

/// An analysis request found in the netlist.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisDirective {
    /// `.op` — DC operating point.
    Op,
    /// `.tran tstep tstop` — transient analysis.
    Tran {
        /// Suggested (maximum) time step in seconds.
        tstep: f64,
        /// Stop time in seconds.
        tstop: f64,
    },
    /// `.dc source start stop step` — DC sweep of a named source.
    Dc {
        /// Name of the swept V/I source.
        source: String,
        /// Sweep start value.
        start: f64,
        /// Sweep end value.
        stop: f64,
        /// Sweep increment.
        step: f64,
    },
}

/// Result of parsing a netlist: the circuit plus its analysis directives.
#[derive(Debug, Clone)]
pub struct ParsedDeck {
    /// The parsed circuit.
    pub circuit: Circuit,
    /// Analyses in file order.
    pub analyses: Vec<AnalysisDirective>,
}

#[derive(Debug, Clone)]
struct ModelCard {
    type_name: String,
    params: HashMap<String, f64>,
    /// Definition line, kept for duplicate-model diagnostics.
    #[allow(dead_code)]
    line: usize,
}

/// Parses SPICE-like netlist text.
///
/// # Errors
/// Returns [`CircuitError::Parse`] with a 1-based line number for syntax
/// errors and propagates element/model validation failures.
///
/// # Example
/// ```
/// let deck = nanosim_circuit::parse_netlist(
///     "* rtd divider\n\
///      V1 in 0 DC 1.0\n\
///      R1 in out 50\n\
///      YRTD1 out 0\n\
///      .dc V1 0 2.5 0.01\n\
///      .end\n",
/// )?;
/// assert_eq!(deck.circuit.elements().len(), 3);
/// assert_eq!(deck.analyses.len(), 1);
/// # Ok::<(), nanosim_circuit::CircuitError>(())
/// ```
pub fn parse_netlist(text: &str) -> Result<ParsedDeck> {
    let lines = preprocess(text);
    // Pass 1: collect .model cards (they may be referenced before defined).
    let mut models: HashMap<String, ModelCard> = HashMap::new();
    for (line_no, line) in &lines {
        let tokens = tokenize(line);
        if tokens.is_empty() {
            continue;
        }
        if tokens[0].eq_ignore_ascii_case(".model") {
            if tokens.len() < 3 {
                return Err(parse_err(*line_no, "`.model` needs a name and a type"));
            }
            let name = tokens[1].to_ascii_lowercase();
            let type_name = tokens[2].to_ascii_lowercase();
            let mut params = HashMap::new();
            let rest = &tokens[3..];
            if rest.len() % 2 != 0 {
                return Err(parse_err(
                    *line_no,
                    "`.model` parameters must be key=value pairs",
                ));
            }
            for pair in rest.chunks(2) {
                let key = pair[0].to_ascii_lowercase();
                let value = parse_value(&pair[1])
                    .ok_or_else(|| parse_err(*line_no, &format!("bad value `{}`", pair[1])))?;
                params.insert(key, value);
            }
            models.insert(
                name,
                ModelCard {
                    type_name,
                    params,
                    line: *line_no,
                },
            );
        }
    }

    // Pass 2: elements and directives.
    let mut circuit = Circuit::new();
    let mut analyses = Vec::new();
    let mut first_content_line = true;
    for (line_no, line) in &lines {
        let tokens = tokenize(line);
        if tokens.is_empty() {
            continue;
        }
        let head = tokens[0].to_ascii_uppercase();
        // SPICE-style title line: the first line that is neither a directive
        // nor an element becomes the title.
        if first_content_line && !head.starts_with('.') && !is_element_head(&head) {
            circuit.set_title(line.trim());
            first_content_line = false;
            continue;
        }
        first_content_line = false;
        if head.starts_with('.') {
            match head.as_str() {
                ".MODEL" => {} // handled in pass 1
                ".END" => break,
                ".TITLE" => {
                    let title = line
                        .trim_start()
                        .get(6..)
                        .map(str::trim)
                        .unwrap_or_default();
                    circuit.set_title(title);
                }
                ".OP" => analyses.push(AnalysisDirective::Op),
                ".TRAN" => {
                    if tokens.len() < 3 {
                        return Err(parse_err(*line_no, "`.tran` needs tstep and tstop"));
                    }
                    let tstep =
                        parse_value(&tokens[1]).ok_or_else(|| parse_err(*line_no, "bad tstep"))?;
                    let tstop =
                        parse_value(&tokens[2]).ok_or_else(|| parse_err(*line_no, "bad tstop"))?;
                    if !(tstep > 0.0 && tstop > tstep) {
                        return Err(parse_err(*line_no, "`.tran` needs 0 < tstep < tstop"));
                    }
                    analyses.push(AnalysisDirective::Tran { tstep, tstop });
                }
                ".DC" => {
                    if tokens.len() < 5 {
                        return Err(parse_err(*line_no, "`.dc` needs source, start, stop, step"));
                    }
                    let start =
                        parse_value(&tokens[2]).ok_or_else(|| parse_err(*line_no, "bad start"))?;
                    let stop =
                        parse_value(&tokens[3]).ok_or_else(|| parse_err(*line_no, "bad stop"))?;
                    let step =
                        parse_value(&tokens[4]).ok_or_else(|| parse_err(*line_no, "bad step"))?;
                    if step == 0.0 {
                        return Err(parse_err(*line_no, "`.dc` step must be nonzero"));
                    }
                    analyses.push(AnalysisDirective::Dc {
                        source: tokens[1].clone(),
                        start,
                        stop,
                        step,
                    });
                }
                other => {
                    return Err(parse_err(*line_no, &format!("unknown directive `{other}`")));
                }
            }
            continue;
        }
        parse_element(&mut circuit, &tokens, *line_no, &models)?;
    }
    Ok(ParsedDeck { circuit, analyses })
}

fn is_element_head(head: &str) -> bool {
    matches!(
        head.chars().next(),
        Some('R' | 'C' | 'L' | 'V' | 'I' | 'D' | 'M' | 'Y')
    )
}

/// Strips comments, joins `+` continuations, returns `(line_no, text)`.
fn preprocess(text: &str) -> Vec<(usize, String)> {
    let mut out: Vec<(usize, String)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let mut line = raw.trim().to_string();
        if line.is_empty() || line.starts_with('*') {
            continue;
        }
        for sep in [';', '$'] {
            if let Some(pos) = line.find(sep) {
                line.truncate(pos);
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('+') {
            if let Some(last) = out.last_mut() {
                last.1.push(' ');
                last.1.push_str(rest.trim());
                continue;
            }
        }
        out.push((line_no, line.to_string()));
    }
    out
}

/// Splits a line into tokens, treating `(`, `)`, `,` and `=` as whitespace.
fn tokenize(line: &str) -> Vec<String> {
    line.replace(['(', ')', ',', '='], " ")
        .split_whitespace()
        .map(str::to_string)
        .collect()
}

/// Parses a SPICE value with magnitude suffix and optional trailing units.
fn parse_value(token: &str) -> Option<f64> {
    let t = token.trim().to_ascii_lowercase();
    if t.is_empty() {
        return None;
    }
    // Split numeric prefix from alphabetic suffix.
    let mut split = t.len();
    for (i, ch) in t.char_indices() {
        if ch.is_ascii_alphabetic() && !(i > 0 && (ch == 'e') && has_digit_after(&t, i)) {
            split = i;
            break;
        }
    }
    let (num, suffix) = t.split_at(split);
    let base: f64 = num.parse().ok()?;
    let mult = if suffix.starts_with("meg") {
        1e6
    } else {
        match suffix.chars().next() {
            None => 1.0,
            Some('t') => 1e12,
            Some('g') => 1e9,
            Some('k') => 1e3,
            Some('m') => 1e-3,
            Some('u') => 1e-6,
            Some('n') => 1e-9,
            Some('p') => 1e-12,
            Some('f') => 1e-15,
            // Bare unit letters like "5v" or "2a".
            Some(_) => 1.0,
        }
    };
    Some(base * mult)
}

fn has_digit_after(s: &str, i: usize) -> bool {
    s[i + 1..]
        .chars()
        .next()
        .map(|c| c.is_ascii_digit() || c == '-' || c == '+')
        .unwrap_or(false)
}

fn parse_err(line: usize, message: &str) -> CircuitError {
    CircuitError::Parse {
        line,
        message: message.to_string(),
    }
}

fn parse_element(
    circuit: &mut Circuit,
    tokens: &[String],
    line_no: usize,
    models: &HashMap<String, ModelCard>,
) -> Result<()> {
    let name = &tokens[0];
    let upper = name.to_ascii_uppercase();
    let kind_char = upper.chars().next().expect("nonempty token");
    let need = |n: usize| -> Result<()> {
        if tokens.len() < n {
            Err(parse_err(
                line_no,
                &format!("element {name} needs at least {} fields", n - 1),
            ))
        } else {
            Ok(())
        }
    };
    match kind_char {
        'R' => {
            need(4)?;
            let n1 = circuit.node(&tokens[1]);
            let n2 = circuit.node(&tokens[2]);
            let v = parse_value(&tokens[3])
                .ok_or_else(|| parse_err(line_no, &format!("bad value `{}`", tokens[3])))?;
            circuit.add_resistor(name, n1, n2, v)?;
        }
        'C' => {
            need(4)?;
            let n1 = circuit.node(&tokens[1]);
            let n2 = circuit.node(&tokens[2]);
            let v = parse_value(&tokens[3])
                .ok_or_else(|| parse_err(line_no, &format!("bad value `{}`", tokens[3])))?;
            let mut ic = None;
            if tokens.len() >= 6 && tokens[4].eq_ignore_ascii_case("ic") {
                ic = Some(
                    parse_value(&tokens[5]).ok_or_else(|| parse_err(line_no, "bad IC value"))?,
                );
            }
            circuit.add_capacitor_ic(name, n1, n2, v, ic)?;
        }
        'L' => {
            need(4)?;
            let n1 = circuit.node(&tokens[1]);
            let n2 = circuit.node(&tokens[2]);
            let v = parse_value(&tokens[3])
                .ok_or_else(|| parse_err(line_no, &format!("bad value `{}`", tokens[3])))?;
            circuit.add_inductor(name, n1, n2, v)?;
        }
        'V' | 'I' => {
            need(4)?;
            let n1 = circuit.node(&tokens[1]);
            let n2 = circuit.node(&tokens[2]);
            let wf = parse_source(&tokens[3..], line_no)?;
            if kind_char == 'V' {
                circuit.add_voltage_source(name, n1, n2, wf)?;
            } else {
                circuit.add_current_source(name, n1, n2, wf)?;
            }
        }
        'D' => {
            need(3)?;
            let n1 = circuit.node(&tokens[1]);
            let n2 = circuit.node(&tokens[2]);
            let diode = match tokens.get(3) {
                Some(m) => diode_from_model(lookup(models, m, line_no)?, line_no)?,
                None => Diode::silicon(),
            };
            circuit.add_diode(name, n1, n2, diode)?;
        }
        'M' => {
            need(5)?;
            let d = circuit.node(&tokens[1]);
            let g = circuit.node(&tokens[2]);
            let s = circuit.node(&tokens[3]);
            let model = lookup(models, &tokens[4], line_no)?;
            let fet = mosfet_from_model(model, line_no)?;
            circuit.add_mosfet(name, d, g, s, fet)?;
        }
        'Y' => {
            // YRTD / YNW / YCNT / YRTT prefix selects the device family.
            need(3)?;
            let n1 = circuit.node(&tokens[1]);
            let n2 = circuit.node(&tokens[2]);
            let model = match tokens.get(3) {
                Some(m) => Some(lookup(models, m, line_no)?),
                None => None,
            };
            if upper.starts_with("YRTD") {
                let rtd = match model {
                    Some(card) => rtd_from_model(card, line_no)?,
                    None => Rtd::date2005(),
                };
                circuit.add_rtd(name, n1, n2, rtd)?;
            } else if upper.starts_with("YNW") || upper.starts_with("YCNT") {
                let wire = match model {
                    Some(card) => nanowire_from_model(card, line_no)?,
                    None => Nanowire::metallic_cnt(),
                };
                circuit.add_nanowire(name, n1, n2, wire)?;
            } else if upper.starts_with("YRTT") {
                let mut rtt = Rtt::three_peak();
                if let Some(card) = model {
                    if let Some(&vbe) = card.params.get("vbe") {
                        rtt.set_vbe(vbe);
                    }
                }
                circuit.add_rtt(name, n1, n2, rtt)?;
            } else {
                return Err(parse_err(
                    line_no,
                    &format!("unknown nano-device `{name}` (expected YRTD/YNW/YRTT prefix)"),
                ));
            }
        }
        other => {
            return Err(parse_err(
                line_no,
                &format!("unknown element type `{other}` in `{name}`"),
            ));
        }
    }
    Ok(())
}

fn lookup<'m>(
    models: &'m HashMap<String, ModelCard>,
    name: &str,
    line_no: usize,
) -> Result<&'m ModelCard> {
    models
        .get(&name.to_ascii_lowercase())
        .ok_or_else(|| parse_err(line_no, &format!("unknown model `{name}`")))
}

fn parse_source(tokens: &[String], line_no: usize) -> Result<SourceWaveform> {
    if tokens.is_empty() {
        return Err(parse_err(line_no, "source needs a value or a waveform"));
    }
    let head = tokens[0].to_ascii_uppercase();
    let values = |from: usize, n: usize| -> Result<Vec<f64>> {
        if tokens.len() < from + n {
            return Err(parse_err(
                line_no,
                &format!("waveform {head} needs {n} parameters"),
            ));
        }
        tokens[from..from + n]
            .iter()
            .map(|t| parse_value(t).ok_or_else(|| parse_err(line_no, &format!("bad value `{t}`"))))
            .collect()
    };
    let wf = match head.as_str() {
        "DC" => SourceWaveform::dc(values(1, 1)?[0]),
        "PULSE" => {
            let v = values(1, 7)?;
            SourceWaveform::pulse(PulseParams {
                v1: v[0],
                v2: v[1],
                delay: v[2],
                rise: v[3],
                fall: v[4],
                width: v[5],
                period: v[6],
            })?
        }
        "SIN" => {
            let n = (tokens.len() - 1).min(5);
            if n < 3 {
                return Err(parse_err(line_no, "SIN needs at least vo, va, freq"));
            }
            let v = values(1, n)?;
            SourceWaveform::sin(SinParams {
                offset: v[0],
                amplitude: v[1],
                frequency: v[2],
                delay: v.get(3).copied().unwrap_or(0.0),
                theta: v.get(4).copied().unwrap_or(0.0),
            })?
        }
        "PWL" => {
            let rest = &tokens[1..];
            if rest.len() < 4 || rest.len() % 2 != 0 {
                return Err(parse_err(line_no, "PWL needs pairs: t1 v1 t2 v2 ..."));
            }
            let mut pts = Vec::with_capacity(rest.len() / 2);
            for pair in rest.chunks(2) {
                let t = parse_value(&pair[0])
                    .ok_or_else(|| parse_err(line_no, &format!("bad time `{}`", pair[0])))?;
                let v = parse_value(&pair[1])
                    .ok_or_else(|| parse_err(line_no, &format!("bad value `{}`", pair[1])))?;
                pts.push((t, v));
            }
            SourceWaveform::pwl(pts)?
        }
        "NOISE" => {
            let v = values(1, 2)?;
            SourceWaveform::white_noise(v[0], v[1])?
        }
        _ => {
            // Bare numeric value = DC.
            let v = parse_value(&tokens[0])
                .ok_or_else(|| parse_err(line_no, &format!("bad source spec `{}`", tokens[0])))?;
            SourceWaveform::dc(v)
        }
    };
    Ok(wf)
}

fn rtd_from_model(card: &ModelCard, line_no: usize) -> Result<Rtd> {
    if card.type_name != "rtd" {
        return Err(parse_err(
            line_no,
            &format!("model is `{}`, expected `rtd`", card.type_name),
        ));
    }
    let d = RtdParams::date2005();
    let p = &card.params;
    let params = RtdParams {
        a: *p.get("a").unwrap_or(&d.a),
        b: *p.get("b").unwrap_or(&d.b),
        c: *p.get("c").unwrap_or(&d.c),
        d: *p.get("d").unwrap_or(&d.d),
        h: *p.get("h").unwrap_or(&d.h),
        n1: *p.get("n1").unwrap_or(&d.n1),
        n2: *p.get("n2").unwrap_or(&d.n2),
        temperature: *p.get("temp").unwrap_or(&d.temperature),
    };
    Ok(Rtd::new(params)?)
}

fn nanowire_from_model(card: &ModelCard, line_no: usize) -> Result<Nanowire> {
    if card.type_name != "nw" && card.type_name != "cnt" {
        return Err(parse_err(
            line_no,
            &format!("model is `{}`, expected `nw`", card.type_name),
        ));
    }
    let d = NanowireParams::metallic_cnt();
    let p = &card.params;
    let params = NanowireParams {
        g_quantum: *p.get("g0").unwrap_or(&d.g_quantum),
        base_channels: p.get("base").map(|&v| v as u32).unwrap_or(d.base_channels),
        step_voltage: *p.get("step").unwrap_or(&d.step_voltage),
        num_steps: p.get("steps").map(|&v| v as u32).unwrap_or(d.num_steps),
        smearing: *p.get("smear").unwrap_or(&d.smearing),
    };
    Ok(Nanowire::new(params)?)
}

fn diode_from_model(card: &ModelCard, line_no: usize) -> Result<Diode> {
    if card.type_name != "d" {
        return Err(parse_err(
            line_no,
            &format!("model is `{}`, expected `d`", card.type_name),
        ));
    }
    let dflt = DiodeParams::silicon();
    let p = &card.params;
    let params = DiodeParams {
        saturation_current: *p.get("is").unwrap_or(&dflt.saturation_current),
        ideality: *p.get("n").unwrap_or(&dflt.ideality),
        temperature: *p.get("temp").unwrap_or(&dflt.temperature),
    };
    Ok(Diode::new(params)?)
}

fn mosfet_from_model(card: &ModelCard, line_no: usize) -> Result<Mosfet> {
    let mos_type = match card.type_name.as_str() {
        "nmos" => MosType::Nmos,
        "pmos" => MosType::Pmos,
        other => {
            return Err(parse_err(
                line_no,
                &format!("model is `{other}`, expected `nmos` or `pmos`"),
            ));
        }
    };
    let d = match mos_type {
        MosType::Nmos => MosfetParams::nmos_default(),
        MosType::Pmos => MosfetParams::pmos_default(),
    };
    let p = &card.params;
    let params = MosfetParams {
        mos_type,
        k: *p.get("kp").or(p.get("k")).unwrap_or(&d.k),
        w: *p.get("w").unwrap_or(&d.w),
        l: *p.get("l").unwrap_or(&d.l),
        vth: *p.get("vto").or(p.get("vth")).unwrap_or(&d.vth),
        lambda: *p.get("lambda").unwrap_or(&d.lambda),
    };
    Ok(Mosfet::new(params)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::ElementKind;

    #[test]
    fn value_suffixes() {
        assert_eq!(parse_value("1k"), Some(1e3));
        assert_eq!(parse_value("1K"), Some(1e3));
        assert_eq!(parse_value("2.5meg"), Some(2.5e6));
        assert_eq!(parse_value("10p"), Some(10.0 * 1e-12));
        assert_eq!(parse_value("10pF"), Some(10.0 * 1e-12));
        assert_eq!(parse_value("100n"), Some(100.0 * 1e-9));
        assert_eq!(parse_value("3m"), Some(3.0 * 1e-3));
        assert_eq!(parse_value("5u"), Some(5.0 * 1e-6));
        assert_eq!(parse_value("2f"), Some(2.0 * 1e-15));
        assert_eq!(parse_value("1t"), Some(1e12));
        assert_eq!(parse_value("4g"), Some(4e9));
        assert_eq!(parse_value("5"), Some(5.0));
        assert_eq!(parse_value("5V"), Some(5.0));
        assert_eq!(parse_value("-1.5e-3"), Some(-1.5e-3));
        assert_eq!(parse_value("1e3k"), Some(1e6));
        assert_eq!(parse_value("abc"), None);
        assert_eq!(parse_value(""), None);
    }

    #[test]
    fn minimal_divider_parses() {
        let deck = parse_netlist(
            "test divider\n\
             V1 in 0 DC 5\n\
             R1 in out 1k\n\
             R2 out 0 1k\n\
             .op\n\
             .end\n",
        )
        .unwrap();
        assert_eq!(deck.circuit.title(), Some("test divider"));
        assert_eq!(deck.circuit.elements().len(), 3);
        assert_eq!(deck.analyses, vec![AnalysisDirective::Op]);
        assert!(deck.circuit.validate().is_ok());
    }

    #[test]
    fn comments_and_continuations() {
        let deck = parse_netlist(
            "* full-line comment\n\
             V1 a 0 PULSE(0 5 0\n\
             + 1n 1n 99n\n\
             + 200n) ; inline comment\n\
             R1 a 0 50 $ another comment\n",
        )
        .unwrap();
        assert_eq!(deck.circuit.elements().len(), 2);
        match deck.circuit.element("V1").unwrap().kind() {
            ElementKind::VoltageSource { waveform } => {
                assert_eq!(waveform.value(50e-9), 5.0);
            }
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn all_source_kinds() {
        let deck = parse_netlist(
            "V1 a 0 3.3\n\
             V2 b 0 DC 1\n\
             V3 c 0 SIN(0 1 1meg)\n\
             V4 d 0 PWL(0 0 1n 5 2n 5)\n\
             I1 e 0 NOISE(0 1m)\n\
             R1 a b 1\nR2 b c 1\nR3 c d 1\nR4 d e 1\nR5 e 0 1\n",
        )
        .unwrap();
        assert_eq!(deck.circuit.elements().len(), 10);
        match deck.circuit.element("I1").unwrap().kind() {
            ElementKind::CurrentSource { waveform } => {
                assert!(waveform.is_stochastic());
                assert_eq!(waveform.noise_intensity(), 1e-3);
            }
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn rtd_with_model_card() {
        let deck = parse_netlist(
            "* paper parameters\n\
             .model mrtd RTD (a=1e-4 b=2 c=1.5 d=0.3 n1=0.35 n2=0.0172 h=1.43e-8)\n\
             V1 in 0 DC 1\n\
             R1 in x 50\n\
             YRTD1 x 0 mrtd\n",
        )
        .unwrap();
        let e = deck.circuit.element("YRTD1").unwrap();
        match e.kind() {
            ElementKind::Nonlinear { device } => assert_eq!(device.device_kind(), "rtd"),
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn model_referenced_before_definition() {
        let deck = parse_netlist(
            "YRTD1 x 0 late\n\
             R1 x 0 50\n\
             .model late RTD (a=2e-4)\n",
        )
        .unwrap();
        assert_eq!(deck.circuit.elements().len(), 2);
    }

    #[test]
    fn nanowire_and_rtt_and_diode() {
        let deck = parse_netlist(
            ".model wire NW (steps=3 step=0.4 smear=0.02)\n\
             .model dd D (is=1e-12 n=1.5)\n\
             YNW1 a 0 wire\n\
             YCNT2 a 0\n\
             YRTT1 b 0\n\
             D1 c 0 dd\n\
             D2 c 0\n\
             R1 a b 1\nR2 b c 1\n",
        )
        .unwrap();
        assert_eq!(deck.circuit.elements().len(), 7);
    }

    #[test]
    fn mosfet_with_model() {
        let deck = parse_netlist(
            ".model mn NMOS (kp=2e-4 w=20 l=2 vto=0.7)\n\
             M1 d g 0 mn\n\
             V1 d 0 5\nV2 g 0 5\n",
        )
        .unwrap();
        match deck.circuit.element("M1").unwrap().kind() {
            ElementKind::Mosfet { model } => {
                assert_eq!(model.params().vth, 0.7);
                assert_eq!(model.params().w, 20.0);
            }
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn tran_and_dc_directives() {
        let deck = parse_netlist(
            "V1 a 0 1\nR1 a 0 1\n\
             .tran 1n 500n\n\
             .dc V1 0 2.5 0.01\n",
        )
        .unwrap();
        assert_eq!(
            deck.analyses,
            vec![
                AnalysisDirective::Tran {
                    tstep: 1e-9,
                    tstop: 500.0 * 1e-9
                },
                AnalysisDirective::Dc {
                    source: "V1".into(),
                    start: 0.0,
                    stop: 2.5,
                    step: 0.01
                },
            ]
        );
    }

    #[test]
    fn end_stops_parsing() {
        let deck = parse_netlist("V1 a 0 1\nR1 a 0 1\n.end\nR2 a 0 broken").unwrap();
        assert_eq!(deck.circuit.elements().len(), 2);
    }

    #[test]
    fn capacitor_initial_condition() {
        let deck = parse_netlist("C1 a 0 10p IC=2.5\nR1 a 0 1k\n").unwrap();
        match deck.circuit.element("C1").unwrap().kind() {
            ElementKind::Capacitor {
                capacitance,
                initial_voltage,
            } => {
                assert_eq!(*capacitance, 1e-11);
                assert_eq!(*initial_voltage, Some(2.5));
            }
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn error_line_numbers() {
        let err = parse_netlist("V1 a 0 1\nR1 a 0 bogus\n").unwrap_err();
        match err {
            CircuitError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_model_is_error() {
        let err = parse_netlist("YRTD1 a 0 nosuch\nR1 a 0 1\n").unwrap_err();
        assert!(matches!(err, CircuitError::Parse { .. }));
        assert!(err.to_string().contains("nosuch"));
    }

    #[test]
    fn wrong_model_type_is_error() {
        let err = parse_netlist(
            ".model mn NMOS (kp=1e-4)\n\
             YRTD1 a 0 mn\nR1 a 0 1\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("expected `rtd`"));
    }

    #[test]
    fn bad_directives_are_errors() {
        assert!(parse_netlist("V1 a 0 1\n.tran 1n\n").is_err());
        assert!(parse_netlist("V1 a 0 1\n.tran 2n 1n\n").is_err());
        assert!(parse_netlist("V1 a 0 1\n.dc V1 0 1 0\n").is_err());
        assert!(parse_netlist("V1 a 0 1\n.bogus\n").is_err());
        // An unknown element letter after the first content line is an
        // error (the first line would have been taken as the title).
        assert!(parse_netlist("V1 a 0 1\nQ1 a 0 1\n").is_err());
    }

    #[test]
    fn model_with_odd_params_is_error() {
        assert!(parse_netlist(".model m RTD (a)\n").is_err());
        assert!(parse_netlist(".model m\n").is_err());
    }

    #[test]
    fn pulse_needs_seven_params() {
        assert!(parse_netlist("V1 a 0 PULSE(0 5 0 1n 1n 99n)\nR1 a 0 1\n").is_err());
    }

    #[test]
    fn pwl_needs_pairs() {
        assert!(parse_netlist("V1 a 0 PWL(0 0 1n)\nR1 a 0 1\n").is_err());
    }

    #[test]
    fn sin_defaults_optional_params() {
        let deck = parse_netlist("V1 a 0 SIN(1 2 1meg)\nR1 a 0 1\n").unwrap();
        match deck.circuit.element("V1").unwrap().kind() {
            ElementKind::VoltageSource { waveform } => {
                assert!((waveform.value(0.0) - 1.0).abs() < 1e-12);
            }
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn case_insensitive_elements_and_nodes() {
        let deck = parse_netlist("v1 VDD 0 5\nr1 vdd 0 1K\n").unwrap();
        assert_eq!(deck.circuit.elements().len(), 2);
        assert_eq!(deck.circuit.node_count(), 2); // VDD == vdd
    }
}
