//! Netlist representation, SPICE-like parser and modified nodal analysis
//! (MNA) assembly for the Nano-Sim simulator.
//!
//! The crate provides the substrate every simulation engine runs on:
//!
//! * [`node`] — node identifiers and the name ↔ id map (ground is node `0`,
//!   also addressable as `gnd`).
//! * [`element`] — circuit elements: passives, independent sources, and the
//!   nonlinear nano-devices from `nanosim-devices`.
//! * [`netlist`] — the [`Circuit`] builder API with validation
//!   (ground reference, connectivity, positive element values).
//! * [`mna`] — [`MnaSystem`]: assigns MNA variables (node voltages plus
//!   branch currents for voltage sources and inductors) and stamps the
//!   `G`/`C` matrices and right-hand side of the paper's eq. (1),
//!   `G(t)·V(t) + C·V̇(t) = b·u(t)`.
//! * [`subckt`] — hierarchy: [`SubcktDef`] subcircuit templates with
//!   parameter defaults, the [`CircuitBuilder`] front door, and flattening
//!   with deterministic name mangling (`X1.n3` nodes, `R1.X1` elements).
//! * [`hash`] — deterministic FNV-1a deck/topology fingerprints used by
//!   caching layers (value-sensitive vs. sparsity-pattern-only).
//! * [`lint`] — pass-based static analysis: connectivity, voltage-source
//!   loops, current-source cutsets, structural rank via bipartite matching,
//!   and deck hygiene — all pattern-only, no numeric solve.
//! * [`parser`] — a SPICE-like netlist parser with `.model` cards for the
//!   nano-devices (`YRTD`, `YNW`, `YRTT`), `.subckt`/`.ends`/`X` hierarchy,
//!   `.param` scoping, E/G/F/H controlled sources and `.tran`/`.dc`
//!   directives; errors carry line *and* column.
//!
//! # Example
//!
//! Building the paper's Figure 7(a) DC workload — an RTD in series with a
//! resistor across a voltage source:
//!
//! ```
//! use nanosim_circuit::netlist::Circuit;
//! use nanosim_devices::rtd::Rtd;
//! use nanosim_devices::sources::SourceWaveform;
//!
//! # fn main() -> Result<(), nanosim_circuit::CircuitError> {
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let mid = ckt.node("mid");
//! ckt.add_voltage_source("V1", vin, Circuit::GROUND, SourceWaveform::dc(1.0))?;
//! ckt.add_resistor("R1", vin, mid, 50.0)?;
//! ckt.add_rtd("X1", mid, Circuit::GROUND, Rtd::date2005())?;
//! ckt.validate()?;
//! assert_eq!(ckt.node_count(), 3); // ground, in, mid
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod element;
pub mod error;
pub mod hash;
pub mod lint;
pub mod mna;
pub mod netlist;
pub mod node;
pub mod parser;
pub mod subckt;
pub mod writer;

pub use element::{Element, ElementKind};
pub use error::CircuitError;
pub use hash::{deck_fingerprint, fnv1a, fnv1a_extend, topology_fingerprint};
pub use lint::{
    lint_circuit, lint_circuit_with, lint_deck, Diagnostic, LintCode, LintReport, Severity,
    SourceMap, Span,
};
pub use mna::MnaSystem;
pub use netlist::Circuit;
pub use node::{NodeId, NodeMap};
pub use parser::{parse_netlist, parse_netlist_with_params, AnalysisDirective, ParsedDeck};
pub use subckt::{CircuitBuilder, ParamValue, SubcktDef, SubcktLib, WaveformTemplate};
pub use writer::write_netlist;

/// Convenience alias for fallible circuit operations.
pub type Result<T> = std::result::Result<T, CircuitError>;
