//! Circuit construction, validation and parsing errors.

use nanosim_devices::DeviceError;
use std::error::Error;
use std::fmt;

/// Errors produced while building, validating or parsing a circuit.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CircuitError {
    /// An element value was out of range (negative resistance, ...).
    InvalidValue {
        /// Element name as given by the user.
        element: String,
        /// Description of the violated requirement.
        reason: String,
    },
    /// Two elements share a name.
    DuplicateElement {
        /// The offending name.
        name: String,
    },
    /// An element was connected with both terminals on the same node.
    DegenerateConnection {
        /// The offending element.
        element: String,
    },
    /// The circuit has no ground reference.
    NoGroundReference,
    /// A node has no connection to ground through any element.
    FloatingNode {
        /// Name of the disconnected node.
        node: String,
    },
    /// The circuit contains no elements.
    EmptyCircuit,
    /// A loop of voltage sources (or an inductor loop) makes MNA singular.
    VoltageSourceLoop {
        /// Description of the loop membership.
        context: String,
    },
    /// Netlist text could not be parsed.
    Parse {
        /// 1-based source line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A device model rejected its parameters.
    Device(DeviceError),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::InvalidValue { element, reason } => {
                write!(f, "invalid value for element {element}: {reason}")
            }
            CircuitError::DuplicateElement { name } => {
                write!(f, "duplicate element name {name}")
            }
            CircuitError::DegenerateConnection { element } => {
                write!(f, "element {element} has both terminals on the same node")
            }
            CircuitError::NoGroundReference => {
                write!(f, "circuit has no connection to ground (node 0)")
            }
            CircuitError::FloatingNode { node } => {
                write!(f, "node {node} has no path to ground")
            }
            CircuitError::EmptyCircuit => write!(f, "circuit contains no elements"),
            CircuitError::VoltageSourceLoop { context } => {
                write!(f, "voltage source loop: {context}")
            }
            CircuitError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            CircuitError::Device(e) => write!(f, "device error: {e}"),
        }
    }
}

impl Error for CircuitError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CircuitError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeviceError> for CircuitError {
    fn from(e: DeviceError) -> Self {
        CircuitError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_context() {
        let e = CircuitError::Parse {
            line: 12,
            message: "unknown element".into(),
        };
        assert!(e.to_string().contains("line 12"));
        let e = CircuitError::FloatingNode { node: "n3".into() };
        assert!(e.to_string().contains("n3"));
    }

    #[test]
    fn device_error_wraps_with_source() {
        let inner = DeviceError::InvalidWaveform {
            context: "bad".into(),
        };
        let e = CircuitError::from(inner);
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CircuitError>();
    }
}
