//! Circuit construction, validation and parsing errors.

use nanosim_devices::DeviceError;
use std::error::Error;
use std::fmt;

/// Errors produced while building, validating or parsing a circuit.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CircuitError {
    /// An element value was out of range (negative resistance, ...).
    InvalidValue {
        /// Element name as given by the user.
        element: String,
        /// Description of the violated requirement.
        reason: String,
    },
    /// Two elements share a name.
    DuplicateElement {
        /// The offending name.
        name: String,
    },
    /// Two elements share a name, with the deck position of the second
    /// occurrence (produced by the parser, where positions are known).
    DuplicateElementAt {
        /// The offending name.
        name: String,
        /// 1-based source line of the duplicate definition.
        line: usize,
        /// 1-based column of the duplicate definition.
        column: usize,
    },
    /// An element was connected with both terminals on the same node.
    DegenerateConnection {
        /// The offending element.
        element: String,
    },
    /// The circuit has no ground reference.
    NoGroundReference,
    /// A node has no connection to ground through any element.
    FloatingNode {
        /// Name of the disconnected node.
        node: String,
    },
    /// The circuit contains no elements.
    EmptyCircuit,
    /// A loop of voltage sources (or an inductor loop) makes MNA singular.
    VoltageSourceLoop {
        /// Description of the loop membership.
        context: String,
    },
    /// Netlist text could not be parsed.
    Parse {
        /// 1-based source line number.
        line: usize,
        /// 1-based column of the offending token (`0` when the error spans
        /// the whole line).
        column: usize,
        /// What went wrong.
        message: String,
    },
    /// A controlled source references a missing (or branchless) element.
    UnknownControl {
        /// The F/H element with the bad reference.
        element: String,
        /// The referenced control name.
        control: String,
    },
    /// An instance references a subcircuit that was never defined.
    UnknownSubckt {
        /// The referenced subcircuit name.
        name: String,
        /// The instance that referenced it.
        instance: String,
    },
    /// A subcircuit (transitively) instantiates itself.
    RecursiveSubckt {
        /// The instantiation path that closed the cycle, e.g.
        /// `cell -> row -> cell`.
        path: String,
    },
    /// An instance supplied the wrong number of port connections.
    PortMismatch {
        /// The subcircuit definition name.
        subckt: String,
        /// The offending instance.
        instance: String,
        /// Ports the definition declares.
        expected: usize,
        /// Connections the instance supplied.
        got: usize,
    },
    /// A `{name}` reference or instance override names an unknown parameter.
    UnknownParam {
        /// The unknown parameter name.
        name: String,
        /// Where it was referenced (element or instance name).
        context: String,
    },
    /// A device model rejected its parameters.
    Device(DeviceError),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::InvalidValue { element, reason } => {
                write!(f, "invalid value for element {element}: {reason}")
            }
            CircuitError::DuplicateElement { name } => {
                write!(f, "duplicate element name {name}")
            }
            CircuitError::DuplicateElementAt { name, line, column } => {
                write!(
                    f,
                    "duplicate element name {name} at line {line}, column {column}"
                )
            }
            CircuitError::DegenerateConnection { element } => {
                write!(f, "element {element} has both terminals on the same node")
            }
            CircuitError::NoGroundReference => {
                write!(f, "circuit has no connection to ground (node 0)")
            }
            CircuitError::FloatingNode { node } => {
                write!(f, "node {node} has no path to ground")
            }
            CircuitError::EmptyCircuit => write!(f, "circuit contains no elements"),
            CircuitError::VoltageSourceLoop { context } => {
                write!(f, "voltage source loop: {context}")
            }
            CircuitError::Parse {
                line,
                column,
                message,
            } => {
                if *column > 0 {
                    write!(f, "parse error at line {line}, column {column}: {message}")
                } else {
                    write!(f, "parse error at line {line}: {message}")
                }
            }
            CircuitError::UnknownControl { element, control } => {
                write!(
                    f,
                    "element {element} references control source {control}, which does not \
                     exist or carries no branch current"
                )
            }
            CircuitError::UnknownSubckt { name, instance } => {
                write!(
                    f,
                    "instance {instance} references unknown subcircuit {name}"
                )
            }
            CircuitError::RecursiveSubckt { path } => {
                write!(f, "recursive subcircuit instantiation: {path}")
            }
            CircuitError::PortMismatch {
                subckt,
                instance,
                expected,
                got,
            } => {
                write!(
                    f,
                    "instance {instance} connects {got} nodes but subcircuit {subckt} \
                     declares {expected} ports"
                )
            }
            CircuitError::UnknownParam { name, context } => {
                write!(f, "unknown parameter {{{name}}} referenced by {context}")
            }
            CircuitError::Device(e) => write!(f, "device error: {e}"),
        }
    }
}

impl Error for CircuitError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CircuitError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeviceError> for CircuitError {
    fn from(e: DeviceError) -> Self {
        CircuitError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_context() {
        let e = CircuitError::Parse {
            line: 12,
            column: 7,
            message: "unknown element".into(),
        };
        assert!(e.to_string().contains("line 12"));
        assert!(e.to_string().contains("column 7"));
        let e = CircuitError::Parse {
            line: 12,
            column: 0,
            message: "unknown element".into(),
        };
        assert!(!e.to_string().contains("column"));
        let e = CircuitError::FloatingNode { node: "n3".into() };
        assert!(e.to_string().contains("n3"));
        let e = CircuitError::DuplicateElementAt {
            name: "R1".into(),
            line: 4,
            column: 1,
        };
        assert!(e.to_string().contains("R1"));
        assert!(e.to_string().contains("line 4"));
    }

    #[test]
    fn hierarchy_errors_display() {
        let e = CircuitError::UnknownSubckt {
            name: "cell".into(),
            instance: "X1".into(),
        };
        assert!(e.to_string().contains("cell"));
        assert!(e.to_string().contains("X1"));
        let e = CircuitError::RecursiveSubckt {
            path: "a -> b -> a".into(),
        };
        assert!(e.to_string().contains("a -> b -> a"));
        let e = CircuitError::PortMismatch {
            subckt: "inv".into(),
            instance: "X9".into(),
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("3"));
        let e = CircuitError::UnknownParam {
            name: "rload".into(),
            context: "R1.X1".into(),
        };
        assert!(e.to_string().contains("rload"));
        let e = CircuitError::UnknownControl {
            element: "F1".into(),
            control: "V9".into(),
        };
        assert!(e.to_string().contains("V9"));
    }

    #[test]
    fn device_error_wraps_with_source() {
        let inner = DeviceError::InvalidWaveform {
            context: "bad".into(),
        };
        let e = CircuitError::from(inner);
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CircuitError>();
    }
}
