//! Circuit elements.

use crate::node::NodeId;
use nanosim_devices::mosfet::Mosfet;
use nanosim_devices::sources::SourceWaveform;
use nanosim_devices::traits::NonlinearTwoTerminal;
use std::fmt;
use std::sync::Arc;

/// A shareable nonlinear two-terminal device (RTD, nanowire, diode, RTT).
pub type SharedDevice = Arc<dyn NonlinearTwoTerminal + Send + Sync>;

/// The electrical behavior of an element.
#[derive(Debug, Clone)]
pub enum ElementKind {
    /// Linear resistor (ohms).
    Resistor {
        /// Resistance in ohms, strictly positive.
        resistance: f64,
    },
    /// Linear capacitor (farads).
    Capacitor {
        /// Capacitance in farads, strictly positive.
        capacitance: f64,
        /// Optional initial voltage for transient analysis (volts).
        initial_voltage: Option<f64>,
    },
    /// Linear inductor (henries); adds one MNA branch current.
    Inductor {
        /// Inductance in henries, strictly positive.
        inductance: f64,
    },
    /// Independent voltage source; adds one MNA branch current.
    VoltageSource {
        /// Source waveform.
        waveform: SourceWaveform,
    },
    /// Independent current source (positive current flows from the first
    /// terminal through the source to the second).
    CurrentSource {
        /// Source waveform.
        waveform: SourceWaveform,
    },
    /// A nonlinear two-terminal nano-device between the two terminals.
    Nonlinear {
        /// The device model.
        device: SharedDevice,
    },
    /// A level-1 MOSFET; terminals are `(drain, gate, source)`.
    Mosfet {
        /// The device model.
        model: Mosfet,
    },
    /// Voltage-controlled voltage source (SPICE `E`); terminals are
    /// `(n+, n-, nc+, nc-)` and the element adds one branch current
    /// enforcing `v(n+) - v(n-) = gain · (v(nc+) - v(nc-))`.
    Vcvs {
        /// Voltage gain (dimensionless).
        gain: f64,
    },
    /// Voltage-controlled current source (SPICE `G`); terminals are
    /// `(n+, n-, nc+, nc-)`; drives `i = gm · (v(nc+) - v(nc-))` from
    /// `n+` through the source to `n-`.
    Vccs {
        /// Transconductance in siemens.
        gm: f64,
    },
    /// Current-controlled current source (SPICE `F`); terminals are
    /// `(n+, n-)`; drives `gain · i(control)` where `control` names an
    /// element carrying an MNA branch current (voltage source, inductor,
    /// VCVS or CCVS).
    Cccs {
        /// Current gain (dimensionless).
        gain: f64,
        /// Name of the controlling branch element.
        control: String,
    },
    /// Current-controlled voltage source (SPICE `H`); terminals are
    /// `(n+, n-)` and the element adds one branch current enforcing
    /// `v(n+) - v(n-) = r · i(control)`.
    Ccvs {
        /// Transresistance in ohms.
        r: f64,
        /// Name of the controlling branch element.
        control: String,
    },
}

impl ElementKind {
    /// Short type tag used in reports ("R", "C", "V", ...).
    pub fn type_tag(&self) -> &'static str {
        match self {
            ElementKind::Resistor { .. } => "R",
            ElementKind::Capacitor { .. } => "C",
            ElementKind::Inductor { .. } => "L",
            ElementKind::VoltageSource { .. } => "V",
            ElementKind::CurrentSource { .. } => "I",
            ElementKind::Nonlinear { .. } => "Y",
            ElementKind::Mosfet { .. } => "M",
            ElementKind::Vcvs { .. } => "E",
            ElementKind::Vccs { .. } => "G",
            ElementKind::Cccs { .. } => "F",
            ElementKind::Ccvs { .. } => "H",
        }
    }

    /// Number of terminals this element kind requires.
    pub fn terminal_count(&self) -> usize {
        match self {
            ElementKind::Mosfet { .. } => 3,
            ElementKind::Vcvs { .. } | ElementKind::Vccs { .. } => 4,
            _ => 2,
        }
    }

    /// Whether this element adds an MNA branch-current variable.
    pub fn needs_branch_current(&self) -> bool {
        matches!(
            self,
            ElementKind::VoltageSource { .. }
                | ElementKind::Inductor { .. }
                | ElementKind::Vcvs { .. }
                | ElementKind::Ccvs { .. }
        )
    }

    /// Number of leading terminals that carry current. The trailing
    /// terminal pair of a [`ElementKind::Vcvs`] / [`ElementKind::Vccs`] only
    /// *senses* a voltage (infinite input impedance) and must not count as a
    /// galvanic connection for connectivity checks.
    pub fn conducting_terminal_count(&self) -> usize {
        match self {
            ElementKind::Vcvs { .. } | ElementKind::Vccs { .. } => 2,
            other => other.terminal_count(),
        }
    }

    /// Name of the controlling branch element of a [`ElementKind::Cccs`] /
    /// [`ElementKind::Ccvs`], if any.
    pub fn control_name(&self) -> Option<&str> {
        match self {
            ElementKind::Cccs { control, .. } | ElementKind::Ccvs { control, .. } => Some(control),
            _ => None,
        }
    }
}

/// A named, connected circuit element.
#[derive(Debug, Clone)]
pub struct Element {
    name: String,
    nodes: Vec<NodeId>,
    kind: ElementKind,
}

impl Element {
    /// Creates an element; terminal-count consistency is checked by the
    /// [`crate::netlist::Circuit`] builder methods, which are the public way
    /// to construct elements.
    pub(crate) fn new(name: String, nodes: Vec<NodeId>, kind: ElementKind) -> Self {
        debug_assert_eq!(nodes.len(), kind.terminal_count());
        Element { name, nodes, kind }
    }

    /// User-visible element name ("R1", "Vclk", ...).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Connected nodes; two-terminal elements are `(n+, n-)`, MOSFETs are
    /// `(drain, gate, source)`.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The element's behavior.
    pub fn kind(&self) -> &ElementKind {
        &self.kind
    }

    /// Positive terminal (or drain).
    pub fn node_plus(&self) -> NodeId {
        self.nodes[0]
    }

    /// Negative terminal (or gate for MOSFETs — prefer [`Element::nodes`]
    /// for three-terminal devices).
    pub fn node_minus(&self) -> NodeId {
        self.nodes[1]
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.name, self.kind.type_tag())?;
        for n in &self.nodes {
            write!(f, " {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanosim_devices::rtd::Rtd;

    #[test]
    fn type_tags() {
        assert_eq!(ElementKind::Resistor { resistance: 1.0 }.type_tag(), "R");
        assert_eq!(
            ElementKind::VoltageSource {
                waveform: SourceWaveform::dc(1.0)
            }
            .type_tag(),
            "V"
        );
        let rtd: SharedDevice = Arc::new(Rtd::date2005());
        assert_eq!(ElementKind::Nonlinear { device: rtd }.type_tag(), "Y");
    }

    #[test]
    fn terminal_counts() {
        assert_eq!(
            ElementKind::Resistor { resistance: 1.0 }.terminal_count(),
            2
        );
        assert_eq!(
            ElementKind::Mosfet {
                model: nanosim_devices::mosfet::Mosfet::nmos()
            }
            .terminal_count(),
            3
        );
    }

    #[test]
    fn controlled_source_tags_terminals_and_branches() {
        let e = ElementKind::Vcvs { gain: 2.0 };
        assert_eq!(e.type_tag(), "E");
        assert_eq!(e.terminal_count(), 4);
        assert_eq!(e.conducting_terminal_count(), 2);
        assert!(e.needs_branch_current());
        assert_eq!(e.control_name(), None);

        let g = ElementKind::Vccs { gm: 1e-3 };
        assert_eq!(g.type_tag(), "G");
        assert_eq!(g.terminal_count(), 4);
        assert!(!g.needs_branch_current());

        let f = ElementKind::Cccs {
            gain: 2.0,
            control: "V1".into(),
        };
        assert_eq!(f.type_tag(), "F");
        assert_eq!(f.terminal_count(), 2);
        assert!(!f.needs_branch_current());
        assert_eq!(f.control_name(), Some("V1"));

        let h = ElementKind::Ccvs {
            r: 50.0,
            control: "V1".into(),
        };
        assert_eq!(h.type_tag(), "H");
        assert_eq!(h.terminal_count(), 2);
        assert!(h.needs_branch_current());
        assert_eq!(h.control_name(), Some("V1"));
    }

    #[test]
    fn branch_current_needs() {
        assert!(ElementKind::VoltageSource {
            waveform: SourceWaveform::dc(0.0)
        }
        .needs_branch_current());
        assert!(ElementKind::Inductor { inductance: 1e-9 }.needs_branch_current());
        assert!(!ElementKind::Resistor { resistance: 1.0 }.needs_branch_current());
        assert!(!ElementKind::CurrentSource {
            waveform: SourceWaveform::dc(0.0)
        }
        .needs_branch_current());
    }

    #[test]
    fn element_accessors_and_display() {
        let e = Element::new(
            "R1".into(),
            vec![NodeId::from_index(1), NodeId::GROUND],
            ElementKind::Resistor { resistance: 50.0 },
        );
        assert_eq!(e.name(), "R1");
        assert_eq!(e.node_plus().index(), 1);
        assert!(e.node_minus().is_ground());
        assert!(e.to_string().contains("R1"));
        assert!(e.to_string().contains("[R]"));
    }
}
