//! The [`Circuit`] netlist builder.

use crate::element::{Element, ElementKind, SharedDevice};
use crate::error::CircuitError;
use crate::node::{NodeId, NodeMap};
use crate::Result;
use nanosim_devices::diode::Diode;
use nanosim_devices::mosfet::Mosfet;
use nanosim_devices::nanowire::Nanowire;
use nanosim_devices::rtd::Rtd;
use nanosim_devices::rtt::Rtt;
use nanosim_devices::sources::SourceWaveform;
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

/// A circuit netlist: a set of named nodes and connected elements.
///
/// Built incrementally with the `add_*` methods; call [`Circuit::validate`]
/// before handing the circuit to an engine.
///
/// # Example
/// ```
/// use nanosim_circuit::Circuit;
/// use nanosim_devices::sources::SourceWaveform;
///
/// # fn main() -> Result<(), nanosim_circuit::CircuitError> {
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(1.0))?;
/// ckt.add_resistor("R1", a, Circuit::GROUND, 1e3)?;
/// ckt.validate()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    nodes: NodeMap,
    elements: Vec<Element>,
    names: HashSet<String>,
    title: Option<String>,
}

impl Circuit {
    /// The ground node, shared by every circuit.
    pub const GROUND: NodeId = NodeId::GROUND;

    /// Creates an empty circuit.
    pub fn new() -> Self {
        Circuit {
            nodes: NodeMap::new(),
            elements: Vec::new(),
            names: HashSet::new(),
            title: None,
        }
    }

    /// Sets a human-readable title (netlist first line).
    pub fn set_title(&mut self, title: impl Into<String>) {
        self.title = Some(title.into());
    }

    /// The title, if set.
    pub fn title(&self) -> Option<&str> {
        self.title.as_deref()
    }

    /// Returns (creating on first use) the node named `name`.
    pub fn node(&mut self, name: &str) -> NodeId {
        self.nodes.intern(name)
    }

    /// Looks up an existing node.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.nodes.get(name)
    }

    /// Display name of a node.
    pub fn node_name(&self, id: NodeId) -> &str {
        self.nodes.name(id)
    }

    /// Total node count including ground.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node map (id ↔ name), ground first.
    pub fn nodes(&self) -> &NodeMap {
        &self.nodes
    }

    /// The elements in insertion order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Looks up an element by name.
    pub fn element(&self, name: &str) -> Option<&Element> {
        self.elements.iter().find(|e| e.name() == name)
    }

    /// Case-insensitive element lookup (SPICE decks are case-insensitive,
    /// so `F1 ... vIN 2` may reference the element written `Vin`).
    pub fn element_ci(&self, name: &str) -> Option<&Element> {
        self.element(name).or_else(|| {
            self.elements
                .iter()
                .find(|e| e.name().eq_ignore_ascii_case(name))
        })
    }

    /// Reserves a name in the element namespace without adding an element
    /// — used for subcircuit instance names, which must be unique like any
    /// SPICE element name (two instances called `X1` would otherwise merge
    /// their `X1.<node>` internals into one shared node).
    pub(crate) fn reserve_name(&mut self, name: &str) -> Result<()> {
        self.register_name(name)
    }

    fn register_name(&mut self, name: &str) -> Result<()> {
        if !self.names.insert(name.to_string()) {
            return Err(CircuitError::DuplicateElement {
                name: name.to_string(),
            });
        }
        Ok(())
    }

    fn check_distinct(&self, name: &str, n1: NodeId, n2: NodeId) -> Result<()> {
        if n1 == n2 {
            return Err(CircuitError::DegenerateConnection {
                element: name.to_string(),
            });
        }
        Ok(())
    }

    /// Adds a resistor.
    ///
    /// # Errors
    /// Rejects non-positive/non-finite resistance, duplicate names and
    /// degenerate connections.
    pub fn add_resistor(
        &mut self,
        name: &str,
        n1: NodeId,
        n2: NodeId,
        ohms: f64,
    ) -> Result<&mut Self> {
        if !(ohms > 0.0 && ohms.is_finite()) {
            return Err(CircuitError::InvalidValue {
                element: name.to_string(),
                reason: format!("resistance must be positive and finite, got {ohms}"),
            });
        }
        self.check_distinct(name, n1, n2)?;
        self.register_name(name)?;
        self.elements.push(Element::new(
            name.to_string(),
            vec![n1, n2],
            ElementKind::Resistor { resistance: ohms },
        ));
        Ok(self)
    }

    /// Adds a capacitor.
    ///
    /// # Errors
    /// Rejects non-positive/non-finite capacitance, duplicate names and
    /// degenerate connections.
    pub fn add_capacitor(
        &mut self,
        name: &str,
        n1: NodeId,
        n2: NodeId,
        farads: f64,
    ) -> Result<&mut Self> {
        self.add_capacitor_ic(name, n1, n2, farads, None)
    }

    /// Adds a capacitor with an optional initial voltage.
    ///
    /// # Errors
    /// Same as [`Circuit::add_capacitor`].
    pub fn add_capacitor_ic(
        &mut self,
        name: &str,
        n1: NodeId,
        n2: NodeId,
        farads: f64,
        initial_voltage: Option<f64>,
    ) -> Result<&mut Self> {
        if !(farads > 0.0 && farads.is_finite()) {
            return Err(CircuitError::InvalidValue {
                element: name.to_string(),
                reason: format!("capacitance must be positive and finite, got {farads}"),
            });
        }
        self.check_distinct(name, n1, n2)?;
        self.register_name(name)?;
        self.elements.push(Element::new(
            name.to_string(),
            vec![n1, n2],
            ElementKind::Capacitor {
                capacitance: farads,
                initial_voltage,
            },
        ));
        Ok(self)
    }

    /// Adds an inductor.
    ///
    /// # Errors
    /// Rejects non-positive/non-finite inductance, duplicate names and
    /// degenerate connections.
    pub fn add_inductor(
        &mut self,
        name: &str,
        n1: NodeId,
        n2: NodeId,
        henries: f64,
    ) -> Result<&mut Self> {
        if !(henries > 0.0 && henries.is_finite()) {
            return Err(CircuitError::InvalidValue {
                element: name.to_string(),
                reason: format!("inductance must be positive and finite, got {henries}"),
            });
        }
        self.check_distinct(name, n1, n2)?;
        self.register_name(name)?;
        self.elements.push(Element::new(
            name.to_string(),
            vec![n1, n2],
            ElementKind::Inductor {
                inductance: henries,
            },
        ));
        Ok(self)
    }

    /// Adds an independent voltage source (`n1` is the positive terminal).
    ///
    /// # Errors
    /// Rejects duplicate names and degenerate connections.
    pub fn add_voltage_source(
        &mut self,
        name: &str,
        n1: NodeId,
        n2: NodeId,
        waveform: SourceWaveform,
    ) -> Result<&mut Self> {
        self.check_distinct(name, n1, n2)?;
        self.register_name(name)?;
        self.elements.push(Element::new(
            name.to_string(),
            vec![n1, n2],
            ElementKind::VoltageSource { waveform },
        ));
        Ok(self)
    }

    /// Adds an independent current source (positive current flows from `n1`
    /// through the source to `n2`).
    ///
    /// # Errors
    /// Rejects duplicate names and degenerate connections.
    pub fn add_current_source(
        &mut self,
        name: &str,
        n1: NodeId,
        n2: NodeId,
        waveform: SourceWaveform,
    ) -> Result<&mut Self> {
        self.check_distinct(name, n1, n2)?;
        self.register_name(name)?;
        self.elements.push(Element::new(
            name.to_string(),
            vec![n1, n2],
            ElementKind::CurrentSource { waveform },
        ));
        Ok(self)
    }

    /// Adds an arbitrary nonlinear two-terminal device.
    ///
    /// # Errors
    /// Rejects duplicate names and degenerate connections.
    pub fn add_nonlinear(
        &mut self,
        name: &str,
        n1: NodeId,
        n2: NodeId,
        device: SharedDevice,
    ) -> Result<&mut Self> {
        self.check_distinct(name, n1, n2)?;
        self.register_name(name)?;
        self.elements.push(Element::new(
            name.to_string(),
            vec![n1, n2],
            ElementKind::Nonlinear { device },
        ));
        Ok(self)
    }

    /// Adds a resonant tunneling diode.
    ///
    /// # Errors
    /// Rejects duplicate names and degenerate connections.
    pub fn add_rtd(&mut self, name: &str, n1: NodeId, n2: NodeId, rtd: Rtd) -> Result<&mut Self> {
        self.add_nonlinear(name, n1, n2, Arc::new(rtd))
    }

    /// Adds a quantum-wire / CNT device.
    ///
    /// # Errors
    /// Rejects duplicate names and degenerate connections.
    pub fn add_nanowire(
        &mut self,
        name: &str,
        n1: NodeId,
        n2: NodeId,
        wire: Nanowire,
    ) -> Result<&mut Self> {
        self.add_nonlinear(name, n1, n2, Arc::new(wire))
    }

    /// Adds a resonant tunneling transistor (collector-emitter branch at its
    /// stored base bias).
    ///
    /// # Errors
    /// Rejects duplicate names and degenerate connections.
    pub fn add_rtt(&mut self, name: &str, n1: NodeId, n2: NodeId, rtt: Rtt) -> Result<&mut Self> {
        self.add_nonlinear(name, n1, n2, Arc::new(rtt))
    }

    /// Adds a diode.
    ///
    /// # Errors
    /// Rejects duplicate names and degenerate connections.
    pub fn add_diode(
        &mut self,
        name: &str,
        n1: NodeId,
        n2: NodeId,
        diode: Diode,
    ) -> Result<&mut Self> {
        self.add_nonlinear(name, n1, n2, Arc::new(diode))
    }

    fn check_finite_gain(&self, name: &str, what: &str, value: f64) -> Result<()> {
        if !value.is_finite() {
            return Err(CircuitError::InvalidValue {
                element: name.to_string(),
                reason: format!("{what} must be finite, got {value}"),
            });
        }
        Ok(())
    }

    /// Adds a voltage-controlled voltage source (SPICE `E`):
    /// `v(n1) - v(n2) = gain · (v(nc1) - v(nc2))`. The control pair only
    /// senses a voltage and carries no current.
    ///
    /// # Errors
    /// Rejects non-finite gain, duplicate names and `n1 == n2`.
    pub fn add_vcvs(
        &mut self,
        name: &str,
        n1: NodeId,
        n2: NodeId,
        nc1: NodeId,
        nc2: NodeId,
        gain: f64,
    ) -> Result<&mut Self> {
        self.check_finite_gain(name, "VCVS gain", gain)?;
        self.check_distinct(name, n1, n2)?;
        self.register_name(name)?;
        self.elements.push(Element::new(
            name.to_string(),
            vec![n1, n2, nc1, nc2],
            ElementKind::Vcvs { gain },
        ));
        Ok(self)
    }

    /// Adds a voltage-controlled current source (SPICE `G`): drives
    /// `gm · (v(nc1) - v(nc2))` from `n1` through the source to `n2`.
    ///
    /// # Errors
    /// Rejects non-finite transconductance, duplicate names and `n1 == n2`.
    pub fn add_vccs(
        &mut self,
        name: &str,
        n1: NodeId,
        n2: NodeId,
        nc1: NodeId,
        nc2: NodeId,
        gm: f64,
    ) -> Result<&mut Self> {
        self.check_finite_gain(name, "VCCS transconductance", gm)?;
        self.check_distinct(name, n1, n2)?;
        self.register_name(name)?;
        self.elements.push(Element::new(
            name.to_string(),
            vec![n1, n2, nc1, nc2],
            ElementKind::Vccs { gm },
        ));
        Ok(self)
    }

    /// Adds a current-controlled current source (SPICE `F`): drives
    /// `gain · i(control)` from `n1` through the source to `n2`, where
    /// `control` names an element with an MNA branch current (voltage
    /// source, inductor, VCVS or CCVS). The reference is resolved when the
    /// MNA system is built, so the controlling element may be added later.
    ///
    /// # Errors
    /// Rejects non-finite gain, duplicate names and `n1 == n2`.
    pub fn add_cccs(
        &mut self,
        name: &str,
        n1: NodeId,
        n2: NodeId,
        control: &str,
        gain: f64,
    ) -> Result<&mut Self> {
        self.check_finite_gain(name, "CCCS gain", gain)?;
        self.check_distinct(name, n1, n2)?;
        self.register_name(name)?;
        self.elements.push(Element::new(
            name.to_string(),
            vec![n1, n2],
            ElementKind::Cccs {
                gain,
                control: control.to_string(),
            },
        ));
        Ok(self)
    }

    /// Adds a current-controlled voltage source (SPICE `H`):
    /// `v(n1) - v(n2) = r · i(control)` (see [`Circuit::add_cccs`] for the
    /// control reference rules).
    ///
    /// # Errors
    /// Rejects non-finite transresistance, duplicate names and `n1 == n2`.
    pub fn add_ccvs(
        &mut self,
        name: &str,
        n1: NodeId,
        n2: NodeId,
        control: &str,
        r: f64,
    ) -> Result<&mut Self> {
        self.check_finite_gain(name, "CCVS transresistance", r)?;
        self.check_distinct(name, n1, n2)?;
        self.register_name(name)?;
        self.elements.push(Element::new(
            name.to_string(),
            vec![n1, n2],
            ElementKind::Ccvs {
                r,
                control: control.to_string(),
            },
        ));
        Ok(self)
    }

    /// Adds a MOSFET with terminals `(drain, gate, source)`.
    ///
    /// # Errors
    /// Rejects duplicate names and drain shorted to source.
    pub fn add_mosfet(
        &mut self,
        name: &str,
        drain: NodeId,
        gate: NodeId,
        source: NodeId,
        model: Mosfet,
    ) -> Result<&mut Self> {
        self.check_distinct(name, drain, source)?;
        self.register_name(name)?;
        self.elements.push(Element::new(
            name.to_string(),
            vec![drain, gate, source],
            ElementKind::Mosfet { model },
        ));
        Ok(self)
    }

    /// Validates the circuit: non-empty, referenced to ground, and every
    /// node reachable from ground through element connections.
    ///
    /// # Errors
    /// Returns the specific [`CircuitError`] for the first violation found.
    pub fn validate(&self) -> Result<()> {
        if self.elements.is_empty() {
            return Err(CircuitError::EmptyCircuit);
        }
        let grounded = self
            .elements
            .iter()
            .any(|e| e.nodes().iter().any(|n| n.is_ground()));
        if !grounded {
            return Err(CircuitError::NoGroundReference);
        }
        // Controlled-source current references must name a branch element.
        for e in &self.elements {
            if let Some(control) = e.kind().control_name() {
                match self.element_ci(control) {
                    None => {
                        return Err(CircuitError::UnknownControl {
                            element: e.name().to_string(),
                            control: control.to_string(),
                        });
                    }
                    Some(c) if !c.kind().needs_branch_current() => {
                        return Err(CircuitError::UnknownControl {
                            element: e.name().to_string(),
                            control: format!("{control} (carries no branch current)"),
                        });
                    }
                    Some(_) => {}
                }
            }
        }
        // Connectivity: BFS from ground over element adjacency. Only
        // conducting terminals count — the sense pair of an E/G source has
        // infinite input impedance and provides no path to ground.
        let n = self.nodes.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &self.elements {
            let ns = &e.nodes()[..e.kind().conducting_terminal_count()];
            for i in 0..ns.len() {
                for j in (i + 1)..ns.len() {
                    adj[ns[i].index()].push(ns[j].index());
                    adj[ns[j].index()].push(ns[i].index());
                }
            }
        }
        let mut seen = vec![false; n];
        let mut queue = vec![0usize];
        seen[0] = true;
        while let Some(u) = queue.pop() {
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    queue.push(v);
                }
            }
        }
        for (id, name) in self.nodes.iter() {
            if !seen[id.index()] {
                return Err(CircuitError::FloatingNode {
                    node: name.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Statistics string used by reports: nodes / elements / by-type counts.
    pub fn summary(&self) -> String {
        let mut r = 0;
        let mut c = 0;
        let mut l = 0;
        let mut v = 0;
        let mut i = 0;
        let mut y = 0;
        let mut m = 0;
        let mut dep = 0;
        for e in &self.elements {
            match e.kind() {
                ElementKind::Resistor { .. } => r += 1,
                ElementKind::Capacitor { .. } => c += 1,
                ElementKind::Inductor { .. } => l += 1,
                ElementKind::VoltageSource { .. } => v += 1,
                ElementKind::CurrentSource { .. } => i += 1,
                ElementKind::Nonlinear { .. } => y += 1,
                ElementKind::Mosfet { .. } => m += 1,
                ElementKind::Vcvs { .. }
                | ElementKind::Vccs { .. }
                | ElementKind::Cccs { .. }
                | ElementKind::Ccvs { .. } => dep += 1,
            }
        }
        format!(
            "{} nodes, {} elements (R:{r} C:{c} L:{l} V:{v} I:{i} dep:{dep} nano:{y} MOS:{m})",
            self.nodes.len(),
            self.elements.len()
        )
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(t) = &self.title {
            writeln!(f, "* {t}")?;
        }
        for e in &self.elements {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn divider() -> Circuit {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(1.0))
            .unwrap();
        ckt.add_resistor("R1", a, b, 1e3).unwrap();
        ckt.add_resistor("R2", b, Circuit::GROUND, 1e3).unwrap();
        ckt
    }

    #[test]
    fn builder_chains_and_counts() {
        let ckt = divider();
        assert_eq!(ckt.node_count(), 3);
        assert_eq!(ckt.elements().len(), 3);
        assert!(ckt.validate().is_ok());
        assert!(ckt.element("R1").is_some());
        assert!(ckt.element("Rx").is_none());
    }

    #[test]
    fn rejects_nonpositive_values() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        assert!(ckt.add_resistor("R1", a, Circuit::GROUND, 0.0).is_err());
        assert!(ckt.add_resistor("R1", a, Circuit::GROUND, -5.0).is_err());
        assert!(ckt
            .add_capacitor("C1", a, Circuit::GROUND, f64::NAN)
            .is_err());
        assert!(ckt.add_inductor("L1", a, Circuit::GROUND, 0.0).is_err());
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_resistor("R1", a, b, 1.0).unwrap();
        match ckt.add_resistor("R1", a, Circuit::GROUND, 1.0) {
            Err(CircuitError::DuplicateElement { name }) => assert_eq!(name, "R1"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_degenerate_connection() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        assert!(matches!(
            ckt.add_resistor("R1", a, a, 1.0),
            Err(CircuitError::DegenerateConnection { .. })
        ));
    }

    #[test]
    fn empty_circuit_invalid() {
        let ckt = Circuit::new();
        assert!(matches!(ckt.validate(), Err(CircuitError::EmptyCircuit)));
    }

    #[test]
    fn ungrounded_circuit_invalid() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_resistor("R1", a, b, 1.0).unwrap();
        assert!(matches!(
            ckt.validate(),
            Err(CircuitError::NoGroundReference)
        ));
    }

    #[test]
    fn floating_node_detected() {
        let mut ckt = divider();
        let x = ckt.node("floating");
        let y = ckt.node("floating2");
        ckt.add_resistor("R3", x, y, 1.0).unwrap();
        match ckt.validate() {
            Err(CircuitError::FloatingNode { node }) => {
                assert!(node.starts_with("floating"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mosfet_three_terminals() {
        let mut ckt = Circuit::new();
        let d = ckt.node("d");
        let g = ckt.node("g");
        ckt.add_mosfet("M1", d, g, Circuit::GROUND, Mosfet::nmos())
            .unwrap();
        ckt.add_voltage_source("Vd", d, Circuit::GROUND, SourceWaveform::dc(5.0))
            .unwrap();
        ckt.add_voltage_source("Vg", g, Circuit::GROUND, SourceWaveform::dc(5.0))
            .unwrap();
        assert!(ckt.validate().is_ok());
        let m = ckt.element("M1").unwrap();
        assert_eq!(m.nodes().len(), 3);
    }

    #[test]
    fn mosfet_drain_source_short_rejected() {
        let mut ckt = Circuit::new();
        let d = ckt.node("d");
        let g = ckt.node("g");
        assert!(ckt.add_mosfet("M1", d, g, d, Mosfet::nmos()).is_err());
    }

    #[test]
    fn nano_device_builders() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let c = ckt.node("c");
        let d = ckt.node("d");
        ckt.add_rtd("X1", a, Circuit::GROUND, Rtd::date2005())
            .unwrap();
        ckt.add_nanowire("X2", b, Circuit::GROUND, Nanowire::metallic_cnt())
            .unwrap();
        ckt.add_rtt("X3", c, Circuit::GROUND, Rtt::three_peak())
            .unwrap();
        ckt.add_diode("X4", d, Circuit::GROUND, Diode::silicon())
            .unwrap();
        assert_eq!(ckt.elements().len(), 4);
        let summary = ckt.summary();
        assert!(summary.contains("nano:4"), "{summary}");
    }

    #[test]
    fn display_and_title() {
        let mut ckt = divider();
        ckt.set_title("voltage divider");
        assert_eq!(ckt.title(), Some("voltage divider"));
        let s = ckt.to_string();
        assert!(s.contains("* voltage divider"));
        assert!(s.contains("V1"));
    }

    #[test]
    fn capacitor_initial_condition_stored() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_capacitor_ic("C1", a, Circuit::GROUND, 1e-12, Some(2.5))
            .unwrap();
        match ckt.element("C1").unwrap().kind() {
            ElementKind::Capacitor {
                initial_voltage, ..
            } => assert_eq!(*initial_voltage, Some(2.5)),
            _ => panic!("wrong kind"),
        }
    }
}
