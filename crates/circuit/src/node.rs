//! Node identifiers and the node-name map.

use std::collections::HashMap;
use std::fmt;

/// Identifier of a circuit node. Node `0` is ground.
///
/// # Example
/// ```
/// use nanosim_circuit::node::NodeId;
/// assert!(NodeId::GROUND.is_ground());
/// assert_eq!(NodeId::GROUND.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(usize);

impl NodeId {
    /// The ground (reference) node.
    pub const GROUND: NodeId = NodeId(0);

    /// Raw index (0 = ground).
    pub fn index(self) -> usize {
        self.0
    }

    /// Whether this is the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }

    #[cfg(test)]
    pub(crate) fn from_index(i: usize) -> Self {
        NodeId(i)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Bidirectional map between node names and [`NodeId`]s.
///
/// Ground is created eagerly and answers to `"0"`, `"gnd"` and `"GND"`.
#[derive(Debug, Clone)]
pub struct NodeMap {
    names: Vec<String>,
    by_name: HashMap<String, NodeId>,
}

impl NodeMap {
    /// Creates a map containing only ground.
    pub fn new() -> Self {
        let mut m = NodeMap {
            names: vec!["0".to_string()],
            by_name: HashMap::new(),
        };
        m.by_name.insert("0".into(), NodeId::GROUND);
        m.by_name.insert("gnd".into(), NodeId::GROUND);
        m
    }

    /// Returns the id for `name`, creating a fresh node when unseen.
    /// Lookup is case-insensitive ("VDD" and "vdd" are the same node).
    pub fn intern(&mut self, name: &str) -> NodeId {
        let key = name.to_ascii_lowercase();
        if let Some(&id) = self.by_name.get(&key) {
            return id;
        }
        let id = NodeId(self.names.len());
        self.names.push(name.to_string());
        self.by_name.insert(key, id);
        id
    }

    /// Looks up an existing node by name without creating it.
    pub fn get(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(&name.to_ascii_lowercase()).copied()
    }

    /// The display name of a node.
    ///
    /// # Panics
    /// Panics if the id was not produced by this map.
    pub fn name(&self, id: NodeId) -> &str {
        &self.names[id.0]
    }

    /// Total number of nodes including ground.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether only ground exists.
    pub fn is_empty(&self) -> bool {
        self.names.len() <= 1
    }

    /// Iterates over `(id, name)` pairs, ground first.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i), n.as_str()))
    }
}

impl Default for NodeMap {
    fn default() -> Self {
        NodeMap::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_is_predefined() {
        let m = NodeMap::new();
        assert_eq!(m.get("0"), Some(NodeId::GROUND));
        assert_eq!(m.get("gnd"), Some(NodeId::GROUND));
        assert_eq!(m.get("GND"), Some(NodeId::GROUND));
        assert_eq!(m.len(), 1);
        assert!(m.is_empty());
    }

    #[test]
    fn intern_is_idempotent() {
        let mut m = NodeMap::new();
        let a = m.intern("out");
        let b = m.intern("out");
        assert_eq!(a, b);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn intern_case_insensitive_preserves_first_spelling() {
        let mut m = NodeMap::new();
        let a = m.intern("Vdd");
        let b = m.intern("VDD");
        assert_eq!(a, b);
        assert_eq!(m.name(a), "Vdd");
    }

    #[test]
    fn distinct_names_distinct_ids() {
        let mut m = NodeMap::new();
        let a = m.intern("a");
        let b = m.intern("b");
        assert_ne!(a, b);
        assert!(!a.is_ground());
    }

    #[test]
    fn iter_yields_ground_first() {
        let mut m = NodeMap::new();
        m.intern("x");
        let all: Vec<_> = m.iter().collect();
        assert_eq!(all[0], (NodeId::GROUND, "0"));
        assert_eq!(all[1].1, "x");
    }

    #[test]
    fn display_format() {
        assert_eq!(NodeId::GROUND.to_string(), "n0");
    }

    #[test]
    fn get_unknown_is_none() {
        let m = NodeMap::new();
        assert_eq!(m.get("missing"), None);
    }
}
