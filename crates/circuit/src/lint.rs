//! Pass-based static analysis of circuits and decks — the preflight layer.
//!
//! Every check here is *structural*: union-find connectivity, cycle/cut
//! detection over the branch graph, and maximum bipartite matching over the
//! MNA sparsity pattern. No matrix is ever factored and no value is ever
//! solved for, so a full report costs microseconds and can run before any
//! assembly.
//!
//! The passes, in order:
//!
//! 1. **Connectivity** — ground-unreachable islands and floating nodes via
//!    union-find over conducting terminals (`floating-node`, `no-ground`,
//!    `empty-circuit`).
//! 2. **Voltage-source loops** — any cycle of branch-current-carrying
//!    voltage-defined elements (V / E / H / L). The branch-current columns
//!    around such a cycle telescope to zero, so the MNA matrix is singular
//!    *regardless of values* (`vsource-loop`).
//! 3. **Current-source cutsets** — a node group whose every connection to
//!    the rest of the circuit is current-defined (I / F / G) or
//!    capacitive. If nothing outside senses the group's voltage, the
//!    all-ones vector over its voltage columns is a null vector — a
//!    guaranteed-singular operating point (`isource-cutset`,
//!    `no-dc-path`).
//! 4. **Structural rank** — maximum bipartite matching (Kuhn's algorithm)
//!    over the assembled DC MNA pattern, with Dulmage–Mendelsohn coarse
//!    blocks naming the unmatched equations and variables
//!    (`structural-singular`, `unknown-control`).
//! 5. **Hygiene** — duplicate element names, dangling subckt ports,
//!    unused/shadowed `.param`s, suspicious value ranges.
//!
//! Deck-level comments suppress diagnostics per deck:
//!
//! ```text
//! * nanosim-lint: allow(no-dc-path, suspicious-value)
//! ```
//!
//! Entry points: [`lint_deck`] for netlist text (spans, suppression,
//! hygiene), [`lint_circuit`] for an already-built [`Circuit`] (the form
//! the simulation session's preflight uses).

use crate::element::ElementKind;
use crate::error::CircuitError;
use crate::mna::MnaSystem;
use crate::netlist::Circuit;
use crate::parser::{parse_netlist, ParsedDeck};
use nanosim_numeric::sparse::TripletMatrix;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

/// Diagnostic severity, ordered so that [`Severity::Error`] is greatest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Stylistic or informational; never affects simulation.
    Info,
    /// Suspicious but simulable; surfaced in run statistics.
    Warning,
    /// The circuit cannot be meaningfully simulated (guaranteed-singular
    /// MNA, unresolvable reference, ...). Preflight refuses these.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Machine-stable lint codes. The kebab-case string form ([`LintCode::as_str`])
/// is what `* nanosim-lint: allow(code)` comments and `@expect-lint`
/// annotations use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintCode {
    /// The circuit contains no elements at all.
    EmptyCircuit,
    /// No element connects to ground (node `0`).
    NoGround,
    /// Nodes with no conductive path to ground.
    FloatingNode,
    /// A cycle of voltage-defined branches (V / E / H / L): guaranteed
    /// singular, the branch-current columns are linearly dependent.
    VsourceLoop,
    /// A node group connected to the rest of the circuit only through
    /// current-defined branches (I / F / G): every cut is a current-source
    /// cutset.
    IsourceCutset,
    /// A node group whose only connections to ground are capacitive: fine
    /// in transient, structurally singular at the operating point every
    /// analysis starts from.
    NoDcPath,
    /// The assembled MNA pattern is structurally rank-deficient (maximum
    /// bipartite matching smaller than the dimension).
    StructuralSingular,
    /// Two elements share a name.
    DuplicateElement,
    /// An F/H element references a control that does not exist or carries
    /// no branch current.
    UnknownControl,
    /// The deck failed to parse (the parse error is carried as the
    /// message).
    SyntaxError,
    /// A `.subckt` port no body element connects to.
    DanglingPort,
    /// A global `.param` nothing references.
    UnusedParam,
    /// A subckt parameter that shadows a global `.param` of the same name.
    ShadowedParam,
    /// An element value far outside its plausible physical range.
    SuspiciousValue,
    /// A `nanosim-lint: allow(...)` comment naming an unknown code.
    BadAllow,
}

impl LintCode {
    /// Every code, in documentation order.
    pub const ALL: [LintCode; 15] = [
        LintCode::EmptyCircuit,
        LintCode::NoGround,
        LintCode::FloatingNode,
        LintCode::VsourceLoop,
        LintCode::IsourceCutset,
        LintCode::NoDcPath,
        LintCode::StructuralSingular,
        LintCode::DuplicateElement,
        LintCode::UnknownControl,
        LintCode::SyntaxError,
        LintCode::DanglingPort,
        LintCode::UnusedParam,
        LintCode::ShadowedParam,
        LintCode::SuspiciousValue,
        LintCode::BadAllow,
    ];

    /// The stable kebab-case name used in reports, annotations and
    /// suppression comments.
    pub fn as_str(&self) -> &'static str {
        match self {
            LintCode::EmptyCircuit => "empty-circuit",
            LintCode::NoGround => "no-ground",
            LintCode::FloatingNode => "floating-node",
            LintCode::VsourceLoop => "vsource-loop",
            LintCode::IsourceCutset => "isource-cutset",
            LintCode::NoDcPath => "no-dc-path",
            LintCode::StructuralSingular => "structural-singular",
            LintCode::DuplicateElement => "duplicate-element",
            LintCode::UnknownControl => "unknown-control",
            LintCode::SyntaxError => "syntax-error",
            LintCode::DanglingPort => "dangling-port",
            LintCode::UnusedParam => "unused-param",
            LintCode::ShadowedParam => "shadowed-param",
            LintCode::SuspiciousValue => "suspicious-value",
            LintCode::BadAllow => "bad-allow",
        }
    }

    /// Parses the kebab-case name back into a code.
    pub fn parse(s: &str) -> Option<LintCode> {
        LintCode::ALL.iter().copied().find(|c| c.as_str() == s)
    }

    /// The severity diagnostics of this code default to. Individual
    /// diagnostics may downgrade (e.g. a sensed current-source island is a
    /// Warning because a dependent source elsewhere may fix its rank).
    pub fn default_severity(&self) -> Severity {
        match self {
            LintCode::EmptyCircuit
            | LintCode::NoGround
            | LintCode::FloatingNode
            | LintCode::VsourceLoop
            | LintCode::IsourceCutset
            | LintCode::NoDcPath
            | LintCode::StructuralSingular
            | LintCode::DuplicateElement
            | LintCode::UnknownControl
            | LintCode::SyntaxError => Severity::Error,
            LintCode::DanglingPort | LintCode::UnusedParam | LintCode::SuspiciousValue => {
                Severity::Warning
            }
            LintCode::ShadowedParam | LintCode::BadAllow => Severity::Info,
        }
    }

    /// One-line description for documentation and `nanosim-lint --codes`.
    pub fn description(&self) -> &'static str {
        match self {
            LintCode::EmptyCircuit => "circuit contains no elements",
            LintCode::NoGround => "no element connects to ground",
            LintCode::FloatingNode => "nodes with no conductive path to ground",
            LintCode::VsourceLoop => "loop of voltage-defined branches (V/E/H/L)",
            LintCode::IsourceCutset => "node group fed only by current-defined branches",
            LintCode::NoDcPath => "node group with only capacitive paths to ground",
            LintCode::StructuralSingular => "MNA pattern is structurally rank-deficient",
            LintCode::DuplicateElement => "two elements share a name",
            LintCode::UnknownControl => "F/H control missing or carries no branch current",
            LintCode::SyntaxError => "deck failed to parse",
            LintCode::DanglingPort => "subckt port no body element connects to",
            LintCode::UnusedParam => "global .param nothing references",
            LintCode::ShadowedParam => "subckt parameter shadows a global .param",
            LintCode::SuspiciousValue => "element value outside its plausible range",
            LintCode::BadAllow => "allow(...) comment names an unknown code",
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A 1-based source position (line and column of a token's first
/// character), as produced by the located-token parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Span {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub column: usize,
}

impl Span {
    /// Creates a span.
    pub fn new(line: usize, column: usize) -> Span {
        Span { line, column }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// Maps flattened element names to the deck position they came from.
/// Elements produced by instance flattening map to their `X` line.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SourceMap {
    spans: HashMap<String, Span>,
}

impl SourceMap {
    /// An empty map.
    pub fn new() -> SourceMap {
        SourceMap::default()
    }

    /// Records the source position of an element.
    pub fn insert(&mut self, name: impl Into<String>, span: Span) {
        self.spans.insert(name.into(), span);
    }

    /// The recorded position of an element, if any.
    pub fn get(&self, name: &str) -> Option<Span> {
        self.spans.get(name).copied()
    }

    /// Number of recorded positions.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

/// One finding: a code, a severity, a human message, and — when the source
/// is known — the position and element names involved.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The machine-stable code.
    pub code: LintCode,
    /// Severity (usually [`LintCode::default_severity`], occasionally
    /// downgraded by a pass that cannot prove the problem).
    pub severity: Severity,
    /// Human-readable description of this specific instance.
    pub message: String,
    /// Source position, when the deck text is available.
    pub span: Option<Span>,
    /// Names of the offending elements, in deterministic order.
    pub elements: Vec<String>,
}

impl Diagnostic {
    /// Creates a diagnostic at the code's default severity.
    pub fn new(code: LintCode, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.default_severity(),
            message: message.into(),
            span: None,
            elements: Vec::new(),
        }
    }

    fn severity(mut self, severity: Severity) -> Diagnostic {
        self.severity = severity;
        self
    }

    fn span(mut self, span: Option<Span>) -> Diagnostic {
        self.span = span;
        self
    }

    fn elements(mut self, elements: Vec<String>) -> Diagnostic {
        self.elements = elements;
        self
    }

    /// Machine-readable JSON rendering (one object, no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\"",
            self.code,
            self.severity,
            json_escape(&self.message)
        );
        if let Some(span) = self.span {
            s.push_str(&format!(
                ",\"line\":{},\"column\":{}",
                span.line, span.column
            ));
        }
        if !self.elements.is_empty() {
            s.push_str(",\"elements\":[");
            for (i, e) in self.elements.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push('"');
                s.push_str(&json_escape(e));
                s.push('"');
            }
            s.push(']');
        }
        s.push('}');
        s
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if let Some(span) = self.span {
            write!(f, " (at {span})")?;
        }
        Ok(())
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The result of a lint run: diagnostics sorted errors-first (stable within
/// a severity), plus the count of diagnostics suppressed by
/// `* nanosim-lint: allow(code)` comments.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintReport {
    diagnostics: Vec<Diagnostic>,
    suppressed: usize,
}

impl LintReport {
    /// All diagnostics, errors first.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Warning-severity diagnostics.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.errors().count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.warnings().count()
    }

    /// Number of diagnostics dropped by `allow(...)` suppressions.
    pub fn suppressed_count(&self) -> usize {
        self.suppressed
    }

    /// Whether any error-severity diagnostic survived.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Whether the report is completely clean (no diagnostics of any
    /// severity; suppressed ones don't count against cleanliness).
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The distinct codes present, in report order.
    pub fn codes(&self) -> Vec<LintCode> {
        let mut seen = Vec::new();
        for d in &self.diagnostics {
            if !seen.contains(&d.code) {
                seen.push(d.code);
            }
        }
        seen
    }

    /// One-line summary, e.g. `2 errors, 1 warning (1 suppressed)`.
    pub fn summary(&self) -> String {
        let e = self.error_count();
        let w = self.warning_count();
        let i = self.diagnostics.len() - e - w;
        let mut s = format!(
            "{e} error{}, {w} warning{}",
            if e == 1 { "" } else { "s" },
            if w == 1 { "" } else { "s" }
        );
        if i > 0 {
            s.push_str(&format!(", {i} info{}", if i == 1 { "" } else { "s" }));
        }
        if self.suppressed > 0 {
            s.push_str(&format!(" ({} suppressed)", self.suppressed));
        }
        s
    }

    /// Machine-readable JSON rendering of the whole report.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"errors\":{},\"warnings\":{},\"suppressed\":{},\"diagnostics\":[",
            self.error_count(),
            self.warning_count(),
            self.suppressed
        );
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&d.to_json());
        }
        s.push_str("]}");
        s
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            write!(f, "clean")?;
            if self.suppressed > 0 {
                write!(f, " ({} suppressed)", self.suppressed)?;
            }
            return Ok(());
        }
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

/// Lints an already-flattened circuit: the structural passes only (no
/// source spans, no deck hygiene, no suppression). This is what
/// `Simulator`-level preflight runs.
pub fn lint_circuit(circuit: &Circuit) -> LintReport {
    lint_circuit_with(circuit, &SourceMap::default())
}

/// Lints a flattened circuit with a [`SourceMap`] so diagnostics carry the
/// deck positions of the offending elements.
pub fn lint_circuit_with(circuit: &Circuit, sources: &SourceMap) -> LintReport {
    finish(lint_circuit_raw(circuit, sources), &[])
}

/// Lints netlist text: parses it, runs every structural pass over the
/// flattened circuit with full source positions, adds the deck-level
/// hygiene passes, and honors `* nanosim-lint: allow(code)` suppression
/// comments. Never fails — an unparseable deck becomes a `syntax-error`
/// (or `duplicate-element`) diagnostic.
pub fn lint_deck(text: &str) -> LintReport {
    let (allow, mut diags) = collect_allows(text);
    match parse_netlist(text) {
        Err(e) => diags.push(diagnostic_from_error(&e)),
        Ok(deck) => {
            diags.extend(lint_circuit_raw(&deck.circuit, &deck.spans));
            deck_hygiene(text, &deck, &mut diags);
        }
    }
    finish(diags, &allow)
}

/// Converts a parse/build error into the equivalent diagnostic (used for
/// decks that fail before any pass can run).
fn diagnostic_from_error(e: &CircuitError) -> Diagnostic {
    match e {
        CircuitError::DuplicateElementAt { name, line, column } => {
            Diagnostic::new(LintCode::DuplicateElement, e.to_string())
                .span(Some(Span::new(*line, *column)))
                .elements(vec![name.clone()])
        }
        CircuitError::DuplicateElement { name } => {
            Diagnostic::new(LintCode::DuplicateElement, e.to_string()).elements(vec![name.clone()])
        }
        CircuitError::Parse { line, column, .. } => {
            Diagnostic::new(LintCode::SyntaxError, e.to_string())
                .span(Some(Span::new(*line, *column)))
        }
        CircuitError::FloatingNode { .. } => Diagnostic::new(LintCode::FloatingNode, e.to_string()),
        CircuitError::NoGroundReference => Diagnostic::new(LintCode::NoGround, e.to_string()),
        CircuitError::EmptyCircuit => Diagnostic::new(LintCode::EmptyCircuit, e.to_string()),
        CircuitError::UnknownControl { .. } => {
            Diagnostic::new(LintCode::UnknownControl, e.to_string())
        }
        other => Diagnostic::new(LintCode::SyntaxError, other.to_string()),
    }
}

fn finish(mut diags: Vec<Diagnostic>, allow: &[LintCode]) -> LintReport {
    let before = diags.len();
    diags.retain(|d| !allow.contains(&d.code));
    let suppressed = before - diags.len();
    // Errors first, stable within a severity so pass order is preserved.
    diags.sort_by_key(|d| std::cmp::Reverse(d.severity));
    LintReport {
        diagnostics: diags,
        suppressed,
    }
}

/// Parses `* nanosim-lint: allow(code, code)` comment lines. Unknown codes
/// become `bad-allow` info diagnostics instead of silently vanishing.
fn collect_allows(text: &str) -> (Vec<LintCode>, Vec<Diagnostic>) {
    let mut allow = Vec::new();
    let mut diags = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let t = line.trim();
        if !(t.starts_with('*') || t.starts_with(';')) {
            continue;
        }
        let Some(pos) = t.find("nanosim-lint:") else {
            continue;
        };
        let rest = t[pos + "nanosim-lint:".len()..].trim();
        let Some(inner) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.strip_suffix(')'))
        else {
            diags.push(
                Diagnostic::new(
                    LintCode::BadAllow,
                    format!("malformed nanosim-lint comment: `{t}` (expected `allow(code, ...)`)"),
                )
                .span(Some(Span::new(lineno + 1, 1))),
            );
            continue;
        };
        for code in inner.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            match LintCode::parse(code) {
                Some(c) => allow.push(c),
                None => diags.push(
                    Diagnostic::new(
                        LintCode::BadAllow,
                        format!("unknown lint code `{code}` in allow(...)"),
                    )
                    .span(Some(Span::new(lineno + 1, 1))),
                ),
            }
        }
    }
    (allow, diags)
}

// ---------------------------------------------------------------------------
// Structural passes
// ---------------------------------------------------------------------------

/// Union-find with path halving.
struct Uf {
    parent: Vec<usize>,
}

impl Uf {
    fn new(n: usize) -> Uf {
        Uf {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra.max(rb)] = ra.min(rb);
        true
    }
}

/// Earliest source span among a set of element names.
fn min_span(sources: &SourceMap, names: &[String]) -> Option<Span> {
    names.iter().filter_map(|n| sources.get(n)).min()
}

/// Node display names indexed by `NodeId::index()`.
fn node_names(circuit: &Circuit) -> Vec<String> {
    circuit.nodes().iter().map(|(_, n)| n.to_string()).collect()
}

fn node_list(names: &[String]) -> String {
    const CAP: usize = 8;
    if names.len() <= CAP {
        names.join(", ")
    } else {
        format!("{}, ... ({} total)", names[..CAP].join(", "), names.len())
    }
}

fn lint_circuit_raw(circuit: &Circuit, sources: &SourceMap) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if circuit.elements().is_empty() {
        diags.push(Diagnostic::new(
            LintCode::EmptyCircuit,
            "circuit contains no elements",
        ));
        return diags;
    }
    let full_uf = pass_connectivity(circuit, sources, &mut diags);
    pass_vsource_loops(circuit, sources, &mut diags);
    if let Some(full_uf) = full_uf {
        pass_current_cutsets(circuit, sources, full_uf, &mut diags);
    }
    pass_controls(circuit, sources, &mut diags);
    pass_suspicious_values(circuit, sources, &mut diags);
    if !diags.iter().any(|d| d.severity == Severity::Error) {
        pass_structural_rank(circuit, &mut diags);
    }
    diags
}

/// Pass 1: union-find over conducting terminals. Returns the full
/// conductivity union-find (for reuse by the cutset pass) unless the
/// circuit has no ground reference at all.
fn pass_connectivity(
    circuit: &Circuit,
    sources: &SourceMap,
    diags: &mut Vec<Diagnostic>,
) -> Option<Uf> {
    let n = circuit.node_count();
    let mut uf = Uf::new(n);
    let mut touches_ground = false;
    for e in circuit.elements() {
        let terms = &e.nodes()[..e.kind().conducting_terminal_count()];
        for t in terms {
            touches_ground |= t.is_ground();
        }
        for w in terms.windows(2) {
            uf.union(w[0].index(), w[1].index());
        }
    }
    if !touches_ground {
        diags.push(Diagnostic::new(
            LintCode::NoGround,
            "no element connects to ground (node 0); every node potential is undefined",
        ));
        return None;
    }
    let g = uf.find(0);
    let mut islands: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for idx in 1..n {
        let r = uf.find(idx);
        if r != g {
            islands.entry(r).or_default().push(idx);
        }
    }
    let names = node_names(circuit);
    for nodes in islands.values() {
        let in_island: HashSet<usize> = nodes.iter().copied().collect();
        let island_names: Vec<String> = nodes.iter().map(|&i| names[i].clone()).collect();
        let elems: Vec<String> = circuit
            .elements()
            .iter()
            .filter(|e| {
                e.nodes()[..e.kind().conducting_terminal_count()]
                    .iter()
                    .any(|t| in_island.contains(&t.index()))
            })
            .map(|e| e.name().to_string())
            .collect();
        let span = min_span(sources, &elems);
        let msg = if elems.is_empty() {
            format!(
                "node{} {} declared but connected to nothing",
                if nodes.len() == 1 { "" } else { "s" },
                node_list(&island_names)
            )
        } else {
            format!(
                "node{} {} ha{} no conductive path to ground (island of {} element{}: {})",
                if nodes.len() == 1 { "" } else { "s" },
                node_list(&island_names),
                if nodes.len() == 1 { "s" } else { "ve" },
                elems.len(),
                if elems.len() == 1 { "" } else { "s" },
                node_list(&elems)
            )
        };
        diags.push(
            Diagnostic::new(LintCode::FloatingNode, msg)
                .span(span)
                .elements(elems),
        );
    }
    Some(uf)
}

/// Pass 2: cycles over voltage-defined branches. Every element that adds a
/// branch current (V, E, H, L) contributes a `±1` column at its two
/// terminal KCL rows; around a cycle those columns telescope to zero, so
/// any such loop is singular no matter the values.
fn pass_vsource_loops(circuit: &Circuit, sources: &SourceMap, diags: &mut Vec<Diagnostic>) {
    let n = circuit.node_count();
    let mut uf = Uf::new(n);
    // Forest of accepted edges: node -> (neighbor, element index).
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    for (i, e) in circuit.elements().iter().enumerate() {
        if !e.kind().needs_branch_current() {
            continue;
        }
        let a = e.nodes()[0].index();
        let b = e.nodes()[1].index();
        if uf.union(a, b) {
            adj[a].push((b, i));
            adj[b].push((a, i));
            continue;
        }
        // Closing edge: reconstruct the loop through the forest.
        let mut loop_elems = forest_path(&adj, a, b)
            .into_iter()
            .map(|idx| circuit.elements()[idx].name().to_string())
            .collect::<Vec<_>>();
        loop_elems.push(e.name().to_string());
        let span = sources
            .get(e.name())
            .or_else(|| min_span(sources, &loop_elems));
        diags.push(
            Diagnostic::new(
                LintCode::VsourceLoop,
                format!(
                    "voltage-defined branches form a loop: {} \
                     (their branch-current columns are linearly dependent; \
                     the MNA matrix is singular for any values)",
                    loop_elems.join(" -> ")
                ),
            )
            .span(span)
            .elements(loop_elems),
        );
    }
}

/// BFS path `a -> b` through the voltage-edge forest; returns the element
/// indices along the path.
fn forest_path(adj: &[Vec<(usize, usize)>], a: usize, b: usize) -> Vec<usize> {
    if a == b {
        return Vec::new();
    }
    let mut prev: Vec<Option<(usize, usize)>> = vec![None; adj.len()];
    let mut queue = std::collections::VecDeque::from([a]);
    prev[a] = Some((a, usize::MAX));
    while let Some(u) = queue.pop_front() {
        if u == b {
            break;
        }
        for &(v, ei) in &adj[u] {
            if prev[v].is_none() {
                prev[v] = Some((u, ei));
                queue.push_back(v);
            }
        }
    }
    let mut path = Vec::new();
    let mut cur = b;
    while cur != a {
        let Some((p, ei)) = prev[cur] else {
            return path; // disconnected: shouldn't happen, fail soft
        };
        path.push(ei);
        cur = p;
    }
    path.reverse();
    path
}

/// Pass 3: node groups cut off from ground once current-defined branches
/// (I, F, G) and capacitors are removed. If nothing outside the group
/// senses its voltage, the group's potential is undetermined — the
/// constant vector over its voltage columns is a structural null vector.
/// A sensed group is only *suspicious* (a dependent source may pin it), so
/// it is reported as a Warning and left to the structural-rank pass.
fn pass_current_cutsets(
    circuit: &Circuit,
    sources: &SourceMap,
    mut full_uf: Uf,
    diags: &mut Vec<Diagnostic>,
) {
    let n = circuit.node_count();
    let mut uf = Uf::new(n);
    let mut sensed: HashSet<usize> = HashSet::new();
    for e in circuit.elements() {
        let nodes = e.nodes();
        match e.kind() {
            ElementKind::Resistor { .. }
            | ElementKind::Inductor { .. }
            | ElementKind::VoltageSource { .. }
            | ElementKind::Vcvs { .. }
            | ElementKind::Ccvs { .. }
            | ElementKind::Nonlinear { .. } => {
                uf.union(nodes[0].index(), nodes[1].index());
            }
            ElementKind::Mosfet { .. } => {
                // Drain-source channel conducts; the gate only senses.
                uf.union(nodes[0].index(), nodes[2].index());
                sensed.insert(nodes[1].index());
            }
            ElementKind::Capacitor { .. }
            | ElementKind::CurrentSource { .. }
            | ElementKind::Cccs { .. }
            | ElementKind::Vccs { .. } => {}
        }
        if let ElementKind::Vcvs { .. } | ElementKind::Vccs { .. } = e.kind() {
            sensed.insert(nodes[2].index());
            sensed.insert(nodes[3].index());
        }
    }
    let dc_ground = uf.find(0);
    let full_ground = full_uf.find(0);
    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for idx in 1..n {
        // Skip nodes already reported floating by pass 1.
        if full_uf.find(idx) != full_ground {
            continue;
        }
        let r = uf.find(idx);
        if r != dc_ground {
            groups.entry(r).or_default().push(idx);
        }
    }
    let names = node_names(circuit);
    let root_of: Vec<usize> = (0..n).map(|i| uf.find(i)).collect();
    for (&root, nodes) in &groups {
        let in_group = |id: usize| root_of[id] == root;
        let group_names: Vec<String> = nodes.iter().map(|&i| names[i].clone()).collect();
        let mut crossing: Vec<String> = Vec::new();
        let mut has_cap = false;
        for e in circuit.elements() {
            let pair = match e.kind() {
                ElementKind::Mosfet { .. } => (e.nodes()[0], e.nodes()[2]),
                _ => (e.nodes()[0], e.nodes()[1]),
            };
            if in_group(pair.0.index()) != in_group(pair.1.index()) {
                has_cap |= matches!(e.kind(), ElementKind::Capacitor { .. });
                crossing.push(e.name().to_string());
            }
        }
        let is_sensed = nodes.iter().any(|&i| sensed.contains(&i));
        let severity = if is_sensed {
            Severity::Warning
        } else {
            Severity::Error
        };
        let code = if has_cap {
            LintCode::NoDcPath
        } else {
            LintCode::IsourceCutset
        };
        let span = min_span(sources, &crossing);
        let what = if crossing.is_empty() {
            "non-conducting terminals (e.g. a MOSFET gate)".to_string()
        } else {
            format!(
                "{} ({})",
                if has_cap {
                    "capacitors/current-defined branches"
                } else {
                    "current-defined branches"
                },
                node_list(&crossing)
            )
        };
        let tail = if is_sensed {
            "; a controlled source senses this group, so its rank is decided \
             by the structural-rank pass"
        } else if has_cap {
            "; the operating-point (DC) matrix every analysis starts from is \
             structurally singular"
        } else {
            "; the group's potential is undetermined and the MNA matrix is \
             singular for any values"
        };
        diags.push(
            Diagnostic::new(
                code,
                format!(
                    "node{} {} connect{} to the rest of the circuit only through {}{}",
                    if nodes.len() == 1 { "" } else { "s" },
                    node_list(&group_names),
                    if nodes.len() == 1 { "s" } else { "" },
                    what,
                    tail
                ),
            )
            .severity(severity)
            .span(span)
            .elements(crossing),
        );
    }
}

/// Pass: F/H controls must name an existing element that carries a branch
/// current (mirrors MNA construction, but with spans and without aborting
/// at the first failure).
fn pass_controls(circuit: &Circuit, sources: &SourceMap, diags: &mut Vec<Diagnostic>) {
    for e in circuit.elements() {
        let Some(control) = e.kind().control_name() else {
            continue;
        };
        let problem = match circuit.element_ci(control) {
            None => format!(
                "element {} references unknown control `{control}`",
                e.name()
            ),
            Some(c) if !c.kind().needs_branch_current() => format!(
                "element {} control `{control}` ({}) carries no branch current \
                 (only V, E, H and L elements do)",
                e.name(),
                c.kind().type_tag()
            ),
            Some(_) => continue,
        };
        diags.push(
            Diagnostic::new(LintCode::UnknownControl, problem)
                .span(sources.get(e.name()))
                .elements(vec![e.name().to_string()]),
        );
    }
}

/// Pass: element values far outside plausible physical ranges. The bounds
/// are deliberately generous — they flag unit slips (`1m` vs `1meg`), not
/// stylistic choices.
fn pass_suspicious_values(circuit: &Circuit, sources: &SourceMap, diags: &mut Vec<Diagnostic>) {
    for e in circuit.elements() {
        let (value, unit, lo, hi) = match e.kind() {
            ElementKind::Resistor { resistance } => (*resistance, "ohm", 1e-3, 1e12),
            ElementKind::Capacitor { capacitance, .. } => (*capacitance, "F", 1e-21, 1e-2),
            ElementKind::Inductor { inductance } => (*inductance, "H", 1e-15, 1e3),
            _ => continue,
        };
        if value >= lo && value <= hi {
            continue;
        }
        let reason = if value < 0.0 {
            "negative"
        } else if value < lo {
            "implausibly small"
        } else {
            "implausibly large"
        };
        diags.push(
            Diagnostic::new(
                LintCode::SuspiciousValue,
                format!(
                    "{} = {value:.3e} {unit} is {reason} (expected {lo:.0e}..{hi:.0e}); \
                     check the unit suffix",
                    e.name()
                ),
            )
            .span(sources.get(e.name()))
            .elements(vec![e.name().to_string()]),
        );
    }
}

/// Pass 4: maximum bipartite matching over the assembled DC MNA pattern
/// (linear G stamps plus every possible device stamp site — exactly the
/// pattern the operating-point workspace factors, capacitors excluded).
/// A maximum matching smaller than the dimension proves LU will hit a zero
/// pivot no matter the values; the Dulmage–Mendelsohn coarse decomposition
/// names the unmatched equations and variables.
///
/// Only runs when the earlier passes found no errors (MNA construction
/// requires a validating circuit).
fn pass_structural_rank(circuit: &Circuit, diags: &mut Vec<Diagnostic>) {
    let mna = match MnaSystem::new(circuit) {
        Ok(m) => m,
        Err(e) => {
            diags.push(diagnostic_from_error(&e));
            return;
        }
    };
    let dim = mna.dim();
    let mut pattern = TripletMatrix::new(dim, dim);
    mna.stamp_linear_g(&mut pattern);
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); dim];
    for &(r, c, _) in pattern.iter() {
        adj[r].push(c);
    }
    // Device stamp sites, mirroring the assembly workspace's DC pattern.
    let mut push_pair = |p: Option<usize>, m: Option<usize>| {
        if let Some(i) = p {
            adj[i].push(i);
        }
        if let Some(i) = m {
            adj[i].push(i);
        }
        if let (Some(i), Some(j)) = (p, m) {
            adj[i].push(j);
            adj[j].push(i);
        }
    };
    for b in mna.nonlinear_bindings() {
        push_pair(b.var_plus, b.var_minus);
    }
    for m in mna.mosfet_bindings() {
        push_pair(m.var_drain, m.var_source);
    }
    for row in &mut adj {
        row.sort_unstable();
        row.dedup();
    }

    let (matched, match_of_row, match_of_col) = max_bipartite_matching(dim, &adj);
    if matched == dim {
        return;
    }

    // Variable / equation names in MNA order.
    let names = node_names(circuit);
    let nn = mna.num_nodes();
    let mut branch_names: Vec<String> = vec![String::new(); dim.saturating_sub(nn)];
    for (i, e) in circuit.elements().iter().enumerate() {
        if let Some(bv) = mna.branch_var(i) {
            branch_names[bv - nn] = e.name().to_string();
        }
    }
    let row_name = |r: usize| {
        if r < nn {
            format!("KCL({})", names[r + 1])
        } else {
            format!("branch({})", branch_names[r - nn])
        }
    };
    let col_name = |c: usize| {
        if c < nn {
            format!("V({})", names[c + 1])
        } else {
            format!("I({})", branch_names[c - nn])
        }
    };

    // Dulmage-Mendelsohn coarse blocks via alternating reachability.
    let unmatched_rows: Vec<usize> = (0..dim).filter(|&r| match_of_row[r].is_none()).collect();
    let unmatched_cols: Vec<usize> = (0..dim).filter(|&c| match_of_col[c].is_none()).collect();
    // Over-determined block: alternate row ->(edge) col ->(match) row from
    // unmatched rows.
    let mut over_rows = vec![false; dim];
    let mut over_cols = vec![false; dim];
    let mut queue: Vec<usize> = unmatched_rows.clone();
    for &r in &queue {
        over_rows[r] = true;
    }
    while let Some(r) = queue.pop() {
        for &c in &adj[r] {
            if !over_cols[c] {
                over_cols[c] = true;
                if let Some(r2) = match_of_col[c] {
                    if !over_rows[r2] {
                        over_rows[r2] = true;
                        queue.push(r2);
                    }
                }
            }
        }
    }
    // Under-determined block: alternate col ->(edge) row ->(match) col from
    // unmatched cols (needs the transpose adjacency).
    let mut radj: Vec<Vec<usize>> = vec![Vec::new(); dim];
    for (r, cols) in adj.iter().enumerate() {
        for &c in cols {
            radj[c].push(r);
        }
    }
    let mut under_rows = vec![false; dim];
    let mut under_cols = vec![false; dim];
    let mut queue: Vec<usize> = unmatched_cols.clone();
    for &c in &queue {
        under_cols[c] = true;
    }
    while let Some(c) = queue.pop() {
        for &r in &radj[c] {
            if !under_rows[r] {
                under_rows[r] = true;
                if let Some(c2) = match_of_row[r] {
                    if !under_cols[c2] {
                        under_cols[c2] = true;
                        queue.push(c2);
                    }
                }
            }
        }
    }

    let eq_names: Vec<String> = unmatched_rows.iter().map(|&r| row_name(r)).collect();
    let var_names: Vec<String> = unmatched_cols.iter().map(|&c| col_name(c)).collect();
    let over = (
        over_rows.iter().filter(|&&x| x).count(),
        over_cols.iter().filter(|&&x| x).count(),
    );
    let under = (
        under_rows.iter().filter(|&&x| x).count(),
        under_cols.iter().filter(|&&x| x).count(),
    );
    let mut elements: Vec<String> = branch_names
        .iter()
        .enumerate()
        .filter(|&(i, _)| {
            under_cols[i + nn] || over_rows[i + nn] || over_cols[i + nn] || under_rows[i + nn]
        })
        .map(|(_, n)| n.clone())
        .collect();
    elements.dedup();
    diags.push(
        Diagnostic::new(
            LintCode::StructuralSingular,
            format!(
                "MNA pattern is structurally singular: maximum matching {matched} of {dim}; \
                 unmatched equation{} {}; unmatched variable{} {}; \
                 over-determined block {} eq x {} var, under-determined block {} eq x {} var",
                if eq_names.len() == 1 { "" } else { "s" },
                node_list(&eq_names),
                if var_names.len() == 1 { "" } else { "s" },
                node_list(&var_names),
                over.0,
                over.1,
                under.0,
                under.1
            ),
        )
        .elements(elements),
    );
}

/// Kuhn's augmenting-path maximum bipartite matching, deterministic (rows
/// in order, columns in sorted adjacency order). Returns the matching size
/// and both match maps.
fn max_bipartite_matching(
    n: usize,
    adj: &[Vec<usize>],
) -> (usize, Vec<Option<usize>>, Vec<Option<usize>>) {
    let mut match_of_col: Vec<Option<usize>> = vec![None; n];
    let mut match_of_row: Vec<Option<usize>> = vec![None; n];
    let mut visited = vec![usize::MAX; n];
    let mut matched = 0;
    for r in 0..n {
        if augment(
            r,
            r,
            adj,
            &mut visited,
            &mut match_of_col,
            &mut match_of_row,
        ) {
            matched += 1;
        }
    }
    (matched, match_of_row, match_of_col)
}

fn augment(
    r: usize,
    stamp: usize,
    adj: &[Vec<usize>],
    visited: &mut [usize],
    match_of_col: &mut [Option<usize>],
    match_of_row: &mut [Option<usize>],
) -> bool {
    for &c in &adj[r] {
        if visited[c] == stamp {
            continue;
        }
        visited[c] = stamp;
        let free = match match_of_col[c] {
            None => true,
            Some(r2) => augment(r2, stamp, adj, visited, match_of_col, match_of_row),
        };
        if free {
            match_of_col[c] = Some(r);
            match_of_row[r] = Some(c);
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Deck-level hygiene
// ---------------------------------------------------------------------------

/// Hygiene passes that need the deck (not just the flattened circuit):
/// dangling subckt ports, unused global `.param`s, shadowed parameters.
fn deck_hygiene(text: &str, deck: &ParsedDeck, diags: &mut Vec<Diagnostic>) {
    for def in deck.subckts.defs() {
        for port in def.ports() {
            let used = def.body_nodes().any(|n| n.eq_ignore_ascii_case(port));
            if !used {
                diags.push(Diagnostic::new(
                    LintCode::DanglingPort,
                    format!(
                        "port `{port}` of .subckt {} is not connected to any body element",
                        def.name()
                    ),
                ));
            }
        }
        for (pname, _) in def.params() {
            if deck.params.contains_key(&pname.to_ascii_lowercase()) {
                diags.push(Diagnostic::new(
                    LintCode::ShadowedParam,
                    format!(
                        ".subckt {} parameter `{pname}` shadows the global .param of \
                         the same name (instances resolve the local one)",
                        def.name()
                    ),
                ));
            }
        }
    }
    // Unused globals: scan `{name}` references outside comments, resolving
    // subckt-local parameters against their definition so a body's `{r}`
    // does not mark a global `r` used when the subckt declares its own.
    let mut used: HashSet<String> = HashSet::new();
    let mut current_locals: Option<HashSet<String>> = None;
    for line in text.lines() {
        let t = line.trim();
        if t.starts_with('*') {
            continue;
        }
        let code = t.split(';').next().unwrap_or("");
        let mut toks = code.split_whitespace();
        match toks.next().map(str::to_ascii_lowercase).as_deref() {
            Some(".subckt") => {
                let locals = toks
                    .next()
                    .and_then(|name| deck.subckts.get(name))
                    .map(|def| {
                        def.params()
                            .iter()
                            .map(|(p, _)| p.to_ascii_lowercase())
                            .collect()
                    })
                    .unwrap_or_default();
                current_locals = Some(locals);
                continue;
            }
            Some(".ends") => {
                current_locals = None;
                continue;
            }
            _ => {}
        }
        let mut rest = code;
        while let Some(open) = rest.find('{') {
            let Some(close) = rest[open..].find('}') else {
                break;
            };
            let name = rest[open + 1..open + close].trim().to_ascii_lowercase();
            let is_local = current_locals
                .as_ref()
                .is_some_and(|locals| locals.contains(&name));
            if !is_local {
                used.insert(name);
            }
            rest = &rest[open + close + 1..];
        }
    }
    let mut unused: Vec<&String> = deck.params.keys().filter(|k| !used.contains(*k)).collect();
    unused.sort();
    for name in unused {
        diags.push(Diagnostic::new(
            LintCode::UnusedParam,
            format!(".param `{name}` is never referenced"),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanosim_devices::sources::SourceWaveform;

    fn has(report: &LintReport, code: LintCode) -> bool {
        report.diagnostics().iter().any(|d| d.code == code)
    }

    fn divider() -> Circuit {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(1.0))
            .unwrap();
        ckt.add_resistor("R1", a, b, 1e3).unwrap();
        ckt.add_resistor("R2", b, Circuit::GROUND, 1e3).unwrap();
        ckt
    }

    #[test]
    fn clean_divider_is_clean() {
        let r = lint_circuit(&divider());
        assert!(r.is_clean(), "{r}");
        assert!(!r.has_errors());
        assert_eq!(r.summary(), "0 errors, 0 warnings");
    }

    #[test]
    fn codes_roundtrip_and_have_descriptions() {
        for c in LintCode::ALL {
            assert_eq!(LintCode::parse(c.as_str()), Some(c));
            assert!(!c.description().is_empty());
        }
        assert_eq!(LintCode::parse("no-such-code"), None);
    }

    #[test]
    fn floating_island_detected_with_members() {
        let mut ckt = divider();
        let x = ckt.node("x");
        let y = ckt.node("y");
        ckt.add_resistor("R3", x, y, 1e3).unwrap();
        let r = lint_circuit(&ckt);
        assert!(r.has_errors());
        let d = r.errors().next().unwrap();
        assert_eq!(d.code, LintCode::FloatingNode);
        assert_eq!(d.elements, vec!["R3"]);
        assert!(d.message.contains('x') && d.message.contains('y'), "{d}");
    }

    #[test]
    fn no_ground_detected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_voltage_source("V1", a, b, SourceWaveform::dc(1.0))
            .unwrap();
        ckt.add_resistor("R1", a, b, 1e3).unwrap();
        let r = lint_circuit(&ckt);
        assert!(has(&r, LintCode::NoGround), "{r}");
        // The no-ground diagnostic replaces a flood of floating-node ones.
        assert!(!has(&r, LintCode::FloatingNode));
    }

    #[test]
    fn parallel_voltage_sources_are_a_loop() {
        let mut ckt = divider();
        let a = ckt.find_node("a").unwrap();
        ckt.add_voltage_source("V2", a, Circuit::GROUND, SourceWaveform::dc(2.0))
            .unwrap();
        let r = lint_circuit(&ckt);
        assert!(has(&r, LintCode::VsourceLoop), "{r}");
        let d = r.errors().next().unwrap();
        assert_eq!(d.elements, vec!["V1", "V2"]);
    }

    #[test]
    fn three_source_loop_names_all_members() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(1.0))
            .unwrap();
        ckt.add_voltage_source("V2", a, b, SourceWaveform::dc(0.5))
            .unwrap();
        ckt.add_inductor("L1", b, Circuit::GROUND, 1e-9).unwrap();
        ckt.add_resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
        let r = lint_circuit(&ckt);
        assert!(has(&r, LintCode::VsourceLoop), "{r}");
        let d = r.errors().next().unwrap();
        assert_eq!(d.elements.len(), 3, "{d}");
        assert!(d.elements.contains(&"L1".to_string()), "{d}");
    }

    #[test]
    fn isource_cutset_detected() {
        let mut ckt = divider();
        let b = ckt.find_node("b").unwrap();
        let mid = ckt.node("mid");
        ckt.add_current_source("I1", b, mid, SourceWaveform::dc(1e-3))
            .unwrap();
        ckt.add_current_source("I2", mid, Circuit::GROUND, SourceWaveform::dc(1e-3))
            .unwrap();
        let r = lint_circuit(&ckt);
        assert!(has(&r, LintCode::IsourceCutset), "{r}");
        let d = r.errors().next().unwrap();
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.elements, vec!["I1", "I2"]);
    }

    #[test]
    fn capacitor_only_path_is_no_dc_path() {
        let mut ckt = divider();
        let b = ckt.find_node("b").unwrap();
        let mid = ckt.node("mid");
        ckt.add_capacitor("C1", b, mid, 1e-12).unwrap();
        ckt.add_capacitor("C2", mid, Circuit::GROUND, 1e-12)
            .unwrap();
        let r = lint_circuit(&ckt);
        assert!(has(&r, LintCode::NoDcPath), "{r}");
        assert!(!has(&r, LintCode::IsourceCutset));
    }

    #[test]
    fn vccs_fed_unsensed_node_is_cutset_error() {
        let mut ckt = divider();
        let a = ckt.find_node("a").unwrap();
        let out = ckt.node("out");
        ckt.add_vccs("G1", out, Circuit::GROUND, a, Circuit::GROUND, 1e-3)
            .unwrap();
        let r = lint_circuit(&ckt);
        assert!(has(&r, LintCode::IsourceCutset), "{r}");
        assert_eq!(r.errors().next().unwrap().severity, Severity::Error);
    }

    #[test]
    fn sensed_cutset_downgrades_to_warning_and_rank_pass_decides() {
        // A gyrator: each node is fed only by a VCCS output but sensed by
        // the other VCCS, and the pattern is perfectly matchable (row a
        // pairs with column b and vice versa). The cutset pass cannot
        // prove singularity, so it warns and defers to the matching pass,
        // which stays silent.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_current_source("I1", Circuit::GROUND, a, SourceWaveform::dc(1e-3))
            .unwrap();
        ckt.add_vccs("G1", a, Circuit::GROUND, b, Circuit::GROUND, 1e-3)
            .unwrap();
        ckt.add_vccs("G2", b, Circuit::GROUND, a, Circuit::GROUND, -1e-3)
            .unwrap();
        let r = lint_circuit(&ckt);
        assert!(!r.has_errors(), "{r}");
        let cutsets: Vec<_> = r
            .diagnostics()
            .iter()
            .filter(|d| d.code == LintCode::IsourceCutset)
            .collect();
        assert!(!cutsets.is_empty(), "{r}");
        assert!(cutsets.iter().all(|d| d.severity == Severity::Warning));
        assert!(!has(&r, LintCode::StructuralSingular), "{r}");
    }

    #[test]
    fn mosfet_gate_island_is_structurally_singular() {
        use nanosim_devices::mosfet::Mosfet;
        let mut ckt = divider();
        let a = ckt.find_node("a").unwrap();
        let gate = ckt.node("g");
        ckt.add_mosfet("M1", a, gate, Circuit::GROUND, Mosfet::nmos())
            .unwrap();
        let r = lint_circuit(&ckt);
        // The gate is sensed (warning from the cutset pass), and the
        // matching pass proves the singularity: V(g) has no row.
        assert!(has(&r, LintCode::StructuralSingular), "{r}");
        let d = r.errors().next().unwrap();
        assert!(d.message.contains("V(g)"), "{d}");
    }

    #[test]
    fn unknown_control_flagged_without_panicking_rank_pass() {
        let mut ckt = divider();
        let a = ckt.find_node("a").unwrap();
        let f = ckt.node("f");
        ckt.add_cccs("F1", f, Circuit::GROUND, "Vmissing", 2.0)
            .unwrap();
        ckt.add_resistor("RF", f, a, 1e3).unwrap();
        let r = lint_circuit(&ckt);
        assert!(has(&r, LintCode::UnknownControl), "{r}");
    }

    #[test]
    fn control_without_branch_current_flagged() {
        let mut ckt = divider();
        let a = ckt.find_node("a").unwrap();
        let f = ckt.node("f");
        ckt.add_cccs("F1", f, Circuit::GROUND, "R1", 2.0).unwrap();
        ckt.add_resistor("RF", f, a, 1e3).unwrap();
        let r = lint_circuit(&ckt);
        assert!(has(&r, LintCode::UnknownControl), "{r}");
        assert!(r
            .errors()
            .next()
            .unwrap()
            .message
            .contains("branch current"));
    }

    #[test]
    fn suspicious_values_warn_but_do_not_error() {
        let mut ckt = divider();
        let b = ckt.find_node("b").unwrap();
        ckt.add_capacitor("Cbig", b, Circuit::GROUND, 1.0).unwrap();
        let r = lint_circuit(&ckt);
        assert!(!r.has_errors(), "{r}");
        assert_eq!(r.warning_count(), 1);
        assert!(has(&r, LintCode::SuspiciousValue));
    }

    #[test]
    fn lint_deck_reports_spans_from_the_parser() {
        let deck = "* test deck\n\
                    V1 a 0 DC 1\n\
                    R1 a b 1k\n\
                    R2 b 0 1k\n\
                    R3 x y 1k\n\
                    .op\n.end\n";
        let r = lint_deck(deck);
        assert!(r.has_errors());
        let d = r.errors().next().unwrap();
        assert_eq!(d.code, LintCode::FloatingNode);
        assert_eq!(d.span, Some(Span::new(5, 1)), "{d}");
    }

    #[test]
    fn lint_deck_suppression_and_summary() {
        let deck = "* nanosim-lint: allow(floating-node)\n\
                    V1 a 0 DC 1\n\
                    R1 a 0 1k\n\
                    R3 x y 1k\n\
                    .op\n.end\n";
        let r = lint_deck(deck);
        assert!(!r.has_errors(), "{r}");
        assert_eq!(r.suppressed_count(), 1);
        assert!(r.is_clean());
        assert!(r.to_string().contains("suppressed"));
    }

    #[test]
    fn bad_allow_code_reported_as_info() {
        let deck = "* nanosim-lint: allow(not-a-code)\n\
                    V1 a 0 DC 1\nR1 a 0 1k\n.op\n.end\n";
        let r = lint_deck(deck);
        assert!(has(&r, LintCode::BadAllow), "{r}");
        assert!(!r.has_errors());
    }

    #[test]
    fn syntax_error_becomes_diagnostic_with_span() {
        let r = lint_deck("V1 a 0 DC 1\nR1 a 0 frog\n.op\n");
        assert!(r.has_errors());
        let d = r.errors().next().unwrap();
        assert_eq!(d.code, LintCode::SyntaxError);
        assert_eq!(d.span.map(|s| s.line), Some(2));
    }

    #[test]
    fn duplicate_element_carries_line_and_column() {
        let r = lint_deck("V1 a 0 DC 1\nR1 a 0 1k\nR1 a 0 2k\n.op\n");
        assert!(r.has_errors());
        let d = r.errors().next().unwrap();
        assert_eq!(d.code, LintCode::DuplicateElement);
        assert_eq!(d.span, Some(Span::new(3, 1)), "{d}");
        assert_eq!(d.elements, vec!["R1"]);
    }

    #[test]
    fn hygiene_dangling_port_unused_and_shadowed_params() {
        let deck = "* hygiene deck\n\
                    .param rload=1k unused=5\n\
                    .subckt cell in out rload=2k\n\
                    R1 in 0 {rload}\n\
                    .ends\n\
                    V1 a 0 DC 1\n\
                    X1 a b cell\n\
                    R2 b 0 1k\n\
                    Rtop a 0 {rload}\n\
                    .op\n.end\n";
        let r = lint_deck(deck);
        assert!(!r.has_errors(), "{r}");
        assert!(has(&r, LintCode::DanglingPort), "{r}"); // `out` unused
        assert!(has(&r, LintCode::ShadowedParam), "{r}"); // rload shadowed
        assert!(has(&r, LintCode::UnusedParam), "{r}"); // `unused` unused
        let unused: Vec<_> = r
            .diagnostics()
            .iter()
            .filter(|d| d.code == LintCode::UnusedParam)
            .collect();
        assert_eq!(unused.len(), 1, "{r}"); // rload used at top level
        assert!(unused[0].message.contains("unused"));
    }

    #[test]
    fn json_rendering_is_wellformed_enough() {
        let r = lint_deck("V1 a 0 DC 1\nR1 a b 1k\nR2 b 0 1k\nR3 x y 1k\n.op\n");
        let js = r.to_json();
        assert!(js.starts_with('{') && js.ends_with('}'), "{js}");
        assert!(js.contains("\"code\":\"floating-node\""), "{js}");
        assert!(js.contains("\"line\":4"), "{js}");
        // Escaping: a message with a quote must not break the JSON.
        let d = Diagnostic::new(LintCode::SyntaxError, "a \"quoted\" thing\n");
        assert!(d.to_json().contains("a \\\"quoted\\\" thing\\n"));
    }

    #[test]
    fn report_sorts_errors_first() {
        let deck = "* deck with both\n\
                    V1 a 0 DC 1\n\
                    R1 a 0 1k\n\
                    Cbig a 0 1\n\
                    R3 x y 1k\n\
                    .op\n";
        let r = lint_deck(deck);
        assert!(r.diagnostics().len() >= 2);
        assert_eq!(r.diagnostics()[0].severity, Severity::Error);
        assert_eq!(r.diagnostics()[0].code, LintCode::FloatingNode);
    }

    #[test]
    fn empty_circuit_reported() {
        let r = lint_circuit(&Circuit::new());
        assert!(has(&r, LintCode::EmptyCircuit));
    }

    #[test]
    fn matching_pass_confirms_healthy_controlled_source_mesh() {
        // All four controlled-source kinds in one clean circuit: the
        // structural-rank pass must stay silent.
        let deck = "* all four linear controlled sources\n\
                    V1 in 0 DC 1\nR1 in 0 1k\n\
                    E1 e 0 in 0 2.0\nRE e 0 1k\n\
                    G1 g 0 in 0 1m\nRG g 0 2k\n\
                    F1 f 0 V1 2\nRF f 0 1k\n\
                    H1 h 0 V1 500\nRH h 0 1k\n\
                    .op\n.end\n";
        let r = lint_deck(deck);
        assert!(r.is_clean(), "{r}");
    }
}
