//! Hierarchical circuit descriptions: subcircuit definitions, parameter
//! scoping, and flattening into the flat [`Circuit`] the engines consume.
//!
//! A [`SubcktDef`] is a reusable template — a port list, a parameter list
//! with defaults, and a body of element templates whose numeric values may
//! reference parameters ([`ParamValue::Ref`], written `{name}` in netlist
//! text). Instantiating a definition *flattens* it: every body element is
//! cloned into the target circuit with deterministic name mangling
//!
//! * internal nodes become `<instance path>.<node>` (e.g. `X1.n3`,
//!   `X1.X2.n3` for nested instances), ports map to the caller's nodes,
//!   and `0`/`gnd` always mean the global ground;
//! * elements become `<name>.<instance path>` (e.g. `R1.X1`) — the
//!   original SPICE type prefix stays first, so a flattened circuit written
//!   by [`crate::writer::write_netlist`] re-parses to the same structure.
//!
//! Bodies may instantiate other subcircuits ([`SubcktDef::instance`]);
//! recursion is detected and rejected. Engines and the MNA assembly only
//! ever see the flat result — hierarchy is purely a frontend construct.
//!
//! # Example
//!
//! ```
//! use nanosim_circuit::{Circuit, SubcktDef};
//!
//! # fn main() -> Result<(), nanosim_circuit::CircuitError> {
//! // A parameterized RC low-pass filter.
//! let mut lp = SubcktDef::new("lowpass", ["a", "b"]);
//! lp.param("r", 1e3)
//!     .param("c", 1e-9)
//!     .resistor("R1", "a", "mid", "{r}")
//!     .capacitor("C1", "mid", "0", "{c}")
//!     .resistor("R2", "mid", "b", "{r}");
//!
//! let mut ckt = Circuit::new();
//! let (x, y) = (ckt.node("x"), ckt.node("y"));
//! ckt.instantiate("X1", &lp, &[x, y], &[("r", 50.0)])?;
//! assert!(ckt.element("R1.X1").is_some());
//! assert!(ckt.find_node("X1.mid").is_some());
//! # Ok(())
//! # }
//! ```

use crate::element::SharedDevice;
use crate::error::CircuitError;
use crate::netlist::Circuit;
use crate::node::NodeId;
use crate::Result;
use nanosim_devices::diode::Diode;
use nanosim_devices::mosfet::Mosfet;
use nanosim_devices::nanowire::Nanowire;
use nanosim_devices::rtd::Rtd;
use nanosim_devices::rtt::Rtt;
use nanosim_devices::sources::{PulseParams, SinParams, SourceWaveform};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A numeric value inside a subcircuit body: either a literal or a
/// reference to a parameter (`{name}` in netlist text), resolved against
/// the instance's parameter scope at flatten time.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// A literal number.
    Lit(f64),
    /// A reference to a parameter by (case-insensitive) name.
    Ref(String),
}

impl From<f64> for ParamValue {
    fn from(v: f64) -> Self {
        ParamValue::Lit(v)
    }
}

impl From<&str> for ParamValue {
    /// `"{name}"` becomes a reference; anything else must parse as a
    /// number later and is kept as a reference to fail loudly — prefer
    /// `ParamValue::from(f64)` for literals.
    fn from(s: &str) -> Self {
        let t = s.trim();
        if let Some(inner) = t.strip_prefix('{').and_then(|r| r.strip_suffix('}')) {
            ParamValue::Ref(inner.trim().to_string())
        } else {
            ParamValue::Ref(t.to_string())
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Lit(v) => write!(f, "{v:e}"),
            ParamValue::Ref(name) => write!(f, "{{{name}}}"),
        }
    }
}

/// Resolves a [`ParamValue`] against a local scope with a global fallback.
fn resolve(
    value: &ParamValue,
    local: &HashMap<String, f64>,
    global: &HashMap<String, f64>,
    context: &str,
) -> Result<f64> {
    match value {
        ParamValue::Lit(v) => Ok(*v),
        ParamValue::Ref(name) => {
            let key = name.to_ascii_lowercase();
            local
                .get(&key)
                .or_else(|| global.get(&key))
                .copied()
                .ok_or_else(|| CircuitError::UnknownParam {
                    name: name.clone(),
                    context: context.to_string(),
                })
        }
    }
}

/// An independent-source waveform template: a literal [`SourceWaveform`],
/// or a `PULSE(..)`/`SIN(..)`/DC spec whose value positions may reference
/// parameters (`{name}` in netlist text), resolved per instantiation.
///
/// One clock-driver subckt can therefore serve every timing corner:
///
/// ```
/// use nanosim_circuit::{Circuit, SubcktDef, WaveformTemplate};
///
/// # fn main() -> Result<(), nanosim_circuit::CircuitError> {
/// let mut drv = SubcktDef::new("clkdrv", ["clk"]);
/// drv.param("period", 100e-9).param("vhi", 5.0);
/// drv.voltage_source(
///     "Vck",
///     "clk",
///     "0",
///     WaveformTemplate::pulse(0.0, "{vhi}", 0.0, 1e-9, 1e-9, 4e-9, "{period}"),
/// );
/// let mut ckt = Circuit::new();
/// let clk = ckt.node("clk");
/// ckt.instantiate("X1", &drv, &[clk], &[("period", 10e-9)])?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub enum WaveformTemplate {
    /// A fully literal waveform (validated at construction; DC, PWL and
    /// NOISE specs are always literal).
    Literal(SourceWaveform),
    /// `DC value` with a resolvable value.
    Dc {
        /// The DC level.
        value: ParamValue,
    },
    /// `PULSE(v1 v2 td tr tf pw per)` with resolvable positions.
    Pulse {
        /// Initial value (V/A).
        v1: ParamValue,
        /// Pulsed value (V/A).
        v2: ParamValue,
        /// Delay before the first edge (s).
        delay: ParamValue,
        /// Rise time (s).
        rise: ParamValue,
        /// Fall time (s).
        fall: ParamValue,
        /// Pulse width (s).
        width: ParamValue,
        /// Period (s).
        period: ParamValue,
    },
    /// `SIN(vo va freq td theta)` with resolvable positions.
    Sin {
        /// Offset (V/A).
        offset: ParamValue,
        /// Amplitude (V/A).
        amplitude: ParamValue,
        /// Frequency (Hz).
        frequency: ParamValue,
        /// Delay (s).
        delay: ParamValue,
        /// Damping factor (1/s).
        theta: ParamValue,
    },
}

impl From<SourceWaveform> for WaveformTemplate {
    fn from(wf: SourceWaveform) -> Self {
        WaveformTemplate::Literal(wf)
    }
}

impl WaveformTemplate {
    /// A DC template (use a `"{name}"` argument for a parameter
    /// reference).
    pub fn dc(value: impl Into<ParamValue>) -> Self {
        WaveformTemplate::Dc {
            value: value.into(),
        }
    }

    /// A PULSE template; every position accepts a literal or a `"{name}"`
    /// reference.
    #[allow(clippy::too_many_arguments)]
    pub fn pulse(
        v1: impl Into<ParamValue>,
        v2: impl Into<ParamValue>,
        delay: impl Into<ParamValue>,
        rise: impl Into<ParamValue>,
        fall: impl Into<ParamValue>,
        width: impl Into<ParamValue>,
        period: impl Into<ParamValue>,
    ) -> Self {
        WaveformTemplate::Pulse {
            v1: v1.into(),
            v2: v2.into(),
            delay: delay.into(),
            rise: rise.into(),
            fall: fall.into(),
            width: width.into(),
            period: period.into(),
        }
    }

    /// A SIN template; every position accepts a literal or a `"{name}"`
    /// reference.
    pub fn sin(
        offset: impl Into<ParamValue>,
        amplitude: impl Into<ParamValue>,
        frequency: impl Into<ParamValue>,
        delay: impl Into<ParamValue>,
        theta: impl Into<ParamValue>,
    ) -> Self {
        WaveformTemplate::Sin {
            offset: offset.into(),
            amplitude: amplitude.into(),
            frequency: frequency.into(),
            delay: delay.into(),
            theta: theta.into(),
        }
    }

    /// Whether the template carries no parameter references.
    pub fn is_literal(&self) -> bool {
        matches!(self, WaveformTemplate::Literal(_))
    }

    /// Resolves every parameter reference and validates the resulting
    /// waveform.
    pub(crate) fn resolve(
        &self,
        local: &HashMap<String, f64>,
        global: &HashMap<String, f64>,
        context: &str,
    ) -> Result<SourceWaveform> {
        let r = |pv: &ParamValue| resolve(pv, local, global, context);
        match self {
            WaveformTemplate::Literal(wf) => Ok(wf.clone()),
            WaveformTemplate::Dc { value } => Ok(SourceWaveform::dc(r(value)?)),
            WaveformTemplate::Pulse {
                v1,
                v2,
                delay,
                rise,
                fall,
                width,
                period,
            } => Ok(SourceWaveform::pulse(PulseParams {
                v1: r(v1)?,
                v2: r(v2)?,
                delay: r(delay)?,
                rise: r(rise)?,
                fall: r(fall)?,
                width: r(width)?,
                period: r(period)?,
            })?),
            WaveformTemplate::Sin {
                offset,
                amplitude,
                frequency,
                delay,
                theta,
            } => Ok(SourceWaveform::sin(SinParams {
                offset: r(offset)?,
                amplitude: r(amplitude)?,
                frequency: r(frequency)?,
                delay: r(delay)?,
                theta: r(theta)?,
            })?),
        }
    }
}

/// One element template inside a subcircuit body.
#[derive(Debug, Clone)]
pub(crate) struct BodyElement {
    pub(crate) name: String,
    pub(crate) nodes: Vec<String>,
    pub(crate) kind: BodyKind,
}

/// The template counterpart of [`crate::element::ElementKind`], with
/// parameter-resolvable values plus nested instances.
#[derive(Debug, Clone)]
pub(crate) enum BodyKind {
    Resistor {
        ohms: ParamValue,
    },
    Capacitor {
        farads: ParamValue,
        ic: Option<ParamValue>,
    },
    Inductor {
        henries: ParamValue,
    },
    VoltageSource {
        waveform: WaveformTemplate,
    },
    CurrentSource {
        waveform: WaveformTemplate,
    },
    Vcvs {
        gain: ParamValue,
    },
    Vccs {
        gm: ParamValue,
    },
    Cccs {
        gain: ParamValue,
        control: String,
    },
    Ccvs {
        r: ParamValue,
        control: String,
    },
    Nonlinear {
        device: SharedDevice,
    },
    Mosfet {
        model: Mosfet,
    },
    Instance {
        subckt: String,
        overrides: Vec<(String, ParamValue)>,
    },
}

/// A subcircuit definition: name, ordered port list, parameters with
/// defaults, and a body of element templates.
///
/// Built fluently (see the [module example](self)) or parsed from
/// `.subckt` / `.ends` netlist blocks. Node names inside the body are
/// strings: ports connect to the caller, `0`/`gnd` is the global ground,
/// and everything else becomes a private, name-mangled internal node.
#[derive(Debug, Clone)]
pub struct SubcktDef {
    name: String,
    ports: Vec<String>,
    params: Vec<(String, f64)>,
    body: Vec<BodyElement>,
}

impl SubcktDef {
    /// Creates an empty definition with the given port order.
    pub fn new<S: Into<String>, P: AsRef<str>>(
        name: S,
        ports: impl IntoIterator<Item = P>,
    ) -> Self {
        SubcktDef {
            name: name.into(),
            ports: ports.into_iter().map(|p| p.as_ref().to_string()).collect(),
            params: Vec::new(),
            body: Vec::new(),
        }
    }

    /// The definition name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared ports, in connection order.
    pub fn ports(&self) -> &[String] {
        &self.ports
    }

    /// The declared parameters and their defaults, in declaration order.
    pub fn params(&self) -> &[(String, f64)] {
        &self.params
    }

    /// Number of body element templates (nested instances count as one).
    pub fn body_len(&self) -> usize {
        self.body.len()
    }

    /// Iterates over every node name referenced by the body elements
    /// (with repeats), for connectivity-style lint checks.
    pub fn body_nodes(&self) -> impl Iterator<Item = &str> {
        self.body
            .iter()
            .flat_map(|b| b.nodes.iter().map(String::as_str))
    }

    /// Declares a parameter with a default value.
    pub fn param(&mut self, name: impl Into<String>, default: f64) -> &mut Self {
        self.params.push((name.into(), default));
        self
    }

    fn push(&mut self, name: &str, nodes: &[&str], kind: BodyKind) -> &mut Self {
        self.body.push(BodyElement {
            name: name.to_string(),
            nodes: nodes.iter().map(|n| n.to_string()).collect(),
            kind,
        });
        self
    }

    /// Adds a resistor template.
    pub fn resistor(
        &mut self,
        name: &str,
        n1: &str,
        n2: &str,
        ohms: impl Into<ParamValue>,
    ) -> &mut Self {
        self.push(name, &[n1, n2], BodyKind::Resistor { ohms: ohms.into() })
    }

    /// Adds a capacitor template.
    pub fn capacitor(
        &mut self,
        name: &str,
        n1: &str,
        n2: &str,
        farads: impl Into<ParamValue>,
    ) -> &mut Self {
        self.push(
            name,
            &[n1, n2],
            BodyKind::Capacitor {
                farads: farads.into(),
                ic: None,
            },
        )
    }

    /// Adds a capacitor template with an initial voltage.
    pub fn capacitor_ic(
        &mut self,
        name: &str,
        n1: &str,
        n2: &str,
        farads: impl Into<ParamValue>,
        ic: impl Into<ParamValue>,
    ) -> &mut Self {
        self.push(
            name,
            &[n1, n2],
            BodyKind::Capacitor {
                farads: farads.into(),
                ic: Some(ic.into()),
            },
        )
    }

    /// Adds an inductor template.
    pub fn inductor(
        &mut self,
        name: &str,
        n1: &str,
        n2: &str,
        henries: impl Into<ParamValue>,
    ) -> &mut Self {
        self.push(
            name,
            &[n1, n2],
            BodyKind::Inductor {
                henries: henries.into(),
            },
        )
    }

    /// Adds an independent voltage source template. Accepts a literal
    /// [`SourceWaveform`] or a [`WaveformTemplate`] whose `PULSE`/`SIN`/DC
    /// positions reference parameters.
    pub fn voltage_source(
        &mut self,
        name: &str,
        n1: &str,
        n2: &str,
        waveform: impl Into<WaveformTemplate>,
    ) -> &mut Self {
        self.push(
            name,
            &[n1, n2],
            BodyKind::VoltageSource {
                waveform: waveform.into(),
            },
        )
    }

    /// Adds an independent current source template (waveform semantics as
    /// in [`SubcktDef::voltage_source`]).
    pub fn current_source(
        &mut self,
        name: &str,
        n1: &str,
        n2: &str,
        waveform: impl Into<WaveformTemplate>,
    ) -> &mut Self {
        self.push(
            name,
            &[n1, n2],
            BodyKind::CurrentSource {
                waveform: waveform.into(),
            },
        )
    }

    /// Adds a VCVS template (see [`Circuit::add_vcvs`]).
    pub fn vcvs(
        &mut self,
        name: &str,
        n1: &str,
        n2: &str,
        nc1: &str,
        nc2: &str,
        gain: impl Into<ParamValue>,
    ) -> &mut Self {
        self.push(
            name,
            &[n1, n2, nc1, nc2],
            BodyKind::Vcvs { gain: gain.into() },
        )
    }

    /// Adds a VCCS template (see [`Circuit::add_vccs`]).
    pub fn vccs(
        &mut self,
        name: &str,
        n1: &str,
        n2: &str,
        nc1: &str,
        nc2: &str,
        gm: impl Into<ParamValue>,
    ) -> &mut Self {
        self.push(name, &[n1, n2, nc1, nc2], BodyKind::Vccs { gm: gm.into() })
    }

    /// Adds a CCCS template. A `control` naming a sibling element in this
    /// body resolves to that sibling's flattened name; otherwise it is
    /// looked up among the instantiating circuit's elements.
    pub fn cccs(
        &mut self,
        name: &str,
        n1: &str,
        n2: &str,
        control: &str,
        gain: impl Into<ParamValue>,
    ) -> &mut Self {
        self.push(
            name,
            &[n1, n2],
            BodyKind::Cccs {
                gain: gain.into(),
                control: control.to_string(),
            },
        )
    }

    /// Adds a CCVS template (control scoping as in [`SubcktDef::cccs`]).
    pub fn ccvs(
        &mut self,
        name: &str,
        n1: &str,
        n2: &str,
        control: &str,
        r: impl Into<ParamValue>,
    ) -> &mut Self {
        self.push(
            name,
            &[n1, n2],
            BodyKind::Ccvs {
                r: r.into(),
                control: control.to_string(),
            },
        )
    }

    /// Adds an arbitrary nonlinear two-terminal device template.
    pub fn nonlinear(&mut self, name: &str, n1: &str, n2: &str, device: SharedDevice) -> &mut Self {
        self.push(name, &[n1, n2], BodyKind::Nonlinear { device })
    }

    /// Adds a resonant tunneling diode template.
    pub fn rtd(&mut self, name: &str, n1: &str, n2: &str, rtd: Rtd) -> &mut Self {
        self.nonlinear(name, n1, n2, Arc::new(rtd))
    }

    /// Adds a quantum-wire / CNT template.
    pub fn nanowire(&mut self, name: &str, n1: &str, n2: &str, wire: Nanowire) -> &mut Self {
        self.nonlinear(name, n1, n2, Arc::new(wire))
    }

    /// Adds a resonant tunneling transistor template.
    pub fn rtt(&mut self, name: &str, n1: &str, n2: &str, rtt: Rtt) -> &mut Self {
        self.nonlinear(name, n1, n2, Arc::new(rtt))
    }

    /// Adds a diode template.
    pub fn diode(&mut self, name: &str, n1: &str, n2: &str, diode: Diode) -> &mut Self {
        self.nonlinear(name, n1, n2, Arc::new(diode))
    }

    /// Adds a MOSFET template with terminals `(drain, gate, source)`.
    pub fn mosfet(&mut self, name: &str, d: &str, g: &str, s: &str, model: Mosfet) -> &mut Self {
        self.push(name, &[d, g, s], BodyKind::Mosfet { model })
    }

    /// Adds a nested subcircuit instance connecting `nodes` to the child's
    /// ports in order.
    pub fn instance(&mut self, name: &str, subckt: &str, nodes: &[&str]) -> &mut Self {
        self.instance_with(name, subckt, nodes, &[])
    }

    /// [`SubcktDef::instance`] with parameter overrides; override values
    /// may themselves reference this definition's parameters.
    pub fn instance_with(
        &mut self,
        name: &str,
        subckt: &str,
        nodes: &[&str],
        overrides: &[(&str, ParamValue)],
    ) -> &mut Self {
        self.push(
            name,
            nodes,
            BodyKind::Instance {
                subckt: subckt.to_string(),
                overrides: overrides
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            },
        )
    }

    pub(crate) fn body(&self) -> &[BodyElement] {
        &self.body
    }

    pub(crate) fn push_body(&mut self, element: BodyElement) {
        self.body.push(element);
    }

    /// Builds the local parameter scope for one instantiation: declared
    /// defaults overridden by the caller's (already resolved) values.
    fn scope(&self, overrides: &[(String, f64)], instance: &str) -> Result<HashMap<String, f64>> {
        let mut scope: HashMap<String, f64> = self
            .params
            .iter()
            .map(|(k, v)| (k.to_ascii_lowercase(), *v))
            .collect();
        for (k, v) in overrides {
            let key = k.to_ascii_lowercase();
            if !scope.contains_key(&key) {
                return Err(CircuitError::UnknownParam {
                    name: k.clone(),
                    context: format!("instance {instance} of subckt {}", self.name),
                });
            }
            scope.insert(key, *v);
        }
        Ok(scope)
    }
}

/// A named collection of subcircuit definitions, resolved case-insensitively.
#[derive(Debug, Clone, Default)]
pub struct SubcktLib {
    defs: Vec<SubcktDef>,
}

impl SubcktLib {
    /// Creates an empty library.
    pub fn new() -> Self {
        SubcktLib::default()
    }

    /// Adds a definition.
    ///
    /// # Errors
    /// Rejects a second definition with the same (case-insensitive) name.
    pub fn define(&mut self, def: SubcktDef) -> Result<&mut Self> {
        if self.get(def.name()).is_some() {
            return Err(CircuitError::DuplicateElement {
                name: format!("subckt {}", def.name()),
            });
        }
        // Reject duplicate body names at definition time (the parser does
        // this with positions; this covers programmatic construction).
        let mut seen: std::collections::HashSet<&str> = std::collections::HashSet::new();
        for b in &def.body {
            if !seen.insert(b.name.as_str()) {
                return Err(CircuitError::DuplicateElement {
                    name: format!("{} (in subckt {})", b.name, def.name()),
                });
            }
        }
        self.defs.push(def);
        Ok(self)
    }

    /// Looks up a definition by case-insensitive name.
    pub fn get(&self, name: &str) -> Option<&SubcktDef> {
        self.defs
            .iter()
            .find(|d| d.name().eq_ignore_ascii_case(name))
    }

    /// The definitions in insertion order.
    pub fn defs(&self) -> &[SubcktDef] {
        &self.defs
    }

    /// Number of definitions.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Whether the library holds no definitions.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }
}

/// Flattens one instance of `def` into `circuit`.
///
/// `path` is the full mangled instance path ("X1", "X1.X2", ...); `local`
/// is the already-resolved parameter scope of this body; `stack` carries
/// the chain of definition names for recursion detection.
fn flatten_into(
    circuit: &mut Circuit,
    lib: &SubcktLib,
    def: &SubcktDef,
    path: &str,
    port_nodes: &[NodeId],
    local: &HashMap<String, f64>,
    global: &HashMap<String, f64>,
    stack: &mut Vec<String>,
) -> Result<()> {
    // The instance name shares the SPICE element namespace: a second `X1`
    // would silently merge both instances' `X1.<node>` internals.
    circuit.reserve_name(path)?;
    if port_nodes.len() != def.ports.len() {
        return Err(CircuitError::PortMismatch {
            subckt: def.name.clone(),
            instance: path.to_string(),
            expected: def.ports.len(),
            got: port_nodes.len(),
        });
    }
    let port_map: HashMap<String, NodeId> = def
        .ports
        .iter()
        .zip(port_nodes)
        .map(|(name, &id)| (name.to_ascii_lowercase(), id))
        .collect();
    let node_of = |circuit: &mut Circuit, raw: &str| -> NodeId {
        let key = raw.to_ascii_lowercase();
        if key == "0" || key == "gnd" {
            return Circuit::GROUND;
        }
        match port_map.get(&key) {
            Some(&id) => id,
            None => circuit.node(&format!("{path}.{raw}")),
        }
    };
    for be in def.body() {
        let name = format!("{}.{path}", be.name);
        let ctx = name.as_str();
        match &be.kind {
            BodyKind::Resistor { ohms } => {
                let n1 = node_of(circuit, &be.nodes[0]);
                let n2 = node_of(circuit, &be.nodes[1]);
                let v = resolve(ohms, local, global, ctx)?;
                circuit.add_resistor(&name, n1, n2, v)?;
            }
            BodyKind::Capacitor { farads, ic } => {
                let n1 = node_of(circuit, &be.nodes[0]);
                let n2 = node_of(circuit, &be.nodes[1]);
                let v = resolve(farads, local, global, ctx)?;
                let ic = match ic {
                    Some(pv) => Some(resolve(pv, local, global, ctx)?),
                    None => None,
                };
                circuit.add_capacitor_ic(&name, n1, n2, v, ic)?;
            }
            BodyKind::Inductor { henries } => {
                let n1 = node_of(circuit, &be.nodes[0]);
                let n2 = node_of(circuit, &be.nodes[1]);
                let v = resolve(henries, local, global, ctx)?;
                circuit.add_inductor(&name, n1, n2, v)?;
            }
            BodyKind::VoltageSource { waveform } => {
                let n1 = node_of(circuit, &be.nodes[0]);
                let n2 = node_of(circuit, &be.nodes[1]);
                let wf = waveform.resolve(local, global, ctx)?;
                circuit.add_voltage_source(&name, n1, n2, wf)?;
            }
            BodyKind::CurrentSource { waveform } => {
                let n1 = node_of(circuit, &be.nodes[0]);
                let n2 = node_of(circuit, &be.nodes[1]);
                let wf = waveform.resolve(local, global, ctx)?;
                circuit.add_current_source(&name, n1, n2, wf)?;
            }
            BodyKind::Vcvs { gain } => {
                let n1 = node_of(circuit, &be.nodes[0]);
                let n2 = node_of(circuit, &be.nodes[1]);
                let nc1 = node_of(circuit, &be.nodes[2]);
                let nc2 = node_of(circuit, &be.nodes[3]);
                let v = resolve(gain, local, global, ctx)?;
                circuit.add_vcvs(&name, n1, n2, nc1, nc2, v)?;
            }
            BodyKind::Vccs { gm } => {
                let n1 = node_of(circuit, &be.nodes[0]);
                let n2 = node_of(circuit, &be.nodes[1]);
                let nc1 = node_of(circuit, &be.nodes[2]);
                let nc2 = node_of(circuit, &be.nodes[3]);
                let v = resolve(gm, local, global, ctx)?;
                circuit.add_vccs(&name, n1, n2, nc1, nc2, v)?;
            }
            BodyKind::Cccs { gain, control } => {
                let n1 = node_of(circuit, &be.nodes[0]);
                let n2 = node_of(circuit, &be.nodes[1]);
                let v = resolve(gain, local, global, ctx)?;
                let control = scope_control(def, control, path);
                circuit.add_cccs(&name, n1, n2, &control, v)?;
            }
            BodyKind::Ccvs { r, control } => {
                let n1 = node_of(circuit, &be.nodes[0]);
                let n2 = node_of(circuit, &be.nodes[1]);
                let v = resolve(r, local, global, ctx)?;
                let control = scope_control(def, control, path);
                circuit.add_ccvs(&name, n1, n2, &control, v)?;
            }
            BodyKind::Nonlinear { device } => {
                let n1 = node_of(circuit, &be.nodes[0]);
                let n2 = node_of(circuit, &be.nodes[1]);
                circuit.add_nonlinear(&name, n1, n2, device.clone())?;
            }
            BodyKind::Mosfet { model } => {
                let d = node_of(circuit, &be.nodes[0]);
                let g = node_of(circuit, &be.nodes[1]);
                let s = node_of(circuit, &be.nodes[2]);
                circuit.add_mosfet(&name, d, g, s, model.clone())?;
            }
            BodyKind::Instance { subckt, overrides } => {
                let child = lib.get(subckt).ok_or_else(|| CircuitError::UnknownSubckt {
                    name: subckt.clone(),
                    instance: format!("{path}.{}", be.name),
                })?;
                if stack.iter().any(|s| s.eq_ignore_ascii_case(subckt)) {
                    let mut chain = stack.clone();
                    chain.push(child.name().to_string());
                    return Err(CircuitError::RecursiveSubckt {
                        path: chain.join(" -> "),
                    });
                }
                // Override values may reference *this* body's parameters.
                let mut resolved = Vec::with_capacity(overrides.len());
                for (k, pv) in overrides {
                    resolved.push((k.clone(), resolve(pv, local, global, ctx)?));
                }
                let child_path = format!("{path}.{}", be.name);
                let child_local = child.scope(&resolved, &child_path)?;
                let child_ports: Vec<NodeId> =
                    be.nodes.iter().map(|n| node_of(circuit, n)).collect();
                stack.push(child.name().to_string());
                flatten_into(
                    circuit,
                    lib,
                    child,
                    &child_path,
                    &child_ports,
                    &child_local,
                    global,
                    stack,
                )?;
                stack.pop();
            }
        }
    }
    Ok(())
}

/// A CCCS/CCVS control naming a sibling element in the same body resolves
/// to the sibling's mangled name; anything else is left for the caller's
/// scope (top-level element names).
fn scope_control(def: &SubcktDef, control: &str, path: &str) -> String {
    if def
        .body()
        .iter()
        .any(|be| be.name.eq_ignore_ascii_case(control))
    {
        format!("{control}.{path}")
    } else {
        control.to_string()
    }
}

impl Circuit {
    /// Flattens one instance of `def` into this circuit, connecting
    /// `ports` to the definition's ports in order and overriding declared
    /// parameters by name. Internal nodes become `<inst_name>.<node>`,
    /// elements become `<name>.<inst_name>`.
    ///
    /// Definitions whose bodies instantiate *other* subcircuits need a
    /// library to resolve them — use [`CircuitBuilder`] (or
    /// [`Circuit::instantiate_from`]) for that; this convenience method
    /// resolves against an empty library.
    ///
    /// # Errors
    /// Port-count mismatch, unknown override/parameter references,
    /// nested instances (no library), and element validation failures.
    pub fn instantiate(
        &mut self,
        inst_name: &str,
        def: &SubcktDef,
        ports: &[NodeId],
        overrides: &[(&str, f64)],
    ) -> Result<&mut Self> {
        let lib = SubcktLib::new();
        self.instantiate_inner(inst_name, &lib, def, ports, overrides, &HashMap::new())
    }

    /// [`Circuit::instantiate`] resolving nested instances against `lib`;
    /// `subckt` names the definition to instantiate.
    ///
    /// # Errors
    /// As [`Circuit::instantiate`], plus unknown `subckt` name.
    pub fn instantiate_from(
        &mut self,
        inst_name: &str,
        lib: &SubcktLib,
        subckt: &str,
        ports: &[NodeId],
        overrides: &[(&str, f64)],
    ) -> Result<&mut Self> {
        let def = lib.get(subckt).ok_or_else(|| CircuitError::UnknownSubckt {
            name: subckt.to_string(),
            instance: inst_name.to_string(),
        })?;
        self.instantiate_inner(inst_name, lib, def, ports, overrides, &HashMap::new())
    }

    pub(crate) fn instantiate_inner(
        &mut self,
        inst_name: &str,
        lib: &SubcktLib,
        def: &SubcktDef,
        ports: &[NodeId],
        overrides: &[(&str, f64)],
        global: &HashMap<String, f64>,
    ) -> Result<&mut Self> {
        let resolved: Vec<(String, f64)> =
            overrides.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        let local = def.scope(&resolved, inst_name)?;
        let mut stack = vec![def.name().to_string()];
        flatten_into(self, lib, def, inst_name, ports, &local, global, &mut stack)?;
        Ok(self)
    }
}

/// A hierarchical circuit under construction: a flat [`Circuit`], a
/// [`SubcktLib`], and a global parameter scope (`.param` in netlist text).
///
/// Flat elements are added directly through [`CircuitBuilder::circuit_mut`];
/// [`CircuitBuilder::instantiate`] flattens library subcircuits in place,
/// preserving element order. [`CircuitBuilder::finish`] returns the flat
/// circuit the engines consume.
///
/// # Example
/// ```
/// use nanosim_circuit::{CircuitBuilder, SubcktDef};
/// use nanosim_devices::rtd::Rtd;
///
/// # fn main() -> Result<(), nanosim_circuit::CircuitError> {
/// let mut b = CircuitBuilder::new();
/// let mut cell = SubcktDef::new("cell", ["t"]);
/// cell.rtd("YRTD1", "t", "0", Rtd::date2005());
/// b.define(cell)?;
/// let n = b.node("n1");
/// use nanosim_devices::sources::SourceWaveform;
/// b.circuit_mut()
///     .add_voltage_source("V1", n, nanosim_circuit::Circuit::GROUND, SourceWaveform::dc(1.0))?;
/// b.instantiate("X1", "cell", &[n], &[])?;
/// let ckt = b.finish();
/// assert!(ckt.element("YRTD1.X1").is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct CircuitBuilder {
    circuit: Circuit,
    lib: SubcktLib,
    params: HashMap<String, f64>,
}

impl CircuitBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        CircuitBuilder::default()
    }

    /// Sets the circuit title.
    pub fn set_title(&mut self, title: impl Into<String>) -> &mut Self {
        self.circuit.set_title(title);
        self
    }

    /// Returns (creating on first use) the named top-level node.
    pub fn node(&mut self, name: &str) -> NodeId {
        self.circuit.node(name)
    }

    /// Defines a global parameter (referable as `{name}` in instance
    /// overrides and, in netlist text, in any value position).
    pub fn set_param(&mut self, name: impl Into<String>, value: f64) -> &mut Self {
        self.params.insert(name.into().to_ascii_lowercase(), value);
        self
    }

    /// Looks up a global parameter.
    pub fn param(&self, name: &str) -> Option<f64> {
        self.params.get(&name.to_ascii_lowercase()).copied()
    }

    /// Resolves a [`ParamValue`] against the global scope.
    ///
    /// # Errors
    /// [`CircuitError::UnknownParam`] for unresolved references.
    pub fn resolve_value(&self, value: &ParamValue, context: &str) -> Result<f64> {
        resolve(value, &HashMap::new(), &self.params, context)
    }

    /// Resolves a [`WaveformTemplate`] against the global scope (top-level
    /// `V`/`I` lines with `{param}` waveform positions).
    ///
    /// # Errors
    /// [`CircuitError::UnknownParam`] for unresolved references; waveform
    /// validation failures for resolved-but-invalid parameter sets.
    pub fn resolve_waveform(
        &self,
        waveform: &WaveformTemplate,
        context: &str,
    ) -> Result<SourceWaveform> {
        waveform.resolve(&HashMap::new(), &self.params, context)
    }

    /// Adds a subcircuit definition to the library.
    ///
    /// # Errors
    /// Rejects duplicate definition names.
    pub fn define(&mut self, def: SubcktDef) -> Result<&mut Self> {
        self.lib.define(def)?;
        Ok(self)
    }

    /// The subcircuit library.
    pub fn subckts(&self) -> &SubcktLib {
        &self.lib
    }

    /// The flat circuit built so far.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Mutable access to the flat circuit for direct element adds.
    pub fn circuit_mut(&mut self) -> &mut Circuit {
        &mut self.circuit
    }

    /// Flattens one instance of the library subcircuit `subckt` (see
    /// [`Circuit::instantiate`] for mangling rules). Override values may
    /// reference global parameters.
    ///
    /// # Errors
    /// Unknown subcircuit, port mismatch, unresolved parameters, recursive
    /// instantiation, or element validation failures.
    pub fn instantiate(
        &mut self,
        inst_name: &str,
        subckt: &str,
        ports: &[NodeId],
        overrides: &[(&str, ParamValue)],
    ) -> Result<&mut Self> {
        let def = self
            .lib
            .get(subckt)
            .ok_or_else(|| CircuitError::UnknownSubckt {
                name: subckt.to_string(),
                instance: inst_name.to_string(),
            })?
            .clone();
        let mut resolved: Vec<(String, f64)> = Vec::with_capacity(overrides.len());
        for (k, pv) in overrides {
            resolved.push((
                k.to_string(),
                resolve(pv, &HashMap::new(), &self.params, inst_name)?,
            ));
        }
        let local = def.scope(&resolved, inst_name)?;
        let mut stack = vec![def.name().to_string()];
        flatten_into(
            &mut self.circuit,
            &self.lib,
            &def,
            inst_name,
            ports,
            &local,
            &self.params,
            &mut stack,
        )?;
        Ok(self)
    }

    /// Consumes the builder, returning the flat circuit.
    pub fn finish(self) -> Circuit {
        self.circuit
    }

    /// Consumes the builder, returning the flat circuit plus the hierarchy
    /// metadata (the parser's path into [`crate::parser::ParsedDeck`]).
    pub fn into_parts(self) -> (Circuit, SubcktLib, HashMap<String, f64>) {
        (self.circuit, self.lib, self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::ElementKind;

    fn divider_def() -> SubcktDef {
        let mut d = SubcktDef::new("div", ["top", "out"]);
        d.param("r1", 1e3)
            .param("r2", 1e3)
            .resistor("Ra", "top", "out", "{r1}")
            .resistor("Rb", "out", "0", "{r2}");
        d
    }

    #[test]
    fn instantiate_flattens_with_mangled_names() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(1.0))
            .unwrap();
        ckt.instantiate("X1", &divider_def(), &[a, b], &[]).unwrap();
        assert!(ckt.element("Ra.X1").is_some());
        assert!(ckt.element("Rb.X1").is_some());
        assert_eq!(ckt.elements().len(), 3);
        assert!(ckt.validate().is_ok());
    }

    #[test]
    fn internal_nodes_are_private_per_instance() {
        let mut d = SubcktDef::new("rc", ["a"]);
        d.resistor("R1", "a", "mid", 50.0)
            .capacitor("C1", "mid", "0", 1e-12);
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(1.0))
            .unwrap();
        ckt.add_resistor("Rab", a, b, 1.0).unwrap();
        ckt.instantiate("X1", &d, &[a], &[]).unwrap();
        ckt.instantiate("X2", &d, &[b], &[]).unwrap();
        assert!(ckt.find_node("X1.mid").is_some());
        assert!(ckt.find_node("X2.mid").is_some());
        assert_ne!(ckt.find_node("X1.mid"), ckt.find_node("X2.mid"));
        assert!(ckt.validate().is_ok());
    }

    #[test]
    fn overrides_replace_defaults() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.instantiate("X1", &divider_def(), &[a, b], &[("r1", 5e3)])
            .unwrap();
        match ckt.element("Ra.X1").unwrap().kind() {
            ElementKind::Resistor { resistance } => assert_eq!(*resistance, 5e3),
            _ => panic!("wrong kind"),
        }
        match ckt.element("Rb.X1").unwrap().kind() {
            ElementKind::Resistor { resistance } => assert_eq!(*resistance, 1e3),
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn unknown_override_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        assert!(matches!(
            ckt.instantiate("X1", &divider_def(), &[a, b], &[("nope", 1.0)]),
            Err(CircuitError::UnknownParam { .. })
        ));
    }

    #[test]
    fn port_mismatch_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        assert!(matches!(
            ckt.instantiate("X1", &divider_def(), &[a], &[]),
            Err(CircuitError::PortMismatch {
                expected: 2,
                got: 1,
                ..
            })
        ));
    }

    #[test]
    fn nested_instances_flatten_through_builder() {
        let mut b = CircuitBuilder::new();
        b.define(divider_def()).unwrap();
        let mut pair = SubcktDef::new("pair", ["top", "out"]);
        pair.param("r", 2e3)
            .instance_with(
                "Xa",
                "div",
                &["top", "m"],
                &[("r1", ParamValue::Ref("r".into()))],
            )
            .instance("Xb", "div", &["m", "out"]);
        b.define(pair).unwrap();
        let a = b.node("a");
        let c = b.node("c");
        b.instantiate("X1", "pair", &[a, c], &[("r", ParamValue::Lit(7e3))])
            .unwrap();
        let ckt = b.finish();
        // Nested mangling: element Ra of div inside Xa inside X1.
        let e = ckt.element("Ra.X1.Xa").expect("nested element");
        match e.kind() {
            ElementKind::Resistor { resistance } => assert_eq!(*resistance, 7e3),
            _ => panic!("wrong kind"),
        }
        assert!(ckt.find_node("X1.m").is_some());
        assert_eq!(ckt.elements().len(), 4);
    }

    #[test]
    fn recursion_detected() {
        let mut b = CircuitBuilder::new();
        let mut a = SubcktDef::new("a", ["p"]);
        a.instance("X1", "b", &["p"]);
        let mut bb = SubcktDef::new("b", ["p"]);
        bb.instance("X1", "a", &["p"]);
        b.define(a).unwrap();
        b.define(bb).unwrap();
        let n = b.node("n");
        let err = b.instantiate("X1", "a", &[n], &[]).unwrap_err();
        assert!(matches!(err, CircuitError::RecursiveSubckt { .. }));
        assert!(err.to_string().contains("->"));
    }

    #[test]
    fn duplicate_instance_names_rejected() {
        // Two instances called X1 would merge their `X1.<node>` internals.
        let mut d = SubcktDef::new("rc", ["a"]);
        d.resistor("R1", "a", "mid", 50.0)
            .capacitor("C1", "mid", "0", 1e-12);
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.instantiate("X1", &d, &[a], &[]).unwrap();
        assert!(matches!(
            ckt.instantiate("X1", &d, &[b], &[]),
            Err(CircuitError::DuplicateElement { .. })
        ));
        // An instance may not shadow an existing element name either.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_resistor("X9", a, Circuit::GROUND, 1.0).unwrap();
        assert!(ckt.instantiate("X9", &d, &[a], &[]).is_err());
    }

    #[test]
    fn unknown_subckt_rejected() {
        let mut b = CircuitBuilder::new();
        let n = b.node("n");
        assert!(matches!(
            b.instantiate("X1", "ghost", &[n], &[]),
            Err(CircuitError::UnknownSubckt { .. })
        ));
    }

    #[test]
    fn duplicate_definition_rejected() {
        let mut lib = SubcktLib::new();
        lib.define(divider_def()).unwrap();
        assert!(lib.define(divider_def()).is_err());
        assert_eq!(lib.len(), 1);
        assert!(!lib.is_empty());
    }

    #[test]
    fn global_params_reachable_from_bodies() {
        let mut b = CircuitBuilder::new();
        b.set_param("rr", 9e3);
        let mut d = SubcktDef::new("shunt", ["p"]);
        d.resistor("R1", "p", "0", "{rr}");
        b.define(d).unwrap();
        let n = b.node("n");
        b.instantiate("X1", "shunt", &[n], &[]).unwrap();
        match b.circuit().element("R1.X1").unwrap().kind() {
            ElementKind::Resistor { resistance } => assert_eq!(*resistance, 9e3),
            _ => panic!("wrong kind"),
        }
        assert_eq!(b.param("RR"), Some(9e3));
    }

    #[test]
    fn control_scoping_local_then_outer() {
        // A CCCS inside the body referencing its sibling V source.
        let mut d = SubcktDef::new("mirror", ["inp", "outp"]);
        d.voltage_source("Vs", "inp", "internal", SourceWaveform::dc(0.0))
            .resistor("Rs", "internal", "0", 1e3)
            .cccs("F1", "outp", "0", "Vs", 2.0);
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let o = ckt.node("o");
        ckt.add_voltage_source("Vdrv", a, Circuit::GROUND, SourceWaveform::dc(1.0))
            .unwrap();
        ckt.add_resistor("RL", o, Circuit::GROUND, 1e3).unwrap();
        ckt.instantiate("X1", &d, &[a, o], &[]).unwrap();
        match ckt.element("F1.X1").unwrap().kind() {
            ElementKind::Cccs { control, .. } => assert_eq!(control, "Vs.X1"),
            _ => panic!("wrong kind"),
        }
        assert!(crate::mna::MnaSystem::new(&ckt).is_ok());
    }

    #[test]
    fn ground_aliases_map_to_global_ground() {
        let mut d = SubcktDef::new("g", ["p"]);
        d.resistor("R1", "p", "GND", 50.0);
        let mut ckt = Circuit::new();
        let n = ckt.node("n");
        ckt.instantiate("X1", &d, &[n], &[]).unwrap();
        let e = ckt.element("R1.X1").unwrap();
        assert!(e.node_minus().is_ground());
    }

    #[test]
    fn waveform_template_resolves_per_instance() {
        let mut d = SubcktDef::new("drv", ["out"]);
        d.param("vhi", 5.0).param("per", 100e-9).voltage_source(
            "Vp",
            "out",
            "0",
            WaveformTemplate::pulse(0.0, "{vhi}", 0.0, 1e-9, 1e-9, 4e-9, "{per}"),
        );
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_resistor("Ra", a, Circuit::GROUND, 1e3).unwrap();
        ckt.add_resistor("Rb", b, Circuit::GROUND, 1e3).unwrap();
        ckt.instantiate("X1", &d, &[a], &[]).unwrap();
        ckt.instantiate("X2", &d, &[b], &[("vhi", 2.0), ("per", 10e-9)])
            .unwrap();
        let wf = |name: &str| match ckt.element(name).unwrap().kind() {
            ElementKind::VoltageSource { waveform } => waveform.clone(),
            _ => panic!("wrong kind"),
        };
        assert_eq!(wf("Vp.X1").value(2e-9), 5.0);
        assert_eq!(wf("Vp.X2").value(2e-9), 2.0);
        // Period override: X2 is high again one (short) period later.
        assert_eq!(wf("Vp.X2").value(12e-9), 2.0);
        assert_eq!(wf("Vp.X1").value(12e-9), 0.0);
    }

    #[test]
    fn waveform_template_sin_and_dc_resolve() {
        let mut d = SubcktDef::new("src", ["p"]);
        d.param("f", 1e6)
            .param("lvl", 0.5)
            .voltage_source(
                "Vs",
                "p",
                "internal",
                WaveformTemplate::sin(0.0, 1.0, "{f}", 0.0, 0.0),
            )
            .current_source("Is", "internal", "0", WaveformTemplate::dc("{lvl}"));
        let mut ckt = Circuit::new();
        let p = ckt.node("p");
        ckt.instantiate("X1", &d, &[p], &[("f", 2e6)]).unwrap();
        match ckt.element("Vs.X1").unwrap().kind() {
            ElementKind::VoltageSource { waveform } => {
                // Quarter period of 2 MHz = 125 ns.
                assert!((waveform.value(125e-9) - 1.0).abs() < 1e-9);
            }
            _ => panic!("wrong kind"),
        }
        match ckt.element("Is.X1").unwrap().kind() {
            ElementKind::CurrentSource { waveform } => assert_eq!(waveform.value(0.0), 0.5),
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn waveform_template_unknown_ref_rejected() {
        let mut d = SubcktDef::new("bad", ["p"]);
        d.voltage_source("V1", "p", "0", WaveformTemplate::dc("{missing}"));
        let mut ckt = Circuit::new();
        let p = ckt.node("p");
        assert!(matches!(
            ckt.instantiate("X1", &d, &[p], &[]),
            Err(CircuitError::UnknownParam { .. })
        ));
    }

    #[test]
    fn param_value_display_and_from() {
        assert_eq!(ParamValue::from(5.0), ParamValue::Lit(5.0));
        assert_eq!(ParamValue::from("{w}"), ParamValue::Ref("w".into()));
        assert_eq!(ParamValue::Lit(1e3).to_string(), "1e3");
        assert_eq!(ParamValue::Ref("r".into()).to_string(), "{r}");
    }
}
