//! Modified nodal analysis (MNA) assembly.
//!
//! Maps a [`Circuit`] onto the paper's state equation (eq. 1)
//!
//! ```text
//! G(t)·V(t) + C·V̇(t) = b·u(t)
//! ```
//!
//! with one unknown per non-ground node voltage plus one branch current per
//! voltage source and inductor. The *linear* parts of `G`, all of `C` and
//! the source vector `b` are stamped here; the nonlinear devices are exposed
//! as [`NonlinearBinding`]s / [`MosfetBinding`]s so each engine can stamp
//! them its own way — `Geq` for SWEC, the Newton companion model for the
//! SPICE baseline, segment conductances for the PWL baseline.

use crate::element::{ElementKind, SharedDevice};
use crate::error::CircuitError;
use crate::netlist::Circuit;
use crate::node::NodeId;
use crate::Result;
use nanosim_devices::mosfet::Mosfet;
use nanosim_devices::sources::SourceWaveform;
use nanosim_numeric::sparse::TripletMatrix;

/// A nonlinear two-terminal device bound to its MNA variables.
#[derive(Debug, Clone)]
pub struct NonlinearBinding {
    /// Index into [`Circuit::elements`].
    pub element_index: usize,
    /// Element name.
    pub name: String,
    /// MNA variable of the positive terminal (`None` = ground).
    pub var_plus: Option<usize>,
    /// MNA variable of the negative terminal (`None` = ground).
    pub var_minus: Option<usize>,
    /// The device model.
    pub device: SharedDevice,
}

/// A MOSFET bound to its MNA variables (`drain`, `gate`, `source`).
#[derive(Debug, Clone)]
pub struct MosfetBinding {
    /// Index into [`Circuit::elements`].
    pub element_index: usize,
    /// Element name.
    pub name: String,
    /// Drain variable (`None` = ground).
    pub var_drain: Option<usize>,
    /// Gate variable (`None` = ground).
    pub var_gate: Option<usize>,
    /// Source variable (`None` = ground).
    pub var_source: Option<usize>,
    /// The device model.
    pub model: Mosfet,
}

/// A stochastic (white-noise) source bound to its MNA rows: contributes the
/// column `B(:, k)` of the paper's `B·dW` term.
#[derive(Debug, Clone)]
pub struct NoiseBinding {
    /// Index into [`Circuit::elements`].
    pub element_index: usize,
    /// Element name.
    pub name: String,
    /// `(mna_row, coefficient)` pairs of the B-matrix column.
    pub rows: Vec<(usize, f64)>,
}

/// The MNA view of a circuit: variable numbering plus stamping routines.
#[derive(Debug, Clone)]
pub struct MnaSystem {
    circuit: Circuit,
    num_nodes: usize,
    num_branches: usize,
    /// element index -> branch variable offset (voltage sources, inductors,
    /// VCVS and CCVS elements).
    branch_of: Vec<Option<usize>>,
    /// element index -> branch offset of the *controlling* element (CCCS /
    /// CCVS current references, resolved by name at construction).
    ctrl_branch_of: Vec<Option<usize>>,
    nonlinear: Vec<NonlinearBinding>,
    mosfets: Vec<MosfetBinding>,
    noise: Vec<NoiseBinding>,
}

impl MnaSystem {
    /// Builds the MNA structure for a validated circuit.
    ///
    /// # Errors
    /// Propagates [`Circuit::validate`] failures.
    pub fn new(circuit: &Circuit) -> Result<Self> {
        circuit.validate()?;
        let num_nodes = circuit.node_count() - 1; // ground eliminated
        let mut branch_of = vec![None; circuit.elements().len()];
        let mut num_branches = 0usize;
        for (i, e) in circuit.elements().iter().enumerate() {
            if e.kind().needs_branch_current() {
                branch_of[i] = Some(num_branches);
                num_branches += 1;
            }
        }
        // Resolve F/H current references (by case-insensitive name, as the
        // parser preserves user spelling) to the controlling element's
        // branch offset. `Circuit::validate` has already rejected missing or
        // branchless references.
        let mut ctrl_branch_of = vec![None; circuit.elements().len()];
        for (i, e) in circuit.elements().iter().enumerate() {
            if let Some(control) = e.kind().control_name() {
                let target = circuit
                    .elements()
                    .iter()
                    .position(|c| c.name() == control)
                    .or_else(|| {
                        circuit
                            .elements()
                            .iter()
                            .position(|c| c.name().eq_ignore_ascii_case(control))
                    });
                match target.and_then(|t| branch_of[t]) {
                    Some(b) => ctrl_branch_of[i] = Some(b),
                    None => {
                        return Err(CircuitError::UnknownControl {
                            element: e.name().to_string(),
                            control: control.to_string(),
                        });
                    }
                }
            }
        }
        let var_of = |n: NodeId| -> Option<usize> {
            if n.is_ground() {
                None
            } else {
                Some(n.index() - 1)
            }
        };
        let mut nonlinear = Vec::new();
        let mut mosfets = Vec::new();
        let mut noise = Vec::new();
        for (i, e) in circuit.elements().iter().enumerate() {
            match e.kind() {
                ElementKind::Nonlinear { device } => nonlinear.push(NonlinearBinding {
                    element_index: i,
                    name: e.name().to_string(),
                    var_plus: var_of(e.node_plus()),
                    var_minus: var_of(e.node_minus()),
                    device: device.clone(),
                }),
                ElementKind::Mosfet { model } => {
                    let ns = e.nodes();
                    mosfets.push(MosfetBinding {
                        element_index: i,
                        name: e.name().to_string(),
                        var_drain: var_of(ns[0]),
                        var_gate: var_of(ns[1]),
                        var_source: var_of(ns[2]),
                        model: model.clone(),
                    });
                }
                ElementKind::CurrentSource { waveform } if waveform.is_stochastic() => {
                    let mut rows = Vec::new();
                    let intensity = waveform.noise_intensity();
                    if let Some(p) = var_of(e.node_plus()) {
                        rows.push((p, -intensity));
                    }
                    if let Some(m) = var_of(e.node_minus()) {
                        rows.push((m, intensity));
                    }
                    noise.push(NoiseBinding {
                        element_index: i,
                        name: e.name().to_string(),
                        rows,
                    });
                }
                ElementKind::VoltageSource { waveform } if waveform.is_stochastic() => {
                    let br = branch_of[i].expect("voltage source has a branch");
                    noise.push(NoiseBinding {
                        element_index: i,
                        name: e.name().to_string(),
                        rows: vec![(num_nodes + br, waveform.noise_intensity())],
                    });
                }
                _ => {}
            }
        }
        Ok(MnaSystem {
            circuit: circuit.clone(),
            num_nodes,
            num_branches,
            branch_of,
            ctrl_branch_of,
            nonlinear,
            mosfets,
            noise,
        })
    }

    /// The underlying circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Number of MNA unknowns (node voltages + branch currents).
    pub fn dim(&self) -> usize {
        self.num_nodes + self.num_branches
    }

    /// Number of non-ground node-voltage unknowns.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of branch-current unknowns.
    pub fn num_branches(&self) -> usize {
        self.num_branches
    }

    /// MNA variable index of a node (`None` for ground).
    pub fn var_of_node(&self, n: NodeId) -> Option<usize> {
        if n.is_ground() {
            None
        } else {
            Some(n.index() - 1)
        }
    }

    /// MNA variable index of the node with the given name, if it exists and
    /// is not ground.
    pub fn var_of_node_name(&self, name: &str) -> Option<usize> {
        self.circuit
            .find_node(name)
            .and_then(|n| self.var_of_node(n))
    }

    /// Branch-current variable of an element, if it has one.
    pub fn branch_var(&self, element_index: usize) -> Option<usize> {
        self.branch_of
            .get(element_index)
            .copied()
            .flatten()
            .map(|b| self.num_nodes + b)
    }

    /// Branch-current variable of the element *controlling* a CCCS/CCVS,
    /// if `element_index` names one.
    pub fn control_branch_var(&self, element_index: usize) -> Option<usize> {
        self.ctrl_branch_of
            .get(element_index)
            .copied()
            .flatten()
            .map(|b| self.num_nodes + b)
    }

    /// The nonlinear two-terminal device bindings.
    pub fn nonlinear_bindings(&self) -> &[NonlinearBinding] {
        &self.nonlinear
    }

    /// The MOSFET bindings.
    pub fn mosfet_bindings(&self) -> &[MosfetBinding] {
        &self.mosfets
    }

    /// The stochastic-source bindings (columns of `B`).
    pub fn noise_bindings(&self) -> &[NoiseBinding] {
        &self.noise
    }

    /// Stamps a conductance `g` between two MNA node variables.
    pub fn stamp_conductance(
        t: &mut TripletMatrix,
        var_plus: Option<usize>,
        var_minus: Option<usize>,
        g: f64,
    ) {
        if let Some(p) = var_plus {
            t.push(p, p, g);
            if let Some(m) = var_minus {
                t.push(p, m, -g);
                t.push(m, p, -g);
            }
        }
        if let Some(m) = var_minus {
            t.push(m, m, g);
        }
    }

    /// Stamps the linear (time-invariant) part of `G`: resistors plus the
    /// voltage-source and inductor branch relations.
    pub fn stamp_linear_g(&self, t: &mut TripletMatrix) {
        for (i, e) in self.circuit.elements().iter().enumerate() {
            let vp = self.var_of_node(e.node_plus());
            let vm = if e.nodes().len() >= 2 {
                self.var_of_node(e.nodes()[1])
            } else {
                None
            };
            match e.kind() {
                ElementKind::Resistor { resistance } => {
                    Self::stamp_conductance(t, vp, vm, 1.0 / resistance);
                }
                ElementKind::VoltageSource { .. } => {
                    let br = self.num_nodes + self.branch_of[i].expect("branch");
                    if let Some(p) = vp {
                        t.push(p, br, 1.0);
                        t.push(br, p, 1.0);
                    }
                    if let Some(m) = vm {
                        t.push(m, br, -1.0);
                        t.push(br, m, -1.0);
                    }
                }
                ElementKind::Inductor { .. } => {
                    let br = self.num_nodes + self.branch_of[i].expect("branch");
                    if let Some(p) = vp {
                        t.push(p, br, 1.0);
                        t.push(br, p, 1.0);
                    }
                    if let Some(m) = vm {
                        t.push(m, br, -1.0);
                        t.push(br, m, -1.0);
                    }
                }
                ElementKind::Vcvs { gain } => {
                    // Branch row: v(p) - v(m) - gain·(v(cp) - v(cm)) = 0;
                    // KCL: the branch current enters at p, leaves at m.
                    let br = self.num_nodes + self.branch_of[i].expect("branch");
                    let vcp = self.var_of_node(e.nodes()[2]);
                    let vcm = self.var_of_node(e.nodes()[3]);
                    if let Some(p) = vp {
                        t.push(p, br, 1.0);
                        t.push(br, p, 1.0);
                    }
                    if let Some(m) = vm {
                        t.push(m, br, -1.0);
                        t.push(br, m, -1.0);
                    }
                    if let Some(cp) = vcp {
                        t.push(br, cp, -gain);
                    }
                    if let Some(cm) = vcm {
                        t.push(br, cm, *gain);
                    }
                }
                ElementKind::Vccs { gm } => {
                    // i(p→m) = gm·(v(cp) - v(cm)) as KCL injections.
                    let vcp = self.var_of_node(e.nodes()[2]);
                    let vcm = self.var_of_node(e.nodes()[3]);
                    for (node, sign) in [(vp, 1.0), (vm, -1.0)] {
                        if let Some(n) = node {
                            if let Some(cp) = vcp {
                                t.push(n, cp, sign * gm);
                            }
                            if let Some(cm) = vcm {
                                t.push(n, cm, -sign * gm);
                            }
                        }
                    }
                }
                ElementKind::Cccs { gain, .. } => {
                    // i(p→m) = gain·i(control): couple to the controlling
                    // element's branch-current column.
                    let bc = self.num_nodes + self.ctrl_branch_of[i].expect("resolved control");
                    if let Some(p) = vp {
                        t.push(p, bc, *gain);
                    }
                    if let Some(m) = vm {
                        t.push(m, bc, -gain);
                    }
                }
                ElementKind::Ccvs { r, .. } => {
                    // Branch row: v(p) - v(m) - r·i(control) = 0.
                    let br = self.num_nodes + self.branch_of[i].expect("branch");
                    let bc = self.num_nodes + self.ctrl_branch_of[i].expect("resolved control");
                    if let Some(p) = vp {
                        t.push(p, br, 1.0);
                        t.push(br, p, 1.0);
                    }
                    if let Some(m) = vm {
                        t.push(m, br, -1.0);
                        t.push(br, m, -1.0);
                    }
                    t.push(br, bc, -r);
                }
                _ => {}
            }
        }
    }

    /// Stamps the capacitance matrix `C`: capacitors on node variables and
    /// `-L` on inductor branch diagonals (the branch equation
    /// `v - L·di/dt = 0`).
    pub fn stamp_c(&self, t: &mut TripletMatrix) {
        for (i, e) in self.circuit.elements().iter().enumerate() {
            match e.kind() {
                ElementKind::Capacitor { capacitance, .. } => {
                    let vp = self.var_of_node(e.node_plus());
                    let vm = self.var_of_node(e.nodes()[1]);
                    Self::stamp_conductance(t, vp, vm, *capacitance);
                }
                ElementKind::Inductor { inductance } => {
                    let br = self.num_nodes + self.branch_of[i].expect("branch");
                    t.push(br, br, -inductance);
                }
                _ => {}
            }
        }
    }

    /// Fills the deterministic right-hand side `b(t)`: current-source
    /// injections on node rows, voltage-source values on branch rows.
    ///
    /// # Panics
    /// Panics if `out.len() != self.dim()`.
    pub fn stamp_rhs(&self, time: f64, out: &mut [f64]) {
        assert_eq!(out.len(), self.dim(), "rhs length mismatch");
        out.fill(0.0);
        self.add_rhs(time, out);
    }

    /// Adds the deterministic sources into an existing right-hand side
    /// (used by engines that pre-fill companion-model terms).
    pub fn add_rhs(&self, time: f64, out: &mut [f64]) {
        for (i, e) in self.circuit.elements().iter().enumerate() {
            match e.kind() {
                ElementKind::CurrentSource { waveform } => {
                    let j = waveform.value(time);
                    if let Some(p) = self.var_of_node(e.node_plus()) {
                        out[p] -= j;
                    }
                    if let Some(m) = self.var_of_node(e.nodes()[1]) {
                        out[m] += j;
                    }
                }
                ElementKind::VoltageSource { waveform } => {
                    let br = self.num_nodes + self.branch_of[i].expect("branch");
                    out[br] += waveform.value(time);
                }
                _ => {}
            }
        }
    }

    /// Largest source slew `max_i |dV_i/dt|` at `time` over all voltage
    /// sources — the `α` of the paper's adaptive time-step bound (eq. 11).
    pub fn max_source_slew(&self, time: f64) -> f64 {
        self.circuit
            .elements()
            .iter()
            .filter_map(|e| match e.kind() {
                ElementKind::VoltageSource { waveform }
                | ElementKind::CurrentSource { waveform } => Some(waveform.slew(time).abs()),
                _ => None,
            })
            .fold(0.0, f64::max)
    }

    /// Source waveform of an element, if it is an independent source.
    pub fn source_waveform(&self, element_index: usize) -> Option<&SourceWaveform> {
        match self.circuit.elements().get(element_index)?.kind() {
            ElementKind::VoltageSource { waveform } | ElementKind::CurrentSource { waveform } => {
                Some(waveform)
            }
            _ => None,
        }
    }

    /// Initial MNA solution vector honoring capacitor initial conditions
    /// (zero elsewhere).
    pub fn initial_state(&self) -> Vec<f64> {
        let mut x = vec![0.0; self.dim()];
        for e in self.circuit.elements() {
            if let ElementKind::Capacitor {
                initial_voltage: Some(v0),
                ..
            } = e.kind()
            {
                // Apply v0 across the capacitor, referenced to the minus node.
                if let Some(p) = self.var_of_node(e.node_plus()) {
                    x[p] = *v0;
                }
            }
        }
        x
    }

    /// Grounded capacitance per node variable, `C_j` in the paper's
    /// time-step bound (eq. 12). Floating capacitors contribute to both
    /// their terminals.
    pub fn node_capacitance(&self) -> Vec<f64> {
        let mut c = vec![0.0; self.num_nodes];
        for e in self.circuit.elements() {
            if let ElementKind::Capacitor { capacitance, .. } = e.kind() {
                if let Some(p) = self.var_of_node(e.node_plus()) {
                    c[p] += capacitance;
                }
                if let Some(m) = self.var_of_node(e.nodes()[1]) {
                    c[m] += capacitance;
                }
            }
        }
        c
    }

    /// Whether any source in the circuit is stochastic.
    pub fn has_noise(&self) -> bool {
        !self.noise.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanosim_devices::rtd::Rtd;
    use nanosim_devices::sources::{PulseParams, SourceWaveform};
    use nanosim_numeric::FlopCounter;

    fn rc_circuit() -> Circuit {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(5.0))
            .unwrap();
        ckt.add_resistor("R1", a, b, 1e3).unwrap();
        ckt.add_capacitor("C1", b, Circuit::GROUND, 1e-9).unwrap();
        ckt
    }

    #[test]
    fn dimensions_count_nodes_and_branches() {
        let mna = MnaSystem::new(&rc_circuit()).unwrap();
        assert_eq!(mna.num_nodes(), 2);
        assert_eq!(mna.num_branches(), 1);
        assert_eq!(mna.dim(), 3);
    }

    #[test]
    fn var_mapping_skips_ground() {
        let ckt = rc_circuit();
        let mna = MnaSystem::new(&ckt).unwrap();
        assert_eq!(mna.var_of_node(Circuit::GROUND), None);
        let a = ckt.find_node("a").unwrap();
        assert_eq!(mna.var_of_node(a), Some(0));
        assert_eq!(mna.var_of_node_name("b"), Some(1));
        assert_eq!(mna.var_of_node_name("0"), None);
        assert_eq!(mna.var_of_node_name("zz"), None);
    }

    #[test]
    fn linear_g_stamp_matches_hand_mna() {
        let mna = MnaSystem::new(&rc_circuit()).unwrap();
        let mut t = TripletMatrix::new(3, 3);
        mna.stamp_linear_g(&mut t);
        let g = t.to_dense();
        let k = 1.0 / 1e3;
        // Node a (var 0): resistor + branch column.
        assert_eq!(g[(0, 0)], k);
        assert_eq!(g[(0, 1)], -k);
        assert_eq!(g[(1, 0)], -k);
        assert_eq!(g[(1, 1)], k);
        // Voltage source branch rows/cols.
        assert_eq!(g[(0, 2)], 1.0);
        assert_eq!(g[(2, 0)], 1.0);
        assert_eq!(g[(2, 2)], 0.0);
    }

    #[test]
    fn c_stamp_and_node_capacitance() {
        let mna = MnaSystem::new(&rc_circuit()).unwrap();
        let mut t = TripletMatrix::new(3, 3);
        mna.stamp_c(&mut t);
        let c = t.to_dense();
        assert_eq!(c[(1, 1)], 1e-9);
        assert_eq!(c[(0, 0)], 0.0);
        assert_eq!(mna.node_capacitance(), vec![0.0, 1e-9]);
    }

    #[test]
    fn rhs_places_source_values() {
        let mna = MnaSystem::new(&rc_circuit()).unwrap();
        let mut b = vec![0.0; 3];
        mna.stamp_rhs(0.0, &mut b);
        assert_eq!(b, vec![0.0, 0.0, 5.0]);
    }

    #[test]
    fn current_source_injection_signs() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_current_source("I1", a, Circuit::GROUND, SourceWaveform::dc(2e-3))
            .unwrap();
        ckt.add_resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
        let mna = MnaSystem::new(&ckt).unwrap();
        let mut b = vec![0.0; 1];
        mna.stamp_rhs(0.0, &mut b);
        // Current flows a -> ground through the source, so it leaves node a.
        assert_eq!(b[0], -2e-3);
        // Solving G v = b gives v = -2 V, consistent with SPICE conventions.
        let mut t = TripletMatrix::new(1, 1);
        mna.stamp_linear_g(&mut t);
        let v = t.to_dense().solve(&b, &mut FlopCounter::new()).unwrap();
        assert!((v[0] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn inductor_gets_branch_and_negative_l_in_c() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(1.0))
            .unwrap();
        ckt.add_inductor("L1", a, Circuit::GROUND, 2e-9).unwrap();
        let mna = MnaSystem::new(&ckt).unwrap();
        assert_eq!(mna.num_branches(), 2);
        let mut t = TripletMatrix::new(mna.dim(), mna.dim());
        mna.stamp_c(&mut t);
        let c = t.to_dense();
        // Inductor branch is the second branch (var index 1 + 1 = 2).
        assert_eq!(c[(2, 2)], -2e-9);
    }

    #[test]
    fn nonlinear_bindings_exposed() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(1.0))
            .unwrap();
        ckt.add_resistor("R1", a, b, 50.0).unwrap();
        ckt.add_rtd("X1", b, Circuit::GROUND, Rtd::date2005())
            .unwrap();
        let mna = MnaSystem::new(&ckt).unwrap();
        let nb = mna.nonlinear_bindings();
        assert_eq!(nb.len(), 1);
        assert_eq!(nb[0].name, "X1");
        assert_eq!(nb[0].var_plus, Some(1));
        assert_eq!(nb[0].var_minus, None);
        assert_eq!(nb[0].device.device_kind(), "rtd");
    }

    #[test]
    fn mosfet_bindings_exposed() {
        let mut ckt = Circuit::new();
        let d = ckt.node("d");
        let g = ckt.node("g");
        ckt.add_mosfet(
            "M1",
            d,
            g,
            Circuit::GROUND,
            nanosim_devices::mosfet::Mosfet::nmos(),
        )
        .unwrap();
        ckt.add_voltage_source("Vd", d, Circuit::GROUND, SourceWaveform::dc(5.0))
            .unwrap();
        ckt.add_voltage_source("Vg", g, Circuit::GROUND, SourceWaveform::dc(2.0))
            .unwrap();
        let mna = MnaSystem::new(&ckt).unwrap();
        let mb = mna.mosfet_bindings();
        assert_eq!(mb.len(), 1);
        assert_eq!(mb[0].var_drain, Some(0));
        assert_eq!(mb[0].var_gate, Some(1));
        assert_eq!(mb[0].var_source, None);
    }

    #[test]
    fn noise_bindings_for_stochastic_sources() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_current_source(
            "In",
            a,
            Circuit::GROUND,
            SourceWaveform::white_noise(0.0, 1e-3).unwrap(),
        )
        .unwrap();
        ckt.add_resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
        ckt.add_capacitor("C1", a, Circuit::GROUND, 1e-12).unwrap();
        let mna = MnaSystem::new(&ckt).unwrap();
        assert!(mna.has_noise());
        let nb = mna.noise_bindings();
        assert_eq!(nb.len(), 1);
        assert_eq!(nb[0].rows, vec![(0, -1e-3)]);
    }

    #[test]
    fn deterministic_circuit_has_no_noise() {
        let mna = MnaSystem::new(&rc_circuit()).unwrap();
        assert!(!mna.has_noise());
        assert!(mna.noise_bindings().is_empty());
    }

    #[test]
    fn max_source_slew_follows_pulse_edges() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_voltage_source(
            "V1",
            a,
            Circuit::GROUND,
            SourceWaveform::pulse(PulseParams {
                v1: 0.0,
                v2: 5.0,
                delay: 0.0,
                rise: 1e-9,
                fall: 1e-9,
                width: 10e-9,
                period: 100e-9,
            })
            .unwrap(),
        )
        .unwrap();
        ckt.add_resistor("R1", a, Circuit::GROUND, 1.0).unwrap();
        let mna = MnaSystem::new(&ckt).unwrap();
        assert!((mna.max_source_slew(0.5e-9) - 5e9).abs() < 1.0);
        assert_eq!(mna.max_source_slew(5e-9), 0.0);
    }

    #[test]
    fn initial_state_honors_capacitor_ic() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_capacitor_ic("C1", a, Circuit::GROUND, 1e-12, Some(3.0))
            .unwrap();
        ckt.add_resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
        let mna = MnaSystem::new(&ckt).unwrap();
        assert_eq!(mna.initial_state(), vec![3.0]);
    }

    #[test]
    fn source_waveform_accessor() {
        let ckt = rc_circuit();
        let mna = MnaSystem::new(&ckt).unwrap();
        assert!(mna.source_waveform(0).is_some());
        assert!(mna.source_waveform(1).is_none());
        assert!(mna.source_waveform(99).is_none());
    }

    /// Solves `G x = b` densely for hand-checkable controlled-source tests.
    fn solve_op(ckt: &Circuit) -> (MnaSystem, Vec<f64>) {
        let mna = MnaSystem::new(ckt).unwrap();
        let dim = mna.dim();
        let mut g = TripletMatrix::new(dim, dim);
        mna.stamp_linear_g(&mut g);
        let mut b = vec![0.0; dim];
        mna.stamp_rhs(0.0, &mut b);
        let x = g.to_dense().solve(&b, &mut FlopCounter::new()).unwrap();
        (mna, x)
    }

    #[test]
    fn vcvs_matches_hand_mna() {
        // V1 = 1 V at `in`; E1 forces v(out) = 2·v(in); R1 loads `out`.
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_voltage_source("V1", vin, Circuit::GROUND, SourceWaveform::dc(1.0))
            .unwrap();
        ckt.add_vcvs("E1", out, Circuit::GROUND, vin, Circuit::GROUND, 2.0)
            .unwrap();
        ckt.add_resistor("R1", out, Circuit::GROUND, 1e3).unwrap();
        let (mna, x) = solve_op(&ckt);
        assert!((x[mna.var_of_node_name("out").unwrap()] - 2.0).abs() < 1e-12);
        // KCL at `out`: v/R + i_E = 0  =>  i_E = -2 mA.
        let i_e = x[mna.branch_var(1).unwrap()];
        assert!((i_e + 2e-3).abs() < 1e-15);
    }

    #[test]
    fn vccs_matches_hand_mna() {
        // G1 drives gm·v(in) = 1 mA out of node `out` into ground;
        // v(out) = -gm·v(in)·R = -2 V.
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_voltage_source("V1", vin, Circuit::GROUND, SourceWaveform::dc(1.0))
            .unwrap();
        ckt.add_vccs("G1", out, Circuit::GROUND, vin, Circuit::GROUND, 1e-3)
            .unwrap();
        ckt.add_resistor("RL", out, Circuit::GROUND, 2e3).unwrap();
        let (mna, x) = solve_op(&ckt);
        assert!((x[mna.var_of_node_name("out").unwrap()] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn cccs_matches_hand_mna() {
        // i(V1) = -1 mA (1 V across 1 kΩ); F1 mirrors 2·i(V1) into `out`
        // loaded by 1 kΩ: v(out) = -2·i(V1)·R = +2 V.
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_voltage_source("V1", vin, Circuit::GROUND, SourceWaveform::dc(1.0))
            .unwrap();
        ckt.add_resistor("R1", vin, Circuit::GROUND, 1e3).unwrap();
        ckt.add_cccs("F1", out, Circuit::GROUND, "V1", 2.0).unwrap();
        ckt.add_resistor("RL", out, Circuit::GROUND, 1e3).unwrap();
        let (mna, x) = solve_op(&ckt);
        assert!((x[mna.branch_var(0).unwrap()] + 1e-3).abs() < 1e-15);
        assert!((x[mna.var_of_node_name("out").unwrap()] - 2.0).abs() < 1e-12);
        assert_eq!(mna.control_branch_var(2), mna.branch_var(0));
    }

    #[test]
    fn ccvs_matches_hand_mna() {
        // H1 forces v(out) = 500·i(V1) = -0.5 V.
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_voltage_source("V1", vin, Circuit::GROUND, SourceWaveform::dc(1.0))
            .unwrap();
        ckt.add_resistor("R1", vin, Circuit::GROUND, 1e3).unwrap();
        ckt.add_ccvs("H1", out, Circuit::GROUND, "V1", 500.0)
            .unwrap();
        ckt.add_resistor("RL", out, Circuit::GROUND, 1e3).unwrap();
        let (mna, x) = solve_op(&ckt);
        assert!((x[mna.var_of_node_name("out").unwrap()] + 0.5).abs() < 1e-12);
        assert_eq!(mna.num_branches(), 2);
    }

    #[test]
    fn control_reference_is_case_insensitive() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_voltage_source("Vdrv", vin, Circuit::GROUND, SourceWaveform::dc(1.0))
            .unwrap();
        ckt.add_resistor("R1", vin, Circuit::GROUND, 1e3).unwrap();
        ckt.add_cccs("F1", out, Circuit::GROUND, "VDRV", 1.0)
            .unwrap();
        ckt.add_resistor("RL", out, Circuit::GROUND, 1e3).unwrap();
        assert!(MnaSystem::new(&ckt).is_ok());
    }

    #[test]
    fn missing_control_is_error() {
        let mut ckt = Circuit::new();
        let out = ckt.node("out");
        ckt.add_cccs("F1", out, Circuit::GROUND, "V9", 1.0).unwrap();
        ckt.add_resistor("RL", out, Circuit::GROUND, 1e3).unwrap();
        assert!(matches!(
            MnaSystem::new(&ckt),
            Err(CircuitError::UnknownControl { .. })
        ));
        // A resistor carries no branch current either.
        let mut ckt = Circuit::new();
        let out = ckt.node("out");
        ckt.add_ccvs("H1", out, Circuit::GROUND, "RL", 1.0).unwrap();
        ckt.add_resistor("RL", out, Circuit::GROUND, 1e3).unwrap();
        assert!(matches!(
            MnaSystem::new(&ckt),
            Err(CircuitError::UnknownControl { .. })
        ));
    }

    #[test]
    fn branch_var_lookup() {
        let mna = MnaSystem::new(&rc_circuit()).unwrap();
        assert_eq!(mna.branch_var(0), Some(2));
        assert_eq!(mna.branch_var(1), None);
    }
}
