//! Property-based tests for the circuit substrate: random ladder networks
//! must satisfy Kirchhoff's laws through the MNA assembly, random circuits
//! must round-trip through the netlist writer/parser, and random
//! *hierarchical* decks (subckts, params, controlled sources) must flatten
//! deterministically: `parse(write(parse(d)))` equals `parse(d)`
//! structurally.

use nanosim_circuit::{parse_netlist, write_netlist, Circuit, ElementKind, MnaSystem};
use nanosim_devices::sources::SourceWaveform;
use nanosim_numeric::sparse::{SparseLu, TripletMatrix};
use nanosim_numeric::FlopCounter;
use proptest::prelude::*;

/// A random resistive ladder: V source into a chain of nodes, each with a
/// series resistor and a shunt resistor to ground.
fn ladder_strategy() -> impl Strategy<Value = (f64, Vec<(f64, f64)>)> {
    (
        0.1f64..10.0,
        proptest::collection::vec((1.0f64..1e4, 1.0f64..1e4), 1..8),
    )
}

fn build_ladder(vs: f64, sections: &[(f64, f64)]) -> Circuit {
    let mut ckt = Circuit::new();
    let mut prev = ckt.node("in");
    ckt.add_voltage_source("V1", prev, Circuit::GROUND, SourceWaveform::dc(vs))
        .unwrap();
    for (k, &(rs, rp)) in sections.iter().enumerate() {
        let node = ckt.node(&format!("n{k}"));
        ckt.add_resistor(&format!("Rs{k}"), prev, node, rs).unwrap();
        ckt.add_resistor(&format!("Rp{k}"), node, Circuit::GROUND, rp)
            .unwrap();
        prev = node;
    }
    ckt
}

proptest! {
    /// MNA solution of a resistive ladder satisfies KCL at every node:
    /// currents into each node sum to zero.
    #[test]
    fn ladder_satisfies_kcl((vs, sections) in ladder_strategy()) {
        let ckt = build_ladder(vs, &sections);
        let mna = MnaSystem::new(&ckt).unwrap();
        let dim = mna.dim();
        let mut g = TripletMatrix::new(dim, dim);
        mna.stamp_linear_g(&mut g);
        let mut rhs = vec![0.0; dim];
        mna.stamp_rhs(0.0, &mut rhs);
        let mut flops = FlopCounter::new();
        let lu = SparseLu::factor(&g.to_csr(), &mut flops).unwrap();
        let x = lu.solve(&rhs, &mut flops).unwrap();
        // Voltage at the source node equals the source.
        let vin = mna.var_of_node_name("in").unwrap();
        prop_assert!((x[vin] - vs).abs() < 1e-9 * (1.0 + vs.abs()));
        // KCL at every internal node.
        for (k, &(rs, rp)) in sections.iter().enumerate() {
            let v_here = x[mna.var_of_node_name(&format!("n{k}")).unwrap()];
            let v_prev = if k == 0 {
                x[vin]
            } else {
                x[mna.var_of_node_name(&format!("n{}", k - 1)).unwrap()]
            };
            let v_next = sections.get(k + 1).map(|&(rs_next, _)| {
                let vn = x[mna.var_of_node_name(&format!("n{}", k + 1)).unwrap()];
                (vn - v_here) / rs_next
            });
            let i_in = (v_prev - v_here) / rs;
            let i_shunt = v_here / rp;
            let i_out = v_next.unwrap_or(0.0);
            prop_assert!(
                (i_in - i_shunt + i_out).abs() < 1e-9 * (1.0 + i_in.abs()),
                "kcl violated at node {k}"
            );
        }
        // Voltages decay monotonically along the ladder.
        let mut last = x[vin].abs();
        for k in 0..sections.len() {
            let v = x[mna.var_of_node_name(&format!("n{k}")).unwrap()].abs();
            prop_assert!(v <= last + 1e-9);
            last = v;
        }
    }

    /// write -> parse round-trips the ladder topology and values.
    #[test]
    fn ladder_roundtrips_through_netlist((vs, sections) in ladder_strategy()) {
        let ckt = build_ladder(vs, &sections);
        let text = write_netlist(&ckt);
        let deck = parse_netlist(&text).unwrap();
        prop_assert_eq!(deck.circuit.elements().len(), ckt.elements().len());
        prop_assert_eq!(deck.circuit.node_count(), ckt.node_count());
        for e in ckt.elements() {
            let round = deck.circuit.element(e.name());
            prop_assert!(round.is_some(), "element {} lost", e.name());
            match (e.kind(), round.unwrap().kind()) {
                (
                    ElementKind::Resistor { resistance: a },
                    ElementKind::Resistor { resistance: b },
                ) => {
                    prop_assert!((a - b).abs() < 1e-12 * a.abs());
                }
                (ElementKind::VoltageSource { waveform: a },
                 ElementKind::VoltageSource { waveform: b }) => {
                    prop_assert!((a.value(0.0) - b.value(0.0)).abs() < 1e-12);
                }
                _ => {}
            }
        }
    }

    /// The two MNA solve paths (dense reference vs sparse) agree on random
    /// ladders.
    #[test]
    fn dense_sparse_mna_agree((vs, sections) in ladder_strategy()) {
        let ckt = build_ladder(vs, &sections);
        let mna = MnaSystem::new(&ckt).unwrap();
        let dim = mna.dim();
        let mut g = TripletMatrix::new(dim, dim);
        mna.stamp_linear_g(&mut g);
        let mut rhs = vec![0.0; dim];
        mna.stamp_rhs(0.0, &mut rhs);
        let mut flops = FlopCounter::new();
        let xs = SparseLu::factor(&g.to_csr(), &mut flops)
            .unwrap()
            .solve(&rhs, &mut flops)
            .unwrap();
        let xd = g.to_dense().solve(&rhs, &mut flops).unwrap();
        for (a, b) in xs.iter().zip(xd.iter()) {
            prop_assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }

    /// Superposition: solutions scale linearly with the source value.
    #[test]
    fn mna_is_linear_in_source((vs, sections) in ladder_strategy(), scale in 0.1f64..5.0) {
        let solve = |v: f64| -> Vec<f64> {
            let ckt = build_ladder(v, &sections);
            let mna = MnaSystem::new(&ckt).unwrap();
            let dim = mna.dim();
            let mut g = TripletMatrix::new(dim, dim);
            mna.stamp_linear_g(&mut g);
            let mut rhs = vec![0.0; dim];
            mna.stamp_rhs(0.0, &mut rhs);
            let mut flops = FlopCounter::new();
            SparseLu::factor(&g.to_csr(), &mut flops)
                .unwrap()
                .solve(&rhs, &mut flops)
                .unwrap()
        };
        let base = solve(vs);
        let scaled = solve(vs * scale);
        for (a, b) in base.iter().zip(scaled.iter()) {
            prop_assert!((a * scale - b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }
}

/// Random ingredients of a hierarchical deck: element values, an optional
/// instance override, and whether a second nesting level is used.
fn hier_strategy() -> impl Strategy<Value = (f64, f64, f64, f64, f64, f64, Option<f64>, bool)> {
    (
        1.0f64..1e4,    // r1: cell default
        1.0f64..1e4,    // r2: fixed body resistor / CCVS transres
        1e-15f64..1e-9, // c
        0.1f64..10.0,   // vs
        -5.0f64..5.0,   // vcvs/cccs gain
        1e-6f64..1e-2,  // vccs gm
        // Optional instance override of r (None half the time).
        (0.0f64..1.0, 1.0f64..1e4).prop_map(|(p, v)| (p < 0.5).then_some(v)),
        // Whether to nest a second subckt level.
        (0.0f64..1.0).prop_map(|p| p < 0.5),
    )
}

#[allow(clippy::too_many_arguments)]
fn hier_deck(
    r1: f64,
    r2: f64,
    c: f64,
    vs: f64,
    gain: f64,
    gm: f64,
    ov: Option<f64>,
    nested: bool,
) -> String {
    let mut d = String::from(".title random hierarchical deck\n");
    d.push_str(&format!(".param rload={r2:e}\n"));
    d.push_str(&format!(
        ".subckt cell p q r={r1:e}\n\
         Ra p mid {{r}}\n\
         Cb mid 0 {c:e}\n\
         Rb mid q {r2:e}\n\
         .ends cell\n"
    ));
    if nested {
        d.push_str(&format!(
            ".subckt pair p q\n\
             X1 p m cell\n\
             X2 m q cell r={r1:e}\n\
             .ends pair\n"
        ));
    }
    d.push_str(&format!("V1 a 0 DC {vs:e}\n"));
    match ov {
        Some(o) => d.push_str(&format!("X1 a b cell r={o:e}\n")),
        None => d.push_str("X1 a b cell\n"),
    }
    if nested {
        d.push_str("X2 b dd pair\n");
    } else {
        d.push_str("X2 b dd cell\n");
    }
    d.push_str(&format!(
        "RL dd 0 {{rload}}\n\
         E1 e 0 b 0 {gain:e}\n\
         RE e 0 1k\n\
         G1 f 0 b 0 {gm:e}\n\
         RG f 0 1k\n\
         F1 h 0 V1 {gain:e}\n\
         RF h 0 1k\n\
         H1 i 0 V1 {r2:e}\n\
         RH i 0 1k\n\
         .end\n"
    ));
    d
}

/// Exact structural equality of two flat circuits: node table, element
/// names/connections/kinds and all numeric values (values round-trip
/// bit-exactly through the writer's `{:e}` format).
fn assert_flat_eq(a: &Circuit, b: &Circuit) -> Result<(), proptest::TestCaseError> {
    prop_assert_eq!(a.node_count(), b.node_count());
    // The writer serializes elements (not the node table), so re-parsing
    // may intern nodes in a different order; compare by *name*.
    let mut names_a: Vec<&str> = a.nodes().iter().map(|(_, n)| n).collect();
    let mut names_b: Vec<&str> = b.nodes().iter().map(|(_, n)| n).collect();
    names_a.sort_unstable();
    names_b.sort_unstable();
    prop_assert_eq!(names_a, names_b);
    prop_assert_eq!(a.elements().len(), b.elements().len());
    for (ea, eb) in a.elements().iter().zip(b.elements()) {
        prop_assert_eq!(ea.name(), eb.name());
        let conn_a: Vec<&str> = ea.nodes().iter().map(|&n| a.node_name(n)).collect();
        let conn_b: Vec<&str> = eb.nodes().iter().map(|&n| b.node_name(n)).collect();
        prop_assert_eq!(conn_a, conn_b);
        match (ea.kind(), eb.kind()) {
            (ElementKind::Resistor { resistance: x }, ElementKind::Resistor { resistance: y }) => {
                prop_assert_eq!(x, y)
            }
            (
                ElementKind::Capacitor {
                    capacitance: x,
                    initial_voltage: ix,
                },
                ElementKind::Capacitor {
                    capacitance: y,
                    initial_voltage: iy,
                },
            ) => {
                prop_assert_eq!(x, y);
                prop_assert_eq!(ix, iy);
            }
            (
                ElementKind::VoltageSource { waveform: x },
                ElementKind::VoltageSource { waveform: y },
            ) => {
                prop_assert_eq!(x.value(0.0), y.value(0.0));
            }
            (ElementKind::Vcvs { gain: x }, ElementKind::Vcvs { gain: y }) => {
                prop_assert_eq!(x, y)
            }
            (ElementKind::Vccs { gm: x }, ElementKind::Vccs { gm: y }) => prop_assert_eq!(x, y),
            (
                ElementKind::Cccs {
                    gain: x,
                    control: cx,
                },
                ElementKind::Cccs {
                    gain: y,
                    control: cy,
                },
            ) => {
                prop_assert_eq!(x, y);
                prop_assert_eq!(cx, cy);
            }
            (ElementKind::Ccvs { r: x, control: cx }, ElementKind::Ccvs { r: y, control: cy }) => {
                prop_assert_eq!(x, y);
                prop_assert_eq!(cx, cy);
            }
            (ka, kb) => prop_assert_eq!(ka.type_tag(), kb.type_tag()),
        }
    }
    Ok(())
}

proptest! {
    /// Hierarchical decks flatten deterministically and round-trip through
    /// the writer: `parse(write(parse(d)))` is structurally identical to
    /// `parse(d)`.
    #[test]
    fn hierarchical_deck_roundtrips(
        (r1, r2, c, vs, gain, gm, ov, nested) in hier_strategy()
    ) {
        let deck = hier_deck(r1, r2, c, vs, gain, gm, ov, nested);
        let d1 = parse_netlist(&deck).expect("generated deck parses");
        // The hierarchy metadata survives parsing.
        prop_assert_eq!(d1.subckts.len(), if nested { 2 } else { 1 });
        prop_assert!(d1.params.contains_key("rload"));
        // Flattening is valid and assembles.
        prop_assert!(d1.circuit.validate().is_ok());
        prop_assert!(MnaSystem::new(&d1.circuit).is_ok());
        // Writer emits the flat circuit; re-parsing reproduces it exactly.
        let text = write_netlist(&d1.circuit);
        let d2 = parse_netlist(&text).expect("writer output parses");
        assert_flat_eq(&d1.circuit, &d2.circuit)?;
        // Parsing is deterministic.
        let d3 = parse_netlist(&deck).expect("second parse");
        assert_flat_eq(&d1.circuit, &d3.circuit)?;
    }
}
