//! Property-based tests for the circuit substrate: random ladder networks
//! must satisfy Kirchhoff's laws through the MNA assembly, and random
//! circuits must round-trip through the netlist writer/parser.

use nanosim_circuit::{parse_netlist, write_netlist, Circuit, ElementKind, MnaSystem};
use nanosim_devices::sources::SourceWaveform;
use nanosim_numeric::sparse::{SparseLu, TripletMatrix};
use nanosim_numeric::FlopCounter;
use proptest::prelude::*;

/// A random resistive ladder: V source into a chain of nodes, each with a
/// series resistor and a shunt resistor to ground.
fn ladder_strategy() -> impl Strategy<Value = (f64, Vec<(f64, f64)>)> {
    (
        0.1f64..10.0,
        proptest::collection::vec((1.0f64..1e4, 1.0f64..1e4), 1..8),
    )
}

fn build_ladder(vs: f64, sections: &[(f64, f64)]) -> Circuit {
    let mut ckt = Circuit::new();
    let mut prev = ckt.node("in");
    ckt.add_voltage_source("V1", prev, Circuit::GROUND, SourceWaveform::dc(vs))
        .unwrap();
    for (k, &(rs, rp)) in sections.iter().enumerate() {
        let node = ckt.node(&format!("n{k}"));
        ckt.add_resistor(&format!("Rs{k}"), prev, node, rs).unwrap();
        ckt.add_resistor(&format!("Rp{k}"), node, Circuit::GROUND, rp)
            .unwrap();
        prev = node;
    }
    ckt
}

proptest! {
    /// MNA solution of a resistive ladder satisfies KCL at every node:
    /// currents into each node sum to zero.
    #[test]
    fn ladder_satisfies_kcl((vs, sections) in ladder_strategy()) {
        let ckt = build_ladder(vs, &sections);
        let mna = MnaSystem::new(&ckt).unwrap();
        let dim = mna.dim();
        let mut g = TripletMatrix::new(dim, dim);
        mna.stamp_linear_g(&mut g);
        let mut rhs = vec![0.0; dim];
        mna.stamp_rhs(0.0, &mut rhs);
        let mut flops = FlopCounter::new();
        let lu = SparseLu::factor(&g.to_csr(), &mut flops).unwrap();
        let x = lu.solve(&rhs, &mut flops).unwrap();
        // Voltage at the source node equals the source.
        let vin = mna.var_of_node_name("in").unwrap();
        prop_assert!((x[vin] - vs).abs() < 1e-9 * (1.0 + vs.abs()));
        // KCL at every internal node.
        for (k, &(rs, rp)) in sections.iter().enumerate() {
            let v_here = x[mna.var_of_node_name(&format!("n{k}")).unwrap()];
            let v_prev = if k == 0 {
                x[vin]
            } else {
                x[mna.var_of_node_name(&format!("n{}", k - 1)).unwrap()]
            };
            let v_next = sections.get(k + 1).map(|&(rs_next, _)| {
                let vn = x[mna.var_of_node_name(&format!("n{}", k + 1)).unwrap()];
                (vn - v_here) / rs_next
            });
            let i_in = (v_prev - v_here) / rs;
            let i_shunt = v_here / rp;
            let i_out = v_next.unwrap_or(0.0);
            prop_assert!(
                (i_in - i_shunt + i_out).abs() < 1e-9 * (1.0 + i_in.abs()),
                "kcl violated at node {k}"
            );
        }
        // Voltages decay monotonically along the ladder.
        let mut last = x[vin].abs();
        for k in 0..sections.len() {
            let v = x[mna.var_of_node_name(&format!("n{k}")).unwrap()].abs();
            prop_assert!(v <= last + 1e-9);
            last = v;
        }
    }

    /// write -> parse round-trips the ladder topology and values.
    #[test]
    fn ladder_roundtrips_through_netlist((vs, sections) in ladder_strategy()) {
        let ckt = build_ladder(vs, &sections);
        let text = write_netlist(&ckt);
        let deck = parse_netlist(&text).unwrap();
        prop_assert_eq!(deck.circuit.elements().len(), ckt.elements().len());
        prop_assert_eq!(deck.circuit.node_count(), ckt.node_count());
        for e in ckt.elements() {
            let round = deck.circuit.element(e.name());
            prop_assert!(round.is_some(), "element {} lost", e.name());
            match (e.kind(), round.unwrap().kind()) {
                (
                    ElementKind::Resistor { resistance: a },
                    ElementKind::Resistor { resistance: b },
                ) => {
                    prop_assert!((a - b).abs() < 1e-12 * a.abs());
                }
                (ElementKind::VoltageSource { waveform: a },
                 ElementKind::VoltageSource { waveform: b }) => {
                    prop_assert!((a.value(0.0) - b.value(0.0)).abs() < 1e-12);
                }
                _ => {}
            }
        }
    }

    /// The two MNA solve paths (dense reference vs sparse) agree on random
    /// ladders.
    #[test]
    fn dense_sparse_mna_agree((vs, sections) in ladder_strategy()) {
        let ckt = build_ladder(vs, &sections);
        let mna = MnaSystem::new(&ckt).unwrap();
        let dim = mna.dim();
        let mut g = TripletMatrix::new(dim, dim);
        mna.stamp_linear_g(&mut g);
        let mut rhs = vec![0.0; dim];
        mna.stamp_rhs(0.0, &mut rhs);
        let mut flops = FlopCounter::new();
        let xs = SparseLu::factor(&g.to_csr(), &mut flops)
            .unwrap()
            .solve(&rhs, &mut flops)
            .unwrap();
        let xd = g.to_dense().solve(&rhs, &mut flops).unwrap();
        for (a, b) in xs.iter().zip(xd.iter()) {
            prop_assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }

    /// Superposition: solutions scale linearly with the source value.
    #[test]
    fn mna_is_linear_in_source((vs, sections) in ladder_strategy(), scale in 0.1f64..5.0) {
        let solve = |v: f64| -> Vec<f64> {
            let ckt = build_ladder(v, &sections);
            let mna = MnaSystem::new(&ckt).unwrap();
            let dim = mna.dim();
            let mut g = TripletMatrix::new(dim, dim);
            mna.stamp_linear_g(&mut g);
            let mut rhs = vec![0.0; dim];
            mna.stamp_rhs(0.0, &mut rhs);
            let mut flops = FlopCounter::new();
            SparseLu::factor(&g.to_csr(), &mut flops)
                .unwrap()
                .solve(&rhs, &mut flops)
                .unwrap()
        };
        let base = solve(vs);
        let scaled = solve(vs * scale);
        for (a, b) in base.iter().zip(scaled.iter()) {
            prop_assert!((a * scale - b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }
}
