//! The Nano-Sim simulation engines — the paper's contribution.
//!
//! Four engines share the `nanosim-circuit` MNA substrate and the
//! `nanosim-devices` models, so they are compared on equal footing exactly
//! as in the paper:
//!
//! * [`swec`] — the paper's method. **S**tep-**W**ise **E**quivalent
//!   **C**onductance: every nonlinear device is replaced at each time point
//!   by the positive secant conductance `Geq = I(V)/V` (optionally Taylor-
//!   extrapolated, paper eq. 5), turning the circuit into a linear
//!   time-varying system solved with one sparse LU per step — no Newton
//!   iterations, no NDR failures. Includes the adaptive time-step control
//!   of paper eq. 10–12 and a DC sweep built on damped Geq fixed-point
//!   iteration with source continuation.
//! * [`nr`] — the SPICE-like baseline: full Newton–Raphson with
//!   differential-conductance companion models, optional damping, gmin and
//!   source stepping. On NDR devices it oscillates or falsely converges —
//!   reproducing Figure 8(c).
//! * [`mla`] — the Modified Limiting Algorithm baseline after Bhattacharya &
//!   Mazumder (paper ref. \[1\]): Newton–Raphson augmented with RTD voltage
//!   limiting, source stepping and automatic step reduction. Converges, but
//!   at many iterations per point — the paper's Table I comparison.
//! * [`pwl`] — an ACES-like piecewise-linear engine (paper ref. \[2\]):
//!   devices are tabulated into PWL segments whose *differential* segment
//!   conductance is stamped non-iteratively; in the NDR region that
//!   conductance is negative (Figure 3's contrast with SWEC).
//! * [`em`] — the stochastic engine of §4: the nodal SDE
//!   `C·dx = (b - G·x)·dt + B·dW` integrated with Euler–Maruyama over
//!   Wiener-process inputs, with ensemble statistics and peak prediction
//!   (Figure 10).
//!
//! Results come back as [`waveform::TransientResult`] /
//! [`waveform::DcSweepResult`] with [`report::EngineStats`] carrying the
//! FLOP counts behind the paper's Table I.
//!
//! # Example
//!
//! ```
//! use nanosim_circuit::Circuit;
//! use nanosim_core::swec::{SwecDcSweep, SwecOptions};
//! use nanosim_devices::rtd::Rtd;
//! use nanosim_devices::sources::SourceWaveform;
//!
//! # fn main() -> Result<(), nanosim_core::SimError> {
//! // The paper's Figure 7(a): RTD + 50 ohm divider swept 0..2.5 V.
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let mid = ckt.node("mid");
//! ckt.add_voltage_source("V1", vin, Circuit::GROUND, SourceWaveform::dc(0.0))?;
//! ckt.add_resistor("R1", vin, mid, 50.0)?;
//! ckt.add_rtd("X1", mid, Circuit::GROUND, Rtd::date2005())?;
//! let sweep = SwecDcSweep::new(SwecOptions::default())
//!     .run(&ckt, "V1", 0.0, 2.5, 0.1)?;
//! assert_eq!(sweep.points(), 26);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod analysis;
pub(crate) mod assemble;
pub mod em;
pub mod error;
pub mod mla;
pub mod nr;
pub mod pwl;
pub mod report;
pub mod rescue;
pub mod sim;
pub mod swec;
pub mod waveform;

pub use error::SimError;
pub use nanosim_numeric::sparse::OrderingChoice;
pub use nanosim_numeric::{Budget, BudgetMeter, BudgetStop, CancelToken, FaultPlan};
pub use report::{EngineStats, HealthVerdict};
pub use rescue::{RescueOptions, RescueRung, RescueTrace};
pub use sim::{Analysis, AnalysisKind, Dataset, ExecPlan, PreflightMode, SimOptions, Simulator};
pub use waveform::{DcSweepResult, TransientResult, Waveform};

/// Convenience alias for fallible simulation results.
pub type Result<T> = std::result::Result<T, SimError>;
